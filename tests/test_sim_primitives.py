"""Tests for resources, stores, flags, barriers, semaphores, traces."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError, SynchronizationError
from repro.sim import (
    Barrier,
    Environment,
    Flag,
    PriorityResource,
    Resource,
    Semaphore,
    Store,
    TraceRecorder,
    utilization,
)


class TestResource:
    def test_capacity_one_serializes(self):
        env = Environment()
        res = Resource(env, capacity=1)
        spans = []

        def user(env, res, hold):
            with res.request() as req:
                yield req
                start = env.now
                yield env.timeout(hold)
                spans.append((start, env.now))

        env.process(user(env, res, 2.0))
        env.process(user(env, res, 3.0))
        env.run()
        (s1, e1), (s2, e2) = sorted(spans)
        assert e1 <= s2  # no overlap

    def test_capacity_two_overlaps(self):
        env = Environment()
        res = Resource(env, capacity=2)
        ends = []

        def user(env):
            with res.request() as req:
                yield req
                yield env.timeout(5.0)
                ends.append(env.now)

        env.process(user(env))
        env.process(user(env))
        env.run()
        assert ends == [5.0, 5.0]

    def test_fifo_granting(self):
        env = Environment()
        res = Resource(env, capacity=1)
        grants = []

        def user(env, tag):
            with res.request() as req:
                yield req
                grants.append(tag)
                yield env.timeout(1.0)

        for tag in range(5):
            env.process(user(env, tag))
        env.run()
        assert grants == [0, 1, 2, 3, 4]

    def test_release_on_exception(self):
        env = Environment()
        res = Resource(env, capacity=1)
        ok = []

        def bad(env):
            with res.request() as req:
                yield req
                raise RuntimeError("die holding the resource")

        def good(env):
            try:
                yield env.process(bad(env))
            except RuntimeError:
                pass
            with res.request() as req:
                yield req
                ok.append(env.now)

        env.process(good(env))
        env.run()
        assert ok  # resource was not leaked

    def test_bad_capacity(self):
        with pytest.raises(SimulationError):
            Resource(Environment(), capacity=0)

    def test_count_and_queue_length(self):
        env = Environment()
        res = Resource(env, capacity=1)

        def holder(env):
            with res.request() as req:
                yield req
                assert res.count == 1
                yield env.timeout(1.0)

        def waiter(env):
            yield env.timeout(0.5)
            req = res.request()
            assert res.queue_length == 1
            yield req
            res.release(req)

        env.process(holder(env))
        env.process(waiter(env))
        env.run()


class TestPriorityResource:
    def test_priority_jumps_queue(self):
        env = Environment()
        res = PriorityResource(env, capacity=1)
        grants = []

        def user(env, tag, prio, delay):
            yield env.timeout(delay)
            req = res.request(priority=prio)
            yield req
            grants.append(tag)
            yield env.timeout(10.0)
            res.release(req)

        env.process(user(env, "first", 5, 0.0))
        env.process(user(env, "low", 5, 1.0))
        env.process(user(env, "high", 0, 2.0))
        env.run()
        assert grants == ["first", "high", "low"]


class TestStore:
    def test_put_get_fifo(self):
        env = Environment()
        store = Store(env)
        got = []

        def producer(env):
            for i in range(3):
                yield store.put(i)
                yield env.timeout(1.0)

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        when = []

        def consumer(env):
            item = yield store.get()
            when.append((env.now, item))

        def producer(env):
            yield env.timeout(7.0)
            yield store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert when == [(7.0, "x")]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        times = []

        def producer(env):
            yield store.put("a")
            t0 = env.now
            yield store.put("b")  # blocks until consumer takes "a"
            times.append((t0, env.now))

        def consumer(env):
            yield env.timeout(4.0)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert times == [(0.0, 4.0)]

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store(Environment(), capacity=0)


class TestFlag:
    def test_wait_after_set_fires_immediately(self):
        env = Environment()
        flag = Flag(env)
        flag.set("v")
        seen = []

        def p(env):
            v = yield flag.wait()
            seen.append((env.now, v))

        env.process(p(env))
        env.run()
        assert seen == [(0.0, "v")]

    def test_clear_rearms(self):
        env = Environment()
        flag = Flag(env)
        seen = []

        def waiter(env):
            v = yield flag.wait()
            seen.append(v)
            flag.clear()
            v = yield flag.wait()
            seen.append(v)

        def setter(env):
            yield env.timeout(1.0)
            flag.set(1)
            yield env.timeout(1.0)
            flag.set(2)

        env.process(waiter(env))
        env.process(setter(env))
        env.run()
        assert seen == [1, 2]

    def test_counts_tracked(self):
        env = Environment()
        flag = Flag(env)
        flag.set()
        flag.wait()
        assert flag.signal_count == 1
        assert flag.wait_count == 1


class TestBarrier:
    def test_releases_all_at_last_arrival(self):
        env = Environment()
        bar = Barrier(env, parties=3)
        released = []

        def p(env, delay):
            yield env.timeout(delay)
            yield bar.wait()
            released.append(env.now)

        for d in (1.0, 2.0, 5.0):
            env.process(p(env, d))
        env.run()
        assert released == [5.0, 5.0, 5.0]

    def test_reusable_generations(self):
        env = Environment()
        bar = Barrier(env, parties=2)
        gens = []

        def p(env):
            for _ in range(3):
                g = yield bar.wait()
                gens.append(g)

        env.process(p(env))
        env.process(p(env))
        env.run()
        assert sorted(gens) == [0, 0, 1, 1, 2, 2]
        assert bar.generation == 3

    def test_single_party_barrier_is_noop(self):
        env = Environment()
        bar = Barrier(env, parties=1)
        done = []

        def p(env):
            yield bar.wait()
            done.append(env.now)

        env.process(p(env))
        env.run()
        assert done == [0.0]

    def test_invalid_parties(self):
        with pytest.raises(SimulationError):
            Barrier(Environment(), parties=0)


class TestSemaphore:
    def test_acquire_release_cycle(self):
        env = Environment()
        sem = Semaphore(env, value=2)
        active = []
        peak = []

        def p(env, tag):
            yield sem.acquire()
            active.append(tag)
            peak.append(len(active))
            yield env.timeout(1.0)
            active.remove(tag)
            sem.release()

        for tag in range(6):
            env.process(p(env, tag))
        env.run()
        assert max(peak) <= 2

    def test_ring_depth_semantics(self):
        """depth-2 ring: producer may run at most 2 iterations ahead."""
        env = Environment()
        sem = Semaphore(env, value=2)
        produced, consumed = [], []

        def producer(env):
            for i in range(5):
                yield sem.acquire()
                produced.append((i, env.now))

        def consumer(env):
            for i in range(5):
                yield env.timeout(10.0)
                consumed.append((i, env.now))
                sem.release()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        # item i can only be produced after consumer freed slot i-2
        for i, t in produced:
            if i >= 2:
                assert t >= consumed[i - 2][1]

    def test_invalid_value(self):
        with pytest.raises(SimulationError):
            Semaphore(Environment(), value=-1)


class TestTrace:
    def test_busy_time_merges_overlaps(self):
        tr = TraceRecorder()
        tr.record("gpu", "a", 0.0, 5.0)
        tr.record("gpu", "b", 3.0, 8.0)
        tr.record("gpu", "c", 10.0, 11.0)
        assert tr.busy_time("gpu") == pytest.approx(9.0)

    def test_overlap_time(self):
        tr = TraceRecorder()
        tr.record("gpu", "comp", 0.0, 5.0)
        tr.record("pcie", "xfer", 3.0, 9.0)
        assert tr.overlap_time("comp", "xfer") == pytest.approx(2.0)

    def test_total_time_by_label(self):
        tr = TraceRecorder()
        tr.record("gpu", "comp", 0, 2)
        tr.record("gpu", "comp", 4, 7)
        tr.record("gpu", "addr", 2, 3)
        assert tr.total_time("comp") == pytest.approx(5.0)
        assert tr.total_time() == pytest.approx(6.0)

    def test_makespan(self):
        tr = TraceRecorder()
        tr.record("a", "x", 1.0, 2.0)
        tr.record("b", "y", 5.0, 9.0)
        assert tr.makespan() == pytest.approx(8.0)

    def test_rejects_negative_interval(self):
        tr = TraceRecorder()
        with pytest.raises(ValueError):
            tr.record("a", "x", 2.0, 1.0)

    def test_utilization(self):
        tr = TraceRecorder()
        tr.record("gpu", "comp", 0.0, 5.0)
        tr.record("pcie", "xfer", 0.0, 10.0)
        assert utilization(tr, "gpu") == pytest.approx(0.5)

    def test_labels_first_seen_order(self):
        tr = TraceRecorder()
        tr.record("g", "b", 0, 1)
        tr.record("g", "a", 1, 2)
        tr.record("g", "b", 2, 3)
        assert tr.labels() == ["b", "a"]

    @given(
        spans=st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=100, allow_nan=False),
                st.floats(min_value=0, max_value=50, allow_nan=False),
            ),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_busy_time_bounds(self, spans):
        """busy <= sum of durations and busy <= makespan."""
        tr = TraceRecorder()
        for start, dur in spans:
            tr.record("t", "x", start, start + dur)
        busy = tr.busy_time("t")
        total = sum(d for _, d in spans)
        assert busy <= total + 1e-9
        assert busy <= tr.makespan() + 1e-9
