"""Additional engine-core coverage: composite-event failure propagation,
urgent scheduling, and mixed waits."""

import pytest

from repro.errors import SimulationError
from repro.sim import Environment
from repro.sim.core import URGENT, NORMAL


class TestConditionFailures:
    def test_all_of_fails_when_member_fails(self):
        env = Environment()
        caught = []

        def failer(env):
            yield env.timeout(1.0)
            raise ValueError("member died")

        def waiter(env):
            p = env.process(failer(env))
            t = env.timeout(5.0)
            try:
                yield env.all_of([p, t])
            except ValueError as e:
                caught.append((env.now, str(e)))

        env.process(waiter(env))
        env.run()
        assert caught == [(1.0, "member died")]

    def test_any_of_fails_when_first_outcome_is_failure(self):
        env = Environment()
        caught = []

        def failer(env):
            yield env.timeout(1.0)
            raise RuntimeError("fast failure")

        def waiter(env):
            p = env.process(failer(env))
            t = env.timeout(5.0)
            try:
                yield env.any_of([p, t])
            except RuntimeError:
                caught.append(env.now)

        env.process(waiter(env))
        env.run()
        assert caught == [1.0]

    def test_any_of_success_shadows_later_failure(self):
        """If a success fires first, a later member failure that a process
        joins on separately is still catchable."""
        env = Environment()
        results = []

        def failer(env):
            yield env.timeout(5.0)
            raise RuntimeError("slow failure")

        def waiter(env):
            p = env.process(failer(env))
            t = env.timeout(1.0, value="fast")
            got = yield env.any_of([p, t])
            results.append(list(got.values()))
            try:
                yield p
            except RuntimeError:
                results.append("late failure observed")

        env.process(waiter(env))
        env.run()
        assert results == [["fast"], "late failure observed"]

    def test_condition_events_must_share_environment(self):
        env1, env2 = Environment(), Environment()
        t1 = env1.timeout(1.0)
        t2 = env2.timeout(1.0)
        with pytest.raises(SimulationError):
            env1.all_of([t1, t2])


class TestScheduling:
    def test_urgent_fires_before_normal_at_same_time(self):
        env = Environment()
        order = []
        e_normal = env.event()
        e_urgent = env.event()
        e_normal.callbacks.append(lambda ev: order.append("normal"))
        e_urgent.callbacks.append(lambda ev: order.append("urgent"))
        # schedule normal FIRST, urgent second — urgent still wins the tie
        e_normal._ok = True
        e_normal._value = None
        env.schedule(e_normal, delay=1.0, priority=NORMAL)
        e_urgent._ok = True
        e_urgent._value = None
        env.schedule(e_urgent, delay=1.0, priority=URGENT)
        env.run()
        assert order == ["urgent", "normal"]

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(3.0)
        env.timeout(1.0)
        assert env.peek() == 1.0

    def test_peek_empty_queue_is_inf(self):
        assert Environment().peek() == float("inf")

    def test_active_process_visible_during_resume(self):
        env = Environment()
        seen = []

        def p(env):
            seen.append(env.active_process)
            yield env.timeout(1.0)
            seen.append(env.active_process)

        proc = env.process(p(env))
        env.run()
        assert seen == [proc, proc]
        assert env.active_process is None
