"""Tests for the synthetic data generators + interpreter guard rails."""

import numpy as np
import pytest

from repro.apps.datagen import dna_bases, make_text, make_vocabulary, zipf_indices
from repro.errors import ApplicationError, CompilerError


class TestVocabulary:
    def test_size_and_uniqueness(self):
        rng = np.random.default_rng(0)
        vocab = make_vocabulary(rng, 500)
        assert len(vocab) == 500
        assert len(set(vocab)) == 500

    def test_lengths_bounded(self):
        rng = np.random.default_rng(1)
        vocab = make_vocabulary(rng, 100, min_len=3, max_len=12)
        assert all(3 <= len(w) <= 12 for w in vocab)

    def test_lowercase_only(self):
        rng = np.random.default_rng(2)
        for w in make_vocabulary(rng, 50):
            assert w.islower() and w.isalpha()

    def test_invalid_size(self):
        with pytest.raises(ApplicationError):
            make_vocabulary(np.random.default_rng(0), 0)


class TestZipf:
    def test_head_is_hot(self):
        rng = np.random.default_rng(3)
        idx = zipf_indices(rng, 1000, 50_000)
        counts = np.bincount(idx, minlength=1000)
        assert counts[0] > counts[100] > counts[900]

    def test_range(self):
        rng = np.random.default_rng(3)
        idx = zipf_indices(rng, 50, 1000)
        assert idx.min() >= 0 and idx.max() < 50


class TestText:
    def test_size_close_to_request(self):
        rng = np.random.default_rng(4)
        text = make_text(rng, 100_000)
        assert 0.9 * 100_000 <= text.size <= 100_000

    def test_ends_with_separator(self):
        rng = np.random.default_rng(4)
        assert make_text(rng, 10_000)[-1] == 32

    def test_no_double_separators(self):
        rng = np.random.default_rng(4)
        text = make_text(rng, 10_000)
        pairs = (text[:-1] == 32) & (text[1:] == 32)
        assert not pairs.any()

    def test_tiny_request_rejected(self):
        with pytest.raises(ApplicationError):
            make_text(np.random.default_rng(0), 2)


class TestDnaBases:
    def test_alphabet(self):
        rng = np.random.default_rng(5)
        bases = dna_bases(rng, 1000)
        assert set(np.unique(bases)) <= set(b"ACGT")

    def test_shape(self):
        rng = np.random.default_rng(5)
        assert dna_bases(rng, (10, 46)).shape == (10, 46)


class TestInterpreterGuard:
    def test_diverging_while_detected(self):
        from repro.kernelc import (
            Assign,
            BinOp,
            Const,
            ExecutionContext,
            Kernel,
            KernelInterpreter,
            Var,
            While,
        )

        k = Kernel(
            "spin",
            (
                Assign("x", Const(1)),
                While(BinOp(">", Var("x"), Const(0)), (Assign("x", Const(1)),)),
            ),
        )
        interp = KernelInterpreter(k, ExecutionContext(), max_steps=10_000)
        with pytest.raises(CompilerError, match="diverging"):
            interp.run_thread(0, 0, 1)
