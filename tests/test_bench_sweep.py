"""Tests for the sweep utility and the per-scheme autotuner."""

import pytest

from repro.apps import get_app
from repro.bench.sweep import DEFAULT_GRID, SweepResult, autotune, sweep
from repro.engines import (
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
)
from repro.errors import ReproError
from repro.units import MiB


@pytest.fixture(scope="module")
def workload():
    app = get_app("kmeans")
    return app, app.generate(n_bytes=4 * MiB, seed=3)


class TestSweep:
    def test_cartesian_product_size(self, workload):
        app, data = workload
        res = sweep(
            BigKernelEngine(),
            app,
            data,
            EngineConfig(),
            {"chunk_bytes": [512 * 1024, 1 * MiB], "ring_depth": [2, 3]},
        )
        assert len(res.points) == 4
        params = {tuple(sorted(p.params.items())) for p in res.points}
        assert len(params) == 4  # all distinct

    def test_best_is_minimum(self, workload):
        app, data = workload
        res = sweep(
            BigKernelEngine(),
            app,
            data,
            EngineConfig(),
            {"chunk_bytes": [256 * 1024, 1 * MiB, 2 * MiB]},
        )
        assert res.best.sim_time == min(p.sim_time for p in res.points)

    def test_series_extraction(self, workload):
        app, data = workload
        res = sweep(
            GpuDoubleBufferEngine(),
            app,
            data,
            EngineConfig(),
            {"chunk_bytes": [512 * 1024, 1 * MiB]},
        )
        series = res.series("chunk_bytes")
        assert set(series) == {512 * 1024, 1 * MiB}
        assert all(v > 0 for v in series.values())

    def test_empty_sweep_best_raises(self):
        with pytest.raises(ReproError):
            SweepResult([]).best

    def test_unknown_mode_raises(self, workload):
        app, data = workload
        with pytest.raises(ReproError):
            sweep(
                BigKernelEngine(), app, data, EngineConfig(), DEFAULT_GRID,
                mode="oracle",
            )


GRID_16 = {
    "chunk_bytes": [256 * 1024, 512 * 1024, 1 * MiB, 2 * MiB],
    "num_blocks": [8, 16, 32, 64],
}


class TestSweepModes:
    """mode="analytic" / mode="hybrid" against the pure-DES sweep."""

    @pytest.fixture(scope="class")
    def fast_workload(self):
        app = get_app("wordcount")
        return app, app.generate(n_bytes=2 * MiB, seed=7)

    def test_hybrid_matches_des_on_16_point_grid(self, fast_workload):
        app, data = fast_workload
        base = EngineConfig(functional=False)
        pure = sweep(BigKernelEngine(), app, data, base, GRID_16)
        hybrid = sweep(
            BigKernelEngine(), app, data, base, GRID_16,
            mode="hybrid", top_k=4,
        )
        assert hybrid.best.params == pure.best.params
        assert hybrid.best.sim_time == pure.best.sim_time
        assert len(hybrid.points) < len(pure.points)

    def test_hybrid_determinism_on_plateau_ties(self, fast_workload):
        """On a plateau (CPU-insensitive knob producing bitwise-equal
        predictions) hybrid must keep every tied candidate and break the
        tie exactly like the pure-DES sweep: toward the smallest
        footprint, then grid order."""
        app, data = fast_workload
        base = EngineConfig(functional=False)
        # ring_depth beyond the chunk count is a plateau: every point
        # prices (and simulates) identically
        grid = {"ring_depth": [2, 3, 4, 5, 6, 7, 8, 9]}
        pure = sweep(BigKernelEngine(), app, data, base, grid)
        hybrid = sweep(
            BigKernelEngine(), app, data, base, grid,
            mode="hybrid", top_k=1,
        )
        times = {p.sim_time for p in pure.points}
        if len(times) == 1:  # confirmed plateau: ties expand past top_k
            assert len(hybrid.points) == len(pure.points)
        assert hybrid.best.params == pure.best.params
        assert hybrid.best.sim_time == pure.best.sim_time

    def test_analytic_mode_orders_like_des(self, fast_workload):
        app, data = fast_workload
        base = EngineConfig(functional=False)
        pure = sweep(BigKernelEngine(), app, data, base, GRID_16)
        ana = sweep(
            BigKernelEngine(), app, data, base, GRID_16, mode="analytic"
        )
        assert len(ana.points) == len(pure.points)
        assert all(p.result is None for p in ana.points)
        assert ana.best.params == pure.best.params

    def test_hybrid_small_grid_degenerates_to_des(self, fast_workload):
        app, data = fast_workload
        base = EngineConfig(functional=False)
        grid = {"chunk_bytes": [512 * 1024, 1 * MiB]}
        pure = sweep(BigKernelEngine(), app, data, base, grid)
        hybrid = sweep(
            BigKernelEngine(), app, data, base, grid, mode="hybrid", top_k=8
        )
        assert [(p.params, p.sim_time) for p in hybrid.points] == [
            (p.params, p.sim_time) for p in pure.points
        ]

    def test_autotune_threads_mode_through(self, fast_workload):
        app, data = fast_workload
        base = EngineConfig(functional=False)
        cfg_des, _ = autotune(BigKernelEngine(), app, data, base)
        cfg_hyb, res = autotune(
            BigKernelEngine(), app, data, base, mode="hybrid", top_k=3
        )
        assert cfg_hyb == cfg_des
        assert len(res.points) <= len(DEFAULT_GRID["chunk_bytes"]) * len(
            DEFAULT_GRID["num_blocks"]
        )


class TestAutotune:
    def test_autotuned_config_at_least_as_fast(self, workload):
        app, data = workload
        engine = BigKernelEngine()
        base = EngineConfig(chunk_bytes=256 * 1024)
        best_cfg, res = autotune(engine, app, data, base)
        default_time = engine.run(app, data, base).sim_time
        assert res.best.sim_time <= default_time * 1.001

    def test_cpu_engine_short_circuits(self, workload):
        app, data = workload
        cfg, res = autotune(CpuSerialEngine(), app, data)
        assert len(res.points) == 1

    def test_best_config_reproduces_best_time(self, workload):
        app, data = workload
        engine = GpuDoubleBufferEngine()
        best_cfg, res = autotune(
            engine, app, data, grid={"chunk_bytes": [512 * 1024, 2 * MiB]}
        )
        rerun = engine.run(app, data, best_cfg)
        assert rerun.sim_time == pytest.approx(res.best.sim_time)

    def test_default_grid_shape(self):
        assert "chunk_bytes" in DEFAULT_GRID and "num_blocks" in DEFAULT_GRID
