"""Tests for the sweep utility and the per-scheme autotuner."""

import pytest

from repro.apps import get_app
from repro.bench.sweep import DEFAULT_GRID, SweepResult, autotune, sweep
from repro.engines import (
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
)
from repro.errors import ReproError
from repro.units import MiB


@pytest.fixture(scope="module")
def workload():
    app = get_app("kmeans")
    return app, app.generate(n_bytes=4 * MiB, seed=3)


class TestSweep:
    def test_cartesian_product_size(self, workload):
        app, data = workload
        res = sweep(
            BigKernelEngine(),
            app,
            data,
            EngineConfig(),
            {"chunk_bytes": [512 * 1024, 1 * MiB], "ring_depth": [2, 3]},
        )
        assert len(res.points) == 4
        params = {tuple(sorted(p.params.items())) for p in res.points}
        assert len(params) == 4  # all distinct

    def test_best_is_minimum(self, workload):
        app, data = workload
        res = sweep(
            BigKernelEngine(),
            app,
            data,
            EngineConfig(),
            {"chunk_bytes": [256 * 1024, 1 * MiB, 2 * MiB]},
        )
        assert res.best.sim_time == min(p.sim_time for p in res.points)

    def test_series_extraction(self, workload):
        app, data = workload
        res = sweep(
            GpuDoubleBufferEngine(),
            app,
            data,
            EngineConfig(),
            {"chunk_bytes": [512 * 1024, 1 * MiB]},
        )
        series = res.series("chunk_bytes")
        assert set(series) == {512 * 1024, 1 * MiB}
        assert all(v > 0 for v in series.values())

    def test_empty_sweep_best_raises(self):
        with pytest.raises(ReproError):
            SweepResult([]).best


class TestAutotune:
    def test_autotuned_config_at_least_as_fast(self, workload):
        app, data = workload
        engine = BigKernelEngine()
        base = EngineConfig(chunk_bytes=256 * 1024)
        best_cfg, res = autotune(engine, app, data, base)
        default_time = engine.run(app, data, base).sim_time
        assert res.best.sim_time <= default_time * 1.001

    def test_cpu_engine_short_circuits(self, workload):
        app, data = workload
        cfg, res = autotune(CpuSerialEngine(), app, data)
        assert len(res.points) == 1

    def test_best_config_reproduces_best_time(self, workload):
        app, data = workload
        engine = GpuDoubleBufferEngine()
        best_cfg, res = autotune(
            engine, app, data, grid={"chunk_bytes": [512 * 1024, 2 * MiB]}
        )
        rerun = engine.run(app, data, best_cfg)
        assert rerun.sim_time == pytest.approx(res.best.sim_time)

    def test_default_grid_shape(self):
        assert "chunk_bytes" in DEFAULT_GRID and "num_blocks" in DEFAULT_GRID
