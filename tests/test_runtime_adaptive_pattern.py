"""Tests for the midstream-pattern-change extension (Section IV-A's
suggested improvement): AdaptiveAddressTracker."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.pattern import (
    ADDRESS_BYTES,
    PATTERN_DESCRIPTOR_BYTES,
    AdaptiveAddressTracker,
    OnlineAddressTracker,
    StridePattern,
)


def two_phase_stream(n1=200, n2=200):
    """A stream whose stride changes midway — e.g. a kernel switching from
    an 8-byte field walk to a 4-byte field walk."""
    first = np.arange(n1, dtype=np.int64) * 8
    second = 10_000 + np.arange(n2, dtype=np.int64) * 4
    return np.concatenate([first, second])


class TestAdaptiveTracker:
    def test_single_pattern_stream(self):
        t = AdaptiveAddressTracker(temp_buffer=8)
        stream = np.arange(0, 4000, 8)
        t.feed_many(stream)
        t.finish()
        assert not t.fell_back
        assert len(t.segments) == 1
        np.testing.assert_array_equal(t.addresses(), stream)
        assert t.cpu_bytes() == PATTERN_DESCRIPTOR_BYTES

    def test_two_phase_stream_two_segments(self):
        t = AdaptiveAddressTracker(temp_buffer=8)
        stream = two_phase_stream()
        t.feed_many(stream)
        t.finish()
        assert not t.fell_back
        assert len(t.segments) == 2
        np.testing.assert_array_equal(t.addresses(), stream)
        assert t.cpu_bytes() == 2 * PATTERN_DESCRIPTOR_BYTES

    def test_beats_original_tracker_on_phase_change(self):
        """The baseline tracker falls back to raw on the phase change; the
        adaptive one ships two descriptors."""
        stream = two_phase_stream()
        base = OnlineAddressTracker(temp_buffer=8)
        base.feed_many(stream)
        base.finish()
        adaptive = AdaptiveAddressTracker(temp_buffer=8)
        adaptive.feed_many(stream)
        adaptive.finish()
        assert not base.has_pattern
        assert adaptive.cpu_bytes() < base.cpu_bytes() / 10
        np.testing.assert_array_equal(base.addresses(), adaptive.addresses())

    def test_fragmentation_limit_falls_back_to_raw(self):
        """Past max_segments the stream goes raw — bounded overhead."""
        rng = np.random.default_rng(0)
        pieces = []
        for k in range(10):
            base = int(rng.integers(0, 10**6))
            pieces.append(base + np.arange(30, dtype=np.int64) * 8)
        stream = np.concatenate(pieces)
        t = AdaptiveAddressTracker(temp_buffer=8, max_segments=4)
        t.feed_many(stream)
        t.finish()
        assert t.fell_back
        np.testing.assert_array_equal(t.addresses(), stream)
        assert t.cpu_bytes() == stream.size * ADDRESS_BYTES

    def test_random_stream_goes_raw(self):
        rng = np.random.default_rng(3)
        stream = rng.integers(0, 10**7, 300)
        t = AdaptiveAddressTracker(temp_buffer=8)
        t.feed_many(stream)
        t.finish()
        assert t.fell_back
        np.testing.assert_array_equal(t.addresses(), stream)

    def test_short_tail_segment_recognized(self):
        """A trailing partial buffer that itself forms a pattern becomes a
        final segment rather than raw addresses."""
        stream = np.concatenate(
            [np.arange(0, 800, 8), 50_000 + np.arange(0, 128, 4)]
        )
        t = AdaptiveAddressTracker(temp_buffer=8)
        t.feed_many(stream)
        t.finish()
        assert not t.fell_back
        np.testing.assert_array_equal(t.addresses(), stream)

    def test_invalid_max_segments(self):
        with pytest.raises(ValueError):
            AdaptiveAddressTracker(max_segments=0)

    @given(
        seed=st.integers(0, 500),
        n_phases=st.integers(1, 5),
        phase_len=st.integers(20, 60),
    )
    @settings(max_examples=40, deadline=None)
    def test_reconstruction_is_lossless(self, seed, n_phases, phase_len):
        """Whatever the stream shape, the CPU reproduces it exactly."""
        rng = np.random.default_rng(seed)
        pieces = []
        for _ in range(n_phases):
            base = int(rng.integers(0, 10**6))
            stride = int(rng.integers(1, 64))
            pieces.append(base + np.arange(phase_len, dtype=np.int64) * stride)
        stream = np.concatenate(pieces)
        t = AdaptiveAddressTracker(temp_buffer=8, max_segments=3)
        t.feed_many(stream)
        t.finish()
        np.testing.assert_array_equal(t.addresses(), stream)

    @given(seed=st.integers(0, 500))
    @settings(max_examples=30, deadline=None)
    def test_never_costs_more_than_raw(self, seed):
        rng = np.random.default_rng(seed)
        stream = rng.integers(0, 10**7, 200)
        t = AdaptiveAddressTracker(temp_buffer=8)
        t.feed_many(stream)
        t.finish()
        assert t.cpu_bytes() <= stream.size * ADDRESS_BYTES + PATTERN_DESCRIPTOR_BYTES
