"""Tests for the closed-form analytic predictor (repro.analytic).

The heavyweight validation lives in ``verify --analytic`` (full matrix +
fuzzed geometries vs the DES) and the calibration pins; these tests cover
the package's contracts: bound-family gating, scalar/vector equivalence,
ranking tie-breaks, grid generation, engine resolution, report rendering,
and the hardware presets.
"""

import numpy as np
import pytest

from repro.analytic import (
    GRID_FIELDS,
    PREDICTABLE_ENGINES,
    extract_app_model,
    pipeline_bounds,
    predict_grid,
    predict_run,
    resolve_engine,
    run_report,
    suggest_grid,
)
from repro.apps import get_app
from repro.engines import (
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
)
from repro.errors import ReproError
from repro.hw.spec import DEFAULT_HARDWARE, HW_PRESETS, get_hardware
from repro.kernelc.analysis import kernel_intensity
from repro.units import MiB


@pytest.fixture(scope="module")
def workload():
    app = get_app("wordcount")
    return app, app.generate(n_bytes=2 * MiB, seed=7)


@pytest.fixture(scope="module")
def writer_workload():
    app = get_app("kmeans")
    return app, app.generate(n_bytes=2 * MiB, seed=7)


class TestPipelineBounds:
    """Gating and shape contracts of the max-plus bound family."""

    T = {s: 1.0 for s in ("A", "S", "X", "C", "WB", "SC", "d_addr")}

    def _bounds(self, n=8, depth=3, workers=2, t=None, u=None):
        t = t or dict(self.T)
        u = u or dict(t)
        return pipeline_bounds(
            t, u, n=n, n_tail=0, depth=depth, per_pass=n, passes=1,
            cpu_workers=workers,
        )

    def test_single_chunk_collapses_to_serial_chain(self):
        total, bounds, _ = self._bounds(n=1, depth=2)
        # one chunk: the staircase from A through SC is the whole run
        assert total == pytest.approx(6.0)
        # multi-chunk-only bounds must be gated off, not contaminate
        assert bounds["st_A_C"] == -np.inf
        assert bounds["ring"] == -np.inf

    def test_ring_bound_gated_below_one_revolution(self):
        _, bounds, _ = self._bounds(n=3, depth=4)
        assert bounds["ring"] == -np.inf

    def test_cpu_bound_gated_on_workers(self):
        _, multi, _ = self._bounds(workers=2)
        _, single, _ = self._bounds(workers=1)
        assert multi["cpu"] == -np.inf
        assert single["cpu"] > 0

    def test_total_is_max_of_applicable_bounds(self):
        total, bounds, _ = self._bounds()
        applicable = [v for v in bounds.values() if v != -np.inf]
        assert total == max(applicable)

    def test_vectorized_matches_scalar(self):
        ns = np.array([1, 2, 5, 17])
        t = {s: np.full(4, v) for s, v in self.T.items()}
        total_vec, _, _ = pipeline_bounds(
            t, t, n=ns, n_tail=np.zeros(4, dtype=int), depth=np.full(4, 3),
            per_pass=ns, passes=np.ones(4, dtype=int),
            cpu_workers=np.full(4, 2),
        )
        for i, n in enumerate(ns):
            total_i, _, _ = self._bounds(n=int(n))
            assert total_vec[i] == total_i


class TestPredictRun:
    def test_bigkernel_prediction_matches_engine(self, workload):
        app, data = workload
        cfg = EngineConfig(chunk_bytes=256 * 1024, functional=False)
        pred = predict_run(app, data, cfg, engine="bigkernel")
        des = BigKernelEngine().run(app, data, cfg.with_(fastpath=False))
        assert pred.sim_time == pytest.approx(des.sim_time, rel=1e-12)
        assert pred.n_chunks == des.metrics.n_chunks

    def test_writer_app_has_writeback_occupancy(self, writer_workload):
        app, data = writer_workload
        pred = predict_run(app, data, engine="bigkernel")
        assert pred.stage_occupancy["write_transfer"] > 0
        assert pred.bottleneck in pred.stage_occupancy

    def test_overlap_fraction_bounded(self, workload):
        app, data = workload
        for name in PREDICTABLE_ENGINES:
            pred = predict_run(app, data, engine=name)
            assert 0.0 <= pred.overlap_fraction <= 1.0, name

    def test_engine_instance_accepted(self, workload):
        app, data = workload
        by_name = predict_run(app, data, engine="gpu_double")
        by_inst = predict_run(app, data, engine=GpuDoubleBufferEngine())
        assert by_name.sim_time == by_inst.sim_time

    def test_unknown_engine_rejected(self, workload):
        app, data = workload
        with pytest.raises(ReproError):
            predict_run(app, data, engine="gpu_uvm")

    def test_resolve_engine_accepts_stock_instances(self):
        assert resolve_engine("cpu_serial").name == CpuSerialEngine.name
        eng = BigKernelEngine()
        assert resolve_engine(eng) is eng


class TestPredictGrid:
    GRID = {
        "chunk_bytes": [128 * 1024, 256 * 1024, 512 * 1024],
        "num_blocks": [8, 16],
        "ring_depth": [2, 3],
    }

    @pytest.mark.parametrize("engine", PREDICTABLE_ENGINES)
    def test_grid_matches_scalar_pointwise(self, workload, engine):
        app, data = workload
        base = EngineConfig(functional=False)
        gp = predict_grid(app, data, self.GRID, base, engine=engine)
        assert gp.n_points == 12
        for i in (0, 5, 11):
            scalar = predict_run(
                app, data, gp.config_at(i), engine=engine
            ).sim_time
            assert float(gp.sim_time[i]) == pytest.approx(scalar, rel=1e-12)

    def test_enumeration_matches_sweep_order(self, workload):
        import itertools

        app, data = workload
        gp = predict_grid(app, data, self.GRID)
        keys = sorted(self.GRID)
        combos = list(itertools.product(*(self.GRID[k] for k in keys)))
        assert gp.n_points == len(combos)
        for i, values in enumerate(combos):
            assert gp.params_at(i) == dict(zip(keys, values))

    def test_ranking_tie_break_prefers_small_footprint(self, workload):
        app, data = workload
        # single knob with a forced plateau: every depth beyond the chunk
        # count prices identically, so ranking must fall back to grid order
        gp = predict_grid(app, data, {"ring_depth": [5, 4, 3, 6]})
        if len(set(gp.sim_time.tolist())) == 1:
            assert gp.argbest() == 0  # grid order, not value order
        top = gp.top(1, expand_ties=True)
        assert all(
            gp.sim_time[i] == gp.sim_time[top[0]] for i in top
        )

    def test_unsupported_grid_key_rejected(self, workload):
        app, data = workload
        with pytest.raises(ReproError):
            predict_grid(app, data, {"pattern_recognition": [True, False]})

    def test_invalid_grid_value_rejected(self, workload):
        app, data = workload
        with pytest.raises(Exception):
            predict_grid(app, data, {"compute_threads": [33]})


class TestSuggestGrid:
    def test_reaches_requested_point_count(self):
        grid = suggest_grid(1_000_000)
        n = 1
        for values in grid.values():
            n *= len(values)
        assert n >= 1_000_000
        assert set(grid) <= set(GRID_FIELDS)

    def test_small_request_small_grid(self):
        grid = suggest_grid(1000)
        n = 1
        for values in grid.values():
            n *= len(values)
        assert 1000 <= n < 50_000


class TestAppModel:
    def test_extracted_model_matches_profile(self, workload):
        app, data = workload
        m = extract_app_model(app, data)
        profile = app.access_profile(data)
        assert m.units == app.n_units(data)
        assert m.record_bytes == profile.record_bytes
        assert m.passes == profile.passes

    def test_kernel_intensity_census(self):
        k = kernel_intensity(get_app("dna").kernel())
        assert k.arithmetic_ops > 0
        assert k.mapped_accesses > 0


class TestReport:
    def test_report_renders_all_sections(self):
        text = run_report("wordcount", data_bytes=2 * MiB)
        assert "analytic report: wordcount" in text
        for engine in PREDICTABLE_ENGINES:
            assert engine in text
        assert "predicted speedups" in text
        assert "stage occupancy" in text
        assert "chunk-size sensitivity" in text
        assert "<- best" in text

    def test_report_hw_preset(self):
        paper = run_report("netflix", data_bytes=2 * MiB)
        gen2 = run_report("netflix", data_bytes=2 * MiB, hw_preset="pcie-gen2")
        assert "hw=pcie-gen2" in gen2
        assert paper != gen2


class TestHwPresets:
    def test_paper_preset_is_default_hardware(self):
        assert get_hardware("paper") == DEFAULT_HARDWARE

    def test_unknown_preset_raises_with_choices(self):
        with pytest.raises(KeyError, match="paper"):
            get_hardware("quantum")

    def test_presets_change_predictions(self, workload):
        app, data = workload
        base = predict_run(app, data, engine="bigkernel").sim_time
        for name in ("pcie-gen2", "pcie-gen4", "big-gpu", "slow-cpu"):
            cfg = EngineConfig(hardware=HW_PRESETS[name])
            other = predict_run(app, data, cfg, engine="bigkernel").sim_time
            assert other != base, name
