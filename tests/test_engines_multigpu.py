"""Property battery for the sharded multi-GPU scale-out engine.

Each property is one law the scale-out model must obey regardless of
fabric shape:

* **differential oracle** — the merged output of every sharded run is
  bit-equal (rtol 0) to the serial CPU oracle; sharding plus the
  cross-GPU merge must be invisible to the result;
* **per-shard invariants** — every shard's DES trace passes the full
  pipeline invariant battery, and the per-shard PCIe ledgers sum to the
  run's aggregate byte counters (nothing dropped, nothing invented);
* **partition conservation** — the shard plan covers the unit range
  exactly once;
* **determinism** — equal seeds produce bit-identical shard traces
  (asserted by fingerprint);
* **monotonicity** — a shared root complex never beats dedicated links,
  and on compute-bound apps more GPUs never hurt. Transfer-bound apps
  (netflix, dna) are deliberately excluded from the second law: they
  plateau and can *regress* at high K where merge cost and the
  NUMA-split assembly floor eat the shrinking per-shard win;
* **merge correctness** — resident state merges across shards (sum /
  logical-or / keep-if-equal) reproduce the single-GPU state on the
  writer and multi-pass apps, and the merge stage charges nonzero time
  exactly when there is state to exchange.
"""

import hashlib

import pytest

from repro.apps import get_app
from repro.engines import BigKernelEngine, CpuSerialEngine, EngineConfig
from repro.engines.multigpu import MultiGpuBigKernelEngine
from repro.units import KiB, MiB
from repro.verify.invariants import audit_sharded_run

DATA_BYTES = 1 * MiB
SEED = 11
CFG = EngineConfig(chunk_bytes=128 * KiB)
#: shard traces only exist on the true DES (totals are fastpath-identical)
DES = CFG.with_(fastpath=False)

ALL_APPS = ("kmeans", "wordcount", "netflix", "opinion", "dna", "mastercard")
#: apps whose runtime is dominated by compute, not the PCIe link — the
#: embarrassingly parallel regime where adding GPUs must never hurt
COMPUTE_BOUND = ("kmeans", "wordcount", "opinion", "mastercard")


@pytest.fixture(scope="module")
def workloads():
    out = {}
    for name in ALL_APPS:
        app = get_app(name)
        out[name] = (app, app.generate(n_bytes=DATA_BYTES, seed=SEED))
    return out


def _trace_fingerprint(details) -> str:
    """SHA-256 over every shard's interval stream, order-sensitive."""
    h = hashlib.sha256()
    for d in details:
        h.update(f"shard={d['shard']} node={d['node']}\n".encode())
        for iv in d["trace"]:
            h.update(
                f"{iv.track}|{iv.label}|{iv.start!r}|{iv.end!r}\n".encode()
            )
    return h.hexdigest()


class TestDifferentialOracle:
    @pytest.mark.parametrize("name", ALL_APPS)
    @pytest.mark.parametrize("n_gpus", (2, 4))
    def test_merged_output_matches_serial_oracle(self, workloads, name, n_gpus):
        app, data = workloads[name]
        ref = CpuSerialEngine().run(app, data, CFG)
        res = MultiGpuBigKernelEngine(n_gpus).run(app, data, CFG)
        assert app.outputs_equal(ref.output, res.output)

    @pytest.mark.parametrize("shared", (False, True))
    def test_shared_link_and_numa_blind_do_not_change_output(
        self, workloads, shared
    ):
        app, data = workloads["wordcount"]
        ref = CpuSerialEngine().run(app, data, CFG)
        eng = MultiGpuBigKernelEngine(3, shared_link=shared, numa_aware=False)
        res = eng.run(app, data, CFG)
        assert app.outputs_equal(ref.output, res.output)


class TestPerShardInvariants:
    @pytest.mark.parametrize("name", ("netflix", "kmeans"))
    @pytest.mark.parametrize("shared", (False, True))
    def test_every_shard_trace_passes_battery(self, workloads, name, shared):
        app, data = workloads[name]
        eng = MultiGpuBigKernelEngine(3, shared_link=shared)
        res = eng.run(app, data, DES)
        assert res.shard_details is not None
        assert audit_sharded_run(res) == []

    def test_fastpath_runs_record_no_shard_traces(self, workloads):
        app, data = workloads["netflix"]
        res = MultiGpuBigKernelEngine(2).run(app, data, CFG)
        assert res.shard_details is None
        problems = audit_sharded_run(res)
        assert len(problems) == 1 and "no shard traces" in problems[0]


class TestPartitionConservation:
    @pytest.mark.parametrize("n_gpus", (2, 3, 4, 8))
    def test_shard_units_cover_range_exactly_once(self, workloads, n_gpus):
        app, data = workloads["mastercard"]
        total = MultiGpuBigKernelEngine(1).run(app, data, DES)
        res = MultiGpuBigKernelEngine(n_gpus).run(app, data, DES)
        assert sum(d["units"] for d in total.shard_details) == sum(
            d["units"] for d in res.shard_details
        )
        assert all(d["units"] >= 1 for d in res.shard_details)
        assert len(res.shard_details) <= n_gpus

    def test_shard_byte_ledgers_sum_to_run_counters(self, workloads):
        app, data = workloads["kmeans"]
        res = MultiGpuBigKernelEngine(3).run(app, data, DES)
        assert (
            sum(d["bytes_h2d"] for d in res.shard_details)
            == res.metrics.bytes_h2d
        )
        assert (
            sum(d["bytes_d2h"] for d in res.shard_details)
            == res.metrics.bytes_d2h
        )
        assert res.metrics.bytes_d2h > 0  # kmeans writes back

    def test_payload_conserved_vs_single_gpu(self, workloads):
        app, data = workloads["netflix"]
        one = MultiGpuBigKernelEngine(1).run(app, data, DES)
        four = MultiGpuBigKernelEngine(4).run(app, data, DES)

        def payload(details):
            return sum(
                c.xfer_bytes for d in details for c in d["chunks"]
            )

        assert payload(one.shard_details) == payload(four.shard_details)


class TestDeterminism:
    @pytest.mark.parametrize("shared", (False, True))
    def test_trace_fingerprint_stable_across_runs(self, workloads, shared):
        app, data = workloads["opinion"]

        def run():
            # fresh engine: no memoized schedule can leak between runs
            eng = MultiGpuBigKernelEngine(4, shared_link=shared)
            return eng.run(app, data, DES)

        a, b = run(), run()
        assert a.sim_time == b.sim_time
        assert _trace_fingerprint(a.shard_details) == _trace_fingerprint(
            b.shard_details
        )


class TestMonotonicity:
    @pytest.mark.parametrize("name", COMPUTE_BOUND)
    def test_more_gpus_never_hurt_compute_bound_apps(self, workloads, name):
        app, data = workloads[name]
        times = {
            n: MultiGpuBigKernelEngine(n).run(app, data, CFG).sim_time
            for n in (1, 2, 4)
        }
        assert times[2] <= times[1] * (1 + 1e-9)
        assert times[4] <= times[2] * (1 + 1e-9)

    @pytest.mark.parametrize("name", ALL_APPS)
    def test_shared_root_complex_never_beats_dedicated(self, workloads, name):
        app, data = workloads[name]
        dedicated = MultiGpuBigKernelEngine(2, shared_link=False)
        shared = MultiGpuBigKernelEngine(2, shared_link=True)
        t_ded = dedicated.run(app, data, CFG).sim_time
        t_sh = shared.run(app, data, CFG).sim_time
        assert t_sh >= t_ded * (1 - 1e-12)

    def test_numa_blind_placement_never_faster(self, workloads):
        app, data = workloads["wordcount"]
        aware = MultiGpuBigKernelEngine(4, numa_aware=True)
        blind = MultiGpuBigKernelEngine(4, numa_aware=False)
        t_aware = aware.run(app, data, CFG).sim_time
        t_blind = blind.run(app, data, CFG).sim_time
        assert t_blind >= t_aware * (1 - 1e-12)

    def test_fastpath_matches_des_exactly_on_dedicated_fabric(self, workloads):
        app, data = workloads["netflix"]
        eng = MultiGpuBigKernelEngine(3)
        fast = eng.run(app, data, CFG).sim_time
        slow = MultiGpuBigKernelEngine(3).run(app, data, DES).sim_time
        assert fast == pytest.approx(slow, rel=1e-9)


class TestMergeStage:
    @pytest.mark.parametrize("name", ("kmeans", "wordcount"))
    def test_merge_reproduces_single_gpu_state(self, workloads, name):
        app, data = workloads[name]
        one = MultiGpuBigKernelEngine(1).run(app, data, CFG)
        four = MultiGpuBigKernelEngine(4).run(app, data, CFG)
        assert app.outputs_equal(one.output, four.output)

    @pytest.mark.parametrize("name", ("kmeans", "wordcount"))
    def test_merge_charges_time_only_when_sharded(self, workloads, name):
        app, data = workloads[name]
        one = MultiGpuBigKernelEngine(1).run(app, data, CFG)
        two = MultiGpuBigKernelEngine(2).run(app, data, CFG)
        assert one.metrics.notes["merge_time"] == 0.0
        assert two.metrics.notes["merge_time"] > 0.0

    def test_merge_states_sums_disjoint_count_tables(self):
        import numpy as np

        app = get_app("wordcount")
        data = app.generate(n_bytes=256 * KiB, seed=3)
        shards = [app.make_state(data) for _ in range(3)]
        for i, s in enumerate(shards):
            s["counts"][i] = 10 * (i + 1)
        merged = app.merge_states(data, shards)
        assert np.array_equal(
            merged["counts"], sum(s["counts"] for s in shards)
        )

    def test_kmeans_merge_sums_assignment_tallies(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=256 * KiB, seed=3)
        merged = app.merge_states(
            data, [{"assigned": 5}, {"assigned": 7}, {"assigned": 5}]
        )
        assert merged["assigned"] == 17


class TestPredictorCornerGeometries:
    """The worst fill/drain corners of the fuzz draw space, pinned.

    With only 2-3 chunks per shard the steady-state bound family drifts
    up to ~9% from the DES (both directions); these are the worst cells
    found by an exhaustive sweep of the fuzz space, held to
    MULTIGPU_SHARED_TOL so a tolerance regression fails here before it
    flakes a fuzz seed in CI.
    """

    # (app, data KiB, n_gpus, shared, numa_aware, chunk KiB, ring)
    CORNERS = (
        ("kmeans", 512, 4, True, True, 64, 2),
        ("kmeans", 1024, 2, True, True, 128, 3),
        ("kmeans", 2048, 2, True, True, 256, 4),
        ("mastercard", 1024, 8, False, False, 64, 2),
    )

    @pytest.mark.parametrize("corner", CORNERS, ids=lambda c: f"{c[0]}-g{c[2]}")
    def test_worst_corner_cells_stay_within_shared_tolerance(self, corner):
        from repro.analytic import predict_run
        from repro.verify.differential import MULTIGPU_SHARED_TOL

        name, data_kib, n_gpus, shared, numa, chunk_kib, ring = corner
        app = get_app(name)
        data = app.generate(n_bytes=data_kib * KiB, seed=3)
        cfg = EngineConfig(
            chunk_bytes=chunk_kib * KiB, ring_depth=ring, fastpath=False
        )
        eng = MultiGpuBigKernelEngine(
            n_gpus=n_gpus, shared_link=shared, numa_aware=numa
        )
        res = eng.run(app, data, config=cfg)
        pred = predict_run(app, data, cfg, engine=eng)
        rel = abs(pred.sim_time - res.sim_time) / res.sim_time
        assert rel <= MULTIGPU_SHARED_TOL, (
            f"{eng.name} on {name}: corner-geometry rel err {rel:.3e} "
            f"exceeds MULTIGPU_SHARED_TOL {MULTIGPU_SHARED_TOL:g}"
        )
