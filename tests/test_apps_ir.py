"""Cross-validation: kernel-IR execution == vectorized kernels, per app,
including the full BigKernel compiler round-trip (slice -> gather ->
databuf) for every sliceable kernel."""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.kernelc import (
    KernelInterpreter,
    make_addrgen_kernel,
    make_databuf_kernel,
)
from repro.runtime.assembly import gather_values

#: tiny sizes so the tree-walking interpreter stays fast
IR_BYTES = {
    "kmeans": 48 * 40,
    "wordcount": 1200,
    "netflix": 80 * 40,
    "opinion": 112 * 12,
    "dna": 128 * 24,
    "mastercard": 2200,
    "mastercard_indexed": 2200,
}


def run_ir(app, data, kernel_form="original"):
    """Run the app's kernel in IR form over the full unit range, honouring
    multi-pass kernels via the pass_idx parameter."""
    ctx = app.make_ir_context(data)
    n = app.n_units(data)
    last = None
    for p in range(app.n_passes):
        if "pass_idx" in ctx.params or app.n_passes > 1:
            ctx.params["pass_idx"] = p
        interp = KernelInterpreter(app.kernel(), ctx)
        interp.run_thread(0, 0, n)
        last = interp
    return ctx, last


def run_ir_roundtrip(app, data):
    """addrgen -> gather -> databuf over the full range, all passes."""
    ctx = app.make_ir_context(data)
    n = app.n_units(data)
    kernel = app.kernel()
    ag_kernel = make_addrgen_kernel(kernel)
    db_kernel = make_databuf_kernel(kernel)
    byte_views = {
        name: arr.view(np.uint8).reshape(-1) for name, arr in ctx.mapped.items()
    }
    for p in range(app.n_passes):
        if "pass_idx" in ctx.params or app.n_passes > 1:
            ctx.params["pass_idx"] = p
        ag = KernelInterpreter(ag_kernel, ctx)
        ag.run_thread(0, 0, n)
        values = []
        for rec in ag.read_addresses:
            view = byte_views[rec.array]
            values.append(view[rec.offset : rec.offset + rec.nbytes].view(rec.dtype)[0])
        db = KernelInterpreter(db_kernel, ctx)
        db.load_data(values)
        db.run_thread(0, 0, n)
        # write-back
        assert len(ag.write_addresses) == len(db.write_queue)
        for addr_rec, (_, value) in zip(ag.write_addresses, db.write_queue):
            view = byte_views[addr_rec.array]
            view[addr_rec.offset : addr_rec.offset + addr_rec.nbytes] = np.asarray(
                [value], dtype=addr_rec.dtype
            ).view(np.uint8)
    return ctx


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
def test_ir_matches_vectorized(name):
    """Original-form IR run reproduces the vectorized reference output."""
    app = get_app(name)
    data = app.generate(n_bytes=IR_BYTES[name], seed=21)
    expected = app.reference(data)
    # regenerate so mapped-write apps (kmeans) start from clean data
    data2 = app.generate(n_bytes=IR_BYTES[name], seed=21)
    ctx, _ = run_ir(app, data2)
    got = app.ir_output(data2, ctx)
    assert app.outputs_equal(expected, got)


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
def test_ir_bigkernel_roundtrip_matches_vectorized(name):
    """The compiled BigKernel pipeline (address slice feeding the databuf
    kernel) produces the same output as the vectorized reference."""
    app = get_app(name)
    data = app.generate(n_bytes=IR_BYTES[name], seed=22)
    expected = app.reference(data)
    data2 = app.generate(n_bytes=IR_BYTES[name], seed=22)
    ctx = run_ir_roundtrip(app, data2)
    got = app.ir_output(data2, ctx)
    assert app.outputs_equal(expected, got)


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
def test_addrgen_stream_matches_chunk_read_offsets(name):
    """The compiler-sliced address stream agrees with the app's vectorized
    address characterization (same unique bytes touched)."""
    app = get_app(name)
    data = app.generate(n_bytes=IR_BYTES[name], seed=23)
    ctx = app.make_ir_context(data)
    n = min(16, app.n_units(data))
    if app.n_passes > 1:
        ctx.params["pass_idx"] = 0
    ag = KernelInterpreter(make_addrgen_kernel(app.kernel()), ctx)
    ag.run_thread(0, 0, n)
    ir_touched = set()
    for rec in ag.read_addresses:
        ir_touched.update(range(rec.offset, rec.offset + rec.nbytes))
    offs = app.chunk_read_offsets(data, 0, n)
    profile = app.access_profile(data)
    elem = int(
        round(profile.read_bytes_per_record / max(profile.reads_per_record, 1e-9))
    ) or 1
    vec_touched = set()
    for o in offs.tolist():
        vec_touched.update(range(o, o + elem))
    assert ir_touched == vec_touched


def test_kmeans_ir_run_counts_accesses():
    app = get_app("kmeans")
    data = app.generate(n_bytes=48 * 30, seed=1)
    ctx, interp = run_ir(app, data)
    assert interp.stats.n_mapped_reads == 3 * 30
    assert interp.stats.n_mapped_writes == 30


def test_loc_growth_like_paper_footnote():
    """The transformed kernels together are much larger than the source
    kernel (the paper's 70 -> 500+ LOC footnote, qualitatively)."""
    from repro.kernelc import loc_count

    app = get_app("opinion")
    k = app.kernel()
    total = loc_count(make_addrgen_kernel(k)) + loc_count(make_databuf_kernel(k))
    assert total > loc_count(k)
