"""Invariant checkers against hand-built legal and illegal timelines.

Each checker gets a minimal trace that satisfies the law and a minimal
mutation that breaks it; a final class shows an intentionally broken
*pipeline* (no buffer ring, no flag chase) being caught end-to-end.
"""

import pytest

from repro.errors import VerificationError
from repro.hw.pcie import H2D, DmaEngine, PcieLink
from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import (
    STAGE_ADDR_GEN,
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    ChunkWork,
    PipelineConfig,
    run_pipeline,
)
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.trace import Interval, TraceRecorder
from repro.verify.invariants import (
    check_backpressure,
    check_byte_conservation,
    check_compute_after_transfer,
    check_flag_after_data,
    check_pcie_serialization,
    check_stage_order,
    check_track_capacity,
    verify_pipeline_trace,
    verify_run,
)


def make_trace(rows):
    """TraceRecorder from (track, label, start, end, meta) rows."""
    t = TraceRecorder()
    for track, label, start, end, meta in rows:
        t.record(track, label, start, end, **meta)
    return t


def chunk_rows(chunk, t0, block=None, xfer_bytes=100):
    """One legal 4-stage iteration starting at ``t0``."""
    meta = {"chunk": chunk} if block is None else {"chunk": chunk, "block": block}
    return [
        ("gpu", STAGE_ADDR_GEN, t0, t0 + 1, meta),
        ("cpu", STAGE_ASSEMBLY, t0 + 1, t0 + 2, meta),
        ("pcie-h2d", STAGE_TRANSFER, t0 + 2, t0 + 3, {**meta, "nbytes": xfer_bytes}),
        ("pcie-h2d", f"{STAGE_TRANSFER}-flag", t0 + 3, t0 + 3.1, {**meta, "nbytes": 4}),
        ("gpu", STAGE_COMPUTE, t0 + 3.2, t0 + 4, meta),
    ]


class TestCapacity:
    def test_within_capacity_ok(self):
        t = make_trace(
            [
                ("gpu", STAGE_ADDR_GEN, 0, 2, {"chunk": 0}),
                ("gpu", STAGE_COMPUTE, 1, 3, {"chunk": 0}),
            ]
        )
        assert check_track_capacity(t, "gpu", 2) == []

    def test_overflow_detected(self):
        t = make_trace(
            [
                ("gpu", STAGE_ADDR_GEN, 0, 2, {"chunk": 0}),
                ("gpu", STAGE_COMPUTE, 1, 3, {"chunk": 0}),
                ("gpu", STAGE_ADDR_GEN, 1.5, 2.5, {"chunk": 1}),
            ]
        )
        v = check_track_capacity(t, "gpu", 2)
        assert len(v) == 1
        assert v[0].invariant == "gpu-capacity"
        assert "3 concurrent" in v[0].message

    def test_end_frees_slot_before_coincident_start(self):
        """Half-open intervals: back-to-back on one slot is legal."""
        t = make_trace(
            [
                ("cpu", STAGE_ASSEMBLY, 0, 1, {"chunk": 0}),
                ("cpu", STAGE_ASSEMBLY, 1, 2, {"chunk": 1}),
            ]
        )
        assert check_track_capacity(t, "cpu", 1) == []

    def test_pcie_intra_direction_overlap_detected(self):
        t = make_trace(
            [
                ("pcie-h2d", STAGE_TRANSFER, 0, 2, {"chunk": 0, "nbytes": 8}),
                ("pcie-h2d", STAGE_TRANSFER, 1, 3, {"chunk": 1, "nbytes": 8}),
            ]
        )
        v = check_pcie_serialization(t)
        assert len(v) == 1 and v[0].invariant == "pcie-serialization"

    def test_pcie_full_duplex_overlap_allowed(self):
        t = make_trace(
            [
                ("pcie-h2d", STAGE_TRANSFER, 0, 2, {"chunk": 0, "nbytes": 8}),
                ("pcie-d2h", STAGE_ADDR_GEN, 0.5, 1.5, {"chunk": 1, "nbytes": 8}),
            ]
        )
        assert check_pcie_serialization(t) == []


class TestCausality:
    def test_flag_after_data_ok(self):
        t = make_trace(chunk_rows(0, 0.0))
        assert check_flag_after_data(t) == []

    def test_flag_before_data_detected(self):
        rows = [
            ("pcie-h2d", STAGE_TRANSFER, 0, 2, {"chunk": 0, "nbytes": 64}),
            # flag write *inside* the data DMA — impossible on a FIFO queue
            ("pcie-h2d", f"{STAGE_TRANSFER}-flag", 1, 1.1, {"chunk": 0}),
        ]
        v = check_flag_after_data(make_trace(rows))
        assert len(v) == 1 and v[0].invariant == "flag-before-data"

    def test_orphan_flag_detected(self):
        rows = [("pcie-h2d", f"{STAGE_TRANSFER}-flag", 1, 1.1, {"chunk": 5})]
        v = check_flag_after_data(make_trace(rows))
        assert len(v) == 1 and "no matching data transfer" in v[0].message

    def test_compute_before_transfer_detected(self):
        rows = [
            ("pcie-h2d", STAGE_TRANSFER, 0, 2, {"chunk": 0, "nbytes": 64}),
            ("gpu", STAGE_COMPUTE, 1.5, 3, {"chunk": 0}),
        ]
        v = check_compute_after_transfer(make_trace(rows))
        assert len(v) == 1 and v[0].invariant == "compute-before-transfer"

    def test_stage_order_ok(self):
        t = make_trace(chunk_rows(0, 0.0) + chunk_rows(1, 1.0))
        assert check_stage_order(t) == []

    def test_stage_order_violation_detected(self):
        rows = [
            ("gpu", STAGE_ADDR_GEN, 1, 2, {"chunk": 0}),
            # assembly starts before its addresses exist
            ("cpu", STAGE_ASSEMBLY, 0.5, 1.5, {"chunk": 0}),
        ]
        v = check_stage_order(make_trace(rows))
        assert len(v) == 1 and v[0].invariant == "stage-order"


class TestBackpressure:
    def legal(self, depth):
        rows = []
        for n in range(6):
            rows += chunk_rows(n, float(n * 4))
        return make_trace(rows)

    def test_spaced_iterations_ok(self):
        assert check_backpressure(self.legal(2), ring_depth=2) == []

    def test_run_ahead_detected(self):
        rows = []
        # addr_gen of chunks 0..4 all start immediately; computes are late:
        # with a depth-2 ring, addr_gen 2+ may not precede compute 0's end
        for n in range(5):
            meta = {"chunk": n}
            rows.append(("gpu", STAGE_ADDR_GEN, n * 0.1, n * 0.1 + 0.05, meta))
            rows.append(("gpu", STAGE_COMPUTE, 10 + n, 11 + n, meta))
        v = check_backpressure(make_trace(rows), ring_depth=2)
        assert len(v) == 3  # chunks 2, 3, 4
        assert all(x.invariant == "ring-backpressure" for x in v)

    def test_per_block_isolation(self):
        """Chunk indices are compared within one block's pipeline only."""
        rows = chunk_rows(0, 0.0, block=0) + chunk_rows(5, 0.0, block=1)
        assert check_backpressure(make_trace(rows), ring_depth=2) == []


class TestByteConservation:
    def chunks(self):
        return [
            ChunkWork(0, 0.1, 0, 0.1, 100, 0.1),
            ChunkWork(1, 0.1, 0, 0.1, 200, 0.1),
        ]

    def test_exact_bytes_ok(self):
        t = make_trace(
            chunk_rows(0, 0.0, xfer_bytes=100) + chunk_rows(1, 4.0, xfer_bytes=200)
        )
        assert check_byte_conservation(t, self.chunks()) == []

    def test_short_transfer_detected(self):
        t = make_trace(
            chunk_rows(0, 0.0, xfer_bytes=100) + chunk_rows(1, 4.0, xfer_bytes=150)
        )
        v = check_byte_conservation(t, self.chunks())
        assert len(v) == 1 and "transferred 150" in v[0].message

    def test_missing_chunk_detected(self):
        t = make_trace(chunk_rows(0, 0.0, xfer_bytes=100))
        v = check_byte_conservation(t, self.chunks())
        assert any("0 data transfers" in x.message for x in v)

    def test_link_total_mismatch_detected(self):
        t = make_trace(chunk_rows(0, 0.0, xfer_bytes=100))
        v = check_byte_conservation(t, bytes_h2d=999)
        assert len(v) == 1 and "link counted 999" in v[0].message


class TestOverlapsZeroDuration:
    """Regression: zero-duration intervals (instant flag writes) used to
    overlap nothing, making them invisible to capacity/overlap checks.
    Semantics now documented on Interval.overlaps: half-open [start, end);
    points overlap spans that contain them; points overlap each other only
    when coincident."""

    def test_point_inside_span(self):
        span = Interval("gpu", "compute", 0.0, 2.0)
        point = Interval("gpu", "flag", 1.0, 1.0)
        assert point.overlaps(span)
        assert span.overlaps(point)

    def test_point_at_open_end_does_not_overlap(self):
        span = Interval("gpu", "compute", 0.0, 2.0)
        assert not Interval("gpu", "flag", 2.0, 2.0).overlaps(span)

    def test_point_at_closed_start_overlaps(self):
        span = Interval("gpu", "compute", 0.0, 2.0)
        assert Interval("gpu", "flag", 0.0, 0.0).overlaps(span)

    def test_coincident_points_overlap(self):
        a = Interval("gpu", "flag", 1.0, 1.0)
        b = Interval("gpu", "flag", 1.0, 1.0)
        assert a.overlaps(b) and b.overlaps(a)

    def test_distinct_points_do_not_overlap(self):
        a = Interval("gpu", "flag", 1.0, 1.0)
        assert not a.overlaps(Interval("gpu", "flag", 1.5, 1.5))

    def test_positive_intervals_keep_half_open_semantics(self):
        a = Interval("gpu", "x", 0.0, 1.0)
        b = Interval("gpu", "y", 1.0, 2.0)
        assert not a.overlaps(b) and not b.overlaps(a)


class TestRealPipelineTimelines:
    """The actual simulator's timelines satisfy every law, and the verify
    hook is callable straight from run_pipeline."""

    def chunks(self, n=6, writes=False):
        return [
            ChunkWork(
                index=i,
                t_addr_gen=1e-4,
                addr_bytes_d2h=4096,
                t_assembly=2e-4,
                xfer_bytes=1 << 20,
                t_compute=3e-4,
                write_bytes=2048 if writes else 0,
                t_scatter=1e-5 if writes else 0.0,
            )
            for i in range(n)
        ]

    def test_aggregate_pipeline_verifies(self):
        cfg = PipelineConfig(ring_depth=3, cpu_workers=2)
        result = run_pipeline(DEFAULT_HARDWARE, self.chunks(), cfg, verify=True)
        assert result.total_time > 0

    def test_writeback_pipeline_verifies(self):
        cfg = PipelineConfig(ring_depth=2, cpu_workers=1)
        run_pipeline(DEFAULT_HARDWARE, self.chunks(writes=True), cfg, verify=True)

    def test_full_report_names_every_law(self):
        cfg = PipelineConfig(ring_depth=3, cpu_workers=2)
        result = run_pipeline(DEFAULT_HARDWARE, self.chunks(), cfg)
        report = verify_pipeline_trace(
            result.trace,
            cpu_workers=2,
            ring_depth=3,
            chunks=self.chunks(),
            bytes_h2d=result.bytes_h2d,
            bytes_d2h=result.bytes_d2h,
        )
        assert report.ok, report.summary()
        for law in (
            "gpu-capacity",
            "cpu-capacity",
            "pcie-serialization",
            "flag-before-data",
            "compute-before-transfer",
            "stage-order",
            "ring-backpressure",
            "byte-conservation",
        ):
            assert law in report.checked


class TestBrokenPipelineCaught:
    """An intentionally broken pipeline — no buffer ring (unbounded
    run-ahead) and no flag chase (compute fires while its DMA is still in
    flight) — is demonstrably rejected by the checkers."""

    def rogue_trace(self, n_chunks=6, ring_depth=2):
        env = Environment()
        trace = TraceRecorder()
        link = PcieLink(env, DEFAULT_HARDWARE.pcie, trace=trace)
        dma = DmaEngine(link)
        gpu = Resource(env, capacity=2, name="gpu")
        chunks = self_chunks = [
            ChunkWork(i, 1e-4, 0, 2e-4, 1 << 20, 3e-4) for i in range(n_chunks)
        ]

        def addr_gen():
            # no ring semaphore: generates arbitrarily far ahead
            for c in self_chunks:
                with gpu.request() as grant:
                    yield grant
                    start = env.now
                    yield env.timeout(c.t_addr_gen)
                    trace.record("gpu", STAGE_ADDR_GEN, start, env.now, chunk=c.index)

        def transfer_and_compute():
            for c in self_chunks:
                dma.copy_async(c.xfer_bytes, H2D, label=STAGE_TRANSFER, chunk=c.index)
                # disabled flag chase: compute starts without waiting
                start = env.now
                yield env.timeout(c.t_compute)
                trace.record("gpu", STAGE_COMPUTE, start, env.now, chunk=c.index)

        env.process(addr_gen())
        env.process(transfer_and_compute())
        env.run()
        return trace, chunks

    def test_rogue_pipeline_is_rejected(self):
        trace, chunks = self.rogue_trace()
        report = verify_pipeline_trace(trace, ring_depth=2, chunks=chunks)
        assert not report.ok
        broken = {v.invariant for v in report.violations}
        assert "compute-before-transfer" in broken
        assert "ring-backpressure" in broken

    def test_raise_if_failed(self):
        trace, chunks = self.rogue_trace()
        report = verify_pipeline_trace(trace, ring_depth=2, chunks=chunks)
        with pytest.raises(VerificationError, match="ring-backpressure"):
            report.raise_if_failed()


class TestVerifyRunHelper:
    def test_bigkernel_run_passes(self):
        from repro.apps import get_app
        from repro.engines import BigKernelEngine, EngineConfig

        app = get_app("kmeans")
        data = app.generate(n_bytes=1 << 20, seed=3)
        cfg = EngineConfig(chunk_bytes=256 * 1024)
        res = BigKernelEngine().run(app, data, cfg)
        report = verify_run(res, cfg)
        assert report.ok, report.summary()

    def test_traceless_run_is_vacuous(self):
        from repro.apps import get_app
        from repro.engines import CpuSerialEngine

        app = get_app("kmeans")
        data = app.generate(n_bytes=1 << 20, seed=3)
        res = CpuSerialEngine().run(app, data)
        assert verify_run(res).ok
