"""Fault-injection matrix: every FaultPlan primitive x pipelined engine.

For each cell the run must either complete or raise a *typed* ReproError
subclass; completed runs must match the serial-CPU oracle bit-for-bit and
pass the trace invariants. A second half covers the degradation policies
(retry/backoff, ring shrink, engine fallback) and the chaos sweep's
determinism contract.
"""

import pytest

from repro.apps import WordCountApp
from repro.engines import (
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuUvmEngine,
)
from repro.errors import (
    DmaFaultError,
    FaultConfigError,
    PinnedMemoryExceeded,
    ReproError,
)
from repro.faults import (
    FaultInjector,
    FaultPlan,
    default_fault_grid,
    run_chaos,
)
from repro.units import MiB
from repro.verify.invariants import verify_run

CHUNK = 256 * 1024

PRIMITIVE_PLANS = [
    FaultPlan(name="pcie-degrade").pcie.degrade(gbps=2.0),
    FaultPlan(name="pcie-degrade-late").pcie.degrade(gbps=1.0, at=2e-4),
    FaultPlan(name="dma-retry").dma.error(chunk=1, retries=2),
    FaultPlan(name="dma-retry-d2h").dma.error(chunk=0, retries=1, direction="d2h"),
    FaultPlan(name="assembly-stall").assembly.stall(ms=0.05),
    FaultPlan(name="assembly-stall-one").assembly.stall(ms=0.1, chunk=2),
    FaultPlan(name="pinned-pressure").pinned.deny(after_bytes=1 * MiB),
]

ENGINES = [GpuDoubleBufferEngine, BigKernelEngine, GpuUvmEngine]


@pytest.fixture(scope="module")
def workload():
    app = WordCountApp()
    data = app.generate(n_bytes=1 * MiB, seed=7)
    ref = CpuSerialEngine().run(app, data, EngineConfig(chunk_bytes=CHUNK))
    return app, data, ref


class TestPrimitiveMatrix:
    """Every primitive x {gpu_double, bigkernel}: complete-or-typed-error,
    differential vs cpu_serial, invariants."""

    @pytest.mark.parametrize("plan", PRIMITIVE_PLANS, ids=lambda p: p.name)
    @pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda e: e.name)
    def test_cell(self, workload, engine_cls, plan):
        app, data, ref = workload
        cfg = EngineConfig(chunk_bytes=CHUNK, faults=plan)
        try:
            res = engine_cls().run(app, data, cfg)
        except ReproError:
            return  # a typed failure is an acceptable outcome
        assert app.outputs_equal(ref.output, res.output)
        # an active plan must force the DES, so a trace always exists
        assert res.trace is not None
        report = verify_run(res, cfg)
        assert report.ok, report.summary()

    @pytest.mark.parametrize("engine_cls", ENGINES, ids=lambda e: e.name)
    def test_faulted_slower_than_clean(self, workload, engine_cls):
        app, data, _ = workload
        cfg = EngineConfig(chunk_bytes=CHUNK)
        clean = engine_cls().run(app, data, cfg)
        plan = FaultPlan(name="slow").pcie.degrade(gbps=1.0)
        faulted = engine_cls().run(app, data, cfg.with_(faults=plan))
        assert faulted.sim_time > clean.sim_time


class TestDmaRetry:
    def test_retry_intervals_recorded(self, workload):
        app, data, _ = workload
        plan = FaultPlan(name="retry").dma.error(chunk=1, retries=2)
        res = BigKernelEngine().run(
            app, data, EngineConfig(chunk_bytes=CHUNK, faults=plan)
        )
        retries = [iv for iv in res.trace if iv.label.endswith("-retry")]
        assert len(retries) == 2
        for iv in retries:
            assert iv.meta["retry"] is True
            assert iv.meta["discarded"] > 0
            # retried bytes must NOT count toward byte conservation
            assert "nbytes" not in iv.meta
        assert [iv.meta["attempt"] for iv in retries] == [1, 2]

    def test_fatal_dma_raises_typed_error(self, workload):
        app, data, _ = workload
        plan = FaultPlan(name="fatal").dma.error(chunk=0, retries=99)
        with pytest.raises(DmaFaultError):
            BigKernelEngine().run(
                app, data, EngineConfig(chunk_bytes=CHUNK, faults=plan)
            )

    def test_retry_stats_reported(self, workload):
        app, data, _ = workload
        plan = FaultPlan(name="retry").dma.error(chunk=1, retries=3)
        res = GpuDoubleBufferEngine().run(
            app, data, EngineConfig(chunk_bytes=CHUNK, faults=plan)
        )
        stats = res.metrics.notes["fault_stats"]
        assert stats["retries_injected"] == 3
        assert stats["fatal_dmas"] == 0


class TestUvmUnderDegrade:
    """pcie.degrade against the demand-paging path: a slow link stretches
    every fault-service migration, but must never corrupt data or break
    the page-byte ledger."""

    def test_degrade_slows_migrations_not_volume(self, workload):
        app, data, ref = workload
        cfg = EngineConfig(chunk_bytes=CHUNK)
        engine = GpuUvmEngine()
        clean = engine.run(app, data, cfg)
        plan = FaultPlan(name="uvm-degrade").pcie.degrade(gbps=1.0)
        faulted = engine.run(app, data, cfg.with_(faults=plan))

        assert faulted.sim_time > clean.sim_time
        # a degraded link changes timing, never the migrated volume
        assert faulted.metrics.bytes_h2d == clean.metrics.bytes_h2d
        assert (
            faulted.metrics.notes["paging"] == clean.metrics.notes["paging"]
        )
        assert app.outputs_equal(ref.output, faulted.output)
        report = verify_run(faulted, cfg.with_(faults=plan))
        assert report.ok, report.summary()

    def test_degrade_mid_run_only_stretches_tail(self, workload):
        app, data, _ = workload
        cfg = EngineConfig(chunk_bytes=CHUNK)
        engine = GpuUvmEngine()
        clean = engine.run(app, data, cfg)
        late = FaultPlan(name="late").pcie.degrade(gbps=1.0, at=clean.sim_time)
        early = FaultPlan(name="early").pcie.degrade(gbps=1.0, at=0.0)
        res_late = engine.run(app, data, cfg.with_(faults=late))
        res_early = engine.run(app, data, cfg.with_(faults=early))
        # degrading after the last migration is a no-op; from t=0 it is not
        assert res_late.sim_time == clean.sim_time
        assert res_early.sim_time > clean.sim_time


class TestDegradationPolicies:
    def test_ring_shrink_under_pinned_pressure(self, workload):
        app, data, ref = workload
        plan = FaultPlan(name="shrink").pinned.deny(after_bytes=100 * 1024)
        cfg = EngineConfig(chunk_bytes=CHUNK, faults=plan)
        res = BigKernelEngine().run(app, data, cfg)
        assert res.engine == "bigkernel"  # degraded, not replaced
        deg = res.metrics.notes["degradations"]
        assert deg["ring_shrunk_to"] == 2
        assert deg["blocks_shrunk_to"] == 1
        assert app.outputs_equal(ref.output, res.output)

    def test_fallback_to_gpu_double(self, workload):
        app, data, ref = workload
        plan = FaultPlan(name="fallback").pinned.deny(after_bytes=16 * 1024)
        cfg = EngineConfig(chunk_bytes=CHUNK, faults=plan)
        res = BigKernelEngine().run(app, data, cfg)
        assert res.engine == "gpu_double"
        assert res.metrics.notes["degraded_from"] == "bigkernel"
        assert "pinned" in res.metrics.notes["degraded_reason"]
        assert app.outputs_equal(ref.output, res.output)

    def test_clean_run_never_degrades(self, workload):
        app, data, _ = workload
        res = BigKernelEngine().run(app, data, EngineConfig(chunk_bytes=CHUNK))
        assert "degradations" not in res.metrics.notes
        assert "degraded_from" not in res.metrics.notes
        assert "fault_stats" not in res.metrics.notes

    def test_pinned_deny_without_faults_still_raises(self):
        # policy engages only under an active plan; a bare allocator denial
        # stays a hard typed error
        from repro.hw.pinned import PinnedAllocator

        alloc = PinnedAllocator(1 * MiB, deny_after_bytes=1024)
        with pytest.raises(PinnedMemoryExceeded):
            alloc.alloc(4096, "probe")


class TestDslValidation:
    def test_bad_gbps(self):
        with pytest.raises(FaultConfigError):
            FaultPlan().pcie.degrade(gbps=0)

    def test_bad_retries(self):
        with pytest.raises(FaultConfigError):
            FaultPlan().dma.error(chunk=0, retries=0)

    def test_bad_direction(self):
        with pytest.raises(FaultConfigError):
            FaultPlan().dma.error(chunk=0, retries=1, direction="sideways")

    def test_bad_stall(self):
        with pytest.raises(FaultConfigError):
            FaultPlan().assembly.stall(ms=-1.0)

    def test_bad_deny(self):
        with pytest.raises(FaultConfigError):
            FaultPlan().pinned.deny(after_bytes=-1)

    def test_plan_is_immutable_and_hashable(self):
        p = FaultPlan(name="a").pcie.degrade(gbps=2.0)
        q = p.dma.error(chunk=0, retries=1)
        assert len(p.events) == 1 and len(q.events) == 2  # builder copies
        assert hash(p) != hash(q)
        assert p == FaultPlan(name="a").pcie.degrade(gbps=2.0)

    def test_injector_rejects_garbage(self):
        from repro.faults.inject import as_injector

        with pytest.raises(TypeError):
            as_injector("not a plan")
        assert as_injector(None) is None
        inj = as_injector(FaultPlan().pcie.degrade(gbps=2.0))
        assert isinstance(inj, FaultInjector)
        assert as_injector(inj) is inj


class TestChaosSweep:
    def test_default_grid_size(self):
        plans = default_fault_grid()
        assert len(plans) >= 3
        assert len({p.name for p in plans}) == len(plans)

    def test_quick_sweep_deterministic(self):
        a = run_chaos(quick=True)
        b = run_chaos(quick=True)
        assert a.ok, a.summary()
        assert a.fingerprint() == b.fingerprint()
        assert a.to_json() == b.to_json()
        # >= 3 faults x >= 2 engines (ISSUE acceptance grid)
        assert len(a.cells) >= 6
        assert len({c.engine for c in a.cells}) >= 2
        assert len({c.plan for c in a.cells}) >= 3

    def test_seed_changes_fingerprint(self):
        a = run_chaos(quick=True, seed=7)
        b = run_chaos(quick=True, seed=8)
        assert a.fingerprint() != b.fingerprint()
