"""Tests for stride-pattern recognition (paper Section IV-A)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.runtime.pattern import (
    ADDRESS_BYTES,
    PATTERN_DESCRIPTOR_BYTES,
    OnlineAddressTracker,
    PatternRecognizer,
    StridePattern,
)


class TestStridePattern:
    def test_paper_example(self):
        """0x100, 0x105, 0x110, 0x115 -> base 0x100, stride 5."""
        p = StridePattern(0x100, (5,))
        np.testing.assert_array_equal(
            p.expand(4), [0x100, 0x105, 0x10A, 0x10F]
        )
        # note: the paper's example values (0x105 -> 0x110) are hex-rendered
        # decimals; a constant stride of 5 is what the text describes.

    def test_multi_stride_cycle(self):
        """K-means x/y/z reads: strides (8, 8, 32) over 48-byte records."""
        p = StridePattern(0, (8, 8, 32))
        np.testing.assert_array_equal(
            p.expand(7), [0, 8, 16, 48, 56, 64, 96]
        )

    def test_address_at_matches_expand(self):
        p = StridePattern(100, (3, 5))
        exp = p.expand(20)
        for i in range(20):
            assert p.address_at(i) == exp[i]

    def test_matches(self):
        p = StridePattern(0, (8,))
        assert p.matches(3, 24)
        assert not p.matches(3, 25)

    def test_empty_strides_rejected(self):
        with pytest.raises(ValueError):
            StridePattern(0, ())

    def test_expand_zero(self):
        assert StridePattern(5, (1,)).expand(0).size == 0

    @given(
        base=st.integers(0, 10**9),
        strides=st.lists(st.integers(1, 1000), min_size=1, max_size=4),
        n=st.integers(1, 200),
    )
    @settings(max_examples=50, deadline=None)
    def test_expand_consistency_property(self, base, strides, n):
        p = StridePattern(base, tuple(strides))
        exp = p.expand(n)
        assert exp[0] == base
        diffs = np.diff(exp)
        expected = np.tile(strides, -(-n // len(strides)))[: n - 1]
        np.testing.assert_array_equal(diffs, expected)


class TestPatternRecognizer:
    def test_recognizes_constant_stride(self):
        r = PatternRecognizer()
        p = r.recognize(list(range(0, 80, 8)))
        assert p == StridePattern(0, (8,))

    def test_recognizes_cycle(self):
        r = PatternRecognizer()
        addrs = StridePattern(64, (8, 8, 32)).expand(12)
        p = r.recognize(addrs)
        assert p is not None
        assert p.base == 64
        assert sum(p.strides) % 48 == 0  # cycle spans whole records

    def test_random_addresses_rejected(self):
        r = PatternRecognizer()
        rng = np.random.default_rng(0)
        assert r.recognize(rng.integers(0, 10**6, 16)) is None

    def test_too_few_samples(self):
        r = PatternRecognizer(min_samples=8)
        assert r.recognize([0, 8, 16]) is None

    def test_prefers_smallest_period(self):
        r = PatternRecognizer(max_period=4)
        p = r.recognize(list(range(0, 128, 8)))
        assert p is not None and p.period == 1

    @given(
        base=st.integers(0, 10**6),
        strides=st.lists(st.integers(1, 64), min_size=1, max_size=3),
    )
    @settings(max_examples=50, deadline=None)
    def test_recognize_expand_roundtrip(self, base, strides):
        """recognize(expand(p)) reproduces the address stream."""
        p = StridePattern(base, tuple(strides))
        addrs = p.expand(16)
        found = PatternRecognizer(max_period=3).recognize(addrs)
        assert found is not None
        np.testing.assert_array_equal(found.expand(16), addrs)


class TestOnlineTracker:
    def test_pattern_path_compresses_to_descriptor(self):
        t = OnlineAddressTracker(temp_buffer=8)
        t.feed_many(range(0, 8000, 8))
        t.finish()
        assert t.has_pattern
        assert t.cpu_bytes() == PATTERN_DESCRIPTOR_BYTES
        np.testing.assert_array_equal(t.addresses(), np.arange(0, 8000, 8))

    def test_fallback_ships_raw_addresses(self):
        t = OnlineAddressTracker(temp_buffer=8)
        rng = np.random.default_rng(1)
        addrs = rng.integers(0, 10**6, 100)
        t.feed_many(addrs)
        t.finish()
        assert not t.has_pattern
        assert t.cpu_bytes() == 100 * ADDRESS_BYTES
        np.testing.assert_array_equal(t.addresses(), addrs)

    def test_midstream_violation_falls_back(self):
        """Pattern verified for a while, then broken: all addresses survive."""
        t = OnlineAddressTracker(temp_buffer=8)
        good = list(range(0, 400, 8))
        t.feed_many(good)
        t.feed(9999)  # breaks the stride
        t.feed_many([10007, 10015])
        t.finish()
        assert not t.has_pattern
        expected = good + [9999, 10007, 10015]
        np.testing.assert_array_equal(t.addresses(), expected)
        assert t.cpu_bytes() == len(expected) * ADDRESS_BYTES

    def test_short_stream_flushes_raw(self):
        t = OnlineAddressTracker(temp_buffer=16)
        t.feed_many([0, 8, 16])  # fewer than the temp buffer
        t.finish()
        np.testing.assert_array_equal(t.addresses(), [0, 8, 16])

    def test_wordcount_byte_stream_wins_big(self):
        """1-byte data, 8-byte addresses: the pattern saves ~8x traffic."""
        n = 4096
        t = OnlineAddressTracker(temp_buffer=8)
        t.feed_many(range(n))
        t.finish()
        assert t.has_pattern
        assert t.cpu_bytes() * 8 < n * ADDRESS_BYTES

    @given(
        seed=st.integers(0, 1000),
        n=st.integers(1, 300),
        patterned=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_tracker_never_loses_addresses(self, seed, n, patterned):
        """Whatever happens, the CPU can reproduce the exact stream."""
        rng = np.random.default_rng(seed)
        if patterned:
            addrs = np.arange(n, dtype=np.int64) * 24 + 7
        else:
            addrs = rng.integers(0, 10**7, n)
        t = OnlineAddressTracker(temp_buffer=8)
        t.feed_many(addrs)
        t.finish()
        np.testing.assert_array_equal(t.addresses(), addrs)
