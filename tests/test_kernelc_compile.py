"""The vectorized kernel backend against the tree-walking oracle.

Every test here compares `repro.kernelc.compile` with `KernelInterpreter`
on the same data: outputs and resident state at bit level, InterpStats
counters and emitted address streams integer-exact. The interpreter is
the specification; the compiled backend has no semantics of its own.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.errors import BufferOverrun, RuntimeConfigError, VectorizationError
from repro.kernelc.analysis import analyze_vectorizable
from repro.kernelc.codegen import ExecutionContext, InterpStats, KernelInterpreter
from repro.kernelc.compile import (
    affine_streams,
    compile_kernel,
    resident_kinds_of,
    try_compile_kernel,
    vector_fn_names,
)
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Const,
    EmitAddress,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    RecordSchema,
    ResidentLoad,
    ResidentStore,
    Store,
    UnOp,
    Var,
    While,
)
from repro.kernelc.slicing import make_addrgen_kernel
from repro.kernelc.transform import make_databuf_kernel

SCHEMA = RecordSchema.packed(
    [("a", "f8"), ("b", "i4"), ("c", "i4"), ("d", "f8")], record_size=32
)
N = 24

STAT_FIELDS = (
    "n_ops",
    "n_calls",
    "n_mapped_reads",
    "n_mapped_writes",
    "n_resident_accesses",
    "mapped_read_bytes",
    "mapped_write_bytes",
)


def make_ctx(seed: int = 0) -> ExecutionContext:
    rng = np.random.default_rng(seed)
    arr = np.zeros(N, dtype=SCHEMA.numpy_dtype())
    arr["a"] = rng.uniform(-5, 5, N)
    arr["b"] = rng.integers(-100, 100, N)
    arr["c"] = rng.integers(-100, 100, N)
    arr["d"] = rng.uniform(-5, 5, N)
    return ExecutionContext(
        mapped={"arr": arr},
        resident={"acc": np.zeros(8, dtype=np.float64),
                  "tab": np.zeros(16, dtype=np.int64)},
        params={"k": 3, "flip": 0},
    )


def kernel_of(body, params=("k", "flip")) -> Kernel:
    return Kernel(
        "t", body, mapped={"arr": SCHEMA}, resident=("acc", "tab"),
        params=params,
    )


def assert_equivalent(kernel, lo=0, hi=N, seed=0, params=None):
    """Interpreter vs compiled: resident, mapped bytes, stats."""
    ctx_i, ctx_c = make_ctx(seed), make_ctx(seed)
    if params:
        ctx_i.params.update(params)
        ctx_c.params.update(params)
    interp = KernelInterpreter(kernel, ctx_i)
    interp.run_thread(0, lo, hi)
    compiled = compile_kernel(
        kernel, resident_kinds=resident_kinds_of(ctx_c.resident)
    )
    run = compiled.run_range(ctx_c, lo, hi)
    np.testing.assert_array_equal(
        ctx_i.resident["acc"], ctx_c.resident["acc"]
    )
    np.testing.assert_array_equal(
        ctx_i.resident["tab"], ctx_c.resident["tab"]
    )
    np.testing.assert_array_equal(
        ctx_i.mapped["arr"].view(np.uint8), ctx_c.mapped["arr"].view(np.uint8)
    )
    for f in STAT_FIELDS:
        assert getattr(run.stats, f) == getattr(interp.stats, f), f
    return run


def ref(field, idx=None):
    return MappedRef("arr", idx if idx is not None else Var("i"), field)


class TestExpressionLowering:
    def test_arithmetic_and_comparisons(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("x", Load(ref("a"))),
                Assign("y", Load(ref("b"))),
                Assign("s", BinOp("+", BinOp("*", Var("x"), Const(2.0)),
                                 BinOp("-", Var("y"), Const(1)))),
                Assign("q", BinOp("//", Var("y"), Const(7))),
                Assign("r", BinOp("%", Var("y"), Const(5))),
                Assign("g", BinOp(">", Var("s"), Const(0.0))),
                AtomicAdd("acc", BinOp("%", Var("i"), Const(8)),
                          BinOp("+", Var("q"), Var("r"))),
                Store(ref("c"), BinOp("%", Var("q"), Const(1000))),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_floor_division_and_modulo_negative_operands(self):
        # Python floor semantics must survive vectorization
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("y", Load(ref("b"))),
                AtomicAdd("tab", Const(0), BinOp("//", Var("y"), Const(-3))),
                AtomicAdd("tab", Const(1), BinOp("%", Var("y"), Const(-3))),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_min_max_and_eager_logic(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("x", Load(ref("a"))),
                Assign("y", Load(ref("d"))),
                Assign("m", BinOp("min", Var("x"), Var("y"))),
                Assign("M", BinOp("max", Var("x"), Const(0.0))),
                Assign("both", BinOp("and", BinOp(">", Var("x"), Const(0)),
                                     BinOp("<", Var("y"), Const(0)))),
                Assign("either", BinOp("or", Var("both"),
                                       UnOp("not", BinOp(">", Var("m"),
                                                         Const(-1.0))))),
                If(Var("either"),
                   (Assign("out", Var("M")),),
                   (Assign("out", Var("m")),)),
                AtomicAdd("acc", Const(2), Var("out")),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_unary_negation(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("x", Load(ref("a"))),
                AtomicAdd("acc", Const(0), UnOp("-", Var("x"))),
            )),
        )
        assert_equivalent(kernel_of(body))


class TestControlFlow:
    def test_masked_if_with_merge(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("x", Load(ref("a"))),
                Assign("v", Const(0.0)),
                If(BinOp(">", Var("x"), Const(0.0)),
                   (Assign("v", BinOp("*", Var("x"), Const(3.0))),),
                   (Assign("v", BinOp("-", Const(0.0), Var("x"))),)),
                AtomicAdd("acc", BinOp("%", Var("i"), Const(8)), Var("v")),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_nested_masked_ifs(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("x", Load(ref("a"))),
                Assign("y", Load(ref("b"))),
                Assign("v", Const(0.0)),
                If(BinOp(">", Var("x"), Const(0.0)),
                   (If(BinOp(">", Var("y"), Const(0)),
                       (Assign("v", BinOp("+", Var("x"), Var("y"))),),
                       (Assign("v", Var("x")),)),),
                   (If(BinOp("<", Var("y"), Const(-50)),
                       (Assign("v", Const(7.0)),),
                       ()),)),
                AtomicAdd("acc", Const(0), Var("v")),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_then_only_branch_and_store_under_mask_rejected(self):
        # Store index must be the record var itself; under a mask the lane
        # set still addresses its own records, which remains legal
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("y", Load(ref("b"))),
                If(BinOp(">", Var("y"), Const(0)),
                   (Store(ref("c"), BinOp("%", Var("y"), Const(97))),),
                   ()),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_uniform_param_if_takes_python_branch(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("y", Load(ref("b"))),
                If(BinOp("==", Param("flip"), Const(0)),
                   (AtomicAdd("tab", BinOp("%", Var("i"), Const(16)),
                              Const(1)),),
                   (AtomicAdd("tab", Const(0), BinOp("%", Var("y"),
                                                     Const(9))),)),
            )),
        )
        assert_equivalent(kernel_of(body), params={"flip": 0})
        assert_equivalent(kernel_of(body), params={"flip": 1})

    def test_inner_for_loop_carries_state_within_record(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("h", Const(0)),
                For("j", Const(0), Const(4), (
                    Assign("x", Load(ref("b", BinOp(
                        "%", BinOp("+", Var("i"), Var("j")), Const(N))))),
                    Assign("h", BinOp(
                        "%", BinOp("+", BinOp("*", Var("h"), Const(31)),
                                   Var("x")),
                        Const(1 << 30))),
                )),
                AtomicAdd("tab", BinOp("%", Var("h"), Const(16)), Const(1)),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_inner_for_with_param_bound(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("s", Const(0)),
                For("j", Const(0), Param("k"), (
                    Assign("s", BinOp("+", Var("s"), Var("j"))),
                )),
                AtomicAdd("tab", Const(0), Var("s")),
            )),
        )
        assert_equivalent(kernel_of(body), params={"k": 5})

    def test_sub_range_execution(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("y", Load(ref("b"))),
                AtomicAdd("tab", BinOp("%", Var("i"), Const(16)), Var("y")),
            )),
        )
        assert_equivalent(kernel_of(body), lo=5, hi=17)
        assert_equivalent(kernel_of(body), lo=7, hi=7)  # empty range

    def test_resident_load_and_store(self):
        # distinct arrays: same-array load+store is a cross-lane RAW hazard
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("t", ResidentLoad("acc", BinOp("%", Var("i"),
                                                      Const(8)))),
                Assign("y", Load(ref("b"))),
                ResidentStore("tab", BinOp("%", Var("i"), Const(16)),
                              BinOp("+", Var("y"), Const(2))),
            )),
        )
        assert_equivalent(kernel_of(body))

    def test_resident_raw_hazard_rejected(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("t", ResidentLoad("tab", BinOp("%", Var("i"),
                                                      Const(16)))),
                ResidentStore("tab", BinOp("%", Var("i"), Const(16)),
                              BinOp("+", Var("t"), Const(2))),
            )),
        )
        report = analyze_vectorizable(
            kernel_of(body), resident_kinds={"acc": "f", "tab": "i"}
        )
        assert not report.ok
        assert any("RAW hazard" in r for r in report.reasons)


class TestFallbacks:
    def test_while_rejected(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("x", Load(ref("b"))),
                While(BinOp(">", Var("x"), Const(0)), (
                    Assign("x", BinOp("-", Var("x"), Const(1))),
                    Break(),
                )),
            )),
        )
        kernel = kernel_of(body)
        assert try_compile_kernel(kernel) is None
        with pytest.raises(VectorizationError):
            compile_kernel(kernel)

    def test_loop_carried_rejected_with_reason(self):
        body = (
            Assign("h", Const(0)),
            For("i", Var("start"), Var("end"), (
                Assign("h", BinOp("+", Var("h"), Load(ref("b")))),
            )),
        )
        report = analyze_vectorizable(kernel_of(body))
        assert not report.ok
        assert any("loop-carried" in r for r in report.reasons)

    def test_opaque_device_fn_rejected(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("x", Load(ref("a"))),
            )),
        )
        kernel = kernel_of(body)
        assert try_compile_kernel(kernel) is not None  # sanity
        # apps with loop-carried kernels declare the fallback
        assert get_app("wordcount").compiled_expected is False
        assert get_app("mastercard").compiled_expected is False
        wc = get_app("wordcount").kernel()
        assert try_compile_kernel(wc) is None


class TestAddressStreams:
    BODY = (
        For("i", Var("start"), Var("end"), (
            Assign("x", Load(ref("a"))),
            Assign("y", Load(ref("d"))),
            Store(ref("c"), Const(1)),
        )),
    )

    def test_addrgen_streams_match_interpreter(self):
        kernel = kernel_of(self.BODY)
        ag = make_addrgen_kernel(kernel)
        interp = KernelInterpreter(ag, make_ctx())
        interp.run_thread(0, 0, N)
        run = compile_kernel(ag).run_range(make_ctx(), 0, N)
        np.testing.assert_array_equal(
            run.read_offsets(),
            np.asarray([r.offset for r in interp.read_addresses]),
        )
        np.testing.assert_array_equal(
            run.write_offsets(),
            np.asarray([r.offset for r in interp.write_addresses]),
        )
        recs = run.read_records()
        assert [r.offset for r in recs] == [
            r.offset for r in interp.read_addresses
        ]
        assert [r.nbytes for r in recs] == [
            r.nbytes for r in interp.read_addresses
        ]

    def test_affine_closed_form(self):
        ag = make_addrgen_kernel(kernel_of(self.BODY))
        reads, writes = affine_streams(ag)
        assert reads is not None and writes is not None
        interp = KernelInterpreter(ag, make_ctx())
        interp.run_thread(0, 0, N)
        np.testing.assert_array_equal(
            reads.expand(0, N),
            np.asarray([r.offset for r in interp.read_addresses]),
        )
        np.testing.assert_array_equal(
            writes.expand(0, N),
            np.asarray([r.offset for r in interp.write_addresses]),
        )
        # closed-form sub-ranges need no rebasing arithmetic from callers
        np.testing.assert_array_equal(
            reads.expand(5, 11), reads.expand(0, N)[10:22]
        )

    def test_affine_pattern_feeds_recognizer_form(self):
        ag = make_addrgen_kernel(kernel_of(self.BODY))
        reads, _ = affine_streams(ag)
        pat = reads.pattern(lo=0)
        np.testing.assert_array_equal(pat.expand(2 * N), reads.expand(0, N))

    def test_masked_emit_reconstructs_record_major_order(self):
        body = (
            For("i", Var("start"), Var("end"), (
                Assign("y", Load(ref("b"))),
                If(BinOp(">", Var("y"), Const(0)),
                   (EmitAddress(ref("a")), EmitAddress(ref("d"))),
                   (EmitAddress(ref("d")),)),
            )),
        )
        kernel = kernel_of(body)
        interp = KernelInterpreter(kernel, make_ctx())
        interp.run_thread(0, 0, N)
        run = compile_kernel(kernel).run_range(make_ctx(), 0, N)
        np.testing.assert_array_equal(
            run.read_offsets(),
            np.asarray([r.offset for r in interp.read_addresses]),
        )
        assert affine_streams(kernel) is None  # emits under control flow


class TestDatabuf:
    BODY = (
        For("i", Var("start"), Var("end"), (
            Assign("x", Load(ref("a"))),
            Assign("y", Load(ref("b"))),
            AtomicAdd("acc", BinOp("%", Var("i"), Const(8)),
                      BinOp("+", Var("x"), Var("y"))),
            Store(ref("c"), BinOp("%", Var("y"), Const(50))),
        )),
    )

    def _gathered_values(self, kernel):
        ag = make_addrgen_kernel(kernel)
        interp = KernelInterpreter(ag, make_ctx())
        interp.run_thread(0, 0, N)
        view = make_ctx().mapped["arr"].view(np.uint8).reshape(-1)
        return [
            view[r.offset:r.offset + r.nbytes].view(r.dtype)[0]
            for r in interp.read_addresses
        ]

    def test_queue_mode_matches_interpreter(self):
        kernel = kernel_of(self.BODY)
        db = make_databuf_kernel(kernel)
        values = self._gathered_values(kernel)

        ctx_i = make_ctx()
        interp = KernelInterpreter(db, ctx_i)
        interp.load_data(list(values))
        interp.run_thread(0, 0, N)

        ctx_c = make_ctx()
        compiled = compile_kernel(
            db, resident_kinds={"acc": "f", "tab": "i"},
            databuf_mode="queue",
        )
        run = compiled.run_range(ctx_c, 0, N, data_queue=list(values))

        np.testing.assert_array_equal(
            ctx_i.resident["acc"], ctx_c.resident["acc"]
        )
        for f in STAT_FIELDS:
            assert getattr(run.stats, f) == getattr(interp.stats, f), f
        iq = [(r.offset, v) for r, v in interp.write_queue]
        cq = [(r.offset, v) for r, v in run.write_queue()]
        assert [o for o, _ in iq] == [o for o, _ in cq]
        np.testing.assert_allclose(
            np.asarray([v for _, v in iq], dtype=np.float64),
            np.asarray([v for _, v in cq], dtype=np.float64),
            rtol=0, atol=0,
        )

    def test_window_mode_matches_interpreter(self):
        kernel = kernel_of(self.BODY)
        db = make_databuf_kernel(kernel)
        window = make_ctx().mapped["arr"].view(np.uint8).reshape(-1).copy()

        ctx_i = make_ctx()
        interp = KernelInterpreter(db, ctx_i)
        interp.fallback_windows["arr"] = (0, window.copy())
        interp.run_thread(0, 0, N)

        ctx_c = make_ctx()
        compiled = compile_kernel(
            db, resident_kinds={"acc": "f", "tab": "i"},
            databuf_mode="window",
        )
        run = compiled.run_range(
            ctx_c, 0, N, fallback_windows={"arr": (0, window.copy())}
        )
        np.testing.assert_array_equal(
            ctx_i.resident["acc"], ctx_c.resident["acc"]
        )
        for f in STAT_FIELDS:
            assert getattr(run.stats, f) == getattr(interp.stats, f), f

    def test_window_overrun_raises(self):
        kernel = kernel_of(self.BODY)
        db = make_databuf_kernel(kernel)
        compiled = compile_kernel(
            db, resident_kinds={"acc": "f", "tab": "i"},
            databuf_mode="window",
        )
        short = make_ctx().mapped["arr"].view(np.uint8).reshape(-1)[:64]
        with pytest.raises(BufferOverrun):
            compiled.run_range(
                make_ctx(), 0, N,
                fallback_windows={"arr": (0, short.copy())},
            )


class TestAppEquivalence:
    @pytest.mark.parametrize("cls", ALL_APPS, ids=lambda c: c.name)
    def test_apps_compile_or_fall_back_as_declared(self, cls):
        app = cls()
        data = app.generate(n_bytes=64 * 1024, seed=11)
        kernel = app.kernel()
        ctx = app.make_ir_context(data)
        report = analyze_vectorizable(
            kernel,
            vector_fns=vector_fn_names(ctx.device_fns),
            resident_kinds=resident_kinds_of(ctx.resident),
        )
        assert report.ok == app.compiled_expected, report.reasons

    def test_mastercard_indexed_both_passes(self):
        app = get_app("mastercard_indexed")
        data = app.generate(n_bytes=64 * 1024, seed=11)
        n = app.n_units(data)
        kernel = app.kernel()
        ctx_i, ctx_c = app.make_ir_context(data), app.make_ir_context(data)
        compiled = compile_kernel(
            kernel, resident_kinds=resident_kinds_of(ctx_c.resident)
        )
        interp = KernelInterpreter(kernel, ctx_i)
        stats = InterpStats()
        for p in (0, 1):
            ctx_i.params["pass_idx"] = p
            ctx_c.params["pass_idx"] = p
            interp.run_thread(0, 0, n)
            run = compiled.run_range(ctx_c, 0, n)
            for f in STAT_FIELDS:
                setattr(stats, f, getattr(stats, f) + getattr(run.stats, f))
        np.testing.assert_array_equal(
            app.ir_output(data, ctx_i), app.ir_output(data, ctx_c)
        )
        np.testing.assert_array_equal(
            ctx_i.resident["customers"], ctx_c.resident["customers"]
        )
        for f in STAT_FIELDS:
            assert getattr(stats, f) == getattr(interp.stats, f), f


class TestEngineWiring:
    def test_engine_config_validates_kernel_exec(self):
        from repro.engines import EngineConfig

        assert EngineConfig(kernel_exec="compiled").kernel_exec == "compiled"
        with pytest.raises(RuntimeConfigError):
            EngineConfig(kernel_exec="jit")

    def _launch(self, kernel_exec):
        from repro.engines import EngineConfig
        from repro.runtime.launcher import bigkernel_launch
        from repro.runtime.streaming import StreamingRegistry

        schema = RecordSchema.packed([("v", "i8"), ("out", "i8")])
        n = 4096
        host = np.zeros(n, dtype=schema.numpy_dtype())
        host["v"] = np.arange(n) % 97
        registry = StreamingRegistry()
        registry.streaming_malloc("pts", host.nbytes)
        registry.streaming_map("pts", host, schema, writable=True)
        kernel = Kernel(
            "double_it",
            (
                For("i", Var("start"), Var("end"), (
                    Assign("v", Load(MappedRef("pts", Var("i"), "v"))),
                    Store(MappedRef("pts", Var("i"), "out"),
                          BinOp("*", Var("v"), Const(2))),
                    AtomicAdd("total", Const(0), Var("v")),
                )),
            ),
            mapped={"pts": schema},
            resident=("total",),
        )
        res = bigkernel_launch(
            kernel,
            registry,
            resident={"total": np.zeros(1, dtype=np.int64)},
            config=EngineConfig(kernel_exec=kernel_exec),
        )
        return host["out"].copy(), res.output["total"].copy()

    def test_launch_compiled_matches_interp(self):
        out_c, tot_c = self._launch("compiled")
        out_i, tot_i = self._launch("interp")
        np.testing.assert_array_equal(out_c, out_i)
        np.testing.assert_array_equal(tot_c, tot_i)

    def test_launch_compiled_demands_vectorizable(self):
        from repro.runtime.launcher import KernelApplication
        from repro.runtime.streaming import StreamingRegistry

        schema = RecordSchema.packed([("v", "i8")])
        host = np.zeros(8, dtype=schema.numpy_dtype())
        registry = StreamingRegistry()
        registry.streaming_malloc("pts", host.nbytes)
        registry.streaming_map("pts", host, schema)
        kernel = Kernel(
            "carried",
            (
                Assign("s", Const(0)),
                For("i", Var("start"), Var("end"), (
                    Assign("s", BinOp(
                        "+", Var("s"),
                        Load(MappedRef("pts", Var("i"), "v")))),
                    AtomicAdd("acc", Const(0), Var("s")),
                )),
            ),
            mapped={"pts": schema},
            resident=("acc",),
        )
        app = KernelApplication(
            kernel, registry,
            resident={"acc": np.zeros(1, dtype=np.int64)},
            kernel_exec="compiled",
        )
        with pytest.raises(VectorizationError):
            app.compiled_kernel()
        # auto quietly falls back instead
        auto = KernelApplication(
            kernel, registry,
            resident={"acc": np.zeros(1, dtype=np.int64)},
            kernel_exec="auto",
        )
        assert auto.compiled_kernel() is None
