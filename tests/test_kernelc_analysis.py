"""Direct tests for the dataflow analysis behind the address slice."""

import pytest

from repro.errors import SlicingError
from repro.kernelc import (
    Assign,
    AtomicAdd,
    BinOp,
    Call,
    Const,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Var,
    While,
    address_slice_vars,
    has_data_dependent_addressing,
    make_addrgen_kernel,
)
from repro.kernelc.analysis import expr_loads, expr_vars, mapped_accesses

SCHEMA = RecordSchema.packed([("v", "f8")])
REF = lambda idx: MappedRef("arr", idx, "v")


def kernel_of(*body):
    return Kernel("k", tuple(body), mapped={"arr": SCHEMA}, resident=("out",))


class TestExprHelpers:
    def test_expr_vars(self):
        e = BinOp("+", Var("a"), BinOp("*", Var("b"), Const(2)))
        assert expr_vars(e) == {"a", "b"}

    def test_expr_loads_in_order(self):
        e = BinOp("+", Load(REF(Var("i"))), Load(REF(Var("j"))))
        loads = expr_loads(e)
        assert len(loads) == 2
        assert loads[0].ref.index == Var("i")


class TestSliceVars:
    def test_loop_var_needed(self):
        k = kernel_of(
            For("i", Var("start"), Var("end"), (Assign("x", Load(REF(Var("i")))),))
        )
        needed = address_slice_vars(k)
        assert "i" in needed and "start" in needed and "end" in needed
        assert "x" not in needed

    def test_transitive_address_arithmetic(self):
        k = kernel_of(
            Assign("base", BinOp("*", Var("tid"), Const(100))),
            Assign("stride", Const(2)),
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("idx", BinOp("+", Var("base"), BinOp("*", Var("i"), Var("stride")))),
                    Assign("x", Load(REF(Var("idx")))),
                ),
            ),
        )
        needed = address_slice_vars(k)
        assert {"idx", "base", "stride", "i", "tid"} <= needed

    def test_compute_only_vars_excluded(self):
        k = kernel_of(
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("x", Load(REF(Var("i")))),
                    Assign("y", BinOp("*", Var("x"), Const(2))),
                    AtomicAdd("out", Const(0), Var("y")),
                ),
            )
        )
        needed = address_slice_vars(k)
        assert "y" not in needed and "x" not in needed


class TestDataDependence:
    def test_clean_kernel_not_flagged(self):
        k = kernel_of(
            For("i", Var("start"), Var("end"), (Assign("x", Load(REF(Var("i")))),))
        )
        assert not has_data_dependent_addressing(k)

    def test_load_in_index_flagged(self):
        k = kernel_of(
            For(
                "i",
                Var("start"),
                Var("end"),
                (Assign("x", Load(REF(Load(REF(Var("i")))))),),
            )
        )
        assert has_data_dependent_addressing(k)

    def test_load_feeding_needed_var_flagged(self):
        k = kernel_of(
            Assign("j", Var("start")),
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("j", Load(REF(Var("i")))),  # j feeds an address
                    Assign("x", Load(REF(Var("j")))),
                ),
            ),
        )
        assert has_data_dependent_addressing(k)

    def test_guard_load_around_mapped_access_flagged(self):
        """A branch condition fed (via a var) by mapped data, guarding a
        mapped access, is the paper's unhandled flow-control case."""
        k = kernel_of(
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("c", Load(REF(Var("i")))),
                    If(
                        BinOp(">", Var("c"), Const(0)),
                        # control-dependent address arithmetic
                        (Assign("i", BinOp("+", Var("i"), Const(1))),),
                    ),
                    Assign("x", Load(REF(Var("i")))),
                ),
            )
        )
        assert has_data_dependent_addressing(k)
        with pytest.raises(SlicingError):
            make_addrgen_kernel(k)

    def test_guard_load_around_compute_only_not_flagged(self):
        """Data-dependent branching over *resident* work slices away fine
        (Word Count's shape)."""
        k = kernel_of(
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("c", Load(REF(Var("i")))),
                    If(
                        BinOp(">", Var("c"), Const(0)),
                        (AtomicAdd("out", Const(0), Const(1)),),
                    ),
                ),
            )
        )
        assert not has_data_dependent_addressing(k)
        ag = make_addrgen_kernel(k)  # must not raise
        # the whole If is sliced away; the load's address is still emitted
        from repro.kernelc.ir import EmitAddress, walk_stmts

        kinds = [type(s).__name__ for s in walk_stmts(ag.body)]
        assert "EmitAddress" in kinds and "If" not in kinds

    def test_opaque_call_feeding_address_flagged(self):
        k = Kernel(
            "k",
            (
                For(
                    "i",
                    Var("start"),
                    Var("end"),
                    (
                        Assign("idx", Call("mystery", (Var("i"),))),
                        Assign("x", Load(REF(Var("idx")))),
                    ),
                ),
            ),
            mapped={"arr": SCHEMA},
            device_functions=("mystery",),
        )
        assert has_data_dependent_addressing(k)

    def test_while_over_mapped_data_flagged(self):
        k = kernel_of(
            Assign("i", Var("start")),
            Assign("c", Const(1)),
            While(
                BinOp(">", Var("c"), Const(0)),
                (
                    Assign("c", Load(REF(Var("i")))),
                    Assign("i", BinOp("+", Var("i"), Const(1))),
                ),
            ),
        )
        # the while guard (via c) controls mapped accesses and is fed by one
        assert has_data_dependent_addressing(k)


class TestMappedAccesses:
    def test_reads_and_writes_enumerated(self):
        from repro.kernelc.ir import Store

        k = kernel_of(
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("x", Load(REF(Var("i")))),
                    Store(REF(Var("i")), BinOp("*", Var("x"), Const(2))),
                ),
            )
        )
        acc = mapped_accesses(k)
        kinds = [kind for kind, _ in acc]
        assert kinds == ["read", "write"]
