"""Cross-validation: the access profiles that drive the cost models agree
with what the kernels *actually do* in the IR interpreter.

If an app's profile claimed more (or fewer) bytes/accesses than its kernel
performs, every timing result would be silently wrong — so this is the
keystone consistency check between the functional and temporal layers.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.kernelc import KernelInterpreter

SIZES = {
    "kmeans": 48 * 64,
    "wordcount": 3000,
    "netflix": 80 * 64,
    "opinion": 112 * 16,
    "dna": 128 * 32,
    "mastercard": 3000,
    "mastercard_indexed": 3000,
}


def run_ir_full(app, data):
    ctx = app.make_ir_context(data)
    n = app.n_units(data)
    interp = None
    for p in range(app.n_passes):
        if app.n_passes > 1:
            ctx.params["pass_idx"] = p
        interp = KernelInterpreter(app.kernel(), ctx)
        interp.run_thread(0, 0, n)
    return interp  # stats of the LAST pass (per-pass counters)


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
def test_profile_read_bytes_match_kernel(name):
    """profile.read_bytes_per_record == measured mapped read bytes / unit."""
    app = get_app(name)
    data = app.generate(n_bytes=SIZES[name], seed=17)
    profile = app.access_profile(data)
    interp = run_ir_full(app, data)
    n = app.n_units(data)
    measured = interp.stats.mapped_read_bytes / n
    assert measured == pytest.approx(profile.read_bytes_per_record, rel=0.02), (
        f"{name}: profile says {profile.read_bytes_per_record} B/unit, "
        f"kernel reads {measured:.2f}"
    )


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
def test_profile_write_bytes_match_kernel(name):
    app = get_app(name)
    data = app.generate(n_bytes=SIZES[name], seed=17)
    profile = app.access_profile(data)
    interp = run_ir_full(app, data)
    n = app.n_units(data)
    measured = interp.stats.mapped_write_bytes / n
    assert measured == pytest.approx(
        profile.write_bytes_per_record, rel=0.02, abs=1e-9
    ), name


@pytest.mark.parametrize(
    "name", ["kmeans", "netflix", "opinion", "dna", "wordcount", "mastercard"]
)
def test_offsets_cover_same_bytes_as_kernel(name):
    """chunk_read_offsets (which feeds assembly + pattern recognition)
    touches exactly the bytes the kernel loads."""
    app = get_app(name)
    data = app.generate(n_bytes=SIZES[name], seed=17)
    profile = app.access_profile(data)
    n = min(16, app.n_units(data))
    ctx = app.make_ir_context(data)
    if app.n_passes > 1:
        ctx.params["pass_idx"] = 0
    from repro.kernelc import make_addrgen_kernel

    ag = KernelInterpreter(make_addrgen_kernel(app.kernel()), ctx)
    ag.run_thread(0, 0, n)
    kernel_bytes = set()
    for rec in ag.read_addresses:
        kernel_bytes.update(range(rec.offset, rec.offset + rec.nbytes))

    offs = app.chunk_read_offsets(data, 0, n)
    elem = int(
        round(profile.read_bytes_per_record / max(profile.reads_per_record, 1e-9))
    ) or 1
    vec_bytes = set()
    for o in offs.tolist():
        vec_bytes.update(range(o, o + elem))
    assert kernel_bytes == vec_bytes
