"""Tests for the CPU cache simulator and analytic hit-rate model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import HardwareError
from repro.hw.cache import CacheSim, analytic_hit_rate
from repro.hw.dram import blended_read_bandwidth, random_access_bandwidth


class TestCacheSim:
    def test_sequential_bytes_mostly_hit(self):
        c = CacheSim(capacity=64 * 1024, line=64, ways=8)
        rate = c.run_trace(np.arange(0, 32768, 8), elem_bytes=8)
        assert rate == pytest.approx(1 - 8 / 64, abs=0.01)

    def test_repeated_access_hits(self):
        c = CacheSim(capacity=64 * 1024)
        c.access(0)
        assert c.access(0)
        assert c.access(32)  # same 64B line

    def test_random_over_large_working_set_misses(self):
        c = CacheSim(capacity=16 * 1024, line=64, ways=8)
        rng = np.random.default_rng(0)
        addrs = rng.integers(0, 1 << 28, size=4000) * 64
        rate = c.run_trace(addrs, elem_bytes=8)
        assert rate < 0.05

    def test_lru_eviction(self):
        # direct-capacity stress: working set exactly 2x cache, cyclic
        c = CacheSim(capacity=4096, line=64, ways=8)
        addrs = np.tile(np.arange(0, 8192, 64), 4)
        rate = c.run_trace(addrs, elem_bytes=1)
        assert rate < 0.05  # cyclic over 2x capacity defeats LRU

    def test_working_set_fits(self):
        c = CacheSim(capacity=8192, line=64, ways=8)
        addrs = np.tile(np.arange(0, 4096, 64), 4)
        c.run_trace(addrs, elem_bytes=1)
        # after the cold pass, everything hits: 3/4 of accesses hit at least
        assert c.hit_rate >= 0.74

    def test_access_range_spans_lines(self):
        c = CacheSim(capacity=8192, line=64, ways=8)
        hits, misses = c.access_range(0, 256)
        assert misses == 4 and hits == 0

    def test_invalid_geometry_rejected(self):
        with pytest.raises(HardwareError):
            CacheSim(capacity=1000, line=64, ways=8)  # not divisible

    @given(seed=st.integers(min_value=0, max_value=10**6))
    @settings(max_examples=20, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, seed):
        c = CacheSim(capacity=4096, line=64, ways=4)
        rng = np.random.default_rng(seed)
        addrs = rng.integers(0, 1 << 16, size=200)
        for a in addrs:
            c.access(int(a))
        assert c.hits + c.misses == 200


class TestAnalyticHitRate:
    def test_sequential_formula(self):
        assert analytic_hit_rate(8, 64, sequential=True) == pytest.approx(1 - 8 / 64)

    def test_sequential_large_elements_floor_zero(self):
        assert analytic_hit_rate(128, 64, sequential=True) == 0.0

    def test_random_capacity_ratio(self):
        assert analytic_hit_rate(
            8, 64, sequential=False, working_set=100, cache_bytes=50
        ) == pytest.approx(0.5)

    def test_random_without_working_set_is_zero(self):
        assert analytic_hit_rate(8, 64, sequential=False) == 0.0

    def test_matches_simulator_for_sequential(self):
        c = CacheSim(capacity=64 * 1024, line=64, ways=8)
        sim_rate = c.run_trace(np.arange(0, 32768, 16), elem_bytes=16)
        ana = analytic_hit_rate(16, 64, sequential=True)
        assert sim_rate == pytest.approx(ana, abs=0.02)


class TestDramHelpers:
    def test_random_bandwidth(self):
        assert random_access_bandwidth(64, 80e-9) == pytest.approx(8e8)

    def test_blended_endpoints(self):
        assert blended_read_bandwidth(1.0, 10e9, 1e9) == pytest.approx(10e9)
        assert blended_read_bandwidth(0.0, 10e9, 1e9) == pytest.approx(1e9)

    def test_blend_is_harmonic(self):
        bw = blended_read_bandwidth(0.5, 10e9, 1e9)
        assert bw == pytest.approx(1.0 / (0.5 / 10e9 + 0.5 / 1e9))

    def test_invalid_inputs(self):
        with pytest.raises(HardwareError):
            blended_read_bandwidth(2.0, 1, 1)
        with pytest.raises(HardwareError):
            random_access_bandwidth(0, 1)
