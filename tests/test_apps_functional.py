"""Functional tests for all seven benchmark applications."""

import numpy as np
import pytest

from repro.apps import ALL_APPS, APP_REGISTRY, get_app
from repro.errors import ApplicationError

DATA_BYTES = 300_000


@pytest.fixture(scope="module")
def datasets():
    """One generated dataset per app, shared across this module."""
    out = {}
    for cls in ALL_APPS:
        app = cls()
        out[app.name] = (app, app.generate(n_bytes=DATA_BYTES, seed=11))
    return out


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
class TestEveryApp:
    def test_generation_is_deterministic(self, name, datasets):
        app, data = datasets[name]
        again = app.generate(n_bytes=DATA_BYTES, seed=11)
        np.testing.assert_array_equal(
            data.byte_view(), again.byte_view()
        )

    def test_different_seeds_differ(self, name, datasets):
        app, data = datasets[name]
        other = app.generate(n_bytes=DATA_BYTES, seed=12)
        assert not np.array_equal(data.byte_view(), other.byte_view())

    def test_size_close_to_request(self, name, datasets):
        app, data = datasets[name]
        assert 0.5 * DATA_BYTES <= data.total_mapped_bytes <= 1.2 * DATA_BYTES

    def test_chunked_equals_reference(self, name, datasets):
        app, data = datasets[name]
        ref = app.reference(data)
        state = app.make_state(data)
        bounds = app.chunk_bounds(data, max(1, app.n_units(data) // 13))
        for p in range(app.n_passes):
            app.start_pass(data, state, p)
            for lo, hi in bounds:
                app.process_chunk(data, state, lo, hi)
        assert app.outputs_equal(ref, self_out := app.finalize(data, state))

    def test_chunk_bounds_cover_range_exactly(self, name, datasets):
        app, data = datasets[name]
        bounds = app.chunk_bounds(data, max(1, app.n_units(data) // 7))
        assert bounds[0][0] == 0
        assert bounds[-1][1] == app.n_units(data)
        for (l1, h1), (l2, h2) in zip(bounds, bounds[1:]):
            assert h1 == l2
            assert l1 < h1

    def test_profile_fractions_sane(self, name, datasets):
        app, data = datasets[name]
        p = app.access_profile(data)
        assert 0.0 < p.read_fraction <= 1.0
        assert 0.0 <= p.write_fraction < 1.0
        assert p.elem_bytes >= 1
        assert p.gpu_ops_per_record > 0
        assert p.cpu_ops_per_record > 0
        assert p.gpu_divergence >= 1.0
        assert p.passes == app.n_passes

    def test_read_offsets_in_bounds_and_sorted_per_unit(self, name, datasets):
        app, data = datasets[name]
        n = min(64, app.n_units(data))
        offs = app.chunk_read_offsets(data, 0, n)
        assert offs.size > 0
        assert offs.min() >= 0
        assert offs.max() < data.total_mapped_bytes

    def test_write_offsets_in_bounds(self, name, datasets):
        app, data = datasets[name]
        n = min(64, app.n_units(data))
        offs = app.chunk_write_offsets(data, 0, n)
        if offs.size:
            assert offs.min() >= 0
            assert offs.max() < data.total_mapped_bytes

    def test_outputs_equal_reflexive(self, name, datasets):
        app, data = datasets[name]
        out = app.reference(data)
        assert app.outputs_equal(out, out)

    def test_kernel_ir_validates(self, name, datasets):
        from repro.kernelc import validate_kernel

        app, data = datasets[name]
        k = app.kernel()
        assert k is not None
        validate_kernel(k)

    def test_registered(self, name, datasets):
        assert name in APP_REGISTRY
        assert get_app(name).name == name


class TestRegistry:
    def test_unknown_app_rejected(self):
        with pytest.raises(ApplicationError):
            get_app("nonexistent")

    def test_all_seven_present(self):
        assert len(ALL_APPS) == 7


class TestKMeansSpecifics:
    def test_assignment_is_nearest(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=48 * 100, seed=3)
        cids = app.reference(data)
        p = data.mapped["particles"]
        c = data.resident["clusters"]
        for i in range(0, 100, 17):
            d = (
                (c[:, 0] - p["x"][i]) ** 2
                + (c[:, 1] - p["y"][i]) ** 2
                + (c[:, 2] - p["z"][i]) ** 2
            )
            assert cids[i] == np.argmin(d)

    def test_writes_mapped_flag(self):
        assert get_app("kmeans").writes_mapped


class TestWordCountSpecifics:
    def test_counts_sum_to_word_count(self):
        app = get_app("wordcount")
        data = app.generate(n_bytes=50_000, seed=5)
        counts = app.reference(data)
        assert counts.sum() == data.meta["n_words"]

    def test_known_text(self):
        import numpy as np
        from repro.apps.wordcount import BYTES, WordCountApp

        app = WordCountApp()
        text = np.frombuffer(b"aa bb aa cc aa bb ", dtype=np.uint8)
        arr = np.zeros(text.size, dtype=BYTES.numpy_dtype())
        arr["byte"] = text
        from repro.apps.base import AppData

        data = AppData(
            app="wordcount",
            mapped={"text": arr},
            schemas={"text": BYTES},
            primary="text",
            meta={"avg_record": 3.0, "n_words": 6},
        )
        counts = app.reference(data)
        assert counts.sum() == 6
        assert sorted(counts[counts > 0].tolist()) == [1, 2, 3]


class TestNetflixSpecifics:
    def test_correlations_bounded(self):
        app = get_app("netflix")
        data = app.generate(n_bytes=200_000, seed=9)
        corr = app.reference(data)
        assert np.all(corr <= 1.0 + 1e-9)
        assert np.all(corr >= -1.0 - 1e-9)

    def test_correlated_generator_yields_positive_mass(self):
        app = get_app("netflix")
        data = app.generate(n_bytes=400_000, seed=9)
        corr = app.reference(data)
        # ratings share a movie-quality component -> some positive correlation
        assert corr[corr != 0].size > 0


class TestOpinionSpecifics:
    def test_score_changes_with_dictionaries(self):
        from repro.apps.opinion import OpinionFinderApp

        a = OpinionFinderApp(dict_frac=0.02)
        b = OpinionFinderApp(dict_frac=0.2)
        out_a = a.reference(a.generate(100_000, seed=2))
        out_b = b.reference(b.generate(100_000, seed=2))
        assert out_a != out_b


class TestDnaSpecifics:
    def test_table_counts_all_fragments(self):
        app = get_app("dna")
        data = app.generate(200_000, seed=4)
        out = app.reference(data)
        assert out["table"].sum() == app.n_units(data)

    def test_repeated_fragments_detected(self):
        app = get_app("dna")
        data = app.generate(200_000, seed=4)
        out = app.reference(data)
        assert out["extendable"] > 0  # shotgun overlap duplicates prefixes


class TestMastercardSpecifics:
    def test_plain_and_indexed_agree(self):
        plain = get_app("mastercard")
        idx = get_app("mastercard_indexed")
        d1 = plain.generate(250_000, seed=6)
        d2 = idx.generate(250_000, seed=6)
        out1 = plain.reference(d1)
        out2 = idx.reference(d2)
        np.testing.assert_array_equal(out1, out2)

    def test_target_merchant_not_counted(self):
        app = get_app("mastercard")
        data = app.generate(250_000, seed=6)
        counts = app.reference(data)
        assert counts[data.params["target"]] == 0

    def test_counts_consistent_with_parsed_view(self):
        app = get_app("mastercard")
        data = app.generate(250_000, seed=6)
        counts = app.reference(data)
        cards = data.meta["cards"]
        merchants = data.meta["merchants"]
        target = data.params["target"]
        customers = np.zeros(1 << 14, dtype=bool)
        customers[cards[merchants == target]] = True
        expected = np.zeros(1 << 10, dtype=np.int64)
        mask = customers[cards] & (merchants != target)
        np.add.at(expected, merchants[mask], 1)
        np.testing.assert_array_equal(counts, expected)

    def test_record_index_matches_text(self):
        app = get_app("mastercard")
        data = app.generate(100_000, seed=1)
        text = data.mapped["transactions"]["byte"]
        starts = data.meta["record_starts"]
        # every record start follows a separator (or is position 0)
        assert starts[0] == 0
        assert np.all(text[starts[1:] - 1] == ord(";"))
