"""Shared fixtures: keep the persistent run cache out of the repo.

``sweep(cache=True)`` (and the ``sweep`` CLI) write to the on-disk tier
(``repro.bench.sweep.DiskCache``), whose default root is ``.repro-cache``
under the current directory. Point it at a session-scoped temp dir so test
runs are hermetic — no cross-run reuse, nothing left in the working tree.
Tests that exercise the disk tier explicitly override ``REPRO_CACHE_DIR``
themselves with ``monkeypatch``.
"""

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_disk_cache(tmp_path_factory):
    cache_root = tmp_path_factory.mktemp("repro-cache")
    mp = pytest.MonkeyPatch()
    mp.setenv("REPRO_CACHE_DIR", str(cache_root))
    yield
    mp.undo()
