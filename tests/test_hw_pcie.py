"""Tests for the PCIe link / DMA engine model, including in-order delivery."""

import pytest

from repro.errors import HardwareError
from repro.hw.pcie import D2H, H2D, DmaEngine, PcieLink, TransferRequest
from repro.hw.spec import PCIE_GEN3_X16
from repro.sim import Environment, Flag, TraceRecorder
from repro.units import MiB


def make_link(trace=None):
    env = Environment()
    return env, PcieLink(env, PCIE_GEN3_X16, trace=trace)


class TestPcieLink:
    def test_single_transfer_duration(self):
        env, link = make_link()
        done = link.transfer(TransferRequest(16 * MiB, H2D))
        env.run()
        assert env.now == pytest.approx(link.transfer_time(16 * MiB))

    def test_same_direction_serializes(self):
        env, link = make_link()
        link.transfer(TransferRequest(16 * MiB, H2D))
        link.transfer(TransferRequest(16 * MiB, H2D))
        env.run()
        assert env.now == pytest.approx(2 * link.transfer_time(16 * MiB))

    def test_opposite_directions_overlap(self):
        env, link = make_link()
        link.transfer(TransferRequest(16 * MiB, H2D))
        link.transfer(TransferRequest(16 * MiB, D2H))
        env.run()
        assert env.now == pytest.approx(link.transfer_time(16 * MiB))

    def test_byte_accounting(self):
        env, link = make_link()
        link.transfer(TransferRequest(1000, H2D))
        link.transfer(TransferRequest(500, D2H))
        env.run()
        assert link.bytes_moved[H2D] == 1000
        assert link.bytes_moved[D2H] == 500
        assert link.transfer_count == {H2D: 1, D2H: 1}

    def test_pageable_slower_than_pinned(self):
        env, link = make_link()
        assert link.transfer_time(16 * MiB, pinned=False) > link.transfer_time(
            16 * MiB, pinned=True
        )

    def test_trace_records_intervals(self):
        trace = TraceRecorder()
        env, link = make_link(trace)
        link.transfer(TransferRequest(1 * MiB, H2D, label="chunk0"))
        env.run()
        ivs = trace.by_track("pcie-h2d")
        assert len(ivs) == 1
        assert ivs[0].label == "chunk0"
        assert ivs[0].meta["nbytes"] == 1 * MiB

    def test_invalid_direction_rejected(self):
        with pytest.raises(HardwareError):
            TransferRequest(100, "sideways")


class TestDmaEngineOrdering:
    def test_flag_set_after_data_lands(self):
        """The trailing-flag trick: flag fires only after the data DMA."""
        env, link = make_link()
        dma = DmaEngine(link)
        flag = Flag(env)
        seen = []

        def consumer(env):
            yield flag.wait()
            seen.append(env.now)

        env.process(consumer(env))
        dma.copy_with_flag(16 * MiB, flag, H2D)
        env.run()
        data_t = link.transfer_time(16 * MiB)
        assert seen and seen[0] >= data_t

    def test_fifo_order_preserved(self):
        """Three queued transfers complete in submission order."""
        env, link = make_link()
        dma = DmaEngine(link)
        completions = []

        def track(env, ev, tag):
            yield ev
            completions.append(tag)

        e1 = dma.copy_async(8 * MiB, H2D, label="a")
        e2 = dma.copy_async(1, H2D, label="b")
        e3 = dma.copy_async(4 * MiB, H2D, label="c")
        for ev, tag in [(e1, "a"), (e2, "b"), (e3, "c")]:
            env.process(track(env, ev, tag))
        env.run()
        assert completions == ["a", "b", "c"]

    def test_flag_waits_behind_earlier_queue_entries(self):
        """A flag queued after two data DMAs waits for both (in-order)."""
        env, link = make_link()
        dma = DmaEngine(link)
        flag = Flag(env)
        dma.copy_async(16 * MiB, H2D)
        dma.copy_with_flag(16 * MiB, flag, H2D)
        t_flag = []

        def consumer(env):
            yield flag.wait()
            t_flag.append(env.now)

        env.process(consumer(env))
        env.run()
        assert t_flag[0] >= 2 * link.transfer_time(16 * MiB)
