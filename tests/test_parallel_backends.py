"""Backend equivalence and persistent-cache tests.

The contract under test: a sweep or chaos run produces *identical* results
— point order, tie-broken winner, report fingerprint — whether it ran
serial, on a thread pool, or across a process pool; and the on-disk cache
tier lets a fresh process replay a sweep with zero engine runs.
"""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.apps import get_app
from repro.apps.base import AppData, data_fingerprint, dataset_key
from repro.bench.jobs import (
    JobSpec,
    dataset_spec,
    engine_from_spec,
    engine_to_spec,
    run_jobspec,
)
from repro.bench.sweep import RunCache, sweep
from repro.engines import (
    BigKernelEngine,
    BigKernelFeatures,
    CpuMtEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
)
from repro.errors import ReproError
from repro.faults.chaos import default_fault_grid, run_chaos
from repro.units import MiB

SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))


class TestDatasetKey:
    def test_stable_across_regeneration(self):
        app = get_app("kmeans")
        a = app.generate(n_bytes=1 * MiB, seed=5)
        b = app.generate(n_bytes=1 * MiB, seed=5)
        assert dataset_key(a) == dataset_key(b)
        # the identity fingerprint must still tell the instances apart
        assert data_fingerprint(a) != data_fingerprint(b)

    def test_differs_by_seed_and_size(self):
        app = get_app("kmeans")
        base = dataset_key(app.generate(n_bytes=1 * MiB, seed=5))
        assert base != dataset_key(app.generate(n_bytes=1 * MiB, seed=6))
        assert base != dataset_key(app.generate(n_bytes=2 * MiB, seed=5))

    def test_recipe_key_for_registry_apps(self):
        data = get_app("wordcount").generate(n_bytes=1 * MiB, seed=3)
        kind, app_name, seed, n_bytes, version = dataset_key(data)
        assert kind == "datagen"
        assert app_name == "wordcount"
        assert seed == 3 and n_bytes == 1 * MiB

    def test_content_hash_fallback_for_handmade_data(self):
        def handmade():
            return AppData(
                app="handmade",
                mapped={"x": np.arange(64, dtype=np.uint8)},
                schemas={},
                params={"k": 2},
            )

        a, b = handmade(), handmade()
        assert dataset_key(a) == dataset_key(b)
        assert dataset_key(a)[0] == "sha256"
        c = handmade()
        c.mapped["x"][0] += 1
        assert dataset_key(c) != dataset_key(a)


class TestJobSpecs:
    def test_engine_spec_roundtrip_variants(self):
        for features in (
            BigKernelFeatures.full(),
            BigKernelFeatures.overlap_only(),
            BigKernelFeatures.with_reduction(),
            BigKernelFeatures(reduce_volume=False, coalesce=True),
        ):
            engine = BigKernelEngine(features=features)
            spec = engine_to_spec(engine)
            rebuilt = engine_from_spec(spec)
            assert rebuilt.cache_key == engine.cache_key

    def test_stock_engine_roundtrip(self):
        spec = engine_to_spec(CpuMtEngine())
        assert engine_from_spec(spec).name == "cpu_mt"

    def test_custom_engine_not_speccable(self):
        class Weird(BigKernelEngine):
            name = "weird"

        assert engine_to_spec(Weird()) is None

    def test_run_jobspec_matches_direct_run(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=1 * MiB, seed=9)
        engine = BigKernelEngine()
        cfg = EngineConfig(chunk_bytes=512 * 1024)
        spec = JobSpec(dataset_spec(app, data), engine_to_spec(engine), cfg)
        assert run_jobspec(spec).sim_time == engine.run(app, data, cfg).sim_time

    def test_dataset_spec_requires_recipe(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=1 * MiB, seed=9)
        data.meta.pop("datagen")
        assert dataset_spec(app, data) is None

    def test_multigpu_engine_spec_roundtrips_full_config(self):
        """Every fabric knob that changes the timeline must survive the
        worker round-trip — a stale variant here would silently reprice
        cells under the process backend."""
        from repro.engines.multigpu import MultiGpuBigKernelEngine

        for n, features, shared, numa in (
            (2, BigKernelFeatures.full(), False, True),
            (4, BigKernelFeatures.overlap_only(), True, True),
            (8, BigKernelFeatures.with_reduction(), True, False),
            (3, BigKernelFeatures.full(), False, False),
        ):
            engine = MultiGpuBigKernelEngine(
                n_gpus=n,
                features=features,
                shared_link=shared,
                numa_aware=numa,
            )
            rebuilt = engine_from_spec(engine_to_spec(engine))
            assert type(rebuilt) is MultiGpuBigKernelEngine
            assert rebuilt.n_gpus == n
            assert rebuilt.features == features
            assert rebuilt.shared_link == shared
            assert rebuilt.numa_aware == numa
            assert rebuilt.name == engine.name
            assert rebuilt.cache_key == engine.cache_key

    def test_multigpu_malformed_variant_rejected(self):
        from repro.bench.jobs import EngineSpec
        from repro.engines.multigpu import MultiGpuBigKernelEngine

        with pytest.raises(ReproError):
            engine_from_spec(
                EngineSpec(name=MultiGpuBigKernelEngine.name, variant="full")
            )

    def test_run_jobspec_matches_direct_multigpu_run(self):
        """A multi-GPU cell replayed by a pool worker is bit-identical —
        sim_time, byte counters, and merged output — to the direct run."""
        from repro.engines.multigpu import MultiGpuBigKernelEngine

        app = get_app("wordcount")
        data = app.generate(n_bytes=1 * MiB, seed=9)
        engine = MultiGpuBigKernelEngine(3, shared_link=True, numa_aware=False)
        cfg = EngineConfig(chunk_bytes=256 * 1024)
        spec = JobSpec(dataset_spec(app, data), engine_to_spec(engine), cfg)
        replayed = run_jobspec(spec)
        direct = engine.run(app, data, cfg)
        assert replayed.sim_time == direct.sim_time
        assert replayed.metrics.bytes_h2d == direct.metrics.bytes_h2d
        assert replayed.metrics.bytes_d2h == direct.metrics.bytes_d2h
        assert app.outputs_equal(direct.output, replayed.output)


class TestSweepBackendEquivalence:
    GRID = {"chunk_bytes": [512 * 1024, 1 * MiB], "num_blocks": [8, 16]}

    @pytest.fixture(scope="class")
    def workload(self):
        app = get_app("kmeans")
        return app, app.generate(n_bytes=2 * MiB, seed=3)

    def _run(self, workload, **kwargs):
        app, data = workload
        res = sweep(
            BigKernelEngine(), app, data, EngineConfig(), self.GRID, **kwargs
        )
        return [(p.params, p.sim_time) for p in res.points], res.best.params

    def test_backends_agree(self, workload):
        serial = self._run(workload)
        thread = self._run(workload, jobs=2, backend="thread")
        proc = self._run(workload, jobs=2, backend="process")
        auto = self._run(workload, jobs=2, backend="auto")
        assert serial == thread == proc == auto

    def test_tie_break_plateau_is_backend_invariant(self):
        """Two chunk sizes that both mean 'one chunk' tie on sim_time; every
        backend must break the tie the same way (smallest chunk_bytes)."""
        app = get_app("wordcount")
        data = app.generate(n_bytes=1 * MiB, seed=3)
        grid = {"chunk_bytes": [2 * MiB, 4 * MiB]}
        results = [
            sweep(GpuDoubleBufferEngine(), app, data, EngineConfig(), grid,
                  **kw)
            for kw in ({}, {"jobs": 2, "backend": "thread"},
                       {"jobs": 2, "backend": "process"})
        ]
        times = {p.sim_time for p in results[0].points}
        assert len(times) == 1  # genuinely a plateau
        for res in results:
            assert res.best.params == {"chunk_bytes": 2 * MiB}
            assert [p.sim_time for p in res.points] == [
                p.sim_time for p in results[0].points
            ]

    def test_process_backend_rejects_unspeccable(self, workload):
        app, data = workload

        class Custom(BigKernelEngine):
            name = "custom"

        with pytest.raises(ReproError):
            sweep(Custom(), app, data, EngineConfig(), self.GRID,
                  jobs=2, backend="process")

    def test_unknown_backend_rejected(self, workload):
        app, data = workload
        with pytest.raises(ReproError):
            sweep(BigKernelEngine(), app, data, EngineConfig(), self.GRID,
                  backend="distributed")


class TestChaosBackendEquivalence:
    def test_fingerprint_is_backend_invariant(self):
        kwargs = dict(quick=True, plans=default_fault_grid(7)[:2])
        serial = run_chaos(**kwargs)
        thread = run_chaos(jobs=2, backend="thread", **kwargs)
        proc = run_chaos(jobs=2, backend="process", **kwargs)
        assert serial.fingerprint() == thread.fingerprint()
        assert serial.fingerprint() == proc.fingerprint()
        order = [(c.app, c.engine, c.plan) for c in serial.cells]
        assert order == [(c.app, c.engine, c.plan) for c in proc.cells]

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError):
            run_chaos(quick=True, backend="bogus")


_SWEEP_SCRIPT = """\
import json, sys
from repro.apps import get_app
from repro.bench.sweep import RUN_CACHE, sweep
from repro.engines import BigKernelEngine, EngineConfig

if sys.argv[1] == "replay":
    def poisoned(self, app, data, config):
        raise SystemExit("engine ran despite a warm disk cache")
    BigKernelEngine.run = poisoned

app = get_app("kmeans")
data = app.generate(n_bytes=1 << 20, seed=11)
res = sweep(
    BigKernelEngine(), app, data, EngineConfig(),
    {"chunk_bytes": [256 * 1024, 512 * 1024], "num_blocks": [8, 16]},
    cache=True,
)
print(json.dumps({
    "times": [p.sim_time for p in res.points],
    "best": sorted(res.best.params.items()),
    "disk_hits": RUN_CACHE.disk_hits,
}))
"""


class TestDiskCacheAcrossProcesses:
    def test_fresh_process_replays_with_zero_engine_runs(self, tmp_path):
        """Process 1 populates the disk tier; process 2 (fresh memory tier,
        regenerated dataset, engine poisoned to die on use) must resolve
        every point from disk and reproduce the winner exactly."""
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(tmp_path / "cache")
        env.pop("REPRO_NO_DISK_CACHE", None)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")

        def run(mode):
            proc = subprocess.run(
                [sys.executable, "-c", _SWEEP_SCRIPT, mode],
                capture_output=True, text=True, env=env, timeout=300,
            )
            assert proc.returncode == 0, proc.stderr
            return json.loads(proc.stdout)

        first = run("populate")
        assert first["disk_hits"] == 0
        second = run("replay")
        assert second["disk_hits"] == 4
        assert second["times"] == first["times"]
        assert second["best"] == first["best"]

    def test_memory_tier_promotion(self, tmp_path, monkeypatch):
        """A disk hit lands in the memory LRU: the second lookup under the
        same identity key never touches the disk again."""
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        monkeypatch.delenv("REPRO_NO_DISK_CACHE", raising=False)
        from repro.bench.sweep import DiskCache

        cache = RunCache(disk=DiskCache())
        app = get_app("kmeans")
        data = app.generate(n_bytes=1 * MiB, seed=2)
        engine = BigKernelEngine()
        cfg = EngineConfig(chunk_bytes=512 * 1024)
        key = RunCache.key(engine, app, data, cfg)
        from repro.bench.sweep import content_run_key

        disk_key = content_run_key(engine, app, data, cfg)
        result = engine.run(app, data, cfg)
        cache.put(key, result, disk_key)

        fresh = RunCache(disk=cache.disk)
        assert fresh.get(key, disk_key) is not None
        assert fresh.disk_hits == 1
        disk_reads = cache.disk.hits
        assert fresh.get(key, disk_key) is not None
        assert cache.disk.hits == disk_reads  # served from memory


class TestAutoBackendHeuristic:
    """backend="auto" must not pick processes where they cannot win:
    1-2 core boxes and tiny grids (BENCH_pipeline.json once recorded the
    process backend at 0.35x on a 1-core runner)."""

    def _sweep_resolve(self, monkeypatch, cores, **kwargs):
        from repro.bench.sweep import _resolve_backend

        monkeypatch.setattr(os, "cpu_count", lambda: cores)
        app = get_app("kmeans")
        data = app.generate(n_bytes=1 * MiB, seed=3)
        defaults = dict(
            backend="auto",
            engine=BigKernelEngine(),
            app=app,
            data=data,
            config=EngineConfig(fastpath=False),  # DES-bound
            jobs=4,
            n_points=8,
        )
        defaults.update(kwargs)
        return _resolve_backend(**defaults)

    def test_sweep_auto_prefers_process_when_parallel_pays(self, monkeypatch):
        assert self._sweep_resolve(monkeypatch, cores=8) == "process"

    @pytest.mark.parametrize("cores", [1, 2])
    def test_sweep_auto_prefers_thread_on_small_boxes(self, monkeypatch, cores):
        assert self._sweep_resolve(monkeypatch, cores=cores) == "thread"

    def test_sweep_auto_prefers_thread_on_tiny_grids(self, monkeypatch):
        assert self._sweep_resolve(monkeypatch, cores=8, n_points=2) == "thread"

    def test_sweep_explicit_process_honored_on_small_boxes(self, monkeypatch):
        assert (
            self._sweep_resolve(monkeypatch, cores=1, backend="process")
            == "process"
        )

    def _chaos_resolve(self, monkeypatch, cores, backend="auto", n_apps=2):
        from repro.faults.chaos import _resolve_backend

        monkeypatch.setattr(os, "cpu_count", lambda: cores)
        apps = [get_app("kmeans"), get_app("wordcount")][:n_apps]
        engines = [BigKernelEngine(), GpuDoubleBufferEngine()]
        return _resolve_backend(backend, jobs=4, apps=apps, engines=engines)

    def test_chaos_auto_prefers_process_when_parallel_pays(self, monkeypatch):
        assert self._chaos_resolve(monkeypatch, cores=8) == "process"

    @pytest.mark.parametrize("cores", [1, 2])
    def test_chaos_auto_prefers_thread_on_small_boxes(self, monkeypatch, cores):
        assert self._chaos_resolve(monkeypatch, cores=cores) == "thread"

    def test_chaos_auto_prefers_thread_on_tiny_grids(self, monkeypatch):
        assert self._chaos_resolve(monkeypatch, cores=8, n_apps=1) == "thread"

    def test_chaos_explicit_process_honored_on_small_boxes(self, monkeypatch):
        assert (
            self._chaos_resolve(monkeypatch, cores=2, backend="process")
            == "process"
        )
