"""Seeded fuzz harness end-to-end: random IR programs through the compiler
round trip, random pipeline schedules through the invariant checkers.

Iteration counts are bounded for CI; the harness itself is
Hypothesis-free (plain ``random.Random``), so these run even where
Hypothesis is unavailable.
"""

import random

import pytest

from repro.errors import VerificationError
from repro.kernelc.validate import validate_kernel
from repro.runtime.pipeline import PipelineConfig
from repro.verify.fuzz import (
    FuzzFailure,
    check_kernel_roundtrip,
    check_pipeline_case,
    random_chunk_schedule,
    random_kernel,
    random_pipeline_config,
    run_fuzz,
)

CI_ITERATIONS = 12


def test_fuzz_loop_end_to_end():
    report = run_fuzz(
        ir_iterations=CI_ITERATIONS,
        pipeline_iterations=CI_ITERATIONS,
        seed=42,
    )
    assert report.ok, report.summary()
    assert report.ir_cases == report.pipeline_cases == CI_ITERATIONS
    # the grammar is sliceable-by-construction most of the time; make sure
    # the sliced path (not just the fallback) is actually exercised
    assert report.ir_sliced > 0
    assert f"seed=42" in report.summary()


def test_fuzz_is_deterministic():
    a = run_fuzz(ir_iterations=5, pipeline_iterations=5, seed=7)
    b = run_fuzz(ir_iterations=5, pipeline_iterations=5, seed=7)
    assert a.summary() == b.summary()
    assert a.ir_sliced == b.ir_sliced


def test_random_kernels_are_valid():
    for case in range(10):
        rng = random.Random(f"valid-{case}")
        validate_kernel(random_kernel(rng))


def test_roundtrip_single_case():
    rng = random.Random("single")
    kernel = random_kernel(rng)
    check_kernel_roundtrip(kernel, data_seed=5)  # raises on divergence


def test_random_pipeline_configs_are_legal():
    for case in range(10):
        rng = random.Random(f"cfg-{case}")
        cfg = random_pipeline_config(rng)
        assert isinstance(cfg, PipelineConfig) and cfg.ring_depth >= 2
        chunks = random_chunk_schedule(rng)
        assert chunks and all(c.xfer_bytes > 0 for c in chunks)


def test_pipeline_single_case():
    check_pipeline_case(random.Random("pipe"))  # raises on violation


def test_failure_record_carries_reproducer():
    f = FuzzFailure("ir", seed=9, case=3, message="boom", program="kernel x")
    s = str(f)
    assert "seed=9" in s and "case=3" in s and "kernel x" in s


def test_report_raise_if_failed():
    report = run_fuzz(ir_iterations=1, pipeline_iterations=0, seed=1)
    report.failures.append(FuzzFailure("ir", 1, 0, "synthetic"))
    with pytest.raises(VerificationError, match="synthetic"):
        report.raise_if_failed()
