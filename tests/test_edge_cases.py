"""Edge cases and global invariants: tiny datasets, single chunks,
simulator determinism, minimal configurations."""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.bench import BenchSettings, run_matrix
from repro.engines import (
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.units import MiB

TINY_CFG = EngineConfig(chunk_bytes=64 * 1024)


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
class TestTinyDatasets:
    def test_minimal_dataset_runs_everywhere(self, name):
        """A dataset of a few records still flows through every scheme."""
        app = get_app(name)
        data = app.generate(n_bytes=4096, seed=1)
        engines = [
            CpuSerialEngine(),
            GpuSingleBufferEngine(),
            GpuDoubleBufferEngine(),
            BigKernelEngine(),
        ]
        results = [e.run(app, data, TINY_CFG) for e in engines]
        for r in results[1:]:
            assert app.outputs_equal(results[0].output, r.output), r.engine
        assert all(r.sim_time > 0 for r in results)

    def test_single_chunk_dataset(self, name):
        """Dataset smaller than one chunk: exactly one pipeline chunk per
        pass."""
        app = get_app(name)
        data = app.generate(n_bytes=8192, seed=2)
        res = BigKernelEngine().run(app, data, EngineConfig(chunk_bytes=1 * MiB))
        assert res.metrics.n_chunks == app.n_passes


class TestDeterminism:
    def test_same_seed_same_everything(self):
        """The whole matrix is bit-deterministic: same seeds -> identical
        simulated times and byte counts."""
        settings = BenchSettings(
            data_bytes=1 * MiB, seed=3, config=EngineConfig(chunk_bytes=256 * 1024)
        )
        apps = [get_app("kmeans"), get_app("wordcount")]
        m1 = run_matrix(settings, apps=apps)
        m2 = run_matrix(settings, apps=[get_app("kmeans"), get_app("wordcount")])
        for key, r1 in m1.results.items():
            r2 = m2.results[key]
            assert r1.sim_time == r2.sim_time, key
            assert r1.metrics.bytes_h2d == r2.metrics.bytes_h2d, key
            assert r1.metrics.n_chunks == r2.metrics.n_chunks, key

    def test_bigkernel_trace_deterministic(self):
        app = get_app("netflix")
        data = app.generate(n_bytes=1 * MiB, seed=5)
        # force the DES: the analytic fast path intentionally records
        # no trace (repro.runtime.fastpath)
        cfg = EngineConfig(chunk_bytes=256 * 1024, fastpath=False)
        t1 = BigKernelEngine().run(app, data, cfg).trace
        t2 = BigKernelEngine().run(app, data, cfg).trace
        assert len(t1) == len(t2)
        for a, b in zip(t1, t2):
            assert (a.track, a.label, a.start, a.end) == (
                b.track,
                b.label,
                b.start,
                b.end,
            )


class TestScaleLinearity:
    def test_sim_time_roughly_linear_in_data(self):
        """Doubling the data roughly doubles every scheme's simulated time
        (the justification for scaling the paper's GB-scale datasets down)."""
        app = get_app("kmeans")
        cfg = EngineConfig(chunk_bytes=256 * 1024)
        small = app.generate(n_bytes=2 * MiB, seed=1)
        large = app.generate(n_bytes=4 * MiB, seed=1)
        for engine in (CpuSerialEngine(), GpuSingleBufferEngine(), BigKernelEngine()):
            t_small = engine.run(app, small, cfg).sim_time
            t_large = engine.run(app, large, cfg).sim_time
            assert t_large / t_small == pytest.approx(2.0, rel=0.25), engine.name

    def test_speedups_stable_across_scale(self):
        """The headline ratio barely moves with dataset size — the property
        that makes the 200x-scaled reproduction meaningful."""
        app = get_app("netflix")
        cfg = EngineConfig(chunk_bytes=256 * 1024)
        ratios = []
        for mib in (2, 8):
            data = app.generate(n_bytes=mib * MiB, seed=1)
            bk = BigKernelEngine().run(app, data, cfg).sim_time
            db = GpuDoubleBufferEngine().run(app, data, cfg).sim_time
            ratios.append(db / bk)
        assert ratios[0] == pytest.approx(ratios[1], rel=0.25)


class TestConfigBoundaries:
    def test_one_block_config(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=512 * 1024, seed=0)
        cfg = EngineConfig(chunk_bytes=64 * 1024, num_blocks=1, compute_threads=32)
        res = BigKernelEngine().run(app, data, cfg)
        assert res.metrics.notes["active_blocks"] == 1

    def test_huge_block_request_clamped(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=512 * 1024, seed=0)
        cfg = EngineConfig(chunk_bytes=64 * 1024, num_blocks=4096)
        res = BigKernelEngine().run(app, data, cfg)
        # 512 threads/block, 2048/SM, 8 SMs -> 32 active
        assert res.metrics.notes["active_blocks"] == 32
