"""Differential oracle: full engine-vs-cpu_serial matrix over small inputs.

Parametrized per (app, engine) so a failure names the exact cell; a
module-scoped sweep runs each engine once per app.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS
from repro.engines import ALL_ENGINES, CpuSerialEngine, EngineConfig
from repro.errors import VerificationError
from repro.units import MiB
from repro.verify.differential import (
    DifferentialReport,
    DiffEntry,
    compare_outputs,
    describe_output,
    run_differential,
)

DATA_BYTES = 1 * MiB
CFG = EngineConfig(chunk_bytes=256 * 1024)
APPS = [cls.name for cls in ALL_APPS]
ENGINES = [cls.name for cls in ALL_ENGINES if cls.name != "cpu_serial"]


@pytest.fixture(scope="module")
def report():
    return run_differential(data_bytes=DATA_BYTES, seed=11, config=CFG)


@pytest.mark.parametrize("app_name", APPS)
@pytest.mark.parametrize("engine_name", ENGINES)
def test_engine_matches_oracle(report, app_name, engine_name):
    entry = next(
        e for e in report.entries if (e.app, e.engine) == (app_name, engine_name)
    )
    assert entry.ok, f"({app_name}, {engine_name}): {entry.detail}"


def test_matrix_is_complete(report):
    assert len(report.entries) == len(APPS) * (len(ENGINES) + 1)
    assert report.ok
    assert "0 mismatch(es)" in report.summary()


def test_bigkernel_cells_carry_invariant_reports(report):
    cells = [e for e in report.entries if e.engine == "bigkernel"]
    assert cells and all(e.invariants is not None and e.invariants.ok for e in cells)


def test_mismatch_report_names_the_pair():
    """A corrupted cell produces a structured report naming (app, engine)."""
    report = DifferentialReport()
    report.entries.append(DiffEntry("kmeans", "bigkernel", True))
    report.entries.append(
        DiffEntry("dna", "gpu_double", False, detail="oracle=... vs engine=...")
    )
    assert not report.ok
    assert [("dna", "gpu_double")] == [
        (e.app, e.engine) for e in report.mismatches
    ]
    with pytest.raises(VerificationError, match=r"\(dna, gpu_double\)"):
        report.raise_if_failed()


def test_compare_outputs_reports_structure():
    app = ALL_APPS[0]()
    ok, detail = compare_outputs(app, np.arange(4.0), np.arange(4.0) + 1)
    assert not ok and "ndarray" in detail


def test_describe_output_shapes():
    assert "ndarray(3,)" in describe_output(np.zeros(3))
    assert describe_output({"a": 1}).startswith("dict(1")
    assert describe_output([1, 2]).startswith("list(len=2)")


def test_launch_verify_hook():
    """bigkernel_launch(verify=True) invariant-checks the timeline and
    replays the kernel on the serial oracle — with a writable mapped array,
    so the pre-launch state rewind is exercised too."""
    from tests.test_runtime_launcher import CFG as LAUNCH_CFG, kmeans_setup
    from repro.runtime import LaunchSpec, bigkernel_launch

    src, data, reg, fns = kmeans_setup(n=600, seed=2)
    expected = src.reference(src.generate(48 * 600, seed=2))
    res = bigkernel_launch(
        src.kernel(),
        reg,
        resident={"clusters": data.resident["clusters"]},
        params=dict(data.params),
        device_fns=fns,
        config=LAUNCH_CFG,
        spec=LaunchSpec(
            make_output=lambda ctx: ctx.mapped["particles"]["cid"].copy()
        ),
        verify=True,
    )
    np.testing.assert_array_equal(res.output, expected)


def test_harness_check_invariants_hook():
    """BenchSettings(check_invariants=True) runs the checkers inside
    run_matrix without disturbing the results."""
    from repro.bench.harness import BenchSettings, run_matrix

    settings = BenchSettings(
        data_bytes=512 * 1024, config=CFG, check_invariants=True
    )
    matrix = run_matrix(settings, apps=[ALL_APPS[0]()])
    assert matrix.get(ALL_APPS[0].name, "bigkernel").sim_time > 0


def test_oracle_added_when_absent():
    """An engine list without the oracle still gets diffed against it."""
    app = ALL_APPS[0]()
    rep = run_differential(
        data_bytes=512 * 1024,
        config=CFG,
        apps=[app],
        engines=[CpuSerialEngine()],
        check_invariants=False,
    )
    assert rep.ok and len(rep.entries) == 1
