"""Tests for units/formatting helpers, error hierarchy, gpu_common, and
chrome-trace export."""

import json

import pytest

from repro import errors
from repro.apps import get_app
from repro.engines.gpu_common import (
    SLAB_STRIDE,
    addr_gen_chunk_cost,
    chunk_plan,
    kernel_chunk_cost,
    original_access_pattern,
)
from repro.sim.trace import TraceRecorder
from repro.units import (
    GB,
    GiB,
    KiB,
    MiB,
    fmt_bandwidth,
    fmt_bytes,
    fmt_speedup,
    fmt_time,
)


class TestUnits:
    def test_binary_sizes(self):
        assert KiB == 1024 and MiB == 1024**2 and GiB == 1024**3

    @pytest.mark.parametrize(
        "n,expected",
        [
            (512, "512 B"),
            (1536, "1.50 KiB"),
            (3 * MiB, "3.00 MiB"),
            (2 * GiB, "2.00 GiB"),
        ],
    )
    def test_fmt_bytes(self, n, expected):
        assert fmt_bytes(n) == expected

    @pytest.mark.parametrize(
        "t,expected",
        [
            (2.5, "2.500 s"),
            (0.0031, "3.100 ms"),
            (4.2e-6, "4.200 us"),
            (7e-9, "7.0 ns"),
        ],
    )
    def test_fmt_time(self, t, expected):
        assert fmt_time(t) == expected

    def test_fmt_bandwidth(self):
        assert fmt_bandwidth(15.75 * GB) == "15.75 GB/s"

    def test_fmt_speedup(self):
        assert fmt_speedup(2.6) == "2.60x"


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj not in (errors.ReproError,):
                    assert issubclass(obj, errors.ReproError), name

    def test_interrupt_carries_cause(self):
        it = errors.Interrupt(cause="stop")
        assert it.cause == "stop"

    def test_slicing_is_compiler_error(self):
        assert issubclass(errors.SlicingError, errors.CompilerError)


class TestGpuCommon:
    def test_chunk_plan_rounding(self):
        upc, n = chunk_plan(total_units=100, chunk_bytes=1024, bytes_per_unit=48)
        assert upc == 21
        assert n == 5  # ceil(100/21)

    def test_chunk_plan_tiny_units(self):
        upc, n = chunk_plan(10, 1024, 0.5)
        assert upc == 2048 and n == 1

    def test_byte_walk_apps_get_slab_stride(self):
        app = get_app("wordcount")
        data = app.generate(200_000, seed=0)
        p = original_access_pattern(app.access_profile(data))
        assert p.record_bytes == SLAB_STRIDE

    def test_fixed_record_apps_get_record_stride(self):
        app = get_app("kmeans")
        data = app.generate(200_000, seed=0)
        p = original_access_pattern(app.access_profile(data))
        assert p.record_bytes == 48

    def test_kernel_cost_scales_with_divergence(self):
        app = get_app("wordcount")
        data = app.generate(200_000, seed=0)
        profile = app.access_profile(data)
        c = kernel_chunk_cost(profile, 1000, coalesced=True)
        assert c.n_ops == pytest.approx(
            1000 * profile.gpu_ops_per_record * profile.gpu_divergence
        )

    def test_coalesced_cost_has_higher_efficiency(self):
        app = get_app("kmeans")
        data = app.generate(200_000, seed=0)
        profile = app.access_profile(data)
        orig = kernel_chunk_cost(profile, 1000, coalesced=False)
        coal = kernel_chunk_cost(profile, 1000, coalesced=True)
        assert coal.efficiency > orig.efficiency

    def test_addr_gen_cost_uses_emitted_addresses(self):
        app = get_app("netflix")
        data = app.generate(200_000, seed=0)
        profile = app.access_profile(data)
        c = addr_gen_chunk_cost(profile, 1000)
        assert c.n_ops == pytest.approx(1000 * (2.0 + 3.0 * 1.0))
        assert c.global_bytes == 0.0


class TestChromeTrace:
    def test_events_structure(self):
        tr = TraceRecorder()
        tr.record("gpu", "compute", 0.0, 1e-3, chunk=0)
        tr.record("pcie-h2d", "data_transfer", 0.5e-3, 2e-3, nbytes=100)
        events = tr.to_chrome_trace()
        meta = [e for e in events if e["ph"] == "M"]
        xs = [e for e in events if e["ph"] == "X"]
        assert len(meta) == 2 and len(xs) == 2
        comp = next(e for e in xs if e["name"] == "compute")
        assert comp["ts"] == pytest.approx(0.0)
        assert comp["dur"] == pytest.approx(1000.0)  # microseconds
        assert comp["args"]["chunk"] == 0

    def test_dump_round_trip(self, tmp_path):
        tr = TraceRecorder()
        tr.record("gpu", "x", 0.0, 1.0)
        path = tmp_path / "t.json"
        tr.dump_chrome_trace(str(path))
        loaded = json.loads(path.read_text())
        assert len(loaded["traceEvents"]) == 2

    def test_tracks_share_tid(self):
        tr = TraceRecorder()
        tr.record("gpu", "a", 0, 1)
        tr.record("gpu", "b", 1, 2)
        tr.record("cpu", "c", 0, 1)
        xs = [e for e in tr.to_chrome_trace() if e["ph"] == "X"]
        tids = {e["name"]: e["tid"] for e in xs}
        assert tids["a"] == tids["b"] != tids["c"]
