"""Property-based tests of the pipeline scheduler over random workloads."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import (
    FORWARD_STAGES,
    STAGE_ADDR_GEN,
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    ChunkWork,
    PipelineConfig,
    run_pipeline,
)

HW = DEFAULT_HARDWARE

chunk_strategy = st.builds(
    lambda i, ag, asm, xfer, comp, wb, sc: ChunkWork(
        index=i,
        t_addr_gen=ag * 1e-4,
        addr_bytes_d2h=0,
        t_assembly=asm * 1e-4,
        xfer_bytes=xfer * 1024,
        t_compute=comp * 1e-4,
        write_bytes=wb * 1024,
        t_scatter=sc * 1e-5,
    ),
    st.just(0),
    st.integers(0, 10),
    st.integers(0, 10),
    st.integers(1, 2048),
    st.integers(0, 10),
    st.integers(0, 64),
    st.integers(0, 10),
)


def reindex(chunks):
    return [
        ChunkWork(
            index=i,
            t_addr_gen=c.t_addr_gen,
            addr_bytes_d2h=c.addr_bytes_d2h,
            t_assembly=c.t_assembly,
            xfer_bytes=c.xfer_bytes,
            t_compute=c.t_compute,
            write_bytes=c.write_bytes,
            t_scatter=c.t_scatter,
        )
        for i, c in enumerate(chunks)
    ]


def serial_upper_bound(chunks):
    """Sum of all stage durations plus transfers, fully serialized."""
    total = 0.0
    for c in chunks:
        total += c.t_addr_gen + c.t_assembly + c.t_compute + c.t_scatter
        total += HW.pcie.transfer_time(c.xfer_bytes)
        total += HW.pcie.transfer_time(4)  # flag
        if c.addr_bytes_d2h:
            total += HW.pcie.transfer_time(c.addr_bytes_d2h)
        if c.write_bytes:
            total += HW.pcie.transfer_time(c.write_bytes)
    return total


@given(chunks=st.lists(chunk_strategy, min_size=1, max_size=12))
@settings(max_examples=60, deadline=None)
def test_pipeline_bounds(chunks):
    """bottleneck-stage total <= makespan <= serialized sum."""
    chunks = reindex(chunks)
    res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=3, cpu_workers=2))
    lower = max(
        sum(c.t_addr_gen for c in chunks),
        sum(c.t_assembly for c in chunks),
        sum(c.t_compute for c in chunks),
        sum(HW.pcie.transfer_time(c.xfer_bytes) for c in chunks),
    )
    assert res.total_time >= lower - 1e-12
    assert res.total_time <= serial_upper_bound(chunks) + 1e-9


@given(chunks=st.lists(chunk_strategy, min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_stage_totals_conserved(chunks):
    """Each stage's busy total equals the sum of its chunk durations."""
    chunks = reindex(chunks)
    res = run_pipeline(HW, chunks)
    assert res.stage_totals.get(STAGE_ADDR_GEN, 0.0) == pytest.approx(
        sum(c.t_addr_gen for c in chunks), abs=1e-12
    )
    assert res.stage_totals.get(STAGE_ASSEMBLY, 0.0) == pytest.approx(
        sum(c.t_assembly for c in chunks), abs=1e-12
    )
    assert res.stage_totals.get(STAGE_COMPUTE, 0.0) == pytest.approx(
        sum(c.t_compute for c in chunks), abs=1e-12
    )


@given(chunks=st.lists(chunk_strategy, min_size=2, max_size=10))
@settings(max_examples=40, deadline=None)
def test_deeper_ring_never_slower(chunks):
    chunks = reindex(chunks)
    shallow = run_pipeline(HW, chunks, PipelineConfig(ring_depth=2))
    deep = run_pipeline(HW, chunks, PipelineConfig(ring_depth=8))
    assert deep.total_time <= shallow.total_time + 1e-9


@given(chunks=st.lists(chunk_strategy, min_size=2, max_size=10))
@settings(max_examples=40, deadline=None)
def test_more_cpu_workers_never_slower(chunks):
    chunks = reindex(chunks)
    one = run_pipeline(HW, chunks, PipelineConfig(cpu_workers=1))
    four = run_pipeline(HW, chunks, PipelineConfig(cpu_workers=4))
    assert four.total_time <= one.total_time + 1e-9


@given(chunks=st.lists(chunk_strategy, min_size=1, max_size=10))
@settings(max_examples=40, deadline=None)
def test_stage_order_per_chunk(chunks):
    """For every chunk: addr_gen ends before assembly starts, assembly
    before its transfer, transfer before compute."""
    chunks = reindex(chunks)
    res = run_pipeline(HW, chunks)
    by_chunk = {}
    for iv in res.trace:
        if iv.label in FORWARD_STAGES or iv.label == STAGE_TRANSFER:
            by_chunk.setdefault(iv.meta.get("chunk"), {})[iv.label] = iv
    for idx, stages in by_chunk.items():
        if idx is None:
            continue
        if STAGE_ADDR_GEN in stages and STAGE_ASSEMBLY in stages:
            assert stages[STAGE_ADDR_GEN].end <= stages[STAGE_ASSEMBLY].start + 1e-12
        if STAGE_ASSEMBLY in stages and STAGE_TRANSFER in stages:
            assert stages[STAGE_ASSEMBLY].end <= stages[STAGE_TRANSFER].start + 1e-12
        if STAGE_TRANSFER in stages and STAGE_COMPUTE in stages:
            assert stages[STAGE_TRANSFER].end <= stages[STAGE_COMPUTE].start + 1e-12


@given(
    chunks=st.lists(chunk_strategy, min_size=2, max_size=8),
    depth=st.integers(2, 4),
)
@settings(max_examples=40, deadline=None)
def test_ring_lookahead_invariant(chunks, depth):
    """addr_gen(k) never starts before compute(k - depth) has finished."""
    chunks = reindex(chunks)
    res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=depth))
    ag_start = {
        iv.meta["chunk"]: iv.start for iv in res.trace.by_label(STAGE_ADDR_GEN)
    }
    comp_end = {
        iv.meta["chunk"]: iv.end for iv in res.trace.by_label(STAGE_COMPUTE)
    }
    for k in range(depth, len(chunks)):
        assert ag_start[k] >= comp_end[k - depth] - 1e-12
