"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main

FAST = ["--data-mib", "2", "--chunk-kib", "512"]


class TestCli:
    def test_apps_lists_all_seven(self, capsys):
        assert main(["apps"]) == 0
        out = capsys.readouterr().out
        for name in ("kmeans", "wordcount", "netflix", "opinion", "dna",
                     "mastercard", "mastercard_indexed"):
            assert name in out

    def test_hw_prints_testbed(self, capsys):
        assert main(["hw"]) == 0
        out = capsys.readouterr().out
        assert "GTX 680" in out and "PCIe" in out

    def test_run_all_engines(self, capsys):
        assert main(["run", "kmeans", *FAST]) == 0
        out = capsys.readouterr().out
        assert "bigkernel" in out and "cpu_serial" in out

    def test_run_single_engine(self, capsys):
        assert main(["run", "netflix", "--engine", "bigkernel", *FAST]) == 0
        out = capsys.readouterr().out
        assert "bigkernel" in out

    def test_run_unknown_engine_fails(self, capsys):
        assert main(["run", "kmeans", "--engine", "warpdrive", *FAST]) == 2

    def test_table1_command(self, capsys):
        assert main(["table1", *FAST]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_fig4b_command(self, capsys):
        assert main(["fig4b", *FAST]) == 0
        assert "Fig. 4(b)" in capsys.readouterr().out

    def test_trace_dumps_valid_json(self, tmp_path, capsys):
        out_file = tmp_path / "trace.json"
        assert main(["trace", "kmeans", "--out", str(out_file), *FAST]) == 0
        events = json.loads(out_file.read_text())["traceEvents"]
        assert any(e.get("name") == "compute" for e in events)
        assert any(e.get("name") == "data_transfer" for e in events)
        # complete events carry microsecond timestamps
        xs = [e for e in events if e.get("ph") == "X"]
        assert xs and all(e["dur"] >= 0 for e in xs)

    def test_verify_quick_passes(self, capsys):
        assert main(["verify", "--quick", "--fuzz-iters", "2",
                     "--data-mib", "1"]) == 0
        out = capsys.readouterr().out
        assert "verify: PASS" in out
        assert "differential vs cpu_serial" in out

    def test_verify_exits_nonzero_on_violation(self, capsys, monkeypatch):
        from repro.verify import runner
        from repro.verify.invariants import InvariantReport, Violation

        def broken(**kwargs):
            summary = runner.VerifySummary()
            summary.invariant_reports["bigkernel/kmeans"] = InvariantReport(
                checked=("ring-backpressure",),
                violations=[Violation("ring-backpressure", "ran ahead", 1.0)],
            )
            return summary

        monkeypatch.setattr(runner, "run_verify", broken)
        monkeypatch.setattr("repro.verify.run_verify", broken)
        assert main(["verify", "--quick"]) == 1
        assert "verify: FAIL" in capsys.readouterr().out

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
