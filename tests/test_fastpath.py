"""Fast-path simulation engine: exactness, the DES fallback matrix, chunk
templating, cached/parallel sweeps, and the vectorized assembly layout.

The analytic pipeline (:mod:`repro.runtime.fastpath`) claims bit-identical
totals to the DES inside its coverage envelope and an automatic DES
fallback outside it; every cell of that claim is pinned here.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.apps.base import data_fingerprint
from repro.bench.sweep import DEFAULT_GRID, RunCache, SweepPoint, SweepResult, sweep
from repro.engines import BigKernelEngine, EngineConfig, GpuDoubleBufferEngine
from repro.errors import RuntimeConfigError
from repro.hw.spec import DEFAULT_HARDWARE as HW
from repro.runtime.assembly import (
    _interleave_layout_loop,
    assembly_read_order,
    interleave_layout,
)
from repro.runtime.fastpath import (
    TemplatedChunks,
    fastpath_supported,
    run_fastpath,
    template_of,
)
from repro.runtime.pipeline import ChunkWork, PipelineConfig, run_pipeline
from repro.sim.trace import TraceRecorder
from repro.units import MiB
from repro.verify.differential import run_fastpath_differential

TEMPLATE = ChunkWork(
    0, t_addr_gen=1e-4, addr_bytes_d2h=4096, t_assembly=3e-4,
    xfer_bytes=1 * MiB, t_compute=2.5e-4, xfer_segments=3,
)
TAIL = ChunkWork(
    0, t_addr_gen=5e-5, addr_bytes_d2h=1024, t_assembly=1e-4,
    xfer_bytes=123456, t_compute=9e-5, xfer_segments=3,
)


def assert_same_totals(fast, slow):
    assert fast.total_time == slow.total_time
    assert fast.n_chunks == slow.n_chunks
    assert set(fast.stage_totals) == set(slow.stage_totals)
    for key, val in slow.stage_totals.items():
        assert fast.stage_totals[key] == val, key
    assert fast.bytes_h2d == slow.bytes_h2d
    assert fast.bytes_d2h == slow.bytes_d2h


class TestExactness:
    @pytest.mark.parametrize(
        "n_full,tail,passes,cfg",
        [
            (10, TAIL, 1, PipelineConfig(ring_depth=3, cpu_workers=2,
                                         sync_overhead=1e-5)),
            (10, TAIL, 3, PipelineConfig(ring_depth=3, cpu_workers=2,
                                         sync_overhead=1e-5)),
            (7, None, 2, PipelineConfig(ring_depth=2)),
            (3, None, 1, PipelineConfig(ring_depth=3)),  # depth == n edge
            (64, None, 1, PipelineConfig(ring_depth=5)),
        ],
    )
    def test_bit_identical_to_des(self, n_full, tail, passes, cfg):
        chunks = TemplatedChunks(TEMPLATE, n_full, tail, passes)
        fast = run_fastpath(HW, chunks, cfg)
        slow = run_pipeline(HW, chunks.materialize(), cfg, fastpath=False)
        assert fast.trace is None and slow.trace is not None
        assert_same_totals(fast, slow)

    def test_no_addr_traffic_regime(self):
        t = ChunkWork(0, 0.0, 0, 2e-4, 2 * MiB, 4e-4)
        chunks = TemplatedChunks(t, 20)
        fast = run_fastpath(HW, chunks, PipelineConfig(ring_depth=2))
        slow = run_pipeline(HW, chunks.materialize(),
                            PipelineConfig(ring_depth=2), fastpath=False)
        assert_same_totals(fast, slow)
        assert fast.bytes_d2h == 0

    def test_run_pipeline_auto_routes_templated_chunks(self):
        chunks = TemplatedChunks(TEMPLATE, 8)
        res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=3))
        assert res.trace is None  # fast path engaged by default


class TestFallbackMatrix:
    """Every unsupported case must route to the DES with identical results."""

    def run_both(self, chunks, cfg=PipelineConfig(ring_depth=3), **kw):
        allowed = run_pipeline(HW, chunks, cfg, fastpath=True, **kw)
        forced = run_pipeline(HW, list(chunks), cfg, fastpath=False, **kw)
        return allowed, forced

    def test_heterogeneous_chunks_fall_back(self):
        chunks = [
            ChunkWork(i, 1e-4 * (i + 1), 0, 2e-4, (i + 1) * 65536, 3e-4)
            for i in range(6)
        ]
        ok, reason = fastpath_supported(chunks, PipelineConfig(ring_depth=3))
        assert not ok and reason == "heterogeneous-chunks"
        allowed, forced = self.run_both(chunks)
        assert allowed.trace is not None  # the DES ran
        assert_same_totals(allowed, forced)

    def test_mapped_writes_fall_back(self):
        t = ChunkWork(0, 1e-4, 512, 2e-4, 65536, 3e-4,
                      write_bytes=4096, t_scatter=1e-4)
        chunks = TemplatedChunks(t, 6)
        ok, reason = fastpath_supported(chunks, PipelineConfig(ring_depth=3))
        assert not ok and reason == "mapped-writes"
        allowed, forced = self.run_both(chunks)
        assert allowed.trace is not None
        assert_same_totals(allowed, forced)

    def test_ring_deeper_than_run_falls_back(self):
        chunks = TemplatedChunks(TEMPLATE, 3)
        cfg = PipelineConfig(ring_depth=5)
        ok, reason = fastpath_supported(chunks, cfg)
        assert not ok and reason == "ring-deeper-than-run"
        allowed, forced = self.run_both(chunks, cfg)
        assert allowed.trace is not None
        assert_same_totals(allowed, forced)

    def test_verify_run_uses_des(self):
        chunks = TemplatedChunks(TEMPLATE, 6)
        res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=3),
                           verify=True)
        # verify needs the timeline, so the DES must have run (and passed)
        assert res.trace is not None

    def test_explicit_trace_uses_des(self):
        chunks = TemplatedChunks(TEMPLATE, 6)
        trace = TraceRecorder()
        res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=3),
                           trace=trace)
        assert res.trace is trace and len(trace) > 0

    def test_plain_lists_default_to_des(self):
        chunks = [ChunkWork(i, 1e-4, 0, 2e-4, 65536, 3e-4) for i in range(6)]
        res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=3))
        assert res.trace is not None

    def test_homogeneous_plain_list_opts_in_explicitly(self):
        chunks = [ChunkWork(i, 1e-4, 0, 2e-4, 65536, 3e-4) for i in range(6)]
        res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=3),
                           fastpath=True)
        assert res.trace is None
        forced = run_pipeline(HW, chunks, PipelineConfig(ring_depth=3),
                              fastpath=False)
        assert_same_totals(res, forced)

    def test_ring_depth_min_edge(self):
        chunks = TemplatedChunks(TEMPLATE, 2)
        cfg = PipelineConfig(ring_depth=2)  # smallest legal depth, n == depth
        fast = run_fastpath(HW, chunks, cfg)
        slow = run_pipeline(HW, chunks.materialize(), cfg, fastpath=False)
        assert_same_totals(fast, slow)

    def test_unsupported_run_fastpath_raises(self):
        chunks = TemplatedChunks(TEMPLATE, 3)
        with pytest.raises(RuntimeConfigError):
            run_fastpath(HW, chunks, PipelineConfig(ring_depth=5))


class TestTemplatedChunks:
    def test_sequence_protocol(self):
        tc = TemplatedChunks(TEMPLATE, 4, TAIL, passes=2)
        assert len(tc) == 10
        mat = tc.materialize()
        assert [c.index for c in mat] == list(range(10))
        assert tc[3].xfer_bytes == TEMPLATE.xfer_bytes
        assert tc[4].xfer_bytes == TAIL.xfer_bytes  # per-pass tail
        assert tc[9].xfer_bytes == TAIL.xfer_bytes
        assert tc[-1] == mat[-1]
        assert tc[2:5] == mat[2:5]
        with pytest.raises(IndexError):
            tc[10]

    def test_template_of_plain_lists(self):
        hom = [ChunkWork(i, 1e-4, 0, 2e-4, 65536, 3e-4) for i in range(5)]
        tpl, n_full, tail, passes = template_of(hom)
        assert (n_full, tail, passes) == (5, None, 1)
        ragged = hom[:-1] + [ChunkWork(4, 1e-4, 0, 1e-4, 30000, 2e-4)]
        tpl, n_full, tail, passes = template_of(ragged)
        assert n_full == 4 and tail is not None
        hetero = [ChunkWork(i, 1e-4 * (i + 1), 0, 2e-4, 65536, 3e-4)
                  for i in range(5)]
        assert template_of(hetero) is None

    def test_constructor_validation(self):
        with pytest.raises(RuntimeConfigError):
            TemplatedChunks(TEMPLATE, 0, None)
        with pytest.raises(RuntimeConfigError):
            TemplatedChunks(TEMPLATE, 1, None, passes=0)


class TestEngineFastpath:
    def test_bigkernel_fast_matches_des(self):
        app = get_app("wordcount")
        data = app.generate(n_bytes=4 * MiB, seed=7)
        engine = BigKernelEngine()
        cfg = EngineConfig(chunk_bytes=512 * 1024)
        fast = engine.run(app, data, cfg)
        slow = engine.run(app, data, cfg.with_(fastpath=False))
        assert fast.trace is None and slow.trace is not None
        assert fast.sim_time == slow.sim_time
        assert fast.metrics.stage_totals == slow.metrics.stage_totals
        assert fast.metrics.bytes_h2d == slow.metrics.bytes_h2d
        assert app.outputs_equal(fast.output, slow.output)

    def test_writer_app_keeps_trace(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=2 * MiB, seed=7)
        res = BigKernelEngine().run(app, data, EngineConfig(chunk_bytes=256 * 1024))
        assert res.trace is not None  # mapped writes -> DES fallback

    def test_schedule_memoized_per_dataset(self):
        app = get_app("wordcount")
        data = app.generate(n_bytes=2 * MiB, seed=7)
        engine = BigKernelEngine()
        cfg = EngineConfig(chunk_bytes=512 * 1024)
        s1 = engine._schedule(app, data, cfg)
        s2 = engine._schedule(app, data, cfg)
        assert s1 is s2
        # fastpath/functional flags must not fragment the schedule cache
        s3 = engine._schedule(app, data, cfg.with_(fastpath=False, functional=False))
        assert s3 is s1
        other = app.generate(n_bytes=2 * MiB, seed=7)
        assert engine._schedule(app, other, cfg) is not s1

    def test_functional_flag_skips_output(self):
        app = get_app("wordcount")
        data = app.generate(n_bytes=2 * MiB, seed=7)
        cfg = EngineConfig(chunk_bytes=512 * 1024, functional=False)
        res = BigKernelEngine().run(app, data, cfg)
        assert res.output is None and res.sim_time > 0

    def test_data_fingerprint_identity(self):
        app = get_app("wordcount")
        d1 = app.generate(n_bytes=1 * MiB, seed=7)
        d2 = app.generate(n_bytes=1 * MiB, seed=7)
        assert data_fingerprint(d1) == data_fingerprint(d1)
        assert data_fingerprint(d1) != data_fingerprint(d2)

    def test_fastpath_differential_quick(self):
        report = run_fastpath_differential(
            data_bytes=1 * MiB,
            apps=[get_app("wordcount"), get_app("kmeans")],
            engines=[BigKernelEngine(), GpuDoubleBufferEngine()],
        )
        assert report.ok, report.summary()
        assert any(e.used_fastpath for e in report.entries)


class TestSweep:
    def grid(self):
        return {"chunk_bytes": [512 * 1024, 1 * MiB], "num_blocks": [8, 16]}

    def test_parallel_matches_serial(self):
        app = get_app("wordcount")
        data = app.generate(n_bytes=2 * MiB, seed=7)
        engine = BigKernelEngine()
        base = EngineConfig()
        serial = sweep(engine, app, data, base, self.grid(), jobs=1)
        parallel = sweep(engine, app, data, base, self.grid(), jobs=4)
        assert [p.params for p in serial.points] == [p.params for p in parallel.points]
        assert [p.sim_time for p in serial.points] == [
            p.sim_time for p in parallel.points
        ]
        assert serial.best.params == parallel.best.params

    def test_autotune_tie_break_deterministic(self):
        def pt(chunk, blocks, t):
            return SweepPoint({"chunk_bytes": chunk, "num_blocks": blocks}, t, None)

        points = [pt(4 * MiB, 16, 1.0), pt(1 * MiB, 16, 1.0), pt(1 * MiB, 8, 1.0)]
        best = SweepResult(points).best
        assert best.params == {"chunk_bytes": 1 * MiB, "num_blocks": 8}
        # order-independent
        best_rev = SweepResult(points[::-1]).best
        assert best_rev.params == best.params

    def test_run_cache_hits(self):
        from repro.bench.sweep import RUN_CACHE

        RUN_CACHE.clear()
        app = get_app("wordcount")
        data = app.generate(n_bytes=2 * MiB, seed=7)
        engine = BigKernelEngine()
        base = EngineConfig()
        sweep(engine, app, data, base, self.grid(), cache=True)
        assert RUN_CACHE.misses == 4 and RUN_CACHE.hits == 0
        res = sweep(engine, app, data, base, self.grid(), cache=True)
        assert RUN_CACHE.hits == 4
        assert len(res.points) == 4
        RUN_CACHE.clear()

    def test_cache_distinguishes_datasets(self):
        cache = RunCache(maxsize=8)
        app = get_app("wordcount")
        d1 = app.generate(n_bytes=1 * MiB, seed=7)
        d2 = app.generate(n_bytes=1 * MiB, seed=7)
        engine = BigKernelEngine()
        cfg = EngineConfig()
        assert RunCache.key(engine, app, d1, cfg) != RunCache.key(engine, app, d2, cfg)

    def test_default_grid_shape(self):
        assert len(DEFAULT_GRID["chunk_bytes"]) * len(DEFAULT_GRID["num_blocks"]) == 8


class TestAssemblyVectorization:
    def test_equivalence_with_loop_reference(self):
        rng = np.random.default_rng(42)
        for _ in range(50):
            n = int(rng.integers(0, 10))
            streams = [
                rng.integers(0, 10_000, size=int(rng.integers(0, 12)))
                for _ in range(n)
            ]
            assert np.array_equal(
                interleave_layout(streams), _interleave_layout_loop(streams)
            )

    def test_equal_length_fast_case(self):
        streams = [np.arange(6) * 10 + t for t in range(4)]
        out = interleave_layout(streams)
        assert np.array_equal(out, _interleave_layout_loop(streams))
        # step-major: first 4 entries are step 0 of each thread
        assert list(out[:4]) == [0, 1, 2, 3]

    def test_ragged_tails_drop_out(self):
        streams = [np.array([0, 10, 20]), np.array([1]), np.array([2, 12])]
        assert list(interleave_layout(streams)) == [0, 1, 2, 10, 12, 20]

    def test_empty_inputs(self):
        assert interleave_layout([]).size == 0
        assert interleave_layout([np.array([], dtype=np.int64)]).size == 0

    def test_read_order_locality_path(self):
        streams = [np.array([5, 6]), np.array([1, 2, 3])]
        assert list(assembly_read_order(streams, locality_opt=True)) == [
            5, 6, 1, 2, 3,
        ]
        assert np.array_equal(
            assembly_read_order(streams, locality_opt=False),
            _interleave_layout_loop(streams),
        )
