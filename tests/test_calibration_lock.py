"""Calibration regression lock.

The app profiles and hardware constants were calibrated once against the
paper's stated aggregates (Section VI-A) and then frozen; these tests pin
that calibration at a reduced scale so an accidental model change that
breaks the reproduction shape fails CI rather than silently shifting
EXPERIMENTS.md. The full-scale equivalents live in ``benchmarks/``.
"""

import statistics

import pytest

from repro.bench import BenchSettings, run_matrix
from repro.engines import EngineConfig
from repro.units import MiB

SETTINGS = BenchSettings(
    data_bytes=8 * MiB, seed=7, config=EngineConfig(chunk_bytes=1 * MiB)
)


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(SETTINGS)


def _agg(matrix, baseline):
    ratios = [
        matrix.get(app, baseline).sim_time / matrix.get(app, "bigkernel").sim_time
        for app in matrix.apps
    ]
    return statistics.mean(ratios), max(ratios)


class TestAggregateBands:
    """Bands are deliberately loose (the bench layer asserts tighter at
    full scale); they exist to catch order-of-magnitude calibration
    breaks."""

    def test_vs_single_buffer(self, matrix):
        avg, peak = _agg(matrix, "gpu_single")
        assert 1.8 <= avg <= 5.0  # paper: 2.6
        assert peak <= 9.0  # paper: 4.6

    def test_vs_double_buffer(self, matrix):
        avg, peak = _agg(matrix, "gpu_double")
        assert 1.2 <= avg <= 3.5  # paper: 1.7
        assert peak <= 5.5  # paper: 3.1

    def test_vs_mt_cpu(self, matrix):
        avg, peak = _agg(matrix, "cpu_mt")
        assert 2.0 <= avg <= 6.0  # paper: 3.0
        assert 4.0 <= peak <= 12.0  # paper: 7.2

    def test_mt_over_serial_band(self, matrix):
        for app in matrix.apps:
            s = matrix.speedup(app, "cpu_mt")
            assert 2.0 <= s <= 4.5, app  # 4 cores, efficiency-scaled


class TestPerAppShape:
    def test_smallest_gains_are_compute_dominant_apps(self, matrix):
        gains = {
            app: matrix.get(app, "gpu_double").sim_time
            / matrix.get(app, "bigkernel").sim_time
            for app in matrix.apps
        }
        two_smallest = sorted(gains, key=gains.get)[:2]
        assert set(two_smallest) <= {"opinion", "wordcount", "mastercard"}

    def test_biggest_gains_are_sparse_readers(self, matrix):
        gains = {
            app: matrix.get(app, "gpu_single").sim_time
            / matrix.get(app, "bigkernel").sim_time
            for app in matrix.apps
        }
        biggest = max(gains, key=gains.get)
        assert biggest in {"netflix", "dna", "kmeans", "mastercard_indexed"}

    def test_indexed_beats_plain_mastercard(self, matrix):
        assert (
            matrix.speedup("mastercard_indexed", "bigkernel")
            > matrix.speedup("mastercard", "bigkernel") * 0.9
        )
        # and the indexed variant's *relative* gain over its own single-
        # buffer baseline is far larger (the paper's key index claim)
        rel_idx = matrix.get("mastercard_indexed", "gpu_single").sim_time / matrix.get(
            "mastercard_indexed", "bigkernel"
        ).sim_time
        rel_plain = matrix.get("mastercard", "gpu_single").sim_time / matrix.get(
            "mastercard", "bigkernel"
        ).sim_time
        assert rel_idx > 1.5 * rel_plain

SPEEDUP_SNAPSHOT = {
    # app: (cpu_mt, gpu_single, gpu_double, bigkernel) speedup vs cpu_serial,
    # captured at SETTINGS before the fault-injection hooks landed
    "kmeans": (3.400, 7.486, 14.175, 20.693),
    "wordcount": (3.400, 6.660, 8.193, 11.229),
    "netflix": (3.400, 3.196, 5.518, 11.666),
    "opinion": (3.400, 5.785, 7.215, 7.675),
    "dna": (3.400, 2.280, 4.077, 10.709),
    "mastercard": (3.400, 3.355, 4.106, 5.605),
    "mastercard_indexed": (3.400, 1.617, 2.830, 5.937),
}

SIM_TIME_SNAPSHOT = {
    # app: (cpu_serial, cpu_mt, gpu_single, gpu_double, bigkernel) sim_time,
    # exact to the double — the fastpath totals must not move at all
    "kmeans": (0.02158464, 0.006348423529411765, 0.0028832289248366012,
               0.0015227103121693121, 0.0010431073920354995),
    "wordcount": (0.05740371087719298, 0.016883444375644995,
                  0.008619399884064738, 0.0070066275273627954,
                  0.005112151320412069),
    "netflix": (0.006622547368421053, 0.0019478080495356038,
                0.00207201399980872, 0.0012000704638739758,
                0.0005676632056800242),
    "opinion": (0.047304, 0.013912941176470588, 0.008176997068627451,
                0.00655622428555867, 0.006162999723288916),
    "dna": (0.006277658947368421, 0.0018463702786377708,
            0.002753118429712626, 0.0015396326257910574,
            0.0005861828173927334),
    "mastercard": (0.061209887719298244, 0.018002908152734778,
                   0.018243311260530137, 0.014905860089833191,
                   0.010920029104725794),
    "mastercard_indexed": (0.00686784, 0.0020199529411764707,
                           0.004246536263798111, 0.002427006999052581,
                           0.0011567295279183796),
}

ENGINE_ORDER = ("cpu_mt", "gpu_single", "gpu_double", "bigkernel")


class TestFig4aSnapshot:
    """Exact regression pin of the Fig. 4(a) matrix.

    The aggregate bands above tolerate drift; this class does not. The
    speedup table is pinned to 3 significant digits and the raw simulated
    times to 1e-9 relative — in particular this proves the fault-injection
    hooks cost *nothing* on the clean path (no plan active => identical
    timelines to the pre-fault-subsystem build)."""

    @pytest.mark.parametrize("app", sorted(SPEEDUP_SNAPSHOT))
    def test_speedup_table(self, matrix, app):
        expected = SPEEDUP_SNAPSHOT[app]
        for engine, want in zip(ENGINE_ORDER, expected):
            got = matrix.speedup(app, engine)
            assert got == pytest.approx(want, rel=5e-3), (app, engine)

    @pytest.mark.parametrize("app", sorted(SIM_TIME_SNAPSHOT))
    def test_sim_times_exact(self, matrix, app):
        expected = SIM_TIME_SNAPSHOT[app]
        engines = ("cpu_serial",) + ENGINE_ORDER
        for engine, want in zip(engines, expected):
            got = matrix.get(app, engine).sim_time
            assert got == pytest.approx(want, rel=1e-9), (app, engine)


UVM_RATIO_SNAPSHOT = {
    # app: (gpu_uvm, uvm_readahead, uvm_learned) sim_time over bigkernel's
    # at SETTINGS — how much slower each unified-memory variant runs
    "wordcount": (1.4194182584570474, 1.3335980778596315, 1.357162916192829),
    "mastercard": (1.4141257509368677, 1.3504624001278376, 1.4177048532265877),
}

UVM_SIM_TIME_SNAPSHOT = {
    # app: (gpu_uvm, uvm_readahead, uvm_learned) sim_time at SETTINGS,
    # exact to the double — the paging model must not move at all
    "wordcount": (0.007256280924188194, 0.006817555174629112,
                  0.006938022194029465),
    "mastercard": (0.015442294357972813, 0.014747088714233837,
                   0.015481378259145346),
}

UVM_ENGINE_ORDER = ("gpu_uvm", "uvm_readahead", "uvm_learned")


class TestUvmSnapshot:
    """Exact regression pin of the BigKernel-vs-UVM comparison.

    Two representative apps — the sequential write-free wordcount and the
    two-pass mastercard — on the three unified-memory variants. The
    competitor gap is part of the reproduction's claims (``repro bench``),
    so an accidental paging-model change that shifts it fails here first.
    """

    @pytest.fixture(scope="class")
    def uvm_times(self):
        from repro.apps import get_app
        from repro.engines import UVM_ENGINES

        times = {}
        for app_name in sorted(UVM_SIM_TIME_SNAPSHOT):
            app = get_app(app_name)
            data = app.generate(n_bytes=SETTINGS.data_bytes, seed=SETTINGS.seed)
            for cls in UVM_ENGINES:
                res = cls().run(app, data, SETTINGS.config)
                times[(app_name, cls.name)] = res.sim_time
        return times

    @pytest.mark.parametrize("app", sorted(UVM_RATIO_SNAPSHOT))
    def test_slowdown_ratios(self, matrix, uvm_times, app):
        expected = UVM_RATIO_SNAPSHOT[app]
        big = matrix.get(app, "bigkernel").sim_time
        for engine, want in zip(UVM_ENGINE_ORDER, expected):
            got = uvm_times[(app, engine)] / big
            assert got == pytest.approx(want, rel=5e-3), (app, engine)

    @pytest.mark.parametrize("app", sorted(UVM_SIM_TIME_SNAPSHOT))
    def test_sim_times_exact(self, matrix, uvm_times, app):
        expected = UVM_SIM_TIME_SNAPSHOT[app]
        for engine, want in zip(UVM_ENGINE_ORDER, expected):
            got = uvm_times[(app, engine)]
            assert got == pytest.approx(want, rel=1e-9), (app, engine)


MULTIGPU_FABRICS = ((2, False), (4, False), (2, True))

MULTIGPU_SPEEDUP_SNAPSHOT = {
    # app: sim_time of single-GPU bigkernel over each fabric's, at
    # SETTINGS — fabric order (2 dedicated, 4 dedicated, 2 shared).
    # wordcount (compute-bound) scales; netflix (transfer-bound) gains
    # little dedicated and *loses* on a shared root complex (<1.0)
    "wordcount": (1.8604011912643605, 3.1375140235572725, 1.7420404917683612),
    "netflix": (1.249574276435079, 1.377781449096546, 0.8465236506230058),
}

MULTIGPU_SIM_TIME_SNAPSHOT = {
    # app: sim_time per fabric at SETTINGS, exact to the double — the
    # shard/contention/merge model must not move at all
    "wordcount": (0.002747875750895302, 0.0016293636560757037,
                  0.0029345766327295167),
    "netflix": (0.00045428528450466773, 0.0004120125191497233,
                0.0006705816255248721),
}


class TestMultiGpuSnapshot:
    """Exact regression pin of the multi-GPU scale-out calibration.

    Two representative apps — compute-bound wordcount (scales) and
    transfer-bound netflix (plateaus dedicated, regresses shared) — on
    three fabrics. The scaling shape is part of the reproduction's
    claims (``repro bench --gpus``), so a contention/NUMA/merge model
    change that shifts it fails here first; the analytic shard model is
    additionally held to its published tolerance on every pinned cell.
    """

    @pytest.fixture(scope="class")
    def multigpu_runs(self):
        from repro.apps import get_app
        from repro.engines.multigpu import MultiGpuBigKernelEngine

        runs = {}
        for app_name in sorted(MULTIGPU_SIM_TIME_SNAPSHOT):
            app = get_app(app_name)
            data = app.generate(n_bytes=SETTINGS.data_bytes, seed=SETTINGS.seed)
            for n, shared in MULTIGPU_FABRICS:
                eng = MultiGpuBigKernelEngine(n, shared_link=shared)
                runs[(app_name, n, shared)] = (app, data, eng)
        return runs

    @pytest.mark.parametrize("app", sorted(MULTIGPU_SPEEDUP_SNAPSHOT))
    def test_scaling_ratios(self, matrix, multigpu_runs, app):
        expected = MULTIGPU_SPEEDUP_SNAPSHOT[app]
        base = matrix.get(app, "bigkernel").sim_time
        for (n, shared), want in zip(MULTIGPU_FABRICS, expected):
            a, data, eng = multigpu_runs[(app, n, shared)]
            got = base / eng.run(a, data, SETTINGS.config).sim_time
            assert got == pytest.approx(want, rel=5e-3), (app, n, shared)

    @pytest.mark.parametrize("app", sorted(MULTIGPU_SIM_TIME_SNAPSHOT))
    def test_sim_times_exact(self, multigpu_runs, app):
        expected = MULTIGPU_SIM_TIME_SNAPSHOT[app]
        for (n, shared), want in zip(MULTIGPU_FABRICS, expected):
            a, data, eng = multigpu_runs[(app, n, shared)]
            got = eng.run(a, data, SETTINGS.config).sim_time
            assert got == pytest.approx(want, rel=1e-9), (app, n, shared)

    @pytest.mark.parametrize("app", sorted(MULTIGPU_SIM_TIME_SNAPSHOT))
    def test_analytic_shard_model_within_tolerance(self, multigpu_runs, app):
        from repro.analytic import predict_run
        from repro.verify.differential import (
            ANALYTIC_TOL,
            MULTIGPU_DEDICATED_TOL,
        )

        for n, shared in MULTIGPU_FABRICS:
            a, data, eng = multigpu_runs[(app, n, shared)]
            simulated = eng.run(a, data, SETTINGS.config).sim_time
            predicted = predict_run(a, data, SETTINGS.config, eng).sim_time
            tol = ANALYTIC_TOL if shared else MULTIGPU_DEDICATED_TOL
            assert predicted == pytest.approx(simulated, rel=tol), (
                app, n, shared,
            )


PREDICTOR_RATIO_SNAPSHOT = {
    # app: (bigkernel, gpu_double) predicted-over-DES sim_time ratio at
    # SETTINGS — the closed-form predictor is machine-exact on almost
    # every cell; the two off-1.0 gpu_double cells are certified bound
    # envelopes of a drain-interleaving DES artifact (docs/performance.md)
    "dna": (1.0, 1.0),
    "kmeans": (1.0, 0.9928269350297897),
    "mastercard": (1.0, 1.0),
    "mastercard_indexed": (1.0, 1.002908154923046),
    "netflix": (1.0, 1.0),
    "opinion": (1.0, 1.0),
    "wordcount": (1.0, 1.0),
}

PREDICTOR_ENGINE_ORDER = ("bigkernel", "gpu_double")


class TestPredictorSnapshot:
    """Exact regression pin of the closed-form predictor's calibration.

    ``verify --analytic`` holds the predictor to 5% across fuzzed
    geometries; this class pins the canonical-config ratios to 5e-3 so a
    model change that silently degrades the predictor (or a schedule
    change the predictor was not taught) fails here first, on the same
    matrix the Fig. 4(a) pins run on.
    """

    @pytest.mark.parametrize("app", sorted(PREDICTOR_RATIO_SNAPSHOT))
    def test_predicted_over_des_ratio(self, matrix, app):
        from repro.analytic import predict_run
        from repro.apps import get_app

        application = get_app(app)
        data = application.generate(
            n_bytes=SETTINGS.data_bytes, seed=SETTINGS.seed
        )
        expected = PREDICTOR_RATIO_SNAPSHOT[app]
        for engine, want in zip(PREDICTOR_ENGINE_ORDER, expected):
            predicted = predict_run(
                application, data, SETTINGS.config, engine=engine
            ).sim_time
            got = predicted / matrix.get(app, engine).sim_time
            assert got == pytest.approx(want, rel=5e-3), (app, engine)
