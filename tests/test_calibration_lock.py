"""Calibration regression lock.

The app profiles and hardware constants were calibrated once against the
paper's stated aggregates (Section VI-A) and then frozen; these tests pin
that calibration at a reduced scale so an accidental model change that
breaks the reproduction shape fails CI rather than silently shifting
EXPERIMENTS.md. The full-scale equivalents live in ``benchmarks/``.
"""

import statistics

import pytest

from repro.bench import BenchSettings, run_matrix
from repro.engines import EngineConfig
from repro.units import MiB

SETTINGS = BenchSettings(
    data_bytes=8 * MiB, seed=7, config=EngineConfig(chunk_bytes=1 * MiB)
)


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(SETTINGS)


def _agg(matrix, baseline):
    ratios = [
        matrix.get(app, baseline).sim_time / matrix.get(app, "bigkernel").sim_time
        for app in matrix.apps
    ]
    return statistics.mean(ratios), max(ratios)


class TestAggregateBands:
    """Bands are deliberately loose (the bench layer asserts tighter at
    full scale); they exist to catch order-of-magnitude calibration
    breaks."""

    def test_vs_single_buffer(self, matrix):
        avg, peak = _agg(matrix, "gpu_single")
        assert 1.8 <= avg <= 5.0  # paper: 2.6
        assert peak <= 9.0  # paper: 4.6

    def test_vs_double_buffer(self, matrix):
        avg, peak = _agg(matrix, "gpu_double")
        assert 1.2 <= avg <= 3.5  # paper: 1.7
        assert peak <= 5.5  # paper: 3.1

    def test_vs_mt_cpu(self, matrix):
        avg, peak = _agg(matrix, "cpu_mt")
        assert 2.0 <= avg <= 6.0  # paper: 3.0
        assert 4.0 <= peak <= 12.0  # paper: 7.2

    def test_mt_over_serial_band(self, matrix):
        for app in matrix.apps:
            s = matrix.speedup(app, "cpu_mt")
            assert 2.0 <= s <= 4.5, app  # 4 cores, efficiency-scaled


class TestPerAppShape:
    def test_smallest_gains_are_compute_dominant_apps(self, matrix):
        gains = {
            app: matrix.get(app, "gpu_double").sim_time
            / matrix.get(app, "bigkernel").sim_time
            for app in matrix.apps
        }
        two_smallest = sorted(gains, key=gains.get)[:2]
        assert set(two_smallest) <= {"opinion", "wordcount", "mastercard"}

    def test_biggest_gains_are_sparse_readers(self, matrix):
        gains = {
            app: matrix.get(app, "gpu_single").sim_time
            / matrix.get(app, "bigkernel").sim_time
            for app in matrix.apps
        }
        biggest = max(gains, key=gains.get)
        assert biggest in {"netflix", "dna", "kmeans", "mastercard_indexed"}

    def test_indexed_beats_plain_mastercard(self, matrix):
        assert (
            matrix.speedup("mastercard_indexed", "bigkernel")
            > matrix.speedup("mastercard", "bigkernel") * 0.9
        )
        # and the indexed variant's *relative* gain over its own single-
        # buffer baseline is far larger (the paper's key index claim)
        rel_idx = matrix.get("mastercard_indexed", "gpu_single").sim_time / matrix.get(
            "mastercard_indexed", "bigkernel"
        ).sim_time
        rel_plain = matrix.get("mastercard", "gpu_single").sim_time / matrix.get(
            "mastercard", "bigkernel"
        ).sim_time
        assert rel_idx > 1.5 * rel_plain
