"""Tests for the bigkernel_launch front end (kernel-in, result-out)."""

import numpy as np
import pytest

from repro.apps.kmeans import KMeansApp, PARTICLE
from repro.engines import (
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
)
from repro.errors import RuntimeConfigError
from repro.kernelc import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Var,
)
from repro.runtime import (
    KernelApplication,
    LaunchSpec,
    StreamingRegistry,
    bigkernel_launch,
)

CFG = EngineConfig(chunk_bytes=64 * 1024)


def kmeans_setup(n=2000, seed=2):
    src = KMeansApp()
    data = src.generate(48 * n, seed=seed)
    reg = StreamingRegistry()
    reg.streaming_malloc("particles", data.total_mapped_bytes)
    reg.streaming_map("particles", data.mapped["particles"], PARTICLE, writable=True)

    def find_closest(ctx, x, y, z):
        c = ctx.resident["clusters"]
        d = (c[:, 0] - x) ** 2 + (c[:, 1] - y) ** 2 + (c[:, 2] - z) ** 2
        return int(np.argmin(d))

    return src, data, reg, {"findClosestCluster": find_closest}


class TestKMeansLaunch:
    def test_output_matches_vectorized_app(self):
        src, data, reg, fns = kmeans_setup()
        expected = src.reference(src.generate(48 * 2000, seed=2))
        res = bigkernel_launch(
            src.kernel(),
            reg,
            resident={"clusters": data.resident["clusters"]},
            params=dict(data.params),
            device_fns=fns,
            config=CFG,
            spec=LaunchSpec(
                make_output=lambda ctx: ctx.mapped["particles"]["cid"].copy()
            ),
        )
        np.testing.assert_array_equal(res.output, expected)

    def test_measured_profile_matches_handwritten(self):
        """The measured profile agrees with KMeansApp's hand-written one on
        every load-bearing quantity."""
        src, data, reg, fns = kmeans_setup()
        app = KernelApplication(
            src.kernel(),
            reg,
            resident={"clusters": data.resident["clusters"]},
            params=dict(data.params),
            device_fns=fns,
        )
        measured = app.access_profile(app.data)
        hand = src.access_profile(data)
        assert measured.read_bytes_per_record == hand.read_bytes_per_record
        assert measured.write_bytes_per_record == hand.write_bytes_per_record
        assert measured.reads_per_record == hand.reads_per_record
        assert measured.elem_bytes == hand.elem_bytes
        assert measured.sliceable == hand.sliceable
        # xyz are one contiguous 24B span
        assert measured.addresses_per_record <= 3.5
        assert measured.gather_run_bytes >= 8.0

    def test_pattern_recognized_from_kernel_addresses(self):
        src, data, reg, fns = kmeans_setup()
        res = bigkernel_launch(
            src.kernel(),
            reg,
            resident={"clusters": data.resident["clusters"]},
            params=dict(data.params),
            device_fns=fns,
            config=CFG,
        )
        assert res.metrics.pattern_fraction == 1.0

    def test_runs_on_other_engines(self):
        """A KernelApplication is a full Application: baselines work too."""
        src, data, reg, fns = kmeans_setup(n=800)
        app = KernelApplication(
            src.kernel(),
            reg,
            resident={"clusters": data.resident["clusters"]},
            params=dict(data.params),
            device_fns=fns,
            spec=LaunchSpec(
                make_output=lambda ctx: ctx.mapped["particles"]["cid"].copy()
            ),
        )
        serial = CpuSerialEngine().run(app, app.data, CFG)
        # regenerate mapped state for the second engine (kmeans writes)
        src2, data2, reg2, fns2 = kmeans_setup(n=800)
        app2 = KernelApplication(
            src2.kernel(),
            reg2,
            resident={"clusters": data2.resident["clusters"]},
            params=dict(data2.params),
            device_fns=fns2,
            spec=LaunchSpec(
                make_output=lambda ctx: ctx.mapped["particles"]["cid"].copy()
            ),
        )
        double = GpuDoubleBufferEngine().run(app2, app2.data, CFG)
        assert app.outputs_equal(serial.output, double.output)


FILTER_SCHEMA = RecordSchema.packed(
    [("value", "f8"), ("tag", "i4"), ("aux", "i4"), ("pad", "f8")], record_size=24
)


def make_filter_kernel():
    """A user-written kernel never seen by the app layer: bucket-sum the
    values of positively tagged records."""
    ref = lambda f: MappedRef("events", Var("i"), f)
    return Kernel(
        "filterSum",
        (
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("v", Load(ref("value"))),
                    Assign("t", Load(ref("tag"))),
                    If(
                        BinOp(">", Var("t"), Const(0)),
                        (
                            AtomicAdd(
                                "buckets",
                                BinOp("%", Var("t"), Const(16)),
                                Var("v"),
                            ),
                        ),
                    ),
                ),
            ),
        ),
        mapped={"events": FILTER_SCHEMA},
        resident=("buckets",),
    )


class TestCustomKernelLaunch:
    def make_registry(self, n=3000, seed=9):
        rng = np.random.default_rng(seed)
        events = np.zeros(n, dtype=FILTER_SCHEMA.numpy_dtype())
        events["value"] = rng.uniform(0, 10, n)
        events["tag"] = rng.integers(-5, 40, n)
        reg = StreamingRegistry()
        reg.streaming_malloc("events", n * FILTER_SCHEMA.record_size)
        reg.streaming_map("events", events, FILTER_SCHEMA)
        return reg, events

    def expected(self, events):
        out = np.zeros(16)
        mask = events["tag"] > 0
        np.add.at(out, events["tag"][mask] % 16, events["value"][mask])
        return out

    def test_launch_matches_numpy(self):
        reg, events = self.make_registry()
        res = bigkernel_launch(
            make_filter_kernel(),
            reg,
            resident={"buckets": np.zeros(16)},
            config=CFG,
            spec=LaunchSpec(make_output=lambda ctx: ctx.resident["buckets"].copy()),
        )
        np.testing.assert_allclose(res.output, self.expected(events), atol=1e-9)

    def test_measured_profile(self):
        reg, events = self.make_registry()
        app = KernelApplication(
            make_filter_kernel(), reg, resident={"buckets": np.zeros(16)}
        )
        p = app.access_profile(app.data)
        assert p.read_bytes_per_record == 12.0  # value (8) + tag (4)
        assert p.read_fraction == pytest.approx(0.5)
        assert p.write_bytes_per_record == 0.0
        assert p.sliceable

    def test_volume_reduction_happens(self):
        reg, events = self.make_registry()
        res = bigkernel_launch(
            make_filter_kernel(),
            reg,
            resident={"buckets": np.zeros(16)},
            config=CFG,
        )
        # only value+tag (12 of 24 bytes) cross the link
        assert res.metrics.bytes_h2d < 0.6 * events.nbytes


class TestLaunchValidation:
    def test_unmapped_registry_rejected(self):
        reg = StreamingRegistry()
        with pytest.raises(RuntimeConfigError):
            bigkernel_launch(make_filter_kernel(), reg)

    def test_schema_mismatch_rejected(self):
        reg = StreamingRegistry()
        other = RecordSchema.packed([("x", "f8")])
        host = np.zeros(10, dtype=other.numpy_dtype())
        reg.streaming_malloc("events", host.nbytes)
        reg.streaming_map("events", host, other)
        with pytest.raises(RuntimeConfigError, match="schema"):
            bigkernel_launch(make_filter_kernel(), reg)

    def test_multi_mapped_kernel_rejected(self):
        k = Kernel(
            "two",
            (),
            mapped={"a": FILTER_SCHEMA, "b": FILTER_SCHEMA},
        )
        with pytest.raises(RuntimeConfigError, match="exactly one"):
            KernelApplication(k, StreamingRegistry())
