"""Property battery for the unified-memory engine family.

Four families of properties, each a simulated-time fact that must hold on
any machine:

* **Determinism** — the same seed produces a byte-identical timeline
  (interval-level fingerprint), for every prefetch mode.
* **Conservation** — the page-table ledger balances: every byte moved
  host-to-device is accounted as migrated, every migrated byte is either
  still resident or was evicted, and every device-to-host byte is a
  claimed dirty write-back.
* **Monotonicity** — more device memory never causes more page faults
  (pure demand LRU is a stack algorithm), and the readahead prefetcher
  never slows a sequential app down.
* **Differential** — every UVM variant produces output bit-identical to
  the serial oracle on all six paper apps, and its timeline passes the
  full invariant suite.
"""

import pytest

from repro.apps import get_app
from repro.engines import (
    UVM_ENGINES,
    CpuSerialEngine,
    EngineConfig,
    GpuUvmEngine,
    UvmLearnedEngine,
    UvmReadaheadEngine,
)
from repro.engines.uvm import PREFETCH_MODES, UvmSpec
from repro.units import KiB, MiB
from repro.verify.invariants import verify_run

PAPER_SIX = ("kmeans", "wordcount", "netflix", "opinion", "dna", "mastercard")
CONFIG = EngineConfig(chunk_bytes=256 * KiB)
DATA_BYTES = 1 * MiB
SEED = 7


def _fingerprint(trace):
    """Order-sensitive digest of a full timeline, meta included."""
    return tuple(
        (
            iv.track,
            iv.label,
            iv.start,
            iv.end,
            tuple(sorted((k, str(v)) for k, v in iv.meta.items())),
        )
        for iv in trace.intervals
    )


def _run(engine, app_name, n_bytes=DATA_BYTES, seed=SEED, config=CONFIG):
    app = get_app(app_name)
    data = app.generate(n_bytes=n_bytes, seed=seed)
    return app, data, engine.run(app, data, config)


class TestDeterminism:
    @pytest.mark.parametrize("mode", PREFETCH_MODES)
    def test_same_seed_same_timeline(self, mode):
        a = _run(GpuUvmEngine(prefetch=mode), "wordcount")[2]
        b = _run(GpuUvmEngine(prefetch=mode), "wordcount")[2]
        assert a.sim_time == b.sim_time
        assert _fingerprint(a.trace) == _fingerprint(b.trace)
        assert a.metrics.notes["paging"] == b.metrics.notes["paging"]

    def test_different_data_different_timeline(self):
        a = _run(GpuUvmEngine(), "wordcount", seed=1)[2]
        b = _run(GpuUvmEngine(), "wordcount", seed=2)[2]
        # variable-length records: a different seed changes record sizes,
        # hence page population and fault timing
        assert _fingerprint(a.trace) != _fingerprint(b.trace)


class TestConservation:
    @pytest.mark.parametrize("app_name", PAPER_SIX)
    @pytest.mark.parametrize(
        "engine_cls", UVM_ENGINES, ids=lambda c: c.name
    )
    def test_page_byte_ledger(self, app_name, engine_cls):
        res = _run(engine_cls(), app_name)[2]
        paging = res.metrics.notes["paging"]
        assert res.metrics.bytes_h2d == paging["migrated_bytes"]
        assert (
            paging["migrated_bytes"]
            == paging["evicted_bytes"] + paging["resident_bytes"]
        )
        assert res.metrics.bytes_d2h == paging["writeback_bytes"]
        assert (
            paging["migrated_pages"]
            == paging["demand_pages"] + paging["prefetched_pages"]
        )

    def test_eviction_under_pressure(self):
        # a device memory far smaller than the dataset forces eviction
        spec = UvmSpec(
            page_bytes=16 * KiB, device_mem_bytes=128 * KiB, batch_pages=4
        )
        res = _run(GpuUvmEngine(spec=spec), "wordcount")[2]
        paging = res.metrics.notes["paging"]
        assert paging["evicted_pages"] > 0
        assert paging["resident_bytes"] <= 128 * KiB
        assert res.metrics.bytes_h2d == paging["migrated_bytes"]


class TestMonotonicity:
    def test_more_memory_never_more_faults(self):
        """Pure demand paging with LRU is a stack algorithm: growing the
        device memory can only remove faults, never add them. Needs page
        *reuse* for capacity to matter, so this uses the two-pass
        mastercard app — the second pass refaults whatever was evicted."""
        spec_base = dict(page_bytes=16 * KiB, prefetch_hit=0.0, batch_pages=4)
        faults = []
        for mem in (128 * KiB, 256 * KiB, 512 * KiB, 1 * MiB, 2 * MiB):
            spec = UvmSpec(device_mem_bytes=mem, **spec_base)
            res = _run(GpuUvmEngine(spec=spec), "mastercard")[2]
            faults.append(res.metrics.notes["paging"]["demand_pages"])
        assert faults == sorted(faults, reverse=True)
        assert faults[0] > faults[-1]  # the pressure range actually bites

    @pytest.mark.parametrize("app_name", PAPER_SIX)
    def test_readahead_never_slower(self, app_name):
        plain = _run(GpuUvmEngine(), app_name)[2]
        ra = _run(UvmReadaheadEngine(), app_name)[2]
        assert ra.sim_time <= plain.sim_time
        assert ra.metrics.notes["faults"] <= plain.metrics.notes["faults"]

    @pytest.mark.parametrize("app_name", PAPER_SIX)
    def test_learned_never_slower(self, app_name):
        plain = _run(GpuUvmEngine(), app_name)[2]
        le = _run(UvmLearnedEngine(), app_name)[2]
        assert le.sim_time <= plain.sim_time


class TestDifferential:
    @pytest.mark.parametrize("app_name", PAPER_SIX)
    @pytest.mark.parametrize(
        "engine_cls", UVM_ENGINES, ids=lambda c: c.name
    )
    def test_output_matches_oracle_and_invariants_hold(
        self, app_name, engine_cls
    ):
        app, data, res = _run(engine_cls(), app_name)
        ref = CpuSerialEngine().run(app, data, CONFIG)
        assert app.outputs_equal(ref.output, res.output)
        report = verify_run(res, CONFIG)
        assert report.ok, report.summary()

    def test_config_prefetch_equals_variant_engine(self):
        """``EngineConfig.prefetch`` and the variant subclasses are two
        spellings of the same engine."""
        app = get_app("netflix")
        data = app.generate(n_bytes=DATA_BYTES, seed=SEED)
        via_cfg = GpuUvmEngine().run(
            app, data, CONFIG.with_(prefetch="readahead")
        )
        via_cls = UvmReadaheadEngine().run(app, data, CONFIG)
        assert via_cfg.sim_time == via_cls.sim_time
        assert _fingerprint(via_cfg.trace) == _fingerprint(via_cls.trace)
