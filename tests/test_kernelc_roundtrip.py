"""The compiler's soundness property, end to end.

For a sliceable kernel: run the addrgen form to get the address stream,
gather those bytes from the host array (exactly what the data-assembly
stage does), feed them to the databuf form, and check the outputs equal an
original-form run. Also checks write-back equivalence and the
data-dependent fallback path.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import BufferOverrun, SlicingError
from repro.kernelc import (
    Assign,
    AtomicAdd,
    BinOp,
    Call,
    Const,
    EmitAddress,
    ExecutionContext,
    For,
    If,
    Kernel,
    KernelInterpreter,
    Load,
    MappedRef,
    Param,
    RecordSchema,
    ResidentLoad,
    Store,
    UnOp,
    Var,
    While,
    make_addrgen_kernel,
    make_databuf_kernel,
    mapped_accesses,
    validate_kernel,
)

PARTICLE = RecordSchema.packed(
    [("x", "f8"), ("y", "f8"), ("z", "f8"), ("cid", "i4")], record_size=48
)


def kmeans_kernel():
    ref = lambda f: MappedRef("particles", Var("i"), f)
    body = (
        For(
            "i",
            Var("start"),
            Var("end"),
            (
                Assign("x", Load(ref("x"))),
                Assign("y", Load(ref("y"))),
                Assign("z", Load(ref("z"))),
                Assign("cid", Call("findClosest", (Var("x"), Var("y"), Var("z")))),
                Store(ref("cid"), Var("cid")),
            ),
        ),
    )
    return Kernel(
        "clusterKernel",
        body,
        mapped={"particles": PARTICLE},
        resident=("clusters",),
        device_functions=("findClosest",),
    )


def make_ctx(n=16, seed=0, k=4):
    rng = np.random.default_rng(seed)
    particles = np.zeros(n, dtype=PARTICLE.numpy_dtype())
    for f in "xyz":
        particles[f] = rng.uniform(-10, 10, n)
    clusters = rng.uniform(-10, 10, (k, 3))

    def find_closest(ctx, x, y, z):
        c = ctx.resident["clusters"]
        d = (c[:, 0] - x) ** 2 + (c[:, 1] - y) ** 2 + (c[:, 2] - z) ** 2
        return int(np.argmin(d))

    return ExecutionContext(
        mapped={"particles": particles},
        resident={"clusters": clusters},
        device_fns={"findClosest": find_closest},
    )


def gather(ctx, addresses):
    """Exactly the data-assembly gather: bytes at each address, typed."""
    values = []
    for rec in addresses:
        arr = ctx.mapped[rec.array]
        raw = arr.view(np.uint8).reshape(-1)[rec.offset : rec.offset + rec.nbytes]
        values.append(raw.view(rec.dtype)[0])
    return values


def run_roundtrip(kernel, ctx_factory, start, end, tid=0):
    """addrgen -> gather -> databuf, compared against original."""
    # Original run on its own copy of the data.
    ctx_orig = ctx_factory()
    interp = KernelInterpreter(kernel, ctx_orig)
    interp.run_thread(tid, start, end)

    # BigKernel path on a second copy.
    ctx_bk = ctx_factory()
    ag = KernelInterpreter(make_addrgen_kernel(kernel), ctx_bk)
    ag.run_thread(tid, start, end)
    data = gather(ctx_bk, ag.read_addresses)
    db = KernelInterpreter(make_databuf_kernel(kernel), ctx_bk)
    db.load_data(data)
    db.run_thread(tid, start, end)
    # Apply write-back: write addresses (addrgen order) + values (compute order).
    assert len(ag.write_addresses) == len(db.write_queue)
    for addr_rec, (val_rec, value) in zip(ag.write_addresses, db.write_queue):
        assert addr_rec == val_rec  # same access, both streams agree
        arr = ctx_bk.mapped[addr_rec.array]
        raw = arr.view(np.uint8).reshape(-1)
        raw[addr_rec.offset : addr_rec.offset + addr_rec.nbytes] = np.asarray(
            [value], dtype=addr_rec.dtype
        ).view(np.uint8)
    return ctx_orig, ctx_bk, ag, db


class TestKMeansRoundtrip:
    def test_outputs_match_original(self):
        k = kmeans_kernel()
        validate_kernel(k)
        ctx_orig, ctx_bk, ag, db = run_roundtrip(k, make_ctx, 0, 16)
        np.testing.assert_array_equal(
            ctx_orig.mapped["particles"]["cid"], ctx_bk.mapped["particles"]["cid"]
        )

    def test_address_stream_covers_reads_only(self):
        k = kmeans_kernel()
        _, _, ag, _ = run_roundtrip(k, make_ctx, 0, 16)
        # 3 reads per record (x, y, z)
        assert len(ag.read_addresses) == 48
        assert all(not a.is_write for a in ag.read_addresses)
        # reads touch only the xyz 24-byte prefix of each 48B record
        assert all(a.offset % 48 < 24 for a in ag.read_addresses)

    def test_write_stream_is_cid_only(self):
        k = kmeans_kernel()
        _, _, ag, _ = run_roundtrip(k, make_ctx, 0, 16)
        assert len(ag.write_addresses) == 16
        assert all(a.offset % 48 == 24 and a.nbytes == 4 for a in ag.write_addresses)

    def test_transferred_volume_is_reduced(self):
        """Only 24 of 48 bytes per record cross the link (Table I: 50%)."""
        k = kmeans_kernel()
        _, _, ag, _ = run_roundtrip(k, make_ctx, 0, 16)
        read_bytes = sum(a.nbytes for a in ag.read_addresses)
        assert read_bytes == 16 * 24

    def test_partial_thread_range(self):
        k = kmeans_kernel()
        ctx_orig, ctx_bk, _, _ = run_roundtrip(k, make_ctx, 5, 11, tid=3)
        np.testing.assert_array_equal(
            ctx_orig.mapped["particles"]["cid"][5:11],
            ctx_bk.mapped["particles"]["cid"][5:11],
        )

    @given(
        seed=st.integers(0, 1000),
        n=st.integers(1, 40),
    )
    @settings(max_examples=25, deadline=None)
    def test_roundtrip_property(self, seed, n):
        k = kmeans_kernel()
        ctx_orig, ctx_bk, _, _ = run_roundtrip(
            k, lambda: make_ctx(n=n, seed=seed), 0, n
        )
        np.testing.assert_array_equal(
            ctx_orig.mapped["particles"]["cid"], ctx_bk.mapped["particles"]["cid"]
        )


BYTES = RecordSchema.bytes_schema()


def wordcount_like_kernel():
    """Streaming byte scan with data-dependent *compute* (sliceable):
    counts bytes over a threshold into a resident histogram."""
    body = (
        For(
            "i",
            Var("start"),
            Var("end"),
            (
                Assign("c", Load(MappedRef("text", Var("i"), "byte"))),
                Assign("h", BinOp("%", Var("c"), Const(16))),
                If(
                    BinOp(">", Var("c"), Const(96)),
                    (AtomicAdd("hist", Var("h"), Const(1)),),
                ),
            ),
        ),
    )
    return Kernel("wc", body, mapped={"text": BYTES}, resident=("hist",))


class TestByteStreamRoundtrip:
    def make_ctx(self, n=200, seed=1):
        rng = np.random.default_rng(seed)
        text = np.zeros(n, dtype=BYTES.numpy_dtype())
        text["byte"] = rng.integers(32, 127, n, dtype=np.uint8)
        return ExecutionContext(
            mapped={"text": text}, resident={"hist": np.zeros(16, dtype=np.int64)}
        )

    def test_histogram_matches(self):
        k = wordcount_like_kernel()
        validate_kernel(k)
        ctx_orig, ctx_bk, ag, db = run_roundtrip(k, self.make_ctx, 0, 200)
        np.testing.assert_array_equal(
            ctx_orig.resident["hist"], db.ctx.resident["hist"]
        )

    def test_addresses_are_sequential_bytes(self):
        k = wordcount_like_kernel()
        _, _, ag, _ = run_roundtrip(k, self.make_ctx, 0, 200)
        offs = [a.offset for a in ag.read_addresses]
        assert offs == list(range(200))  # perfect stride-1 pattern


def data_dependent_kernel():
    """Index chasing: next index comes from mapped data (unsliceable)."""
    IDX = RecordSchema.packed([("next", "i8")], record_size=8)
    body = (
        Assign("i", Var("start")),
        Assign("n", Const(0)),
        While(
            BinOp("<", Var("n"), Const(4)),
            (
                Assign("i", Load(MappedRef("links", Var("i"), "next"))),
                Assign("n", BinOp("+", Var("n"), Const(1))),
            ),
        ),
    )
    return Kernel("chase", body, mapped={"links": IDX})


class TestFallbackPath:
    def test_unsliceable_kernel_raises(self):
        with pytest.raises(SlicingError):
            make_addrgen_kernel(data_dependent_kernel())

    def test_fallback_window_execution(self):
        """The databuf kernel still runs against a full-data window."""
        k = data_dependent_kernel()
        links = np.zeros(8, dtype=RecordSchema.packed([("next", "i8")]).numpy_dtype())
        links["next"] = (np.arange(8) + 3) % 8
        ctx = ExecutionContext(mapped={"links": links})
        orig = KernelInterpreter(k, ctx)
        orig.run_thread(0, 0, 8)

        db = KernelInterpreter(make_databuf_kernel(k), ctx)
        db.fallback_windows["links"] = (0, links.view(np.uint8).reshape(-1).copy())
        db.run_thread(0, 0, 8)
        # both walked the same chain: compare final env not available, but
        # stats agree on number of loads
        assert db.stats.n_mapped_reads == orig.stats.n_mapped_reads == 4

    def test_fallback_window_out_of_range(self):
        k = data_dependent_kernel()
        links = np.zeros(8, dtype=RecordSchema.packed([("next", "i8")]).numpy_dtype())
        links["next"] = 100  # points outside the window
        ctx = ExecutionContext(mapped={"links": links})
        db = KernelInterpreter(make_databuf_kernel(k), ctx)
        db.fallback_windows["links"] = (0, links.view(np.uint8).reshape(-1).copy())
        with pytest.raises(BufferOverrun):
            db.run_thread(0, 0, 8)


class TestQueueUnderrun:
    def test_short_data_queue_detected(self):
        k = kmeans_kernel()
        ctx = make_ctx()
        db = KernelInterpreter(make_databuf_kernel(k), ctx)
        db.load_data([1.0, 2.0])  # far too few values
        with pytest.raises(BufferOverrun):
            db.run_thread(0, 0, 16)


class TestMappedAccessAnalysis:
    def test_kmeans_accesses(self):
        acc = mapped_accesses(kmeans_kernel())
        kinds = [kind for kind, _ in acc]
        assert kinds.count("read") == 3
        assert kinds.count("write") == 1

    def test_addrgen_emits_match_analysis(self):
        k = kmeans_kernel()
        ag = make_addrgen_kernel(k)
        emits = [s for s in _walk(ag.body) if isinstance(s, EmitAddress)]
        assert len(emits) == 4


def _walk(body):
    from repro.kernelc.ir import walk_stmts

    return list(walk_stmts(body))
