"""Tests for streaming arrays, buffer rings, and the scheduler."""

import numpy as np
import pytest

from repro.errors import RuntimeConfigError, SynchronizationError
from repro.hw import GTX680, GpuDevice
from repro.hw.gpu_memory import GpuMemoryAllocator
from repro.hw.pinned import PinnedAllocator
from repro.kernelc.ir import RecordSchema
from repro.runtime.buffers import BlockBuffers, BufferConfig, BufferRing
from repro.runtime.scheduler import ThreadLayout, plan_blocks
from repro.runtime.streaming import StreamingArray, StreamingRegistry
from repro.units import GiB, KiB, MiB

PARTICLE = RecordSchema.packed(
    [("x", "f8"), ("y", "f8"), ("z", "f8"), ("cid", "i4")], record_size=48
)


class TestStreaming:
    def test_malloc_map_roundtrip(self):
        reg = StreamingRegistry()
        reg.streaming_malloc("particles", 48 * 100)
        host = np.zeros(100, dtype=PARTICLE.numpy_dtype())
        arr = reg.streaming_map("particles", host, PARTICLE, writable=True)
        assert reg.get("particles") is arr
        assert arr.nbytes == 4800
        assert arr.n_records == 100

    def test_map_without_malloc_rejected(self):
        reg = StreamingRegistry()
        host = np.zeros(10, dtype=PARTICLE.numpy_dtype())
        with pytest.raises(RuntimeConfigError):
            reg.streaming_map("ghost", host, PARTICLE)

    def test_map_larger_than_declared_rejected(self):
        reg = StreamingRegistry()
        reg.streaming_malloc("p", 48)
        host = np.zeros(10, dtype=PARTICLE.numpy_dtype())
        with pytest.raises(RuntimeConfigError):
            reg.streaming_map("p", host, PARTICLE)

    def test_double_malloc_rejected(self):
        reg = StreamingRegistry()
        reg.streaming_malloc("p", 48)
        with pytest.raises(RuntimeConfigError):
            reg.streaming_malloc("p", 96)

    def test_dtype_schema_mismatch_rejected(self):
        with pytest.raises(RuntimeConfigError):
            StreamingArray("p", PARTICLE, np.zeros(4, dtype=np.float64))

    def test_byte_view_is_flat(self):
        host = np.zeros(10, dtype=PARTICLE.numpy_dtype())
        arr = StreamingArray("p", PARTICLE, host)
        assert arr.byte_view().shape == (480,)


class TestBufferRing:
    def test_produce_consume_fifo(self):
        ring = BufferRing(2)
        ring.produce("a")
        ring.produce("b")
        assert ring.consume() == "a"
        ring.produce("c")
        assert ring.consume() == "b"
        assert ring.consume() == "c"

    def test_overrun_detected(self):
        ring = BufferRing(2)
        ring.produce(1)
        ring.produce(2)
        with pytest.raises(SynchronizationError):
            ring.produce(3)

    def test_consume_before_produce_detected(self):
        ring = BufferRing(2)
        with pytest.raises(SynchronizationError):
            ring.consume()

    def test_minimum_two_instances(self):
        with pytest.raises(RuntimeConfigError):
            BufferRing(1)


class TestBufferConfig:
    def test_pinned_footprint(self):
        c = BufferConfig(data_buf_bytes=1 * MiB, addr_buf_entries=1024, instances=2)
        assert c.pinned_bytes_per_block() == 2 * (1 * MiB + 8 * 1024)

    def test_gpu_footprint_includes_write_buffers(self):
        c = BufferConfig(
            data_buf_bytes=1 * MiB,
            addr_buf_entries=64,
            instances=2,
            write_buf_bytes=256 * KiB,
        )
        assert c.gpu_bytes_per_block() == 2 * (1 * MiB + 256 * KiB)

    def test_single_instance_rejected(self):
        with pytest.raises(RuntimeConfigError):
            BufferConfig(data_buf_bytes=1, addr_buf_entries=1, instances=1)


class TestBlockBuffers:
    def test_allocation_accounting(self):
        pinned = PinnedAllocator(1 * GiB)
        gpu = GpuMemoryAllocator(2 * GiB)
        cfg = BufferConfig(data_buf_bytes=4 * MiB, addr_buf_entries=4096, instances=2)
        bb = BlockBuffers(0, cfg)
        bb.allocate(pinned, gpu)
        assert pinned.used == cfg.pinned_bytes_per_block()
        assert gpu.used == cfg.gpu_bytes_per_block()
        bb.release(pinned, gpu)
        assert pinned.used == 0
        assert gpu.used == 0

    def test_write_rings_only_when_writing(self):
        cfg = BufferConfig(data_buf_bytes=1 * MiB, addr_buf_entries=64, instances=2)
        assert BlockBuffers(0, cfg).write_ring is None
        cfg_w = BufferConfig(
            data_buf_bytes=1 * MiB,
            addr_buf_entries=64,
            instances=2,
            write_buf_bytes=1024,
        )
        assert BlockBuffers(0, cfg_w).write_ring is not None


class TestThreadLayout:
    def test_doubles_threads(self):
        lay = ThreadLayout(compute_threads=256)
        assert lay.total_threads == 512
        assert lay.addrgen_threads == 256

    def test_warp_homogeneous_roles(self):
        lay = ThreadLayout(compute_threads=128)
        roles = [lay.role_of_warp(w) for w in range(lay.warps)]
        assert roles == ["addrgen"] * 4 + ["compute"] * 4
        assert lay.is_divergence_free()

    def test_non_warp_multiple_rejected(self):
        with pytest.raises(RuntimeConfigError):
            ThreadLayout(compute_threads=100)

    def test_warp_index_bounds(self):
        lay = ThreadLayout(compute_threads=32)
        with pytest.raises(RuntimeConfigError):
            lay.role_of_warp(99)


class TestPlanBlocks:
    def test_respects_requested_blocks(self):
        gpu = GpuDevice(GTX680)
        plan = plan_blocks(
            gpu,
            ThreadLayout(compute_threads=128),
            BufferConfig(data_buf_bytes=1 * MiB, addr_buf_entries=256, instances=2),
            num_set_blocks=4,
        )
        assert plan.active_blocks == 4
        assert plan.total_gpu_threads == 4 * 256

    def test_hardware_bounds_active_blocks(self):
        gpu = GpuDevice(GTX680)
        plan = plan_blocks(
            gpu,
            ThreadLayout(compute_threads=512),  # 1024 threads/block
            BufferConfig(data_buf_bytes=1 * MiB, addr_buf_entries=256, instances=2),
            num_set_blocks=1000,
        )
        # 2048 threads per SM / 1024 per block = 2 blocks per SM * 8 SMs
        assert plan.active_blocks == 16

    def test_zero_requested_rejected(self):
        gpu = GpuDevice(GTX680)
        with pytest.raises(RuntimeConfigError):
            plan_blocks(
                gpu,
                ThreadLayout(compute_threads=32),
                BufferConfig(data_buf_bytes=1, addr_buf_entries=1, instances=2),
                num_set_blocks=0,
            )
