"""Tests for the data-assembly stage: gather, layout, locality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RuntimeConfigError
from repro.hw.spec import XEON_E5
from repro.kernelc.codegen import AddressRecord
from repro.runtime.assembly import (
    _gather_bytes_reference,
    assembly_read_order,
    estimate_assembly_hit_rate,
    gather_bytes,
    gather_values,
    interleave_layout,
    measure_assembly_hit_rate,
)


class TestGather:
    def test_gather_values_typed(self):
        buf = np.arange(8, dtype=np.float64).view(np.uint8)
        recs = [AddressRecord("a", i * 8, 8, "f8") for i in (3, 0, 5)]
        vals = gather_values(buf, recs)
        assert vals == [3.0, 0.0, 5.0]

    def test_gather_values_out_of_range(self):
        buf = np.zeros(16, dtype=np.uint8)
        with pytest.raises(RuntimeConfigError):
            gather_values(buf, [AddressRecord("a", 12, 8, "f8")])

    def test_gather_bytes_orders_output(self):
        buf = np.arange(64, dtype=np.uint8)
        out = gather_bytes(buf, np.array([8, 0, 16]), elem_bytes=4)
        np.testing.assert_array_equal(
            out, [8, 9, 10, 11, 0, 1, 2, 3, 16, 17, 18, 19]
        )

    def test_gather_bytes_empty(self):
        assert gather_bytes(np.zeros(4, np.uint8), np.array([]), 4).size == 0

    def test_gather_bytes_bounds_checked(self):
        buf = np.zeros(16, dtype=np.uint8)
        with pytest.raises(RuntimeConfigError):
            gather_bytes(buf, np.array([14]), elem_bytes=4)

    @given(
        n=st.integers(1, 50),
        seed=st.integers(0, 100),
        elem=st.sampled_from([1, 2, 4, 8]),
    )
    @settings(max_examples=40, deadline=None)
    def test_gather_bytes_matches_naive(self, n, seed, elem):
        rng = np.random.default_rng(seed)
        buf = rng.integers(0, 256, 1024, dtype=np.uint8)
        offs = rng.integers(0, 1024 - elem, n) // elem * elem
        fast = gather_bytes(buf, offs, elem)
        naive = np.concatenate([buf[o : o + elem] for o in offs])
        np.testing.assert_array_equal(fast, naive)

    @given(
        n=st.integers(0, 200),
        seed=st.integers(0, 100),
        elem=st.sampled_from([1, 2, 3, 4, 7, 8, 16]),
    )
    @settings(max_examples=60, deadline=None)
    def test_gather_bytes_matches_reference(self, n, seed, elem):
        """The column-fill gather is bit-identical to the index-matrix
        reference (unaligned offsets and odd element sizes included)."""
        rng = np.random.default_rng(seed)
        buf = rng.integers(0, 256, 2048, dtype=np.uint8)
        offs = rng.integers(0, 2048 - elem, n) if n else np.array([], np.int64)
        fast = gather_bytes(buf, offs, elem)
        ref = _gather_bytes_reference(buf, offs, elem)
        assert fast.dtype == ref.dtype
        np.testing.assert_array_equal(fast, ref)

    def test_gather_bytes_reference_bounds_checked(self):
        buf = np.zeros(16, dtype=np.uint8)
        with pytest.raises(RuntimeConfigError):
            _gather_bytes_reference(buf, np.array([14]), elem_bytes=4)
        with pytest.raises(RuntimeConfigError):
            gather_bytes(buf, np.array([-1]), elem_bytes=4)

    def test_gather_bytes_single_byte_elements(self):
        buf = np.arange(32, dtype=np.uint8)
        offs = np.array([5, 0, 31, 5])
        out = gather_bytes(buf, offs, elem_bytes=1)
        np.testing.assert_array_equal(out, [5, 0, 31, 5])
        assert out.dtype == np.uint8


class TestInterleave:
    def test_round_robin_across_threads(self):
        streams = [np.array([0, 1, 2]), np.array([10, 11, 12])]
        np.testing.assert_array_equal(
            interleave_layout(streams), [0, 10, 1, 11, 2, 12]
        )

    def test_ragged_tails(self):
        streams = [np.array([0, 1, 2]), np.array([10])]
        np.testing.assert_array_equal(interleave_layout(streams), [0, 10, 1, 2])

    def test_empty(self):
        assert interleave_layout([]).size == 0

    def test_coalescing_effect(self):
        """After interleave, step-k elements of all threads are adjacent —
        exactly what makes simultaneous warp accesses coalesced."""
        threads = 32
        per = 4
        streams = [np.arange(per) * 8 + t * 1000 for t in range(threads)]
        out = interleave_layout(streams)
        # first `threads` entries are step 0 of every thread
        np.testing.assert_array_equal(out[:threads] % 1000, 0)

    @given(
        n_threads=st.integers(1, 8),
        lens=st.integers(0, 6),
        seed=st.integers(0, 50),
    )
    @settings(max_examples=30, deadline=None)
    def test_interleave_is_permutation(self, n_threads, lens, seed):
        rng = np.random.default_rng(seed)
        streams = [
            rng.integers(0, 10**6, rng.integers(0, lens + 1))
            for _ in range(n_threads)
        ]
        out = interleave_layout(streams)
        everything = np.concatenate([s for s in streams]) if streams else np.array([])
        assert sorted(out.tolist()) == sorted(everything.tolist())


class TestReadOrderAndLocality:
    def test_locality_opt_reads_threads_contiguously(self):
        streams = [np.array([0, 8, 16]), np.array([1000, 1008])]
        order = assembly_read_order(streams, locality_opt=True)
        np.testing.assert_array_equal(order, [0, 8, 16, 1000, 1008])

    def test_no_opt_reads_in_gpu_order(self):
        streams = [np.array([0, 8]), np.array([1000, 1008])]
        order = assembly_read_order(streams, locality_opt=False)
        np.testing.assert_array_equal(order, [0, 1000, 8, 1008])

    def test_measured_hit_rate_improves_with_locality(self):
        """Section IV-B: per-thread-contiguous reads beat GPU-order reads
        when each thread's data is a contiguous slab far from the others."""
        threads = 64
        per_thread = 256
        slab = 1 << 20  # 1 MiB between thread slabs
        streams = [
            t * slab + np.arange(per_thread) * 8 for t in range(threads)
        ]
        good = measure_assembly_hit_rate(
            assembly_read_order(streams, True), 8, XEON_E5
        )
        # interleaved reads jump 1 MiB every access
        bad = measure_assembly_hit_rate(
            assembly_read_order(streams, False), 8, XEON_E5
        )
        assert good > 0.8
        assert bad < good - 0.3

    def test_estimate_hit_rate_locality(self):
        hi = estimate_assembly_hit_rate(
            elem_bytes=8,
            record_bytes=8,
            threads=64,
            chunk_bytes=256 << 20,
            cpu=XEON_E5,
            locality_opt=True,
            reads_per_record=1,
        )
        lo = estimate_assembly_hit_rate(
            elem_bytes=8,
            record_bytes=8,
            threads=64,
            chunk_bytes=256 << 20,
            cpu=XEON_E5,
            locality_opt=False,
            reads_per_record=1,
        )
        assert hi > lo

    def test_estimate_locality_line_sharing(self):
        """3 reads spanning a 48B record: ~0.75 of them share a fetched line."""
        rate = estimate_assembly_hit_rate(
            8, 48, 64, 64 << 20, XEON_E5, True, reads_per_record=3
        )
        assert rate == pytest.approx(1 - (48 / 64) / 3)

    def test_estimate_many_streams_thrash(self):
        """Interleaved streams beyond cache capacity evict each other."""
        few = estimate_assembly_hit_rate(
            8, 8, 64, 64 << 20, XEON_E5, False, reads_per_record=1
        )
        many = estimate_assembly_hit_rate(
            8, 8, 1 << 20, 64 << 20, XEON_E5, False, reads_per_record=1
        )
        assert many < few

    def test_empty_read_order_hit_rate(self):
        assert measure_assembly_hit_rate(np.array([]), 8, XEON_E5) == 1.0
