"""Tests for the unified-memory baseline extension."""

import pytest

from repro.apps import ALL_APPS, get_app
from repro.engines import (
    BigKernelEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.errors import RuntimeConfigError
from repro.ext import GpuUvmEngine, UvmSpec
from repro.units import KiB, MiB

CFG = EngineConfig(chunk_bytes=1 * MiB)


@pytest.fixture(scope="module")
def runs():
    out = {}
    for cls in ALL_APPS:
        app = cls()
        data = app.generate(n_bytes=4 * MiB, seed=4)
        out[app.name] = (
            app,
            {
                e.name: e.run(app, data, CFG)
                for e in (
                    GpuSingleBufferEngine(),
                    GpuDoubleBufferEngine(),
                    GpuUvmEngine(),
                    BigKernelEngine(),
                )
            },
        )
    return out


APPS = [cls.name for cls in ALL_APPS]


@pytest.mark.parametrize("name", APPS)
class TestUvmShape:
    def test_output_matches(self, name, runs):
        app, r = runs[name]
        assert app.outputs_equal(r["gpu_single"].output, r["gpu_uvm"].output)

    def test_beats_single_buffering(self, name, runs):
        """Programmability for free *and* faster than naive chunking."""
        _, r = runs[name]
        assert r["gpu_uvm"].sim_time < r["gpu_single"].sim_time

    def test_loses_to_bigkernel(self, name, runs):
        """The streaming case is where explicit prefetch pipelining still
        wins over fault-driven migration."""
        _, r = runs[name]
        assert r["gpu_uvm"].sim_time > r["bigkernel"].sim_time

    def test_single_launch_like_bigkernel(self, name, runs):
        _, r = runs[name]
        assert r["gpu_uvm"].metrics.kernel_launches == 1


class TestUvmModel:
    def test_no_volume_reduction_at_page_granularity(self, runs):
        """Sparse readers still migrate everything (whole pages)."""
        _, r = runs["netflix"]
        assert (
            r["gpu_uvm"].metrics.bytes_h2d
            >= 0.99 * r["gpu_single"].metrics.bytes_h2d
        )
        assert r["bigkernel"].metrics.bytes_h2d < 0.5 * r["gpu_uvm"].metrics.bytes_h2d

    def test_two_pass_app_migrates_twice(self, runs):
        app, r = runs["mastercard"]
        data_bytes = app.generate(n_bytes=4 * MiB, seed=4).total_mapped_bytes
        assert r["gpu_uvm"].metrics.bytes_h2d == pytest.approx(
            2 * data_bytes, rel=0.01
        )

    def test_writer_app_migrates_dirty_pages_back(self, runs):
        _, r = runs["kmeans"]
        assert r["gpu_uvm"].metrics.bytes_d2h > 0

    def test_smaller_pages_mean_more_faults(self):
        app = get_app("netflix")
        data = app.generate(n_bytes=2 * MiB, seed=1)
        small = GpuUvmEngine(UvmSpec(page_bytes=4 * KiB)).run(app, data, CFG)
        large = GpuUvmEngine(UvmSpec(page_bytes=2 * MiB)).run(app, data, CFG)
        assert small.metrics.notes["pages"] > large.metrics.notes["pages"]
        assert small.sim_time > large.sim_time

    def test_better_prefetcher_helps(self):
        app = get_app("dna")
        data = app.generate(n_bytes=2 * MiB, seed=1)
        weak = GpuUvmEngine(UvmSpec(prefetch_hit=0.2)).run(app, data, CFG)
        strong = GpuUvmEngine(UvmSpec(prefetch_hit=0.95)).run(app, data, CFG)
        assert strong.sim_time < weak.sim_time

    def test_spec_validation(self):
        with pytest.raises(RuntimeConfigError):
            UvmSpec(page_bytes=1024)
        with pytest.raises(RuntimeConfigError):
            UvmSpec(prefetch_hit=1.5)
        with pytest.raises(RuntimeConfigError):
            UvmSpec(overlap=-0.1)
