"""Serving layer: trace generation, batching, cache short-circuit, chaos
serve mode, the amortization counters, and the CLI."""

import json

import pytest

from repro.apps.base import DATASET_HASH_STATS, dataset_key, get_app
from repro.bench.jobs import DatasetSpec, JobSpec
from repro.bench.sweep import CONTENT_KEY_STATS, RunCache, content_run_key
from repro.cli import main
from repro.engines import BigKernelEngine, EngineConfig
from repro.errors import ReproError
from repro.runtime.fastpath import FASTPATH_MEMO_STATS
from repro.serve import (
    ServeConfig,
    ServeRequest,
    Server,
    TenantSpec,
    TraceSpec,
    batch_key,
    coalesce,
    generate_trace,
    oneshot_oracle,
    scale_trace,
    serve_trace,
)
from repro.units import KiB

SMALL = TraceSpec(
    seed=11, duration=1.0, rate=25.0, data_bytes=256 * KiB, repeat_p=0.5
)


def _dataset_spec(app="wordcount", seed=0, n_bytes=256 * KiB):
    from repro.apps.datagen import DATAGEN_VERSION

    return DatasetSpec(app=app, seed=seed, n_bytes=n_bytes, version=DATAGEN_VERSION)


def _request(req_id, job, tenant="t", arrival=0.0):
    return ServeRequest(req_id=req_id, tenant=tenant, arrival=arrival, job=job)


def _job(dataset=None, chunk_kib=256, **cfg):
    from repro.serve.workload import engine_spec_by_name

    return JobSpec(
        dataset=dataset or _dataset_spec(),
        engine=engine_spec_by_name("bigkernel"),
        config=EngineConfig(chunk_bytes=chunk_kib * 1024, **cfg),
    )


# ----------------------------------------------------------------- workload
def test_trace_is_deterministic_and_weighted():
    a = generate_trace(SMALL)
    b = generate_trace(SMALL)
    assert [r.job for r in a] == [r.job for r in b]
    assert [r.arrival for r in a] == [r.arrival for r in b]
    assert [r.tenant for r in a] == [r.tenant for r in b]
    assert len(a) > 10
    # arrivals are strictly ordered and inside the window
    assert all(0 < r.arrival <= SMALL.duration for r in a)
    # repeats exist (they are what the cache feeds on)
    jobs = [r.job for r in a]
    assert len(set(jobs)) < len(jobs)


def test_scale_trace_rescales_arrivals_only():
    trace = generate_trace(SMALL)
    fast = scale_trace(trace, 0.25)
    assert [r.job for r in fast] == [r.job for r in trace]
    assert fast[3].arrival == trace[3].arrival * 0.25
    with pytest.raises(ReproError):
        scale_trace(trace, 0.0)


def test_trace_spec_validation():
    with pytest.raises(ReproError):
        TraceSpec(duration=0.0)
    with pytest.raises(ReproError):
        TraceSpec(repeat_p=1.0)
    with pytest.raises(ReproError):
        TenantSpec("x", weight=0.0)
    with pytest.raises(ReproError):
        generate_trace(TraceSpec(apps=("no-such-app",)))


# ------------------------------------------------------------------ batcher
def test_coalesce_groups_by_compatibility():
    j1, j2 = _job(chunk_kib=256), _job(chunk_kib=512)
    j_other_app = _job(dataset=_dataset_spec(app="dna"))
    window = [_request(0, j1), _request(1, j_other_app), _request(2, j2),
              _request(3, j1)]
    batches = coalesce(window)
    # same engine+hardware: wordcount jobs batch together, dna separately
    assert len(batches) == 2
    assert batch_key(j1) == batch_key(j2)
    assert batch_key(j1) != batch_key(j_other_app)
    wc = batches[0]
    assert [r.req_id for r in wc.requests] == [0, 2, 3]
    groups = wc.unique_jobs()
    # j1 twice (exact dup), j2 once
    assert [len(reqs) for reqs in groups.values()] == [2, 1]


# ---------------------------------------------------------------- scheduler
def test_duplicate_requests_coalesce_onto_one_engine_run():
    job = _job()
    with Server(ServeConfig(cache=False, max_batch=4)) as server:
        for i in range(3):
            assert server.submit(_request(i, job)) is None
        responses = server.drain()
    statuses = [r.status for r in sorted(responses, key=lambda r: r.req_id)]
    assert statuses == ["served", "coalesced", "coalesced"]
    assert server.metrics.engine_runs == 1
    # followers share the leader's result object — zero recompute
    assert responses[1].result is responses[0].result
    assert responses[2].result is responses[0].result


def test_exact_repeat_is_cached_with_zero_engine_runs():
    job = _job()
    with Server(ServeConfig(max_batch=4), cache=RunCache(disk=None)) as server:
        assert server.submit(_request(0, job)) is None
        first = server.drain()
        runs_after_first = server.metrics.engine_runs
        assert server.submit(_request(1, job)) is None
        second = server.drain()
    assert first[0].status == "served"
    assert second[0].status == "cached"
    assert server.metrics.engine_runs == runs_after_first  # zero new runs
    assert second[0].result is first[0].result


def test_admission_control_rejects_when_full():
    job = _job()
    with Server(ServeConfig(max_queue=2, cache=False)) as server:
        assert server.submit(_request(0, job)) is None
        assert server.submit(_request(1, job)) is None
        rejection = server.submit(_request(2, job), now=5.0)
    assert rejection is not None
    assert rejection.status == "rejected"
    assert rejection.completion == 5.0
    assert server.metrics.rejected == 1
    assert server.pending() == 2


def test_failed_job_is_typed_and_isolated():
    bad = JobSpec(
        dataset=DatasetSpec(app="wordcount", seed=0, n_bytes=256 * KiB,
                            version=-1),  # version mismatch -> ReproError
        engine=_job().engine,
        config=EngineConfig(),
    )
    good = _job()
    with Server(ServeConfig(cache=False)) as server:
        server.submit(_request(0, bad))
        server.submit(_request(1, good))
        responses = sorted(server.drain(), key=lambda r: r.req_id)
    assert responses[0].status == "failed"
    assert isinstance(responses[0].exception, ReproError)
    assert responses[1].status == "served"  # the batch survived


def test_served_results_bit_equal_one_shot(tmp_path):
    trace = generate_trace(SMALL)
    with Server(ServeConfig(max_queue=len(trace) + 1),
                cache=RunCache(disk=None)) as server:
        outcome = serve_trace(server, trace)
    jobs = {r.req_id: r.job for r in trace}
    oracles = {}
    for resp in outcome.responses:
        assert resp.status in ("served", "coalesced", "cached")
        job = jobs[resp.req_id]
        key = (job.dataset, job.engine, job.config)
        if key not in oracles:
            oracles[key] = oneshot_oracle(job)
        oracle = oracles[key]
        assert resp.result.sim_time == oracle.sim_time
        app = get_app(job.dataset.app)
        assert app.outputs_equal(resp.result.output, oracle.output)
    assert outcome.metrics.cached > 0
    assert outcome.metrics.engine_runs < len(trace)


# -------------------------------------------------------- batch engine hook
def test_run_batch_shares_functional_output_bit_exactly():
    app = get_app("wordcount")
    data = app.generate(n_bytes=256 * KiB, seed=3)
    engine = BigKernelEngine()
    # same chunk geometry, different ring depth: equal chunk bounds, so the
    # functional output may be shared; timelines must still differ per run
    cfgs = [
        EngineConfig(chunk_bytes=64 * KiB, ring_depth=2),
        EngineConfig(chunk_bytes=64 * KiB, ring_depth=3),
        EngineConfig(chunk_bytes=64 * KiB, ring_depth=2),
    ]
    batch = engine.run_batch(app, data, cfgs)
    solo = [BigKernelEngine().run(app, data, cfg) for cfg in cfgs]
    for got, want in zip(batch, solo):
        assert got.sim_time == want.sim_time
        assert app.outputs_equal(got.output, want.output)
    assert any(
        r.metrics.notes.get("batch_shared_output") for r in batch[1:]
    )


# ------------------------------------------------- amortization accounting
def test_dataset_hash_amortized_one_digest_per_handbuilt_dataset():
    app = get_app("wordcount")
    data = app.generate(n_bytes=256 * KiB, seed=5)
    # strip the recipe stamp: force the hand-built SHA-256 fallback
    del data.meta["datagen"]
    data.meta.pop("_dataset_key", None)
    before = dict(DATASET_HASH_STATS)
    keys = [dataset_key(data) for _ in range(10)]
    assert len(set(keys)) == 1 and keys[0][0] == "sha256"
    assert DATASET_HASH_STATS["requests"] == before["requests"] + 10
    # ten probes, ONE digest: the hash is paid once per distinct dataset
    assert DATASET_HASH_STATS["sha256_digests"] == before["sha256_digests"] + 1


def test_dataset_hash_recipe_datasets_never_digest():
    app = get_app("wordcount")
    data = app.generate(n_bytes=256 * KiB, seed=6)
    before = DATASET_HASH_STATS["sha256_digests"]
    for _ in range(5):
        key = dataset_key(data)
    assert key[0] == "datagen"
    assert DATASET_HASH_STATS["sha256_digests"] == before


def test_content_run_key_memoized_per_identity():
    app = get_app("wordcount")
    data = app.generate(n_bytes=256 * KiB, seed=7)
    engine = BigKernelEngine()
    cfg = EngineConfig(chunk_bytes=64 * KiB)
    before = dict(CONTENT_KEY_STATS)
    digests = {content_run_key(engine, app, data, cfg) for _ in range(8)}
    assert len(digests) == 1
    assert CONTENT_KEY_STATS["requests"] == before["requests"] + 8
    assert CONTENT_KEY_STATS["computed"] <= before["computed"] + 1


def test_fastpath_memo_reused_across_identical_pipeline_runs():
    app = get_app("wordcount")
    data = app.generate(n_bytes=512 * KiB, seed=8)
    engine = BigKernelEngine()
    cfg = EngineConfig(chunk_bytes=64 * KiB, functional=False)
    first = engine.run(app, data, cfg)
    before = dict(FASTPATH_MEMO_STATS)
    again = engine.run(app, data, cfg)
    assert again.sim_time == first.sim_time
    assert again.metrics.stage_totals == first.metrics.stage_totals
    assert FASTPATH_MEMO_STATS["reused"] == before["reused"] + 1
    assert FASTPATH_MEMO_STATS["computed"] == before["computed"]
    # the memo hands out fresh result shells: mutating one run's totals
    # must not leak into the next
    again.metrics.stage_totals["poison"] = 1.0
    third = engine.run(app, data, cfg)
    assert "poison" not in third.metrics.stage_totals


def test_bigkernel_schedule_memo_counters():
    app = get_app("wordcount")
    data = app.generate(n_bytes=256 * KiB, seed=9)
    engine = BigKernelEngine()
    cfg = EngineConfig(chunk_bytes=64 * KiB, functional=False)
    engine.run(app, data, cfg)
    misses = engine.schedule_misses
    engine.run(app, data, cfg)
    engine.run(app, data, cfg)
    assert engine.schedule_misses == misses
    assert engine.schedule_hits >= 2


# ------------------------------------------------------------- chaos serve
def test_chaos_serve_fingerprint_matches_direct():
    from repro.apps import WordCountApp
    from repro.faults import run_chaos

    kwargs = dict(
        quick=True,
        seed=7,
        data_bytes=512 * KiB,
        apps=[WordCountApp()],
        engines=[BigKernelEngine()],
    )
    direct = run_chaos(**kwargs)
    served = run_chaos(serve=True, **kwargs)
    assert direct.fingerprint() == served.fingerprint()
    assert direct.ok and served.ok


# ---------------------------------------------------------------- verify
def test_serve_differential_pillar():
    from repro.verify import run_serve_differential

    report = run_serve_differential(
        data_bytes=256 * KiB, seed=5, duration=1.0, rate=20.0
    )
    assert report.ok, report.summary()
    assert report.cached > 0
    assert report.engine_runs < len(report.entries)
    assert "serve vs one-shot" in report.summary()


# -------------------------------------------------------------------- CLI
def test_cli_serve_smoke(tmp_path, capsys):
    out = tmp_path / "responses.json"
    rc = main([
        "serve", "--duration", "1", "--rate", "20", "--data-mib", "1",
        "--seed", "3", "--verify", "--expect-cache-hits",
        "--trace", str(out),
    ])
    assert rc == 0
    printed = capsys.readouterr().out
    assert "cached=" in printed
    log = json.loads(out.read_text())
    assert log and all(r["status"] != "failed" for r in log)


def test_cli_serve_bad_tenants():
    assert main(["serve", "--tenants", "alpha=zero"]) == 2


def test_cli_chaos_serve_quick(capsys):
    rc = main(["chaos", "--serve", "--quick"])
    assert rc == 0
    assert "PASS" in capsys.readouterr().out
