"""Tests for IR basics: schemas, validation, printing."""

import numpy as np
import pytest

from repro.errors import IRValidationError
from repro.kernelc import (
    Assign,
    AtomicAdd,
    BinOp,
    Call,
    Const,
    FieldSpec,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    RecordSchema,
    ResidentLoad,
    Store,
    Var,
    While,
    loc_count,
    render_kernel,
    validate_kernel,
)


PARTICLE = RecordSchema.packed(
    [("x", "f8"), ("y", "f8"), ("z", "f8"), ("cid", "i4")], record_size=48
)


class TestRecordSchema:
    def test_packed_offsets(self):
        assert PARTICLE.field("x").offset == 0
        assert PARTICLE.field("y").offset == 8
        assert PARTICLE.field("cid").offset == 24
        assert PARTICLE.record_size == 48

    def test_numpy_dtype_roundtrip(self):
        dt = PARTICLE.numpy_dtype()
        assert dt.itemsize == 48
        arr = np.zeros(4, dtype=dt)
        arr["x"][2] = 1.5
        assert arr["x"][2] == 1.5

    def test_overlapping_fields_rejected(self):
        with pytest.raises(IRValidationError):
            RecordSchema(
                (FieldSpec("a", "f8", 0), FieldSpec("b", "f8", 4)), record_size=16
            )

    def test_field_outside_record_rejected(self):
        with pytest.raises(IRValidationError):
            RecordSchema((FieldSpec("a", "f8", 12),), record_size=16)

    def test_duplicate_field_rejected(self):
        with pytest.raises(IRValidationError):
            RecordSchema(
                (FieldSpec("a", "f4", 0), FieldSpec("a", "f4", 4)), record_size=8
            )

    def test_unknown_field_lookup(self):
        with pytest.raises(IRValidationError):
            PARTICLE.field("w")

    def test_bytes_schema(self):
        bs = RecordSchema.bytes_schema()
        assert bs.record_size == 1
        assert bs.field("byte").nbytes == 1


def _kmeans_kernel():
    """The paper's running example (Section III-A)."""
    ref = lambda f: MappedRef("particles", Var("i"), f)
    body = (
        For(
            "i",
            Var("start"),
            Var("end"),
            (
                Assign("x", Load(ref("x"))),
                Assign("y", Load(ref("y"))),
                Assign("z", Load(ref("z"))),
                Assign(
                    "cid",
                    Call("findClosestCluster", (Var("x"), Var("y"), Var("z"))),
                ),
                Store(ref("cid"), Var("cid")),
            ),
        ),
    )
    return Kernel(
        name="clusterKernel",
        body=body,
        mapped={"particles": PARTICLE},
        resident=("clusters",),
        params=("numP",),
        device_functions=("findClosestCluster",),
    )


class TestValidation:
    def test_valid_kernel_passes(self):
        validate_kernel(_kmeans_kernel())

    def test_undeclared_mapped_array(self):
        k = Kernel(
            "bad",
            (Assign("x", Load(MappedRef("ghost", Var("i"), "x"))),),
            mapped={},
        )
        with pytest.raises(IRValidationError, match="ghost"):
            validate_kernel(k)

    def test_unknown_field(self):
        k = Kernel(
            "bad",
            (
                For(
                    "i",
                    Var("start"),
                    Var("end"),
                    (Assign("x", Load(MappedRef("particles", Var("i"), "nope"))),),
                ),
            ),
            mapped={"particles": PARTICLE},
        )
        with pytest.raises(IRValidationError):
            validate_kernel(k)

    def test_undeclared_resident_array(self):
        k = Kernel("bad", (Assign("v", ResidentLoad("table", Const(0))),))
        with pytest.raises(IRValidationError, match="table"):
            validate_kernel(k)

    def test_undeclared_device_function(self):
        k = Kernel("bad", (Assign("v", Call("mystery", ())),))
        with pytest.raises(IRValidationError, match="mystery"):
            validate_kernel(k)

    def test_load_in_guard_rejected(self):
        ref = MappedRef("particles", Var("i"), "x")
        k = Kernel(
            "bad",
            (
                For(
                    "i",
                    Var("start"),
                    Var("end"),
                    (If(BinOp(">", Load(ref), Const(0)), (Assign("a", Const(1)),)),),
                ),
            ),
            mapped={"particles": PARTICLE},
        )
        with pytest.raises(IRValidationError, match="guard"):
            validate_kernel(k)

    def test_undefined_variable_rejected(self):
        k = Kernel("bad", (Assign("a", Var("never_set")),))
        with pytest.raises(IRValidationError, match="never_set"):
            validate_kernel(k)

    def test_undeclared_atomic_target(self):
        k = Kernel("bad", (AtomicAdd("counts", Const(0), Const(1)),))
        with pytest.raises(IRValidationError):
            validate_kernel(k)


class TestPrinter:
    def test_renders_cuda_like_source(self):
        src = render_kernel(_kmeans_kernel())
        assert "__global__ void clusterKernel" in src
        assert "particles[i].x" in src
        assert "findClosestCluster" in src

    def test_loc_count_positive(self):
        assert loc_count(_kmeans_kernel()) >= 8

    def test_transformed_kernels_render(self):
        from repro.kernelc import make_addrgen_kernel, make_databuf_kernel

        k = _kmeans_kernel()
        ag = render_kernel(make_addrgen_kernel(k))
        db = render_kernel(make_databuf_kernel(k))
        assert "addrBuf[counter++]" in ag
        assert "writeAddrBuf" in ag  # the cid store address
        assert "dataBuf[counter++]" in db
        assert "writeBuf[wcounter++]" in db
