"""Rendering coverage for every IR node kind."""

import pytest

from repro.kernelc import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    Const,
    ExprStmt,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    RecordSchema,
    ResidentLoad,
    ResidentStore,
    Store,
    UnOp,
    Var,
    While,
    loc_count,
    make_addrgen_kernel,
    make_databuf_kernel,
    render_kernel,
)
from repro.kernelc.printer import render_expr

SCHEMA = RecordSchema.packed([("v", "f8")])


class TestExprRendering:
    def test_const_var_param(self):
        assert render_expr(Const(3)) == "3"
        assert render_expr(Var("x")) == "x"
        assert render_expr(Param("numP")) == "numP"

    def test_binop_infix(self):
        assert render_expr(BinOp("+", Var("a"), Const(1))) == "(a + 1)"

    def test_binop_min_max_functional(self):
        assert render_expr(BinOp("min", Var("a"), Var("b"))) == "min(a, b)"

    def test_unop(self):
        assert render_expr(UnOp("-", Var("x"))) == "(-x)"

    def test_call(self):
        assert render_expr(Call("f", (Var("x"), Const(2)))) == "f(x, 2)"

    def test_mapped_ref_and_load(self):
        ref = MappedRef("arr", Var("i"), "v")
        assert render_expr(ref) == "&arr[i].v"
        assert render_expr(Load(ref)) == "arr[i].v"

    def test_resident_load(self):
        assert render_expr(ResidentLoad("tab", Var("k"))) == "tab[k]"


class TestStatementRendering:
    def render(self, *stmts):
        k = Kernel("t", tuple(stmts), mapped={"arr": SCHEMA}, resident=("tab",))
        return render_kernel(k)

    def test_if_else(self):
        src = self.render(
            If(
                BinOp(">", Var("start"), Const(0)),
                (Assign("a", Const(1)),),
                (Assign("a", Const(2)),),
            )
        )
        assert "if ((start > 0)) {" in src and "} else {" in src

    def test_while_and_break(self):
        src = self.render(
            While(BinOp("<", Var("start"), Var("end")), (Break(),))
        )
        assert "while ((start < end)) {" in src and "break;" in src

    def test_for_loop(self):
        src = self.render(For("i", Var("start"), Var("end"), (Assign("a", Var("i")),)))
        assert "for (i = start; i < end; i += 1) {" in src

    def test_store_and_resident_store(self):
        src = self.render(
            Store(MappedRef("arr", Var("start"), "v"), Const(1.0)),
            ResidentStore("tab", Const(0), Const(2)),
        )
        assert "arr[start].v = 1.0;" in src
        assert "tab[0] = 2;" in src

    def test_atomic_add(self):
        src = self.render(AtomicAdd("tab", Const(0), Const(1)))
        assert "atomicAdd(&tab[0], 1);" in src

    def test_expr_stmt(self):
        k = Kernel(
            "t",
            (ExprStmt(Call("g", ())),),
            mapped={"arr": SCHEMA},
            device_functions=("g",),
        )
        assert "g();" in render_kernel(k)

    def test_transformed_node_rendering(self):
        body = (
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("x", Load(MappedRef("arr", Var("i"), "v"))),
                    Store(MappedRef("arr", Var("i"), "v"), Var("x")),
                ),
            ),
        )
        k = Kernel("t", body, mapped={"arr": SCHEMA})
        ag_src = render_kernel(make_addrgen_kernel(k))
        db_src = render_kernel(make_databuf_kernel(k))
        assert "addrBuf[counter++][tid] = &arr[i].v;" in ag_src
        assert "writeAddrBuf[counter++][tid] = &arr[i].v;" in ag_src
        assert "dataBuf[counter++][tid]" in db_src
        assert "writeBuf[wcounter++][tid]" in db_src

    def test_loc_count_ignores_blank_lines(self):
        k = Kernel("t", (Assign("a", Const(1)),), mapped={"arr": SCHEMA})
        assert loc_count(k) == 4  # comment, signature, body, closing brace
