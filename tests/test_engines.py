"""Integration tests across engines: output equality, performance ordering,
feature ablation monotonicity, metrics consistency."""

import pytest

from repro.apps import ALL_APPS, get_app
from repro.engines import (
    BigKernelEngine,
    BigKernelFeatures,
    CpuMtEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.errors import RuntimeConfigError
from repro.units import MiB

DATA_BYTES = 4_000_000
CFG = EngineConfig(chunk_bytes=512 * 1024)


@pytest.fixture(scope="module")
def runs():
    """All engines over all apps once, shared by this module."""
    engines = [
        CpuSerialEngine(),
        CpuMtEngine(),
        GpuSingleBufferEngine(),
        GpuDoubleBufferEngine(),
        BigKernelEngine(),
    ]
    out = {}
    for cls in ALL_APPS:
        app = cls()
        data = app.generate(n_bytes=DATA_BYTES, seed=31)
        out[app.name] = (app, {e.name: e.run(app, data, CFG) for e in engines})
    return out


APPS = [cls.name for cls in ALL_APPS]


@pytest.mark.parametrize("name", APPS)
class TestOutputsAgree:
    def test_all_engines_same_output(self, name, runs):
        app, results = runs[name]
        ref = results["cpu_serial"]
        for engine, res in results.items():
            assert app.outputs_equal(ref.output, res.output), engine


@pytest.mark.parametrize("name", APPS)
class TestPerformanceOrdering:
    def test_mt_beats_serial(self, name, runs):
        _, r = runs[name]
        assert r["cpu_mt"].sim_time < r["cpu_serial"].sim_time

    def test_double_beats_single(self, name, runs):
        """Overlap never loses to serialization (same work)."""
        _, r = runs[name]
        assert r["gpu_double"].sim_time < r["gpu_single"].sim_time * 1.001

    def test_bigkernel_beats_double(self, name, runs):
        """The paper's headline: BigKernel outperforms double-buffering
        across all applications."""
        _, r = runs[name]
        assert r["bigkernel"].sim_time < r["gpu_double"].sim_time

    def test_bigkernel_beats_mt_cpu(self, name, runs):
        _, r = runs[name]
        assert r["bigkernel"].sim_time < r["cpu_mt"].sim_time


@pytest.mark.parametrize("name", APPS)
class TestMetrics:
    def test_single_buffer_launches_once_per_chunk(self, name, runs):
        _, r = runs[name]
        m = r["gpu_single"].metrics
        assert m.bytes_h2d > 0
        assert m.kernel_launches == m.n_chunks

    def test_bigkernel_single_launch(self, name, runs):
        _, r = runs[name]
        assert r["bigkernel"].metrics.kernel_launches == 1

    def test_bigkernel_stage_totals_present(self, name, runs):
        _, r = runs[name]
        st = r["bigkernel"].metrics.stage_totals
        assert "compute" in st and "data_transfer" in st
        assert all(v >= 0 for v in st.values())

    def test_comp_comm_ratio_in_range(self, name, runs):
        _, r = runs[name]
        assert 0.0 <= r["gpu_single"].metrics.comp_comm_ratio <= 1.0


class TestVolumeReduction:
    def test_kmeans_bigkernel_transfers_less(self, runs):
        """Only the read bytes (50%) cross the link with BigKernel."""
        _, r = runs["kmeans"]
        assert r["bigkernel"].metrics.bytes_h2d < 0.7 * r["gpu_single"].metrics.bytes_h2d

    def test_indexed_mastercard_transfers_less(self, runs):
        _, r = runs["mastercard_indexed"]
        assert (
            r["bigkernel"].metrics.bytes_h2d
            < 0.4 * r["gpu_single"].metrics.bytes_h2d
        )

    def test_wordcount_cannot_reduce(self, runs):
        """100%-read apps move everything either way (paper Section VI-B)."""
        _, r = runs["wordcount"]
        assert (
            r["bigkernel"].metrics.bytes_h2d
            > 0.95 * r["gpu_single"].metrics.bytes_h2d
        )


class TestPatternDetection:
    def test_strided_apps_find_patterns(self, runs):
        for name in ("kmeans", "wordcount", "netflix", "dna", "mastercard"):
            _, r = runs[name]
            assert r["bigkernel"].metrics.pattern_fraction >= 0.5, name

    def test_indexed_mastercard_has_no_pattern(self, runs):
        """Table II's NA row: index-driven addresses are irregular."""
        _, r = runs["mastercard_indexed"]
        assert r["bigkernel"].metrics.pattern_fraction < 0.5

    def test_disabling_recognition_never_helps(self, runs):
        app = get_app("wordcount")
        data = app.generate(n_bytes=DATA_BYTES, seed=31)
        on = BigKernelEngine().run(app, data, CFG)
        off = BigKernelEngine().run(
            app, data, CFG.with_(pattern_recognition=False)
        )
        assert off.sim_time >= on.sim_time


class TestFeatureAblation:
    @pytest.mark.parametrize("name", ["kmeans", "netflix", "dna"])
    def test_cumulative_features_monotone(self, name, runs):
        """overlap-only >= +reduction >= full time (Fig. 5's cumulative bars)."""
        app = get_app(name)
        data = app.generate(n_bytes=DATA_BYTES, seed=31)
        t_overlap = (
            BigKernelEngine(BigKernelFeatures.overlap_only())
            .run(app, data, CFG)
            .sim_time
        )
        t_reduce = (
            BigKernelEngine(BigKernelFeatures.with_reduction())
            .run(app, data, CFG)
            .sim_time
        )
        t_full = BigKernelEngine(BigKernelFeatures.full()).run(app, data, CFG).sim_time
        assert t_reduce <= t_overlap * 1.001
        assert t_full <= t_reduce * 1.001

    def test_overlap_only_close_to_double_buffering(self, runs):
        """Variant 1 is pipelined full-data transfer — same volume class as
        double-buffering (the paper's Komoda et al. observation)."""
        app = get_app("kmeans")
        data = app.generate(n_bytes=DATA_BYTES, seed=31)
        t_overlap = (
            BigKernelEngine(BigKernelFeatures.overlap_only())
            .run(app, data, CFG)
            .sim_time
        )
        t_double = GpuDoubleBufferEngine().run(app, data, CFG).sim_time
        assert t_overlap < t_double * 2.0
        assert t_overlap > t_double * 0.3

    def test_feature_labels(self):
        assert BigKernelFeatures.overlap_only().label == "overlap-only"
        assert BigKernelFeatures.with_reduction().label == "volume-reduction"
        assert BigKernelFeatures.full().label == "full"


class TestEngineConfig:
    def test_bad_chunk_bytes(self):
        with pytest.raises(RuntimeConfigError):
            EngineConfig(chunk_bytes=10)

    def test_bad_threads(self):
        with pytest.raises(RuntimeConfigError):
            EngineConfig(compute_threads=100)

    def test_bad_ring_depth(self):
        with pytest.raises(RuntimeConfigError):
            EngineConfig(ring_depth=1)

    def test_with_override(self):
        cfg = EngineConfig().with_(num_blocks=4)
        assert cfg.num_blocks == 4

    def test_speedup_helper(self, runs):
        _, r = runs["kmeans"]
        s = r["bigkernel"].speedup_over(r["cpu_serial"])
        assert s > 1.0


class TestBigKernelInternals:
    def test_fallback_notes_for_unsliceable_profile(self):
        """An app whose kernel cannot be sliced transfers everything."""
        app = get_app("wordcount")
        data = app.generate(n_bytes=500_000, seed=1)
        res = BigKernelEngine().run(app, data, CFG)
        assert res.metrics.notes["sliceable"] is True  # WC is sliceable

    def test_active_blocks_recorded(self, runs):
        _, r = runs["kmeans"]
        assert r["bigkernel"].metrics.notes["active_blocks"] >= 1

    def test_writeback_stages_only_for_kmeans(self, runs):
        _, r = runs["kmeans"]
        assert "write_transfer" in r["bigkernel"].metrics.stage_totals
        _, r2 = runs["netflix"]
        assert "write_transfer" not in r2["bigkernel"].metrics.stage_totals
