"""Trace-driven validation of the coalescing model.

The engines price GPU memory traffic with *analytic* coalescing
efficiencies (`AccessPattern`). These tests rebuild the actual warp access
vectors from the apps' real address streams — original layout vs the
assembly stage's interleaved layout — and count transactions exactly,
confirming the analytic numbers the cost models use.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.engines.gpu_common import original_access_pattern
from repro.hw.coalescing import transactions_for_warp
from repro.runtime.assembly import interleave_layout

WARP = 32


def warp_addresses_original(app, data, profile, step=0):
    """Addresses the warp's 32 lanes touch simultaneously in the ORIGINAL
    layout: lane t processes record t (record-interleaved assignment) and
    all lanes issue their step-th access together."""
    lanes = []
    for t in range(WARP):
        offs = app.chunk_read_offsets(data, t, t + 1)
        lanes.append(int(offs[min(step, offs.size - 1)]))
    return np.asarray(lanes, dtype=np.int64)


def warp_addresses_bigkernel(app, data, profile, step=0):
    """Addresses in the PREFETCH-BUFFER layout: the gather stored step k of
    every thread adjacently, so lane t's step-k slot is at
    (k * WARP + t) * elem."""
    elem = profile.elem_bytes
    return (np.arange(WARP, dtype=np.int64) + step * WARP) * elem


@pytest.mark.parametrize("name", ["kmeans", "netflix", "opinion", "dna"])
def test_original_layout_efficiency_matches_analytic(name):
    app = get_app(name)
    data = app.generate(n_bytes=300_000, seed=8)
    profile = app.access_profile(data)
    pattern = original_access_pattern(profile)

    # measured over a few steps of the real stream
    effs = []
    for step in range(3):
        addrs = warp_addresses_original(app, data, profile, step)
        txns = transactions_for_warp(addrs, profile.elem_bytes)
        effs.append((WARP * profile.elem_bytes) / (txns * 32))
    measured = float(np.mean(effs))
    analytic = pattern.original_efficiency()
    assert measured == pytest.approx(analytic, rel=0.35), (
        f"{name}: measured {measured:.3f} vs analytic {analytic:.3f}"
    )


@pytest.mark.parametrize("name", ["kmeans", "netflix", "opinion", "dna"])
def test_bigkernel_layout_is_fully_coalesced(name):
    """After the assembly re-layout, a warp access touches the minimum
    possible number of segments."""
    app = get_app(name)
    data = app.generate(n_bytes=300_000, seed=8)
    profile = app.access_profile(data)
    addrs = warp_addresses_bigkernel(app, data, profile)
    txns = transactions_for_warp(addrs, profile.elem_bytes)
    min_txns = -(-WARP * profile.elem_bytes // 32)  # ceil(useful/32)
    assert txns == min_txns


@pytest.mark.parametrize("name", ["kmeans", "netflix", "opinion", "dna"])
def test_relayout_reduces_transactions(name):
    app = get_app(name)
    data = app.generate(n_bytes=300_000, seed=8)
    profile = app.access_profile(data)
    orig = transactions_for_warp(
        warp_addresses_original(app, data, profile), profile.elem_bytes
    )
    bk = transactions_for_warp(
        warp_addresses_bigkernel(app, data, profile), profile.elem_bytes
    )
    assert bk <= orig


def test_interleave_layout_realizes_the_bigkernel_geometry():
    """The assembly stage's interleaving actually produces the adjacent
    per-step slots the analytic model assumes."""
    app = get_app("kmeans")
    data = app.generate(n_bytes=48 * 256, seed=1)
    profile = app.access_profile(data)
    streams = [app.chunk_read_offsets(data, t, t + 4) for t in range(WARP)]
    order = interleave_layout(streams)
    # after gathering in this order, lane t's first value sits at slot t:
    # slots 0..31 are step 0 of threads 0..31
    first_step = order[:WARP]
    expected = np.asarray([int(s[0]) for s in streams])
    np.testing.assert_array_equal(first_step, expected)
    # in the *prefetch buffer*, those 32 values are contiguous: one 256B
    # span -> 8 transactions for 8B elements (the coalesced optimum)
    buf_addrs = np.arange(WARP, dtype=np.int64) * profile.elem_bytes
    assert transactions_for_warp(buf_addrs, profile.elem_bytes) == 8


def test_byte_walk_original_layout_is_worst_case():
    """Per-thread byte slabs put every lane in its own segment."""
    app = get_app("wordcount")
    data = app.generate(n_bytes=300_000, seed=8)
    n = app.n_units(data)
    per_thread = n // WARP
    # lane t's first byte is the start of its slab
    addrs = np.asarray([t * per_thread for t in range(WARP)], dtype=np.int64)
    txns = transactions_for_warp(addrs, 1)
    assert txns == WARP  # fully serialized
    pattern = original_access_pattern(app.access_profile(data))
    assert pattern.original_efficiency() == pytest.approx(1 / 32)
