"""Tests for the GPU/CPU device cost models and the hardware presets."""

import pytest

from repro.errors import HardwareError
from repro.hw import (
    DEFAULT_HARDWARE,
    GTX680,
    PCIE_GEN3_X16,
    XEON_E5,
    CpuDevice,
    GpuDevice,
    KernelCost,
)
from repro.hw.gpu import BlockResources
from repro.units import GB, MiB


class TestSpecs:
    def test_gtx680_core_count(self):
        assert GTX680.total_cores == 1536  # paper Section V

    def test_gpu_memory_is_2gb(self):
        assert GTX680.global_mem_bytes == 2 * 1024**3

    def test_pcie_pinned_faster_than_pageable(self):
        assert PCIE_GEN3_X16.pinned_bandwidth > PCIE_GEN3_X16.pageable_bandwidth

    def test_pcie_transfer_time_monotone(self):
        t1 = PCIE_GEN3_X16.transfer_time(1 * MiB)
        t2 = PCIE_GEN3_X16.transfer_time(2 * MiB)
        assert t2 > t1 > 0

    def test_pcie_latency_floor(self):
        assert PCIE_GEN3_X16.transfer_time(0) == PCIE_GEN3_X16.latency

    def test_gpu_memory_bandwidth_exceeds_pcie(self):
        # the imbalance that motivates the whole paper
        assert GTX680.effective_mem_bandwidth > 5 * PCIE_GEN3_X16.pinned_bandwidth

    def test_scaled_override(self):
        hw = DEFAULT_HARDWARE.scaled(mem_bandwidth=100 * GB)
        assert hw.gpu.mem_bandwidth == 100 * GB
        assert hw.cpu is DEFAULT_HARDWARE.cpu


class TestGpuDevice:
    def setup_method(self):
        self.gpu = GpuDevice(GTX680)

    def test_memory_bound_stage(self):
        # tiny arithmetic, lots of bytes -> time == traffic / bw
        cost = KernelCost(n_ops=1.0, global_bytes=144 * MiB, efficiency=1.0)
        t = self.gpu.stage_time(cost)
        assert t == pytest.approx(144 * MiB / GTX680.effective_mem_bandwidth)

    def test_compute_bound_stage(self):
        cost = KernelCost(n_ops=1e12, global_bytes=1.0)
        t = self.gpu.stage_time(cost)
        assert t == pytest.approx(1e12 / GTX680.peak_ops)

    def test_poor_coalescing_slows_stage(self):
        good = KernelCost(n_ops=0, global_bytes=64 * MiB, efficiency=1.0)
        bad = KernelCost(n_ops=0, global_bytes=64 * MiB, efficiency=0.25)
        assert self.gpu.stage_time(bad) == pytest.approx(4 * self.gpu.stage_time(good))

    def test_efficiency_out_of_range_rejected(self):
        with pytest.raises(HardwareError):
            KernelCost(n_ops=0, global_bytes=0, efficiency=1.5)
        with pytest.raises(HardwareError):
            KernelCost(n_ops=0, global_bytes=0, efficiency=0.0)

    def test_negative_cost_rejected(self):
        with pytest.raises(HardwareError):
            KernelCost(n_ops=-1, global_bytes=0)

    def test_bandwidth_scale_saturates(self):
        assert self.gpu.bandwidth_scale(10**6) == 1.0
        assert self.gpu.bandwidth_scale(100) < 0.1

    def test_active_blocks_respects_set_count(self):
        req = BlockResources(threads=256, shared_mem_bytes=0)
        assert self.gpu.active_blocks(req, num_set_blocks=4) == 4

    def test_active_blocks_respects_hardware(self):
        req = BlockResources(threads=1024, shared_mem_bytes=48 * 1024)
        # one block per SM by shared memory
        assert self.gpu.active_blocks(req, num_set_blocks=1000) == GTX680.num_sms

    def test_active_blocks_register_bound(self):
        req = BlockResources(threads=1024, registers_per_thread=64)
        # 64 regs * 1024 threads = 65536 = all registers -> 1 per SM
        assert self.gpu.max_active_blocks(req) == GTX680.num_sms

    def test_block_too_large_rejected(self):
        with pytest.raises(HardwareError):
            self.gpu.max_active_blocks(BlockResources(threads=2048))

    def test_launch_overhead_scales(self):
        assert self.gpu.launch_overhead(10) == pytest.approx(
            10 * GTX680.kernel_launch_overhead
        )


class TestCpuDevice:
    def setup_method(self):
        self.cpu = CpuDevice(XEON_E5)

    def test_serial_memory_bound(self):
        t = self.cpu.serial_compute_time(n_ops=1, bytes_streamed=1 * GB)
        assert t == pytest.approx(1 * GB / XEON_E5.per_thread_bandwidth)

    def test_mt_speedup_bounded_by_cores(self):
        ser = self.cpu.serial_compute_time(1e11, 1)
        mt = self.cpu.mt_compute_time(1e11, 1)
        assert 2.0 < ser / mt <= XEON_E5.cores

    def test_mt_memory_bound_by_socket_bw(self):
        mt = self.cpu.mt_compute_time(1, 52 * GB, threads=8)
        assert mt >= 1.0  # socket bandwidth is 52 GB/s

    def test_assembly_sequential_faster_than_random(self):
        seq = self.cpu.assembly_time(1_000_000, 8, hit_rate=0.9, address_driven=False)
        rnd = self.cpu.assembly_time(1_000_000, 8, hit_rate=0.0, address_driven=False)
        assert rnd > 2 * seq

    def test_assembly_address_overhead(self):
        # isolate the address-buffer term with no per-access loop cost
        no_addr = self.cpu.assembly_time(
            10**6, 1, 0.9, address_driven=False, n_accesses=0
        )
        addr = self.cpu.assembly_time(
            10**6, 1, 0.9, address_driven=True, n_accesses=0
        )
        # 8B of address per 1B of data: addresses dominate (paper Section IV-A)
        assert addr > 2 * no_addr

    def test_assembly_per_access_loop_cost(self):
        bulk = self.cpu.assembly_time(10**6, 1, 0.9, False, n_accesses=1000)
        loop = self.cpu.assembly_time(10**6, 1, 0.9, False, n_accesses=10**6)
        assert loop > bulk

    def test_bad_hit_rate_rejected(self):
        with pytest.raises(HardwareError):
            self.cpu.assembly_time(1, 1, 1.5, False)

    def test_scatter_time_positive(self):
        assert self.cpu.scatter_time(1000, 4, 0.5) > 0

    def test_staging_copy_two_thirds_bandwidth(self):
        t = self.cpu.staging_copy_time(1 * GB)
        assert t == pytest.approx(1.5 * GB / XEON_E5.per_thread_bandwidth)
