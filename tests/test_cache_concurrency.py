"""DiskCache under concurrent writers: two processes (and threads) hammer
one cache root with overlapping puts, gets, evictions and clears. The
contract: no exception ever escapes, every surviving entry is loadable,
and no orphaned temp files accumulate."""

import hashlib
import pickle
import threading
from concurrent.futures import ProcessPoolExecutor

from repro.bench.sweep import DiskCache

N_KEYS = 24
N_OPS = 150


def _digest(i: int) -> str:
    return hashlib.sha256(f"entry-{i}".encode()).hexdigest()


def _hammer(root: str, worker: int) -> int:
    """Worker entry (module-level: must pickle). Returns ops completed."""
    cache = DiskCache(root=root, max_entries=8)
    done = 0
    for i in range(N_OPS):
        key = _digest((i * (worker + 3)) % N_KEYS)
        payload = ("result", worker, i)
        cache.put(key, payload)
        got = cache.get(key)
        # valid-or-None: a racing clear/evict may have removed it, but a
        # torn/partial entry must never come back
        assert got is None or (got[0] == "result" and len(got) == 3), got
        if i % 37 == 36:
            cache.clear()
        if i % 19 == 18:
            cache._evict()
        done += 1
    return done


def test_two_process_hammer_leaves_cache_consistent(tmp_path):
    root = str(tmp_path / "cache")
    with ProcessPoolExecutor(max_workers=2) as pool:
        futures = [pool.submit(_hammer, root, w) for w in range(2)]
        # .result() re-raises any worker assertion/corruption error
        assert [f.result() for f in futures] == [N_OPS, N_OPS]

    cache = DiskCache(root=root, max_entries=8)
    # every surviving entry must be a complete, loadable pickle
    survivors = list(cache.root.glob("??/*.pkl"))
    for path in survivors:
        with open(path, "rb") as fh:
            payload = pickle.load(fh)
        assert payload[0] == "result"
    # atomic rename consumed every temp file; none were orphaned
    assert list(cache.root.glob("??/.*.tmp")) == []
    # and the probe API agrees with the filesystem
    for i in range(N_KEYS):
        got = cache.get(_digest(i))
        assert got is None or got[0] == "result"


def test_same_digest_thread_race_never_tears(tmp_path):
    cache = DiskCache(root=tmp_path / "cache", max_entries=64)
    digest = _digest(0)
    errors = []

    def writer(tag):
        try:
            for i in range(80):
                cache.put(digest, ("result", tag, i))
                got = cache.get(digest)
                assert got is None or got[0] == "result"
        except Exception as exc:  # pragma: no cover - the failure signal
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(t,)) for t in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert errors == []
    final = cache.get(digest)
    # last atomic replace wins: one of the writers' final-ish payloads
    assert final is not None and final[0] == "result"
    assert list(cache.root.glob("??/.*.tmp")) == []


def test_evict_races_concurrent_puts(tmp_path):
    cache = DiskCache(root=tmp_path / "cache", max_entries=4)
    stop = threading.Event()
    errors = []

    def evictor():
        try:
            while not stop.is_set():
                cache._evict()
        except Exception as exc:  # pragma: no cover - the failure signal
            errors.append(exc)

    t = threading.Thread(target=evictor)
    t.start()
    try:
        for i in range(200):
            cache.put(_digest(i % 12), ("result", 0, i))
            assert cache.get(_digest(i % 12)) is None or True
    finally:
        stop.set()
        t.join()
    assert errors == []
    # eviction kept the population bounded near max_entries
    assert len(cache) <= 12
