"""Tests for the per-block high-fidelity pipeline mode."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import RuntimeConfigError
from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import (
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    ChunkWork,
    PipelineConfig,
    run_pipeline,
    run_pipeline_per_block,
)
from repro.units import KiB, MiB

HW = DEFAULT_HARDWARE


def block_chunks(n_blocks, n_chunks, t_ag=5e-5, t_asm=2e-4, xfer=256 * KiB, t_comp=1e-4):
    return [
        [
            ChunkWork(
                index=i,
                t_addr_gen=t_ag,
                addr_bytes_d2h=0,
                t_assembly=t_asm,
                xfer_bytes=xfer,
                t_compute=t_comp,
            )
            for i in range(n_chunks)
        ]
        for _ in range(n_blocks)
    ]


class TestPerBlockMode:
    def test_runs_and_accounts_chunks(self):
        res = run_pipeline_per_block(HW, block_chunks(4, 5))
        assert res.n_chunks == 20
        assert res.total_time > 0

    def test_blocks_progress_concurrently(self):
        """4 blocks' assembly on 8 CPU threads: far faster than serial."""
        one = run_pipeline_per_block(HW, block_chunks(1, 6), cpu_threads=8)
        four = run_pipeline_per_block(HW, block_chunks(4, 6), cpu_threads=8)
        # 4x the work in much less than 4x the time
        assert four.total_time < one.total_time * 2.5

    def test_cpu_contention_emerges(self):
        """16 assembly-bound blocks on 2 CPU threads serialize; on 16
        threads they parallelize."""
        chunks = block_chunks(16, 4, t_asm=5e-4, t_comp=1e-5, xfer=4 * KiB)
        starved = run_pipeline_per_block(HW, chunks, cpu_threads=2)
        fed = run_pipeline_per_block(HW, chunks, cpu_threads=16)
        assert starved.total_time > fed.total_time * 2.5

    def test_link_contention_emerges(self):
        """Transfer-bound blocks share the one FIFO link: total transfer
        time grows linearly with block count."""
        one = run_pipeline_per_block(
            HW, block_chunks(1, 4, t_asm=1e-6, t_comp=1e-6, xfer=4 * MiB)
        )
        four = run_pipeline_per_block(
            HW, block_chunks(4, 4, t_asm=1e-6, t_comp=1e-6, xfer=4 * MiB)
        )
        assert four.total_time == pytest.approx(4 * one.total_time, rel=0.15)

    def test_trace_tags_blocks(self):
        res = run_pipeline_per_block(HW, block_chunks(3, 2))
        blocks_seen = {
            iv.meta.get("block")
            for iv in res.trace.by_label(STAGE_COMPUTE)
        }
        assert blocks_seen == {0, 1, 2}

    def test_empty_rejected(self):
        with pytest.raises(RuntimeConfigError):
            run_pipeline_per_block(HW, [])
        with pytest.raises(RuntimeConfigError):
            run_pipeline_per_block(HW, [[], []])

    def test_ragged_blocks_allowed(self):
        blocks = block_chunks(2, 3)
        blocks.append([])  # a retired block with no work
        res = run_pipeline_per_block(HW, blocks)
        assert res.n_chunks == 6


class TestAggregateAgreement:
    """The aggregate model (stage times pre-divided, DMA latency folded
    into segments) should closely track the per-block simulation on
    homogeneous workloads — the validation that justifies using the
    cheaper mode everywhere."""

    @given(
        n_blocks=st.sampled_from([2, 4, 8]),
        n_chunks=st.integers(3, 8),
        asm_us=st.integers(50, 500),
        comp_us=st.integers(50, 500),
        xfer_kib=st.sampled_from([64, 256, 1024]),
    )
    @settings(max_examples=25, deadline=None)
    def test_models_agree_within_tolerance(
        self, n_blocks, n_chunks, asm_us, comp_us, xfer_kib
    ):
        t_asm = asm_us * 1e-6
        t_comp = comp_us * 1e-6
        xfer = xfer_kib * KiB
        workers = min(n_blocks, 8)

        detailed = run_pipeline_per_block(
            HW,
            block_chunks(
                n_blocks, n_chunks, t_ag=1e-5, t_asm=t_asm, xfer=xfer, t_comp=t_comp
            ),
            cpu_threads=8,
        )
        # aggregate: one chunk = all blocks' chunk k together
        agg_chunks = [
            ChunkWork(
                index=i,
                t_addr_gen=1e-5,
                addr_bytes_d2h=0,
                t_assembly=t_asm * n_blocks / workers,
                xfer_bytes=xfer * n_blocks,
                t_compute=t_comp,  # blocks compute concurrently on the GPU
                xfer_segments=n_blocks,
            )
            for i in range(n_chunks)
        ]
        aggregate = run_pipeline(HW, agg_chunks, PipelineConfig(cpu_workers=2))
        ratio = aggregate.total_time / detailed.total_time
        assert 0.5 < ratio < 2.0, (
            f"models diverge: aggregate {aggregate.total_time:.6f}s vs "
            f"per-block {detailed.total_time:.6f}s"
        )
