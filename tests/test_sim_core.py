"""Unit tests for the discrete-event engine core."""

import pytest

from repro.errors import Deadlock, Interrupt, SimulationError
from repro.sim import Environment, AllOf, AnyOf


def test_timeout_advances_clock():
    env = Environment()
    log = []

    def proc(env):
        yield env.timeout(1.0)
        log.append(env.now)
        yield env.timeout(2.5)
        log.append(env.now)

    env.process(proc(env))
    env.run()
    assert log == [1.0, 3.5]


def test_timeout_value_passthrough():
    env = Environment()
    seen = []

    def proc(env):
        v = yield env.timeout(1.0, value="payload")
        seen.append(v)

    env.process(proc(env))
    env.run()
    assert seen == ["payload"]


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.timeout(-1)


def test_process_return_value_joinable():
    env = Environment()
    results = []

    def child(env):
        yield env.timeout(2.0)
        return 42

    def parent(env):
        value = yield env.process(child(env))
        results.append((env.now, value))

    env.process(parent(env))
    env.run()
    assert results == [(2.0, 42)]


def test_run_until_time_stops_clock():
    env = Environment()

    def ticker(env):
        while True:
            yield env.timeout(1.0)

    env.process(ticker(env))
    env.run(until=5.5)
    assert env.now == 5.5


def test_run_until_event_returns_value():
    env = Environment()

    def child(env):
        yield env.timeout(3.0)
        return "done"

    proc = env.process(child(env))
    assert env.run(until=proc) == "done"
    assert env.now == 3.0


def test_run_until_past_time_rejected():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_exception_in_process_propagates_from_run():
    env = Environment()

    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    env.process(boom(env))
    with pytest.raises(ValueError, match="boom"):
        env.run()


def test_exception_caught_by_joining_parent():
    env = Environment()
    caught = []

    def boom(env):
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent(env):
        try:
            yield env.process(boom(env))
        except ValueError as e:
            caught.append(str(e))

    env.process(parent(env))
    env.run()
    assert caught == ["boom"]


def test_event_succeed_wakes_waiter():
    env = Environment()
    order = []

    def waiter(env, ev):
        v = yield ev
        order.append(("woke", env.now, v))

    def setter(env, ev):
        yield env.timeout(4.0)
        ev.succeed("hello")
        order.append(("set", env.now))

    ev = env.event()
    env.process(waiter(env, ev))
    env.process(setter(env, ev))
    env.run()
    assert ("woke", 4.0, "hello") in order


def test_event_double_trigger_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(SimulationError):
        ev.succeed(2)


def test_event_fail_requires_exception():
    env = Environment()
    ev = env.event()
    with pytest.raises(TypeError):
        ev.fail("not an exception")


def test_yield_already_processed_event_continues_immediately():
    env = Environment()
    ev = env.event()
    ev.succeed("early")
    seen = []

    def proc(env):
        yield env.timeout(1.0)
        v = yield ev  # processed long ago
        seen.append((env.now, v))

    env.process(proc(env))
    env.run()
    assert seen == [(1.0, "early")]


def test_all_of_waits_for_slowest():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="a")
        t2 = env.timeout(5.0, value="b")
        result = yield env.all_of([t1, t2])
        times.append(env.now)
        assert set(result.values()) == {"a", "b"}

    env.process(proc(env))
    env.run()
    assert times == [5.0]


def test_any_of_fires_on_fastest():
    env = Environment()
    times = []

    def proc(env):
        t1 = env.timeout(1.0, value="fast")
        t2 = env.timeout(5.0, value="slow")
        result = yield env.any_of([t1, t2])
        times.append(env.now)
        assert list(result.values()) == ["fast"]

    env.process(proc(env))
    env.run()
    assert times == [1.0]


def test_empty_all_of_fires_immediately():
    env = Environment()
    done = []

    def proc(env):
        yield env.all_of([])
        done.append(env.now)

    env.process(proc(env))
    env.run()
    assert done == [0.0]


def test_interrupt_raises_in_target():
    env = Environment()
    log = []

    def sleeper(env):
        try:
            yield env.timeout(100.0)
        except Interrupt as it:
            log.append((env.now, it.cause))

    def interrupter(env, victim):
        yield env.timeout(2.0)
        victim.interrupt(cause="wake-up")

    victim = env.process(sleeper(env))
    env.process(interrupter(env, victim))
    env.run()
    assert log == [(2.0, "wake-up")]


def test_interrupt_dead_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1.0)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_deterministic_tie_breaking_is_fifo():
    env = Environment()
    order = []

    def proc(env, tag):
        yield env.timeout(1.0)
        order.append(tag)

    for tag in range(8):
        env.process(proc(env, tag))
    env.run()
    assert order == list(range(8))


def test_step_on_empty_queue_is_deadlock():
    env = Environment()
    with pytest.raises(Deadlock):
        env.step()


def test_run_until_event_that_never_fires_is_deadlock():
    env = Environment()
    ev = env.event()

    def noop(env):
        yield env.timeout(1.0)

    env.process(noop(env))
    with pytest.raises(Deadlock):
        env.run(until=ev)


def test_yield_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(SimulationError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_nested_processes_compose():
    env = Environment()

    def leaf(env, d):
        yield env.timeout(d)
        return d

    def mid(env):
        a = yield env.process(leaf(env, 1.0))
        b = yield env.process(leaf(env, 2.0))
        return a + b

    def root(env, out):
        total = yield env.process(mid(env))
        out.append((env.now, total))

    out = []
    env.process(root(env, out))
    env.run()
    assert out == [(3.0, 3.0)]
