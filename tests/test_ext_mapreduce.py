"""Tests for the MapReduce extension."""

import numpy as np
import pytest

from repro.engines import (
    BigKernelEngine,
    CpuMtEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
)
from repro.errors import ApplicationError
from repro.ext.mapreduce import (
    CLICK,
    MapReduceApp,
    MapReduceSpec,
    N_URLS,
    make_clickstream_job,
)

CFG = EngineConfig(chunk_bytes=512 * 1024)


class TestClickstreamJob:
    @pytest.fixture(scope="class")
    def job(self):
        app = make_clickstream_job()
        data = app.generate(n_bytes=1_000_000, seed=5)
        return app, data

    def test_counts_sum_to_records(self, job):
        app, data = job
        out = app.reference(data)
        assert out.sum() == app.n_units(data)

    def test_zipf_head_is_hot(self, job):
        app, data = job
        out = app.reference(data)
        assert out[0] > out[out > 0].mean() * 3

    def test_chunked_equals_reference(self, job):
        app, data = job
        ref = app.reference(data)
        state = app.make_state(data)
        for lo, hi in app.chunk_bounds(data, 997):
            app.process_chunk(data, state, lo, hi)
        assert app.outputs_equal(ref, app.finalize(data, state))

    def test_runs_on_all_engines(self, job):
        """The future-work claim realized: a MapReduce job runs on every
        scheme, BigKernel included, with identical results."""
        app, data = job
        engines = [
            CpuSerialEngine(),
            CpuMtEngine(),
            GpuSingleBufferEngine(),
            GpuDoubleBufferEngine(),
            BigKernelEngine(),
        ]
        results = [e.run(app, data, CFG) for e in engines]
        for r in results[1:]:
            assert app.outputs_equal(results[0].output, r.output), r.engine
        bk = results[-1]
        # BigKernel prefetches only the url field: ~12.5% of the data
        single = results[2]
        assert bk.metrics.bytes_h2d < 0.25 * single.metrics.bytes_h2d
        assert bk.sim_time < results[3].sim_time  # beats double buffering

    def test_profile_matches_read_fields(self, job):
        app, data = job
        p = app.access_profile(data)
        assert p.read_bytes_per_record == 4.0
        assert p.read_fraction == pytest.approx(4 / 32)
        assert p.addresses_per_record == 1.0  # single contiguous field

    def test_read_offsets_hit_url_field_only(self, job):
        app, data = job
        offs = app.chunk_read_offsets(data, 0, 8)
        assert np.array_equal(offs, np.arange(8) * 32)


class TestReducers:
    def _job(self, reducer, mapper=None):
        spec = MapReduceSpec(
            name="latency",
            schema=CLICK,
            read_fields=("url", "latency_ms"),
            mapper=mapper
            or (
                lambda batch, params: (
                    batch["url"].astype(np.int64),
                    batch["latency_ms"].astype(np.float64),
                )
            ),
            reducer=reducer,
            n_keys=N_URLS,
            generator=__import__(
                "repro.ext.mapreduce", fromlist=["_click_generator"]
            )._click_generator,
        )
        return MapReduceApp(spec)

    def test_max_reducer(self):
        app = self._job("max")
        data = app.generate(300_000, seed=2)
        out = app.reference(data)
        lat = data.mapped["records"]["latency_ms"].astype(np.float64)
        urls = data.mapped["records"]["url"]
        url0 = int(urls[0])
        assert out[url0] == pytest.approx(lat[urls == url0].max())

    def test_min_reducer(self):
        app = self._job("min")
        data = app.generate(300_000, seed=2)
        out = app.reference(data)
        lat = data.mapped["records"]["latency_ms"].astype(np.float64)
        urls = data.mapped["records"]["url"]
        url0 = int(urls[0])
        assert out[url0] == pytest.approx(lat[urls == url0].min())

    def test_sum_reducer(self):
        app = self._job("sum")
        data = app.generate(300_000, seed=2)
        out = app.reference(data)
        total = data.mapped["records"]["latency_ms"].astype(np.float64).sum()
        assert out[np.isfinite(out)].sum() == pytest.approx(total, rel=1e-9)

    def test_sum_chunking_invariance(self):
        app = self._job("sum")
        data = app.generate(300_000, seed=9)
        ref = app.reference(data)
        state = app.make_state(data)
        for lo, hi in app.chunk_bounds(data, 123):
            app.process_chunk(data, state, lo, hi)
        assert app.outputs_equal(ref, app.finalize(data, state))

    def test_two_field_profile_span(self):
        """url (offset 0) + latency_ms (offset 24) are non-contiguous:
        two addresses per record, element-granular gathering."""
        app = self._job("sum")
        data = app.generate(100_000, seed=1)
        p = app.access_profile(data)
        assert p.reads_per_record == 2
        assert p.addresses_per_record == 2.0


class TestSpecValidation:
    def test_unknown_reducer(self):
        with pytest.raises(ApplicationError):
            MapReduceSpec(
                name="x",
                schema=CLICK,
                read_fields=("url",),
                mapper=lambda b, p: (b["url"], b["url"]),
                reducer="mean",
                n_keys=10,
                generator=lambda rng, n: np.zeros(n, CLICK.numpy_dtype()),
            )

    def test_unknown_field(self):
        with pytest.raises(Exception):
            MapReduceSpec(
                name="x",
                schema=CLICK,
                read_fields=("nope",),
                mapper=lambda b, p: (b["url"], b["url"]),
                reducer="sum",
                n_keys=10,
                generator=lambda rng, n: np.zeros(n, CLICK.numpy_dtype()),
            )

    def test_out_of_range_keys_detected(self):
        spec = MapReduceSpec(
            name="bad",
            schema=CLICK,
            read_fields=("url",),
            mapper=lambda b, p: (b["url"].astype(np.int64) + 10**6, np.ones(len(b))),
            reducer="sum",
            n_keys=N_URLS,
            generator=__import__(
                "repro.ext.mapreduce", fromlist=["_click_generator"]
            )._click_generator,
        )
        app = MapReduceApp(spec)
        data = app.generate(50_000, seed=0)
        with pytest.raises(ApplicationError, match="keys outside"):
            app.reference(data)
