"""Tests for the GPU memory allocator and pinned-memory accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import AllocationError, GpuOutOfMemory, PinnedMemoryExceeded
from repro.hw.gpu_memory import GpuMemoryAllocator
from repro.hw.pinned import PinnedAllocator


class TestGpuMemoryAllocator:
    def test_simple_alloc_free(self):
        a = GpuMemoryAllocator(1 << 20)
        x = a.alloc(1000, "x")
        assert a.used == x.nbytes >= 1000
        a.free(x)
        assert a.used == 0

    def test_alignment_rounding(self):
        a = GpuMemoryAllocator(1 << 20, alignment=256)
        x = a.alloc(1, "tiny")
        assert x.nbytes == 256

    def test_oom_raises(self):
        a = GpuMemoryAllocator(1024)
        a.alloc(512)
        with pytest.raises(GpuOutOfMemory):
            a.alloc(1024)

    def test_double_free_rejected(self):
        a = GpuMemoryAllocator(1 << 20)
        x = a.alloc(100)
        a.free(x)
        with pytest.raises(AllocationError):
            a.free(x)

    def test_holes_coalesce(self):
        a = GpuMemoryAllocator(1024, alignment=256)
        xs = [a.alloc(256) for _ in range(4)]
        for x in xs:
            a.free(x)
        # after freeing everything, one allocation of full size must succeed
        big = a.alloc(1024)
        assert big.nbytes == 1024

    def test_fragmentation_blocks_large_alloc(self):
        a = GpuMemoryAllocator(1024, alignment=256)
        xs = [a.alloc(256) for _ in range(4)]
        a.free(xs[0])
        a.free(xs[2])
        # 512 free but split into two 256 holes
        with pytest.raises(GpuOutOfMemory):
            a.alloc(512)

    def test_peak_usage_tracked(self):
        a = GpuMemoryAllocator(1 << 20, alignment=256)
        x = a.alloc(512)
        y = a.alloc(512)
        a.free(x)
        a.free(y)
        assert a.peak_usage == 1024

    def test_zero_size_rejected(self):
        a = GpuMemoryAllocator(1024)
        with pytest.raises(AllocationError):
            a.alloc(0)

    def test_reset(self):
        a = GpuMemoryAllocator(1024, alignment=256)
        a.alloc(512)
        a.reset()
        assert a.used == 0
        a.alloc(1024)  # full capacity available again

    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=4096), min_size=1, max_size=40)
    )
    @settings(max_examples=40, deadline=None)
    def test_alloc_free_invariants(self, sizes):
        """used + holes == capacity, and freeing all restores full capacity."""
        a = GpuMemoryAllocator(1 << 20, alignment=256)
        allocs = []
        for i, s in enumerate(sizes):
            allocs.append(a.alloc(s, f"a{i}"))
            free_total = sum(sz for _, sz in a._free)
            assert a.used + free_total == a.capacity
        # regions must not overlap
        regions = sorted((al.offset, al.offset + al.nbytes) for al in allocs)
        for (s1, e1), (s2, e2) in zip(regions, regions[1:]):
            assert e1 <= s2
        for al in allocs:
            a.free(al)
        assert a.used == 0
        assert a._free == [(0, a.capacity)]


class TestPinnedAllocator:
    def test_limit_enforced(self):
        p = PinnedAllocator(1000)
        p.alloc(600)
        with pytest.raises(PinnedMemoryExceeded):
            p.alloc(500)

    def test_free_releases(self):
        p = PinnedAllocator(1000)
        b = p.alloc(800)
        p.free(b)
        p.alloc(900)

    def test_double_free_rejected(self):
        p = PinnedAllocator(1000)
        b = p.alloc(100)
        p.free(b)
        with pytest.raises(AllocationError):
            p.free(b)

    def test_peak_usage(self):
        p = PinnedAllocator(1000)
        b1 = p.alloc(400)
        p.alloc(400)
        p.free(b1)
        assert p.peak_usage == 800
