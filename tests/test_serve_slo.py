"""SLO serving properties: EDF ordering, provably-safe shedding, typed
predictive admission, adaptive windows, and deterministic replays.

Everything timing-dependent runs on a *deterministic* fake timer — the
server calibrates its pricer and stamps its virtual clock from the same
injectable timer, so two replays of one trace make byte-identical
scheduling, shedding and admission decisions.
"""

import math

import pytest

from repro.apps.datagen import DATAGEN_VERSION
from repro.bench.jobs import DatasetSpec, JobSpec, run_jobspec
from repro.bench.sweep import RunCache
from repro.engines import EngineConfig
from repro.errors import ReproError, SloViolationError
from repro.serve import (
    JobPricer,
    ServeConfig,
    ServeRequest,
    Server,
    TenantSpec,
    TraceSpec,
    generate_trace,
    scale_trace,
    serve_trace,
    with_slo,
)
from repro.serve.workload import engine_spec_by_name
from repro.units import KiB
from repro.verify.differential import _bit_equal


class FakeTimer:
    """Deterministic clock: every call advances by a fixed step."""

    def __init__(self, step=0.001):
        self.step = step
        self.now = 0.0

    def __call__(self):
        self.now += self.step
        return self.now


def _job(seed=0, chunk=128 * KiB, engine="bigkernel", n_bytes=256 * KiB):
    return JobSpec(
        dataset=DatasetSpec(
            app="wordcount", seed=seed, n_bytes=n_bytes, version=DATAGEN_VERSION
        ),
        engine=engine_spec_by_name(engine),
        config=EngineConfig(chunk_bytes=chunk),
    )


# ---------------------------------------------------------------- workload
def test_tenant_slo_validation():
    with pytest.raises(ReproError):
        TenantSpec("a", 1.0, slo_ms=0.0)
    with pytest.raises(ReproError):
        TenantSpec("a", 1.0, slo_ms=-5.0)
    assert TenantSpec("a", 1.0).slo_seconds == math.inf
    assert TenantSpec("a", 1.0, slo_ms=250.0).slo_seconds == 0.25


def test_with_slo_sets_every_tenant():
    tenants = (TenantSpec("a", 1.0), TenantSpec("b", 2.0, slo_ms=10.0))
    slod = with_slo(tenants, 500.0)
    assert [t.slo_ms for t in slod] == [500.0, 500.0]
    assert [t.weight for t in slod] == [1.0, 2.0]
    cleared = with_slo(slod, None)
    assert all(t.slo_ms is None for t in cleared)


# -------------------------------------------------------------- scheduling
def test_edf_fairness_with_loose_equal_deadlines():
    """When deadlines never bind (equal and far away), the EDF tiebreak
    must reproduce WDRR's weighted shares — the PR9 fairness bound."""
    tenants = (
        TenantSpec("small", 1.0, slo_ms=1e9),
        TenantSpec("mid", 2.0, slo_ms=1e9),
        TenantSpec("big", 4.0, slo_ms=1e9),
    )
    per_tenant = 70
    server = Server(
        ServeConfig(max_queue=3 * per_tenant, max_batch=7, cache=False),
        tenants=tenants,
    )
    job = _job()
    rid = 0
    for tenant in tenants:
        for _ in range(per_tenant):
            assert server.submit(
                ServeRequest(req_id=rid, tenant=tenant.name, arrival=0.0, job=job)
            ) is None
            rid += 1

    counts = {t.name: 0 for t in tenants}
    drawn = 0
    while all(len(q) > server.config.max_batch for q in server._queues.values()):
        window = server._select_window(now=0.0)
        assert len(window) == server.config.max_batch
        for req in window:
            counts[req.tenant] += 1
            drawn += 1

    assert drawn >= 70
    total_weight = sum(t.weight for t in tenants)
    for tenant in tenants:
        share = counts[tenant.name] / drawn
        want = tenant.weight / total_weight
        assert abs(share - want) < 0.1, (tenant.name, share, want)
    assert counts["small"] > 0


def test_edf_serves_earliest_deadline_first():
    tenants = (
        TenantSpec("loose", 1.0, slo_ms=10_000.0),
        TenantSpec("tight", 1.0, slo_ms=100.0),
        TenantSpec("none", 1.0),
    )
    server = Server(ServeConfig(max_batch=3, cache=False), tenants=tenants)
    job = _job()
    for rid, name in enumerate(["loose", "none", "tight"]):
        assert server.submit(
            ServeRequest(req_id=rid, tenant=name, arrival=0.0, job=job)
        ) is None
    window = server._select_window(now=0.0)
    # tight deadline first, then loose, then the best-effort request
    assert [r.tenant for r in window] == ["tight", "loose", "none"]


def test_edf_mode_without_slos_is_classic_wdrr():
    """scheduling='edf' with no deadlines anywhere must take the WDRR
    path byte-for-byte: same selection as an explicit WDRR pull."""
    tenants = (TenantSpec("a", 1.0), TenantSpec("b", 3.0))
    picks = []
    for _ in range(2):
        server = Server(
            ServeConfig(max_queue=64, max_batch=5, cache=False), tenants=tenants
        )
        job = _job()
        rid = 0
        for name in ("a", "b"):
            for _ in range(10):
                server.submit(
                    ServeRequest(req_id=rid, tenant=name, arrival=0.0, job=job)
                )
                rid += 1
        order = []
        while server.pending():
            order.extend(r.req_id for r in server._select_window(now=0.0))
        picks.append(order)
    assert picks[0] == picks[1]


# ---------------------------------------------------------------- shedding
def test_shed_only_when_provably_doomed():
    """Every shed response was picked after its deadline had passed —
    dispatch > deadline — so it could not possibly have met its SLO.
    Requests whose deadline had not passed at pick time are never shed."""
    spec = TraceSpec(
        seed=5,
        duration=1.5,
        rate=40.0,
        data_bytes=256 * KiB,
        repeat_p=0.2,
        n_dataset_seeds=3,
    )
    trace = scale_trace(generate_trace(spec), 1e-3)
    tenants = with_slo(spec.tenants, 40.0)
    with Server(
        ServeConfig(max_queue=64, max_batch=4),
        tenants=tenants,
        cache=RunCache(disk=None),
    ) as server:
        outcome = serve_trace(server, trace, timer=FakeTimer(step=0.004))
    shed = [r for r in outcome.responses if r.status == "shed"]
    assert shed, "overload with a 40ms SLO must shed something"
    for resp in shed:
        assert resp.dispatch > resp.deadline, (
            f"req {resp.req_id} shed at {resp.dispatch} before its "
            f"deadline {resp.deadline}"
        )
        assert isinstance(resp.exception, SloViolationError)
        assert resp.error
    # nothing that completed within its deadline was ever shed: every
    # completed-and-met response is disjoint from the shed set by id
    met = [
        r
        for r in outcome.responses
        if r.status in ("served", "coalesced", "cached")
        and r.completion <= r.deadline
    ]
    assert {r.req_id for r in met}.isdisjoint({r.req_id for r in shed})


def test_fifo_baseline_never_sheds_but_accounts_slo():
    spec = TraceSpec(seed=5, duration=1.0, rate=40.0, data_bytes=256 * KiB)
    trace = scale_trace(generate_trace(spec), 1e-3)
    with Server(
        ServeConfig(max_queue=64, max_batch=4, scheduling="fifo"),
        tenants=with_slo(spec.tenants, 40.0),
        cache=RunCache(disk=None),
    ) as server:
        outcome = serve_trace(server, trace, timer=FakeTimer(step=0.004))
    m = outcome.metrics
    assert m.shed == 0
    assert m.rejected_predicted == 0
    assert m.slo_total == m.submitted
    assert m.slo_met + m.slo_missed == m.completed
    assert m.slo_missed > 0  # deadline-blind under overload pays in misses


def test_accounting_identities_hold_with_sheds():
    spec = TraceSpec(
        seed=11, duration=1.5, rate=40.0, data_bytes=256 * KiB, repeat_p=0.3
    )
    trace = scale_trace(generate_trace(spec), 1e-3)
    with Server(
        ServeConfig(max_queue=24, max_batch=4, adaptive_batch=True),
        tenants=with_slo(spec.tenants, 50.0),
        cache=RunCache(disk=None),
    ) as server:
        outcome = serve_trace(server, trace, timer=FakeTimer(step=0.003))
    m = outcome.metrics
    assert len(outcome.responses) == len(trace)
    assert m.submitted == m.admitted + m.rejected
    assert m.admitted == m.completed + m.failed + m.shed
    assert m.failed == 0
    assert m.slo_total == m.submitted
    assert m.slo_met + m.slo_missed == m.completed
    assert server.pending() == 0
    assert not server._meta  # no leaked per-request bookkeeping
    # per-tenant buckets reconcile, including the new shed/met/missed keys
    assert sum(b["shed"] for b in m.per_tenant.values()) == m.shed
    assert sum(b["slo_met"] for b in m.per_tenant.values()) == m.slo_met
    assert sum(b["slo_missed"] for b in m.per_tenant.values()) == m.slo_missed
    att = m.slo_attainment()
    assert att is not None and 0.0 <= att <= 1.0


# ----------------------------------------------------- predictive admission
def test_predictive_rejection_is_typed_and_counted():
    tenants = (TenantSpec("t", 1.0, slo_ms=1.0),)  # 1ms: hopeless
    config = ServeConfig(max_queue=64, max_batch=4, cache=False)
    pricer = JobPricer()
    server = Server(config, tenants=tenants, pricer=pricer)
    # warm the pricer with one observed batch: 0.1s for one run of this cell
    job = _job()
    pricer.observe_batch([job], elapsed=0.1, n_runs=1, dataset_loader=server._dataset)
    assert pricer.price(job, server._dataset) is not None

    # first request fits nothing: its own 0.1s price blows the 1ms deadline
    resp = server.submit(
        ServeRequest(req_id=0, tenant="t", arrival=0.0, job=job), now=0.0
    )
    assert resp is not None
    assert resp.status == "rejected"
    assert isinstance(resp.exception, SloViolationError)
    assert "predicted completion" in (resp.error or "")
    assert math.isfinite(resp.deadline)
    assert server.metrics.rejected_predicted == 1
    assert server.metrics.rejected == 1
    assert server.metrics.slo_total == 1


def test_unpriced_jobs_are_never_predictively_rejected():
    """A cold pricer must veto predictive admission — rejections need
    evidence, and an unpriced backlog is not evidence."""
    tenants = (TenantSpec("t", 1.0, slo_ms=1.0),)
    server = Server(
        ServeConfig(max_queue=8, max_batch=4, cache=False), tenants=tenants
    )
    assert server.submit(
        ServeRequest(req_id=0, tenant="t", arrival=0.0, job=_job()), now=0.0
    ) is None
    assert server.metrics.rejected_predicted == 0


def test_cache_hits_are_priced_free():
    """A job the run cache would short-circuit must never be rejected on
    its model price, however tight the deadline."""
    tenants = (TenantSpec("t", 1.0, slo_ms=1.0),)
    pricer = JobPricer()
    server = Server(
        ServeConfig(max_queue=8, max_batch=4), tenants=tenants,
        cache=RunCache(disk=None), pricer=pricer,
    )
    job = _job()
    # serve it once so the cache holds the result
    assert server.submit(
        ServeRequest(req_id=0, tenant="t", arrival=0.0, job=job), now=0.0
    ) is None
    server.finish(server.dispatch_round(now=0.0), 0.0)
    # price the cell expensively: without the cache probe this would reject
    pricer.observe_batch([job], elapsed=5.0, n_runs=1, dataset_loader=server._dataset)
    resp = server.submit(
        ServeRequest(req_id=1, tenant="t", arrival=0.0, job=job), now=0.0
    )
    assert resp is None  # admitted: the probe priced it at zero
    done = server.drain(now=0.0)
    assert [r.status for r in done] == ["cached"]


# -------------------------------------------------------- adaptive batching
def test_adaptive_window_tracks_deadline_slack():
    tenants = (TenantSpec("t", 1.0, slo_ms=1000.0),)
    config = ServeConfig(
        max_queue=64, max_batch=8, min_batch=2, adaptive_batch=True, cache=False
    )
    server = Server(config, tenants=tenants)
    # uncalibrated pricer: adaptive batching stays at the fixed window
    assert server._window_limit(0.0) == 8
    server.pricer.run_wall = 0.05
    server._unique_frac = 1.0
    # no queued deadlines: still the fixed window
    assert server._window_limit(0.0) == 8
    server.submit(
        ServeRequest(req_id=0, tenant="t", arrival=0.0, job=_job()), now=0.0
    )
    # deadline 1.0s, per-run 0.05s: slack fits 8+ runs -> full window
    assert server._window_limit(0.0) == 8
    # ~0.21s of slack left -> 4 runs fit
    assert server._window_limit(0.79) == 4
    # almost no slack -> clamp to min_batch
    assert server._window_limit(0.999) == 2
    # past the deadline -> smallest (urgent) window
    assert server._window_limit(2.0) == 2
    # heavy expected coalescing stretches the window: at 50% unique,
    # the same slack fits 8 dispatches again
    server._unique_frac = 0.5
    assert server._window_limit(0.79) == 8


# ---------------------------------------------- determinism across backends
@pytest.mark.parametrize("engines", [("bigkernel",), ("bigkernel", "gpu_uvm")])
def test_slo_trace_bit_equal_across_backends(engines):
    """With SLOs engaged and a deterministic timer, thread and process
    backends must make identical decisions and identical results."""
    spec = TraceSpec(
        seed=17,
        duration=1.0,
        rate=25.0,
        data_bytes=256 * KiB,
        repeat_p=0.0,
        n_dataset_seeds=2,
        engines=engines,
        chunk_kib_choices=(128,),
    )
    trace = scale_trace(generate_trace(spec), 1e-3)
    tenants = with_slo(spec.tenants, 200.0)
    outcomes = {}
    for backend in ("thread", "process"):
        config = ServeConfig(
            max_queue=len(trace) + 1,
            max_batch=4,
            backend=backend,
            jobs=2,
            adaptive_batch=True,
        )
        with Server(
            config, tenants=tenants, cache=RunCache(disk=None)
        ) as server:
            outcomes[backend] = serve_trace(
                server, trace, timer=FakeTimer(step=0.002)
            )
    thread, proc = outcomes["thread"], outcomes["process"]
    assert [(r.req_id, r.status) for r in thread.responses] == [
        (r.req_id, r.status) for r in proc.responses
    ]
    assert thread.makespan == proc.makespan
    for t_resp, p_resp in zip(thread.responses, proc.responses):
        assert t_resp.deadline == p_resp.deadline
        if t_resp.result is not None:
            assert t_resp.result.sim_time == p_resp.result.sim_time
            assert _bit_equal(t_resp.result.output, p_resp.result.output)


# ------------------------------------------------------- gpu_uvm round-trip
def test_gpu_uvm_jobspec_roundtrip_matches_direct_run():
    """The serve path's picklable JobSpec for gpu_uvm (what the process
    backend ships to workers) reproduces a direct engine run bit-exactly."""
    from repro.apps.base import get_app
    from repro.bench.jobs import engine_from_spec

    job = _job(engine="gpu_uvm")
    spec_result = run_jobspec(job)
    app = get_app(job.dataset.app)
    data = app.generate(n_bytes=job.dataset.n_bytes, seed=job.dataset.seed)
    direct = engine_from_spec(job.engine).run(app, data, job.config)
    assert spec_result.sim_time == direct.sim_time
    assert _bit_equal(spec_result.output, direct.output)


def test_gpu_uvm_served_and_priced_by_observation():
    """UVM jobs (unpredictable by the analytic model) still get priced —
    purely from the observed per-run EWMA — and still serve correctly."""
    spec = TraceSpec(
        seed=3,
        duration=0.8,
        rate=20.0,
        data_bytes=256 * KiB,
        engines=("gpu_uvm",),
        chunk_kib_choices=(128,),
    )
    trace = generate_trace(spec)
    tenants = with_slo(spec.tenants, 10_000.0)
    pricer = JobPricer()
    with Server(
        ServeConfig(max_queue=len(trace) + 1, max_batch=4, verify=True),
        tenants=tenants,
        cache=RunCache(disk=None),
        pricer=pricer,
    ) as server:
        outcome = serve_trace(server, trace)
    m = outcome.metrics
    assert m.completed == len(trace)
    assert m.verify_failures == 0
    assert m.failed == 0
    # the analytic model refused every UVM job, yet observation priced them
    job = trace[0].job
    assert pricer._sim[(job.dataset, job.engine, job.config)] is None
    assert pricer.price(job, server._dataset) is not None
    assert pricer.stats["samples"] > 0


# ----------------------------------------------------------- memoized model
def test_predicted_sim_time_memoizes():
    from repro.analytic import PREDICT_RUN_STATS, predicted_sim_time
    from repro.apps.base import get_app

    app = get_app("wordcount")
    data = app.generate(n_bytes=128 * KiB, seed=0)
    config = EngineConfig(chunk_bytes=64 * KiB)
    before = dict(PREDICT_RUN_STATS)
    first = predicted_sim_time(app, data, config, "bigkernel")
    second = predicted_sim_time(app, data, config, "bigkernel")
    assert first == second
    assert PREDICT_RUN_STATS["requests"] == before["requests"] + 2
    assert PREDICT_RUN_STATS["hits"] >= before["hits"] + 1


def test_extract_app_model_memoizes():
    from repro.analytic import ANALYTIC_MODEL_STATS, extract_app_model
    from repro.apps.base import get_app

    app = get_app("wordcount")
    data = app.generate(n_bytes=128 * KiB, seed=1)
    config = EngineConfig(chunk_bytes=64 * KiB)
    before = dict(ANALYTIC_MODEL_STATS)
    first = extract_app_model(app, data, config)
    second = extract_app_model(app, data, config)
    assert second is first  # the cache returns the same model object
    assert ANALYTIC_MODEL_STATS["requests"] == before["requests"] + 2
    assert ANALYTIC_MODEL_STATS["hits"] >= before["hits"] + 1
