"""Tests for the figure/table harnesses: structure, and the paper-shape
regression assertions (who wins, what dominates)."""

import pytest

from repro.bench import (
    BenchSettings,
    fig4a,
    fig4b,
    fig5,
    fig6,
    run_matrix,
    table1,
    table2,
)
from repro.bench.paper_data import (
    APP_ORDER,
    COMPUTATION_DOMINANT,
    NO_VOLUME_REDUCTION,
    TABLE1,
)
from repro.bench.report import render_series, render_table
from repro.engines import EngineConfig
from repro.units import MiB

SETTINGS = BenchSettings(
    data_bytes=4 * MiB, config=EngineConfig(chunk_bytes=512 * 1024)
)


@pytest.fixture(scope="module")
def matrix():
    return run_matrix(SETTINGS)


class TestMatrix:
    def test_all_cells_present(self, matrix):
        assert len(matrix.results) == len(matrix.apps) * len(matrix.engines)

    def test_speedup_accessor(self, matrix):
        assert matrix.speedup("kmeans", "cpu_serial") == pytest.approx(1.0)
        assert matrix.speedup("kmeans", "bigkernel") > 1.0


class TestFig4a:
    def test_series_structure(self, matrix):
        fig = fig4a(matrix=matrix)
        assert set(fig.series) == set(APP_ORDER)
        for app in fig.series:
            assert "bigkernel" in fig.series[app]

    def test_bigkernel_wins_every_app(self, matrix):
        """Paper: BigKernel outperforms single and double buffering across
        all applications."""
        fig = fig4a(matrix=matrix)
        for app, speeds in fig.series.items():
            assert speeds["bigkernel"] > speeds["gpu_double"], app
            assert speeds["bigkernel"] > speeds["gpu_single"], app

    def test_text_renders(self, matrix):
        assert "Fig. 4(a)" in fig4a(matrix=matrix).text


class TestFig4b:
    def test_fractions_sum_to_one(self, matrix):
        fig = fig4b(matrix=matrix)
        for app, v in fig.series.items():
            assert v["computation"] + v["communication"] == pytest.approx(1.0)

    def test_computation_dominant_apps(self, matrix):
        """Word Count and Opinion Finder are computation-dominant; the
        transfer-bound apps are not (paper Section VI-A)."""
        fig = fig4b(matrix=matrix)
        for app in COMPUTATION_DOMINANT:
            assert fig.series[app]["computation"] > 0.5, app
        for app in ("kmeans", "netflix", "mastercard_indexed"):
            assert fig.series[app]["computation"] < 0.5, app


class TestFig5:
    @pytest.fixture(scope="class")
    def fig(self):
        return fig5(SETTINGS)

    def test_cumulative_monotone(self, fig):
        for app, v in fig.series.items():
            assert v["reduction"] >= v["overlap"] * 0.99, app
            assert v["coalescing"] >= v["reduction"] * 0.99, app

    def test_no_volume_reduction_apps(self, fig):
        """WC and MasterCard read 100%: the reduction step adds nothing."""
        for app in NO_VOLUME_REDUCTION:
            v = fig.series[app]
            assert v["reduction"] == pytest.approx(v["overlap"], rel=0.1), app

    def test_reduction_matters_for_sparse_readers(self, fig):
        for app in ("kmeans", "netflix", "mastercard_indexed"):
            v = fig.series[app]
            assert v["reduction"] > v["overlap"] * 1.15, app

    def test_full_bigkernel_beats_single_everywhere(self, fig):
        for app, v in fig.series.items():
            assert v["coalescing"] > 1.0, app


class TestFig6:
    def test_fractions_normalized(self, matrix):
        fig = fig6(SETTINGS, matrix=matrix)
        for app, stages in fig.series.items():
            assert max(stages.values()) == pytest.approx(1.0)
            assert all(0.0 <= v <= 1.0 for v in stages.values())

    def test_addr_gen_is_cheap(self, matrix):
        """Paper: address generation takes the least time, usually <20%."""
        fig = fig6(SETTINGS, matrix=matrix)
        cheap = sum(
            1 for stages in fig.series.values() if stages["addr_gen"] <= 0.65
        )
        assert cheap >= 6  # all but possibly the no-pattern outlier

    def test_compute_dominant_for_most_apps(self, matrix):
        """Paper Section VI-C: computation is the slowest stage for many
        applications (the bottleneck migrated to the GPU)."""
        fig = fig6(SETTINGS, matrix=matrix)
        dominant = sum(
            1
            for stages in fig.series.values()
            if stages["compute"] == max(stages.values())
        )
        # at this reduced test scale the DMA-latency floor inflates the
        # transfer stage; the full-scale benchmark asserts >= 4
        assert dominant >= 3


class TestTable1:
    @pytest.fixture(scope="class")
    def t1(self):
        return table1(SETTINGS)

    def test_measured_read_fractions_close_to_paper(self, t1):
        for app, row in t1.rows.items():
            assert row["read"] == pytest.approx(row["paper_read"], abs=0.08), app

    def test_modified_only_kmeans(self, t1):
        for app, row in t1.rows.items():
            if app == "kmeans":
                assert row["modified"] > 0
            else:
                assert row["modified"] == 0

    def test_record_types_match_paper(self, t1):
        for app, row in t1.rows.items():
            assert row["record_type"] == TABLE1[app]["record_type"]


class TestTable2:
    @pytest.fixture(scope="class")
    def t2(self):
        return table2(SETTINGS)

    def test_indexed_is_na(self, t2):
        assert t2.rows["mastercard_indexed"]["improvement"] is None

    def test_byte_granular_apps_benefit_most(self, t2):
        """Word Count's per-byte addresses make patterns most impactful."""
        wc = t2.rows["wordcount"]["improvement"]
        of = t2.rows["opinion"]["improvement"]
        assert wc is not None and of is not None
        assert wc > 0.2
        assert wc > of

    def test_improvements_non_negative(self, t2):
        for app, row in t2.rows.items():
            if row["improvement"] is not None:
                assert row["improvement"] >= -0.05, app


class TestReport:
    def test_render_table_basic(self):
        text = render_table(["a", "b"], [[1, 2.5], ["x", None]], title="T")
        assert "T" in text and "2.50" in text and "NA" in text

    def test_render_series_flat(self):
        text = render_series({"one": 1.0, "two": 2.0}, title="S")
        assert "S" in text and "2.00x" in text

    def test_render_series_grouped(self):
        text = render_series({"app": {"x": 1.0, "y": 0.5}})
        assert "app / x" in text

    def test_render_series_empty(self):
        assert render_series({}, title="E") == "E"
