"""Seeded property tests for the serving layer: overload never corrupts
accounting, WDRR converges to the weights, served answers stay bit-equal."""

import pytest

from repro.apps.datagen import DATAGEN_VERSION
from repro.bench.jobs import DatasetSpec, JobSpec
from repro.bench.sweep import RunCache
from repro.engines import EngineConfig
from repro.serve import (
    ServeConfig,
    ServeRequest,
    Server,
    TenantSpec,
    TraceSpec,
    generate_trace,
    oneshot_oracle,
    scale_trace,
    serve_trace,
)
from repro.units import KiB
from repro.verify.differential import _bit_equal


def _tiny_job(seed=0):
    from repro.serve.workload import engine_spec_by_name

    return JobSpec(
        dataset=DatasetSpec(
            app="wordcount", seed=seed, n_bytes=256 * KiB, version=DATAGEN_VERSION
        ),
        engine=engine_spec_by_name("bigkernel"),
        config=EngineConfig(chunk_bytes=128 * KiB),
    )


# ------------------------------------------------------------- accounting
@pytest.mark.parametrize("seed", [1, 13])
def test_overload_never_corrupts_accounting(seed):
    spec = TraceSpec(
        seed=seed, duration=1.0, rate=30.0, data_bytes=256 * KiB, repeat_p=0.4
    )
    trace = generate_trace(spec)
    # all arrivals effectively at t=0 into a tiny queue: heavy overload
    slammed = scale_trace(trace, 1e-9)
    with Server(
        ServeConfig(max_queue=5, max_batch=4), cache=RunCache(disk=None)
    ) as server:
        outcome = serve_trace(server, slammed)
    m = outcome.metrics

    # every request reached exactly one terminal state
    assert len(outcome.responses) == len(trace)
    assert m.submitted == len(trace)
    assert m.submitted == m.admitted + m.rejected
    assert m.admitted == m.completed + m.failed
    assert m.failed == 0
    assert m.rejected > 0  # the tiny queue must actually shed load
    assert server.pending() == 0
    statuses = {r.status for r in outcome.responses}
    assert statuses <= {"served", "coalesced", "cached", "rejected"}
    # per-tenant buckets reconcile with the global counters
    assert sum(b["submitted"] for b in m.per_tenant.values()) == m.submitted
    assert sum(b["rejected"] for b in m.per_tenant.values()) == m.rejected
    assert sum(b["completed"] for b in m.per_tenant.values()) == m.completed

    # rejections did not poison the server: it still serves new work
    late = ServeRequest(
        req_id=10_000, tenant="alpha", arrival=0.0, job=_tiny_job()
    )
    assert server.submit(late) is None
    resps = server.drain()
    assert [r.status for r in resps if r.req_id == 10_000][0] in (
        "served",
        "cached",
    )


# --------------------------------------------------------------- fairness
def test_wdrr_shares_follow_weights_under_backlog():
    tenants = (
        TenantSpec("small", 1.0),
        TenantSpec("mid", 2.0),
        TenantSpec("big", 4.0),
    )
    per_tenant = 70
    server = Server(
        ServeConfig(max_queue=3 * per_tenant, max_batch=7, cache=False),
        tenants=tenants,
    )
    job = _tiny_job()
    rid = 0
    for tenant in tenants:
        for _ in range(per_tenant):
            assert server.submit(
                ServeRequest(req_id=rid, tenant=tenant.name, arrival=0.0, job=job)
            ) is None
            rid += 1

    # pull scheduling windows while every tenant stays backlogged — the
    # only regime where the weighted shares are defined
    counts = {t.name: 0 for t in tenants}
    drawn = 0
    while all(len(q) > server.config.max_batch for q in server._queues.values()):
        window = server._select_window()
        assert len(window) == server.config.max_batch
        for req in window:
            counts[req.tenant] += 1
            drawn += 1

    assert drawn >= 70  # enough windows for the shares to converge
    total_weight = sum(t.weight for t in tenants)
    for tenant in tenants:
        share = counts[tenant.name] / drawn
        want = tenant.weight / total_weight
        assert abs(share - want) < 0.1, (tenant.name, share, want)
    # no starvation: the lightest tenant still got real service
    assert counts["small"] > 0


# ------------------------------------------------------------- bit-equal
@pytest.mark.parametrize("seed", [3, 19])
def test_served_outputs_bit_equal_oneshot_oracle(seed):
    spec = TraceSpec(
        seed=seed,
        duration=0.8,
        rate=25.0,
        data_bytes=256 * KiB,
        chunk_kib_choices=(128, 256),
        repeat_p=0.5,
    )
    trace = generate_trace(spec)
    with Server(
        ServeConfig(max_queue=len(trace) + 1, max_batch=6),
        cache=RunCache(disk=None),
    ) as server:
        outcome = serve_trace(server, trace)

    jobs = {r.req_id: r.job for r in trace}
    oracles = {}
    for resp in outcome.responses:
        assert resp.status in ("served", "coalesced", "cached"), resp
        job = jobs[resp.req_id]
        key = (job.dataset, job.engine, job.config)
        if key not in oracles:
            oracles[key] = oneshot_oracle(job)
        oracle = oracles[key]
        # rtol 0: the amortization stack must change nothing observable
        assert resp.result.sim_time == oracle.sim_time
        assert _bit_equal(resp.result.output, oracle.output)
    # the trace was serving-shaped: amortization actually kicked in
    assert outcome.metrics.engine_runs < outcome.metrics.completed
