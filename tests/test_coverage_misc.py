"""Consolidated coverage for smaller surfaces: monitors, metrics, buffer
misuse, GPU device edges, engine result helpers."""

import numpy as np
import pytest

from repro.engines.base import RunMetrics, RunResult
from repro.errors import AllocationError, HardwareError, RuntimeConfigError
from repro.hw import GTX680, GpuDevice, KernelCost
from repro.hw.gpu import BlockResources
from repro.hw.gpu_memory import GpuMemoryAllocator
from repro.hw.pinned import PinnedAllocator
from repro.runtime.buffers import BlockBuffers, BufferConfig
from repro.sim import Environment, ResourceMonitor, TraceRecorder, utilization
from repro.units import GiB, MiB


class TestResourceMonitor:
    def test_busy_and_utilization(self):
        tr = TraceRecorder()
        tr.record("gpu", "a", 0.0, 2.0)
        tr.record("gpu", "b", 1.0, 3.0)  # overlaps -> union 3.0
        tr.record("cpu", "c", 0.0, 10.0)
        mon = ResourceMonitor(tr, "gpu")
        assert mon.busy == pytest.approx(3.0)
        assert mon.utilization() == pytest.approx(0.3)

    def test_explicit_span(self):
        tr = TraceRecorder()
        tr.record("gpu", "a", 0.0, 1.0)
        assert utilization(tr, "gpu", span=4.0) == pytest.approx(0.25)

    def test_empty_track(self):
        tr = TraceRecorder()
        tr.record("gpu", "a", 0.0, 1.0)
        assert utilization(tr, "pcie") == 0.0

    def test_zero_span(self):
        assert ResourceMonitor(TraceRecorder(), "gpu").utilization() == 0.0


class TestRunMetricsAndResult:
    def test_comp_comm_ratio(self):
        m = RunMetrics(comp_time=3.0, comm_time=1.0)
        assert m.comp_comm_ratio == pytest.approx(0.75)

    def test_comp_comm_ratio_zero_total(self):
        assert RunMetrics().comp_comm_ratio == 0.0

    def test_speedup_over(self):
        a = RunResult("a", "app", None, 2.0, RunMetrics())
        b = RunResult("b", "app", None, 1.0, RunMetrics())
        assert b.speedup_over(a) == pytest.approx(2.0)

    def test_zero_time_speedup_rejected(self):
        z = RunResult("z", "app", None, 0.0, RunMetrics())
        other = RunResult("o", "app", None, 1.0, RunMetrics())
        with pytest.raises(RuntimeConfigError):
            z.speedup_over(other)


class TestBufferMisuse:
    def test_release_without_allocate_is_noop(self):
        cfg = BufferConfig(data_buf_bytes=1 * MiB, addr_buf_entries=64, instances=2)
        bb = BlockBuffers(0, cfg)
        bb.release(PinnedAllocator(1 * GiB), GpuMemoryAllocator(1 * GiB))  # empty

    def test_double_release_detected(self):
        cfg = BufferConfig(data_buf_bytes=1 * MiB, addr_buf_entries=64, instances=2)
        pinned, gpu = PinnedAllocator(1 * GiB), GpuMemoryAllocator(1 * GiB)
        bb = BlockBuffers(0, cfg)
        bb.allocate(pinned, gpu)
        bb.release(pinned, gpu)
        bb2 = BlockBuffers(1, cfg)
        bb2.allocate(pinned, gpu)
        handles = list(bb2._pinned_handles)
        bb2.release(pinned, gpu)
        with pytest.raises(AllocationError):
            pinned.free(handles[0])

    def test_too_many_blocks_exhaust_gpu_memory(self):
        from repro.errors import GpuOutOfMemory

        cfg = BufferConfig(
            data_buf_bytes=300 * MiB, addr_buf_entries=64, instances=2
        )
        pinned, gpu = PinnedAllocator(64 * GiB), GpuMemoryAllocator(1 * GiB)
        b0 = BlockBuffers(0, cfg)
        b0.allocate(pinned, gpu)
        with pytest.raises(GpuOutOfMemory):
            BlockBuffers(1, cfg).allocate(pinned, gpu)


class TestGpuDeviceEdges:
    def setup_method(self):
        self.gpu = GpuDevice(GTX680)

    def test_bandwidth_scale_rejects_nonpositive(self):
        with pytest.raises(HardwareError):
            self.gpu.bandwidth_scale(0)

    def test_negative_launch_count_rejected(self):
        with pytest.raises(HardwareError):
            self.gpu.launch_overhead(-1)

    def test_flag_wait_cost_linear(self):
        assert self.gpu.flag_wait_overhead(4) == pytest.approx(
            4 * GTX680.global_latency
        )

    def test_additive_roofline(self):
        """compute + memory, not max(): both components appear."""
        cost = KernelCost(n_ops=1.5e9, global_bytes=144 * MiB, efficiency=1.0)
        t = self.gpu.stage_time(cost)
        comp = 1.5e9 / GTX680.peak_ops
        mem = 144 * MiB / GTX680.effective_mem_bandwidth
        assert t == pytest.approx(comp + mem)

    def test_block_resources_zero_regs(self):
        req = BlockResources(threads=128, registers_per_thread=0)
        assert self.gpu.max_active_blocks(req) > 0

    def test_compute_resource_capacity_two(self):
        env = Environment()
        gpu = GpuDevice(GTX680, env=env)
        assert gpu.compute is not None and gpu.compute.capacity == 2
