"""IR-level thread-partition independence.

The streaming contract says records are processed independently, so
executing the kernel over K disjoint thread ranges must produce the same
result as one thread over the whole range. This is what makes both the
paper's thread assignment and our multi-GPU sharding sound.
"""

import numpy as np
import pytest

from repro.apps import ALL_APPS, get_app
from repro.kernelc import KernelInterpreter

SIZES = {
    "kmeans": 48 * 48,
    "wordcount": 1600,
    "netflix": 80 * 48,
    "opinion": 112 * 12,
    "dna": 128 * 24,
    "mastercard": 1600,
    "mastercard_indexed": 1600,
}


def run_partitioned(app, data, n_threads):
    ctx = app.make_ir_context(data)
    n = app.n_units(data)
    # range boundaries must respect record alignment for byte-unit apps
    if app.name in ("wordcount", "mastercard"):
        bounds = app.chunk_bounds(data, max(1, n // n_threads))
    else:
        per = -(-n // n_threads)
        bounds = [(lo, min(lo + per, n)) for lo in range(0, n, per)]
    for p in range(app.n_passes):
        if app.n_passes > 1:
            ctx.params["pass_idx"] = p
        for tid, (lo, hi) in enumerate(bounds):
            interp = KernelInterpreter(app.kernel(), ctx)
            interp.run_thread(tid, lo, hi)
    return app.ir_output(data, ctx)


@pytest.mark.parametrize("name", [cls.name for cls in ALL_APPS])
@pytest.mark.parametrize("n_threads", [2, 5])
def test_partitioned_ir_equals_single_thread(name, n_threads):
    app = get_app(name)
    data_a = app.generate(n_bytes=SIZES[name], seed=33)
    expected = app.reference(data_a)

    data_b = app.generate(n_bytes=SIZES[name], seed=33)
    got = run_partitioned(app, data_b, n_threads)
    assert app.outputs_equal(expected, got)
