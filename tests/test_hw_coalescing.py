"""Tests for the coalescing / memory-transaction model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hw.coalescing import (
    AccessPattern,
    coalescing_efficiency,
    transactions_for_warp,
    warp_transactions_analytic,
)


class TestTransactionsForWarp:
    def test_fully_coalesced_floats(self):
        # 32 lanes x 4B adjacent = 128B = 4 segments of 32B
        addrs = np.arange(32) * 4
        assert transactions_for_warp(addrs, 4) == 4

    def test_fully_coalesced_doubles(self):
        addrs = np.arange(32) * 8
        assert transactions_for_warp(addrs, 8) == 8

    def test_one_segment_per_lane_when_strided_far(self):
        addrs = np.arange(32) * 4096
        assert transactions_for_warp(addrs, 4) == 32

    def test_same_address_all_lanes_is_one_segment(self):
        addrs = np.zeros(32, dtype=np.int64)
        assert transactions_for_warp(addrs, 4) == 1

    def test_element_spanning_two_segments(self):
        # one 8B element starting at offset 28 crosses the 32B boundary
        assert transactions_for_warp(np.array([28]), 8) == 2

    def test_empty_warp(self):
        assert transactions_for_warp(np.array([], dtype=np.int64), 4) == 0

    def test_rejects_bad_elem_size(self):
        with pytest.raises(ValueError):
            transactions_for_warp(np.array([0]), 0)

    @given(
        stride=st.integers(min_value=1, max_value=512),
        elem=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_analytic_matches_exact(self, stride, elem):
        addrs = np.arange(32, dtype=np.int64) * stride
        assert warp_transactions_analytic(stride, elem) == transactions_for_warp(
            addrs, elem
        )

    @given(
        addrs=st.lists(
            st.integers(min_value=0, max_value=1 << 20), min_size=1, max_size=32
        ),
        elem=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=60, deadline=None)
    def test_transaction_count_bounds(self, addrs, elem):
        """1 <= segments <= lanes * ceil((elem + txn - 1) / txn)."""
        n = transactions_for_warp(np.array(addrs), elem)
        per_lane_max = (elem + 31 - 1) // 32 + 1
        assert 1 <= n <= len(addrs) * per_lane_max

    @given(elem=st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_unit_stride_is_optimal(self, elem):
        """Contiguous lane accesses minimize transactions over any permutation."""
        base = np.arange(32, dtype=np.int64) * elem
        contiguous = transactions_for_warp(base, elem)
        rng = np.random.default_rng(elem)
        shuffled = transactions_for_warp(rng.permutation(base), elem)
        assert shuffled == contiguous  # same set of addresses -> same segments
        spread = transactions_for_warp(base * 7, elem)
        assert spread >= contiguous


class TestCoalescingEfficiency:
    def test_perfect_when_contiguous_4b(self):
        assert coalescing_efficiency(4, 4) == 1.0

    def test_poor_when_records_are_large(self):
        # 48B records, 8B elements: each lane sits in its own segments
        eff = coalescing_efficiency(48, 8)
        assert eff < 0.5

    def test_floor_is_elem_over_transaction(self):
        eff = coalescing_efficiency(4096, 4)
        assert eff == pytest.approx(4 / 32)

    @given(
        stride=st.integers(min_value=1, max_value=1024),
        elem=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60, deadline=None)
    def test_efficiency_in_unit_interval(self, stride, elem):
        eff = coalescing_efficiency(stride, elem)
        assert 0.0 < eff <= 1.0

    @given(elem=st.integers(min_value=1, max_value=64))
    @settings(max_examples=30, deadline=None)
    def test_bigkernel_layout_never_worse(self, elem):
        """Interleaved (stride == elem) layout >= any larger record stride."""
        for record in (elem, elem * 2, elem * 8, elem * 64 + 3):
            assert coalescing_efficiency(elem, elem) >= coalescing_efficiency(
                record, elem
            )


class TestAccessPattern:
    def test_kmeans_like_pattern_improves(self):
        # 8B doubles inside 48B records
        p = AccessPattern(elem_bytes=8, record_bytes=48, mapped_fraction=1.0)
        assert p.bigkernel_efficiency() > p.original_efficiency()

    def test_mapped_fraction_blends(self):
        p_all = AccessPattern(8, 4096, mapped_fraction=1.0)
        p_half = AccessPattern(8, 4096, mapped_fraction=0.5)
        assert p_half.kernel_efficiency(False) > p_all.kernel_efficiency(False)

    def test_coalesced_layout_flag(self):
        p = AccessPattern(8, 48)
        assert p.kernel_efficiency(True) > p.kernel_efficiency(False)

    def test_already_coalesced_layout_has_no_headroom(self):
        p = AccessPattern(4, 4)
        assert p.kernel_efficiency(True) == pytest.approx(p.kernel_efficiency(False))
