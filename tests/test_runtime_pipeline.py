"""Tests for the 4/6-stage pipeline scheduling behaviour."""

import pytest

from repro.errors import RuntimeConfigError
from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import (
    STAGE_ADDR_GEN,
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    STAGE_WRITEBACK_SCATTER,
    STAGE_WRITEBACK_XFER,
    ChunkWork,
    PipelineConfig,
    PipelineResult,
    run_pipeline,
)
from repro.units import MiB


def make_chunks(
    n,
    t_ag=0.001,
    t_asm=0.002,
    xfer=2 * MiB,
    t_comp=0.003,
    addr_bytes=0,
    write_bytes=0,
    t_scatter=0.0,
):
    return [
        ChunkWork(
            index=i,
            t_addr_gen=t_ag,
            addr_bytes_d2h=addr_bytes,
            t_assembly=t_asm,
            xfer_bytes=xfer,
            t_compute=t_comp,
            write_bytes=write_bytes,
            t_scatter=t_scatter,
        )
        for i in range(n)
    ]


HW = DEFAULT_HARDWARE


def xfer_time(nbytes):
    return HW.pcie.transfer_time(nbytes)


class TestPipelineOverlap:
    def test_total_close_to_bottleneck(self):
        """With balanced stages, total ~= n * max-stage + fill, far below
        the serialized sum."""
        n = 40
        chunks = make_chunks(n, t_ag=0.001, t_asm=0.0025, xfer=16 * MiB, t_comp=0.003)
        res = run_pipeline(HW, chunks)
        bottleneck = n * 0.003
        serial = n * (0.001 + 0.0025 + xfer_time(16 * MiB) + 0.003)
        assert res.total_time < serial * 0.7
        assert res.total_time >= bottleneck
        assert res.total_time < bottleneck * 1.5

    def test_communication_overlaps_computation(self):
        chunks = make_chunks(30, t_comp=0.004)
        res = run_pipeline(HW, chunks)
        overlap = res.trace.overlap_time(STAGE_COMPUTE, STAGE_TRANSFER)
        assert overlap > 0.5 * res.trace.total_time(STAGE_TRANSFER)

    def test_addr_gen_overlaps_compute(self):
        chunks = make_chunks(30, t_ag=0.002, t_comp=0.004)
        res = run_pipeline(HW, chunks)
        assert res.trace.overlap_time(STAGE_ADDR_GEN, STAGE_COMPUTE) > 0

    def test_single_chunk_is_fully_serial(self):
        chunks = make_chunks(1)
        res = run_pipeline(HW, chunks)
        expected = 0.001 + 0.002 + xfer_time(2 * MiB) + xfer_time(4) + 0.003
        assert res.total_time == pytest.approx(expected, rel=0.05)

    def test_stage_totals_accumulate(self):
        n = 10
        res = run_pipeline(HW, make_chunks(n))
        assert res.stage_totals[STAGE_ADDR_GEN] == pytest.approx(n * 0.001)
        assert res.stage_totals[STAGE_ASSEMBLY] == pytest.approx(n * 0.002)
        assert res.stage_totals[STAGE_COMPUTE] == pytest.approx(n * 0.003)
        assert res.stage_totals[STAGE_TRANSFER] == pytest.approx(
            n * xfer_time(2 * MiB)
        )

    def test_bytes_accounted(self):
        n = 5
        res = run_pipeline(HW, make_chunks(n, xfer=1 * MiB, addr_bytes=64 * 1024))
        assert res.bytes_h2d >= n * 1 * MiB  # + flag bytes
        assert res.bytes_d2h == n * 64 * 1024


class TestRingDepth:
    def test_deeper_ring_never_slower(self):
        chunks = make_chunks(30, t_asm=0.004, t_comp=0.004)
        shallow = run_pipeline(HW, chunks, PipelineConfig(ring_depth=2))
        deep = run_pipeline(HW, chunks, PipelineConfig(ring_depth=6))
        assert deep.total_time <= shallow.total_time + 1e-9

    def test_ring_limits_lookahead(self):
        """addr_gen of chunk k cannot start before compute of chunk k-depth
        has finished (the paper's n-3 barrier generalized)."""
        depth = 2
        chunks = make_chunks(12, t_ag=0.0001, t_comp=0.01)
        res = run_pipeline(HW, chunks, PipelineConfig(ring_depth=depth))
        ag = {
            iv.meta["chunk"]: iv.start
            for iv in res.trace.by_label(STAGE_ADDR_GEN)
        }
        comp = {
            iv.meta["chunk"]: iv.end for iv in res.trace.by_label(STAGE_COMPUTE)
        }
        for k in range(depth, 12):
            assert ag[k] >= comp[k - depth] - 1e-12


class TestWritebackStages:
    def test_write_stages_present_when_writing(self):
        chunks = make_chunks(8, write_bytes=256 * 1024, t_scatter=0.001)
        res = run_pipeline(HW, chunks)
        assert res.stage_totals.get(STAGE_WRITEBACK_XFER, 0) > 0
        assert res.stage_totals.get(STAGE_WRITEBACK_SCATTER, 0) == pytest.approx(
            8 * 0.001
        )

    def test_write_stages_absent_otherwise(self):
        res = run_pipeline(HW, make_chunks(8))
        assert STAGE_WRITEBACK_XFER not in res.stage_totals
        assert STAGE_WRITEBACK_SCATTER not in res.stage_totals

    def test_writes_extend_pipeline_not_serially(self):
        base = run_pipeline(HW, make_chunks(30, t_comp=0.004))
        wb = run_pipeline(
            HW, make_chunks(30, t_comp=0.004, write_bytes=64 * 1024, t_scatter=0.0005)
        )
        # writeback overlaps the forward pipeline; cost is far less than
        # the serial sum of the extra stages
        assert wb.total_time < base.total_time + 30 * 0.0005


class TestAddressTraffic:
    def test_heavy_address_traffic_slows_pipeline(self):
        """8B/element address streams (no pattern) throttle the pipeline —
        the effect pattern recognition removes (Table II)."""
        light = run_pipeline(HW, make_chunks(20, addr_bytes=0))
        heavy = run_pipeline(HW, make_chunks(20, addr_bytes=64 * MiB))
        assert heavy.total_time > light.total_time * 1.5


class TestValidation:
    def test_empty_chunks_rejected(self):
        with pytest.raises(RuntimeConfigError):
            run_pipeline(HW, [])

    def test_negative_cost_rejected(self):
        with pytest.raises(RuntimeConfigError):
            ChunkWork(0, -1.0, 0, 0.0, 0, 0.0)

    def test_bad_config_rejected(self):
        with pytest.raises(RuntimeConfigError):
            PipelineConfig(ring_depth=1)
        with pytest.raises(RuntimeConfigError):
            PipelineConfig(cpu_workers=0)

    def test_stage_fraction(self):
        res = run_pipeline(HW, make_chunks(10))
        assert res.stage_fraction(STAGE_COMPUTE) == pytest.approx(1.0)
        assert 0 < res.stage_fraction(STAGE_ADDR_GEN) < 1.0
