"""Tests for the multi-GPU extension."""

import pytest

from repro.apps import get_app
from repro.engines import BigKernelEngine, EngineConfig
from repro.errors import RuntimeConfigError
from repro.ext import MultiGpuBigKernelEngine
from repro.units import MiB

CFG = EngineConfig(chunk_bytes=512 * 1024)


@pytest.fixture(scope="module")
def workload():
    app = get_app("netflix")
    return app, app.generate(n_bytes=8 * MiB, seed=3)


class TestMultiGpu:
    def test_output_identical_to_single_gpu(self, workload):
        app, data = workload
        one = BigKernelEngine().run(app, data, CFG)
        two = MultiGpuBigKernelEngine(2).run(app, data, CFG)
        assert app.outputs_equal(one.output, two.output)

    def test_two_gpus_faster_than_one(self, workload):
        app, data = workload
        one = BigKernelEngine().run(app, data, CFG)
        two = MultiGpuBigKernelEngine(2).run(app, data, CFG)
        assert two.sim_time < one.sim_time
        # no superlinear magic
        assert two.sim_time > one.sim_time / 2.2

    def test_scaling_diminishes_with_cpu_contention(self, workload):
        """The host's assembly threads are divided among the shards, so
        scaling flattens — the paper's 'BigKernel uses more CPU-side
        resources' caveat carried to multiple devices."""
        app, data = workload
        times = {
            n: MultiGpuBigKernelEngine(n).run(app, data, CFG).sim_time
            for n in (1, 2, 4)
        }
        assert times[2] <= times[1]
        assert times[4] <= times[2] * 1.01
        gain_12 = times[1] / times[2]
        gain_24 = times[2] / times[4]
        assert gain_24 < gain_12  # diminishing returns

    def test_shared_link_slower_than_dual_link(self, workload):
        app, data = workload
        dual = MultiGpuBigKernelEngine(2, shared_link=False).run(app, data, CFG)
        shared = MultiGpuBigKernelEngine(2, shared_link=True).run(app, data, CFG)
        assert shared.sim_time >= dual.sim_time

    def test_one_gpu_matches_base_engine(self, workload):
        """n_gpus=1 degenerates to (almost exactly) the base engine."""
        app, data = workload
        one = MultiGpuBigKernelEngine(1).run(app, data, CFG)
        base = BigKernelEngine().run(app, data, CFG)
        # workers_override differs (threads//1 == 8 == min(blocks, threads))
        assert one.sim_time == pytest.approx(base.sim_time, rel=0.05)

    def test_launches_one_kernel_per_device(self, workload):
        app, data = workload
        res = MultiGpuBigKernelEngine(3).run(app, data, CFG)
        assert res.metrics.kernel_launches == 3
        assert res.metrics.notes["n_gpus"] == 3

    def test_bytes_conserved_across_shards(self, workload):
        app, data = workload
        one = BigKernelEngine().run(app, data, CFG)
        two = MultiGpuBigKernelEngine(2).run(app, data, CFG)
        assert two.metrics.bytes_h2d == pytest.approx(one.metrics.bytes_h2d, rel=0.02)

    def test_invalid_gpu_count(self):
        with pytest.raises(RuntimeConfigError):
            MultiGpuBigKernelEngine(0)

    def test_deprecated_shim_reexports_engine_class(self):
        """repro.ext.multigpu is a shim over repro.engines.multigpu."""
        import repro.engines
        import repro.engines.multigpu as canonical
        import repro.ext.multigpu as shim

        assert shim.MultiGpuBigKernelEngine is canonical.MultiGpuBigKernelEngine
        assert shim.MultiGpuBigKernelEngine is repro.engines.MultiGpuBigKernelEngine
        assert shim.__all__ == ["MultiGpuBigKernelEngine"]
        assert "Deprecated location" in (shim.__doc__ or "")

    def test_analytic_predictor_prices_multigpu(self, workload):
        """The closed-form predictor knows the shard model: dedicated-link
        configurations price exactly (same per-shard bound family as the
        DES fastpath), shared-link ones within the 5% analytic tolerance."""
        from repro.analytic import predict_run, resolve_engine

        app, data = workload
        for n, shared, tol in [(2, False, 1e-9), (4, False, 1e-9), (2, True, 0.05)]:
            eng = MultiGpuBigKernelEngine(n, shared_link=shared)
            assert resolve_engine(eng) is eng
            res = eng.run(app, data, CFG)
            pred = predict_run(app, data, CFG, eng)
            assert pred.engine == eng.name
            assert pred.sim_time == pytest.approx(res.sim_time, rel=tol)

    def test_analytic_resolves_multigpu_names(self):
        """Instance names round-trip through the string resolver."""
        from repro.analytic import resolve_engine

        eng = resolve_engine("bigkernel_multigpu4_shared_numablind")
        assert isinstance(eng, MultiGpuBigKernelEngine)
        assert eng.n_gpus == 4 and eng.shared_link and not eng.numa_aware
        assert eng.name == "bigkernel_multigpu4_shared_numablind"
        assert resolve_engine("bigkernel_multigpu").n_gpus == 2

    def test_writer_app_works(self):
        app = get_app("kmeans")
        data = app.generate(n_bytes=4 * MiB, seed=5)
        one = BigKernelEngine().run(app, data, CFG)
        two = MultiGpuBigKernelEngine(2).run(app, data, CFG)
        assert app.outputs_equal(one.output, two.output)
        assert two.metrics.bytes_d2h > 0  # write-back sharded too
