"""Property-based compiler soundness: random kernels, full round trip.

Hypothesis generates random (sliceable-by-construction) kernels over a
mapped record array — nested loops/branches, address arithmetic from loop
variables, mapped loads feeding resident accumulators, mapped stores — and
checks that the address-generation slice + gather + databuf execution
reproduces the original kernel's effects exactly.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.kernelc import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    ExecutionContext,
    For,
    If,
    Kernel,
    KernelInterpreter,
    Load,
    MappedRef,
    RecordSchema,
    Store,
    Var,
    make_addrgen_kernel,
    make_databuf_kernel,
    validate_kernel,
)

SCHEMA = RecordSchema.packed(
    [("a", "f8"), ("b", "i4"), ("c", "i4"), ("d", "f8")], record_size=32
)
#: fields the kernel reads; stores only target field "c" of the thread's
#: own record (BigKernel's streaming contract: no read-after-write to
#: mapped data within a launch — see repro.kernelc.slicing)
READ_FIELDS = ("a", "b", "d")
N_RECORDS = 12
ACC_SIZE = 8


# --------------------------------------------------------------------------
# kernel grammar
# --------------------------------------------------------------------------

def index_exprs():
    """Address arithmetic from the loop variable only (sliceable)."""
    return st.sampled_from(
        [
            Var("i"),
            BinOp("%", BinOp("+", Var("i"), Const(1)), Const(N_RECORDS)),
            BinOp("%", BinOp("*", Var("i"), Const(3)), Const(N_RECORDS)),
            BinOp("-", BinOp("-", Var("end"), Const(1)), Var("i")),
        ]
    )


def load_stmts(tmp_names):
    """Assign a mapped load to a temp local."""
    return st.builds(
        lambda name, field, idx: Assign(name, Load(MappedRef("arr", idx, field))),
        st.sampled_from(tmp_names),
        st.sampled_from(READ_FIELDS),
        index_exprs(),
    )


def compute_stmts(tmp_names):
    """Pure compute over temps + resident accumulation (dropped by slicer)."""
    val = st.sampled_from(
        [Var(n) for n in tmp_names] + [Const(1), Const(2.5)]
    )
    acc = st.builds(
        lambda idx, v: AtomicAdd("acc", BinOp("%", idx, Const(ACC_SIZE)), v),
        st.sampled_from([Var("i"), Const(3)]),
        val,
    )
    arith = st.builds(
        lambda name, v: Assign(name, BinOp("+", Var(name), v)),
        st.sampled_from(tmp_names),
        val,
    )
    return st.one_of(acc, arith)


def store_stmts(tmp_names):
    """Write a temp to field "c" of the thread's own record.

    The store field is never loaded and the index is the loop variable, so
    mapped data is never read after being written (the streaming
    contract).
    """
    return st.builds(
        lambda name: Store(
            MappedRef("arr", Var("i"), "c"), BinOp("%", Var(name), Const(1000))
        ),
        st.sampled_from(tmp_names),
    )


def guarded(body_strategy):
    """Wrap statements in a branch whose guard uses temps (not loads)."""
    return st.builds(
        lambda cond_var, then, els: If(
            BinOp(">", Var(cond_var), Const(0)), tuple(then), tuple(els)
        ),
        st.sampled_from(("t0", "t1")),
        st.lists(body_strategy, min_size=1, max_size=3),
        st.lists(body_strategy, min_size=0, max_size=2),
    )


def inner_loops(tmp_names):
    """A nested loop whose variable participates in address arithmetic."""
    inner_load = st.builds(
        lambda name, field: Assign(
            name,
            Load(
                MappedRef(
                    "arr",
                    BinOp(
                        "%",
                        BinOp("+", Var("i"), Var("j")),
                        Const(N_RECORDS),
                    ),
                    field,
                )
            ),
        ),
        st.sampled_from(tmp_names),
        st.sampled_from(READ_FIELDS),
    )
    return st.builds(
        lambda trip, body: For("j", Const(0), Const(trip), tuple(body)),
        st.integers(1, 3),
        st.lists(st.one_of(inner_load, compute_stmts(tmp_names)), min_size=1, max_size=3),
    )


@st.composite
def random_kernels(draw):
    tmp_names = ("t0", "t1", "t2")
    inits = [Assign(n, Const(0)) for n in tmp_names]
    body_atom = st.one_of(
        load_stmts(tmp_names), compute_stmts(tmp_names), store_stmts(tmp_names)
    )
    # loads must happen before stores/branches can use meaningful temps,
    # so force one leading load, then a random mix including branches
    first = draw(load_stmts(tmp_names))
    rest = draw(
        st.lists(
            st.one_of(body_atom, guarded(body_atom), inner_loops(tmp_names)),
            min_size=0,
            max_size=6,
        )
    )
    loop = For("i", Var("start"), Var("end"), tuple([first] + rest))
    return Kernel(
        "random_kernel",
        tuple(inits) + (loop,),
        mapped={"arr": SCHEMA},
        resident=("acc",),
    )


def make_ctx(seed):
    rng = np.random.default_rng(seed)
    arr = np.zeros(N_RECORDS, dtype=SCHEMA.numpy_dtype())
    arr["a"] = rng.uniform(-5, 5, N_RECORDS)
    arr["b"] = rng.integers(-100, 100, N_RECORDS)
    arr["c"] = rng.integers(-100, 100, N_RECORDS)
    arr["d"] = rng.uniform(-5, 5, N_RECORDS)
    return ExecutionContext(
        mapped={"arr": arr}, resident={"acc": np.zeros(ACC_SIZE, dtype=np.float64)}
    )


@given(kernel=random_kernels(), seed=st.integers(0, 10**6))
@settings(max_examples=120, deadline=None)
def test_random_kernel_roundtrip(kernel, seed):
    """Random programs take one of the paper's two paths, both sound:

    * sliceable: addr-gen slice + gather + databuf == original;
    * data-dependent control flow around mapped accesses: the slicer
      rejects it and the full-transfer fallback window reproduces the
      original instead.
    """
    from repro.errors import SlicingError

    validate_kernel(kernel)

    ctx_orig = make_ctx(seed)
    orig = KernelInterpreter(kernel, ctx_orig)
    orig.run_thread(0, 0, N_RECORDS)

    ctx_bk = make_ctx(seed)
    try:
        addrgen = make_addrgen_kernel(kernel)
    except SlicingError:
        _check_fallback_path(kernel, ctx_orig, ctx_bk, orig)
        return
    ag = KernelInterpreter(addrgen, ctx_bk)
    ag.run_thread(0, 0, N_RECORDS)

    # gather from the *pre-run* state, exactly like the assembly stage
    view = ctx_bk.mapped["arr"].view(np.uint8).reshape(-1)
    values = [
        view[r.offset : r.offset + r.nbytes].view(r.dtype)[0]
        for r in ag.read_addresses
    ]

    db = KernelInterpreter(make_databuf_kernel(kernel), ctx_bk)
    db.load_data(values)
    db.run_thread(0, 0, N_RECORDS)

    # same number of loads and stores on both paths
    assert len(ag.read_addresses) == orig.stats.n_mapped_reads
    assert len(ag.write_addresses) == len(db.write_queue) == orig.stats.n_mapped_writes

    # apply the write-back stage
    for rec, (_, value) in zip(ag.write_addresses, db.write_queue):
        view[rec.offset : rec.offset + rec.nbytes] = np.asarray(
            [value], dtype=rec.dtype
        ).view(np.uint8)

    np.testing.assert_array_equal(
        ctx_orig.resident["acc"], ctx_bk.resident["acc"]
    )
    np.testing.assert_array_equal(
        ctx_orig.mapped["arr"].view(np.uint8), ctx_bk.mapped["arr"].view(np.uint8)
    )


def _check_fallback_path(kernel, ctx_orig, ctx_bk, orig):
    """Unsliceable kernel: whole-range window + databuf form == original."""
    view = ctx_bk.mapped["arr"].view(np.uint8).reshape(-1)
    db = KernelInterpreter(make_databuf_kernel(kernel), ctx_bk)
    db.fallback_windows["arr"] = (0, view.copy())  # pre-run snapshot
    db.run_thread(0, 0, N_RECORDS)
    assert db.stats.n_mapped_reads == orig.stats.n_mapped_reads
    assert len(db.write_queue) == orig.stats.n_mapped_writes
    for rec, value in db.write_queue:
        view[rec.offset : rec.offset + rec.nbytes] = np.asarray(
            [value], dtype=rec.dtype
        ).view(np.uint8)
    np.testing.assert_array_equal(
        ctx_orig.resident["acc"], ctx_bk.resident["acc"]
    )
    np.testing.assert_array_equal(
        ctx_orig.mapped["arr"].view(np.uint8), ctx_bk.mapped["arr"].view(np.uint8)
    )
