"""Seeded property tests for fault injection.

Two laws, both over ``FaultPlan.random`` plans (same string-seed convention
as ``repro.verify.fuzz``):

* **determinism** — the same (data seed, fault seed) pair yields a
  bit-identical timeline and FaultReport fingerprint;
* **monotonicity** — adding faults never makes a *write-free* schedule
  finish earlier. (Schedules with mapped writes share the d2h channel
  between address and write-back traffic, where queueing anomalies can in
  principle reorder completions, so the law is asserted on the write-free
  subspace only.)
"""

import random
from dataclasses import replace

import pytest

from repro.apps import WordCountApp
from repro.engines import BigKernelEngine, EngineConfig
from repro.faults import FaultPlan
from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import PipelineConfig, run_pipeline
from repro.units import MiB
from repro.verify.fuzz import random_chunk_schedule, random_pipeline_config

SEEDS = range(5)


def writefree_schedule(rng):
    """A random schedule with mapped writes stripped (see module docstring)."""
    return [
        replace(c, write_bytes=0, t_scatter=0.0)
        for c in random_chunk_schedule(rng)
    ]


def intervals_of(result):
    return [
        (iv.track, iv.label, iv.start, iv.end)
        for iv in result.trace
    ]


class TestPlanGeneration:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_plan_deterministic(self, seed):
        assert FaultPlan.random(seed) == FaultPlan.random(seed)

    def test_random_plans_differ_across_seeds(self):
        plans = {FaultPlan.random(s) for s in range(20)}
        assert len(plans) > 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_random_plan_is_recoverable(self, seed):
        # random plans must stay in the recoverable regime: no fatal DMA
        # (retries < MAX_DMA_ATTEMPTS), no pinned denial unless asked
        from repro.faults import MAX_DMA_ATTEMPTS

        plan = FaultPlan.random(seed)
        assert plan.active()
        for d in plan.of_type("dma"):
            assert d.retries < MAX_DMA_ATTEMPTS
        assert plan.pinned_deny_after() is None


class TestPipelineDeterminism:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_same_seed_same_trace(self, seed):
        plan = FaultPlan.random(seed, max_chunk=3)

        def one_run():
            rng = random.Random(f"pipeline-{seed}-faultprop")
            chunks = random_chunk_schedule(rng)
            config = random_pipeline_config(rng)
            return run_pipeline(
                DEFAULT_HARDWARE, chunks, config, fastpath=False, faults=plan
            )

        a, b = one_run(), one_run()
        assert a.total_time == b.total_time
        assert intervals_of(a) == intervals_of(b)


class TestPipelineMonotonicity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fault_never_speeds_up_writefree_schedule(self, seed):
        rng = random.Random(f"pipeline-{seed}-mono")
        chunks = writefree_schedule(rng)
        config = random_pipeline_config(rng)
        clean = run_pipeline(DEFAULT_HARDWARE, chunks, config, fastpath=False)
        plan = FaultPlan.random(seed, max_chunk=len(chunks) - 1)
        faulted = run_pipeline(
            DEFAULT_HARDWARE, chunks, config, fastpath=False, faults=plan
        )
        assert faulted.total_time >= clean.total_time - 1e-12

    @pytest.mark.parametrize("seed", SEEDS)
    def test_adding_a_fault_is_monotone(self, seed):
        # growing the plan one event at a time never reduces the makespan
        rng = random.Random(f"pipeline-{seed}-mono-grow")
        chunks = writefree_schedule(rng)
        config = random_pipeline_config(rng)
        full = FaultPlan.random(seed, max_chunk=len(chunks) - 1)
        prev = run_pipeline(
            DEFAULT_HARDWARE, chunks, config, fastpath=False
        ).total_time
        for k in range(1, len(full.events) + 1):
            partial = FaultPlan(seed=full.seed, name=full.name,
                                events=full.events[:k])
            t = run_pipeline(
                DEFAULT_HARDWARE, chunks, config, fastpath=False, faults=partial
            ).total_time
            assert t >= prev - 1e-12
            prev = t


class TestEngineLevelProperties:
    @pytest.fixture(scope="class")
    def workload(self):
        app = WordCountApp()
        data = app.generate(n_bytes=1 * MiB, seed=7)
        return app, data

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engine_determinism(self, workload, seed):
        app, data = workload
        plan = FaultPlan.random(seed, max_chunk=3)
        cfg = EngineConfig(chunk_bytes=256 * 1024, faults=plan)
        a = BigKernelEngine().run(app, data, cfg)
        b = BigKernelEngine().run(app, data, cfg)
        assert a.sim_time == b.sim_time
        assert intervals_of(a) == intervals_of(b)
        assert a.metrics.notes.get("fault_stats") == b.metrics.notes.get(
            "fault_stats"
        )

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engine_monotonicity(self, workload, seed):
        # wordcount is read-only (no mapped writes), so the write-free
        # monotonicity law applies at the engine level too
        app, data = workload
        cfg = EngineConfig(chunk_bytes=256 * 1024, fastpath=False)
        clean = BigKernelEngine().run(app, data, cfg)
        plan = FaultPlan.random(seed, max_chunk=3)
        faulted = BigKernelEngine().run(app, data, cfg.with_(faults=plan))
        assert faulted.sim_time >= clean.sim_time - 1e-12
