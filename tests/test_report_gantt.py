"""Tests for the ASCII Gantt renderer and failure behaviour of pipeline
processes."""

import pytest

from repro.bench.report import render_gantt
from repro.errors import Deadlock
from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import ChunkWork, run_pipeline
from repro.sim import Environment, Resource, Store, TraceRecorder
from repro.units import MiB


class TestGantt:
    def make_trace(self):
        tr = TraceRecorder()
        tr.record("gpu", "compute", 0.0, 0.5)
        tr.record("gpu", "compute", 0.6, 1.0)
        tr.record("pcie", "xfer", 0.25, 0.75)
        return tr

    def test_rows_and_span(self):
        text = render_gantt(self.make_trace(), width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "gpu:compute" in lines[1]
        assert "pcie:xfer" in lines[2]
        assert "1.000 s" in lines[0]

    def test_bars_positioned(self):
        text = render_gantt(self.make_trace(), width=40)
        gpu_row = next(l for l in text.splitlines() if "gpu:compute" in l)
        bars = gpu_row.split("|")[1]
        # activity at the start, a gap in the middle-ish, activity at the end
        assert bars[0] == "#"
        assert bars[-1] == "#"
        assert " " in bars

    def test_empty_trace(self):
        assert render_gantt(TraceRecorder()) == "(empty trace)"

    def test_track_filter(self):
        text = render_gantt(self.make_trace(), tracks=["pcie"])
        assert "gpu" not in text and "pcie:xfer" in text

    def test_real_pipeline_gantt_renders(self):
        chunks = [
            ChunkWork(i, 1e-4, 0, 2e-4, 1 * MiB, 3e-4) for i in range(4)
        ]
        res = run_pipeline(DEFAULT_HARDWARE, chunks)
        text = render_gantt(res.trace)
        assert "gpu:compute" in text and "pcie-h2d:data_transfer" in text


class TestFailurePropagation:
    def test_stage_exception_surfaces_from_run(self):
        """A crashing simulated stage fails the run loudly, not silently."""
        env = Environment()
        res = Resource(env, capacity=1)

        def crasher(env):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)
                raise RuntimeError("stage died")

        env.process(crasher(env))
        with pytest.raises(RuntimeError, match="stage died"):
            env.run()

    def test_crashed_holder_releases_resource(self):
        env = Environment()
        res = Resource(env, capacity=1)
        acquired = []

        def crasher(env):
            with res.request() as req:
                yield req
                raise RuntimeError("boom")

        def survivor(env, victim):
            try:
                yield victim
            except RuntimeError:
                pass
            with res.request() as req:
                yield req
                acquired.append(env.now)

        victim = env.process(crasher(env))
        env.process(survivor(env, victim))
        env.run()
        assert acquired  # the resource was not leaked by the crash

    def test_starved_consumer_is_deadlock(self):
        """A consumer waiting on a store no producer will ever fill drains
        the queue and raises Deadlock via run(until=event)."""
        env = Environment()
        store = Store(env)

        def consumer(env):
            yield store.get()

        proc = env.process(consumer(env))
        with pytest.raises(Deadlock):
            env.run(until=proc)


class TestChromeTraceRetryTrack:
    def make_trace(self):
        tr = TraceRecorder()
        tr.record("pcie-h2d", "data_transfer", 0.0, 1.0, chunk=0, nbytes=100)
        tr.record("pcie-h2d", "data_transfer-retry", 1.0, 2.0,
                  chunk=1, retry=True, attempt=1, discarded=100)
        tr.record("pcie-h2d", "data_transfer", 2.0, 3.0, chunk=1, nbytes=100)
        return tr

    def test_retry_gets_dedicated_row(self):
        events = self.make_trace().to_chrome_trace()
        xs = [e for e in events if e["ph"] == "X"]
        retry = next(e for e in xs if e["name"].endswith("-retry"))
        normal = [e for e in xs if not e["name"].endswith("-retry")]
        assert all(e["tid"] != retry["tid"] for e in normal)
        # both successful transfers share the main track
        assert len({e["tid"] for e in normal}) == 1

    def test_retry_category_tag(self):
        events = self.make_trace().to_chrome_trace()
        xs = [e for e in events if e["ph"] == "X"]
        retry = next(e for e in xs if e["name"].endswith("-retry"))
        assert retry["cat"] == "retry"
        assert all("cat" not in e for e in xs if not e["name"].endswith("-retry"))

    def test_retry_row_named_in_metadata(self):
        events = self.make_trace().to_chrome_trace()
        metas = {e["name"]: e["tid"] for e in events if e["ph"] == "M"}
        assert "pcie-h2d:retry" in metas
        assert "pcie-h2d" in metas
        assert metas["pcie-h2d:retry"] != metas["pcie-h2d"]

    def test_retry_meta_flag_alone_is_enough(self):
        # the row split keys on either the meta flag or the label suffix
        tr = TraceRecorder()
        tr.record("pcie-d2h", "writeback", 0.0, 1.0, retry=True)
        events = tr.to_chrome_trace()
        x = next(e for e in events if e["ph"] == "X")
        assert x["cat"] == "retry"

    def test_pipeline_retry_reaches_chrome_trace(self):
        from repro.faults import FaultPlan
        from repro.runtime.pipeline import PipelineConfig

        chunks = [
            ChunkWork(i, 1e-4, 0, 2e-4, 1 * MiB, 3e-4) for i in range(4)
        ]
        plan = FaultPlan(name="retry").dma.error(chunk=2, retries=2)
        res = run_pipeline(
            DEFAULT_HARDWARE, chunks, PipelineConfig(), fastpath=False,
            faults=plan,
        )
        events = res.trace.to_chrome_trace()
        retries = [e for e in events
                   if e["ph"] == "X" and e.get("cat") == "retry"]
        assert len(retries) == 2
        assert all(e["args"]["chunk"] == 2 for e in retries)
        assert all("nbytes" not in e["args"] for e in retries)
