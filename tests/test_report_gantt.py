"""Tests for the ASCII Gantt renderer and failure behaviour of pipeline
processes."""

import pytest

from repro.bench.report import render_gantt
from repro.errors import Deadlock
from repro.hw.spec import DEFAULT_HARDWARE
from repro.runtime.pipeline import ChunkWork, run_pipeline
from repro.sim import Environment, Resource, Store, TraceRecorder
from repro.units import MiB


class TestGantt:
    def make_trace(self):
        tr = TraceRecorder()
        tr.record("gpu", "compute", 0.0, 0.5)
        tr.record("gpu", "compute", 0.6, 1.0)
        tr.record("pcie", "xfer", 0.25, 0.75)
        return tr

    def test_rows_and_span(self):
        text = render_gantt(self.make_trace(), width=40)
        lines = text.splitlines()
        assert len(lines) == 3  # header + 2 rows
        assert "gpu:compute" in lines[1]
        assert "pcie:xfer" in lines[2]
        assert "1.000 s" in lines[0]

    def test_bars_positioned(self):
        text = render_gantt(self.make_trace(), width=40)
        gpu_row = next(l for l in text.splitlines() if "gpu:compute" in l)
        bars = gpu_row.split("|")[1]
        # activity at the start, a gap in the middle-ish, activity at the end
        assert bars[0] == "#"
        assert bars[-1] == "#"
        assert " " in bars

    def test_empty_trace(self):
        assert render_gantt(TraceRecorder()) == "(empty trace)"

    def test_track_filter(self):
        text = render_gantt(self.make_trace(), tracks=["pcie"])
        assert "gpu" not in text and "pcie:xfer" in text

    def test_real_pipeline_gantt_renders(self):
        chunks = [
            ChunkWork(i, 1e-4, 0, 2e-4, 1 * MiB, 3e-4) for i in range(4)
        ]
        res = run_pipeline(DEFAULT_HARDWARE, chunks)
        text = render_gantt(res.trace)
        assert "gpu:compute" in text and "pcie-h2d:data_transfer" in text


class TestFailurePropagation:
    def test_stage_exception_surfaces_from_run(self):
        """A crashing simulated stage fails the run loudly, not silently."""
        env = Environment()
        res = Resource(env, capacity=1)

        def crasher(env):
            with res.request() as req:
                yield req
                yield env.timeout(1.0)
                raise RuntimeError("stage died")

        env.process(crasher(env))
        with pytest.raises(RuntimeError, match="stage died"):
            env.run()

    def test_crashed_holder_releases_resource(self):
        env = Environment()
        res = Resource(env, capacity=1)
        acquired = []

        def crasher(env):
            with res.request() as req:
                yield req
                raise RuntimeError("boom")

        def survivor(env, victim):
            try:
                yield victim
            except RuntimeError:
                pass
            with res.request() as req:
                yield req
                acquired.append(env.now)

        victim = env.process(crasher(env))
        env.process(survivor(env, victim))
        env.run()
        assert acquired  # the resource was not leaked by the crash

    def test_starved_consumer_is_deadlock(self):
        """A consumer waiting on a store no producer will ever fill drains
        the queue and raises Deadlock via run(until=event)."""
        env = Environment()
        store = Store(env)

        def consumer(env):
            yield store.get()

        proc = env.process(consumer(env))
        with pytest.raises(Deadlock):
            env.run(until=proc)
