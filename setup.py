"""Legacy setup shim.

The pinned environment has setuptools 65 without the ``wheel`` package, so
PEP 660 editable installs (which build a wheel) fail offline. This shim lets
``pip install -e .`` take the legacy ``setup.py develop`` path.
"""

from setuptools import setup

setup()
