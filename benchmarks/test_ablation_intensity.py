"""Ablation: arithmetic intensity and the communication-optimization payoff.

Sweeps K-means' cluster count (the kernel's ops/byte) and shows the
crossover the paper's Fig. 4(b)/Fig. 5 discussion implies: at low
intensity BigKernel's gain comes from communication (big win over double
buffering); as the kernel becomes compute-bound the gain decays toward
1x — exactly why Word Count and Opinion Finder benefit least.
"""

from repro.apps.kmeans import KMeansApp
from repro.bench.report import render_table
from repro.engines import BigKernelEngine, EngineConfig, GpuDoubleBufferEngine
from repro.units import MiB


def test_intensity_sweep(benchmark):
    cfg = EngineConfig(chunk_bytes=1 * MiB)

    def run():
        rows = []
        for k in (4, 32, 256, 2048):
            app = KMeansApp(n_clusters=k)
            data = app.generate(n_bytes=8 * MiB, seed=7)
            bk = BigKernelEngine().run(app, data, cfg)
            db = GpuDoubleBufferEngine().run(app, data, cfg)
            assert app.outputs_equal(bk.output, db.output)
            comp_frac = bk.metrics.stage_totals["compute"] / max(
                bk.metrics.stage_totals.values()
            )
            rows.append((k, db.sim_time, bk.sim_time, comp_frac))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        [
            k,
            f"{db * 1e3:.2f} ms",
            f"{bk * 1e3:.2f} ms",
            f"{db / bk:.2f}x",
            f"{frac * 100:.0f}%",
        ]
        for k, db, bk, frac in rows
    ]
    print("\n" + render_table(
        ["clusters (ops/record ~ 10k)", "double-buffer", "BigKernel",
         "BK advantage", "BK compute share"],
        printable,
        title="Ablation: arithmetic intensity vs communication payoff (K-means)",
    ))

    advantages = [db / bk for _, db, bk, _ in rows]
    # the communication advantage decays as compute dominates
    assert advantages[0] > advantages[-1]
    assert advantages[-1] < 1.1
    assert advantages[0] > 1.3
    # and the compute share of the BigKernel pipeline grows monotonically
    fracs = [frac for *_, frac in rows]
    assert all(b >= a - 1e-9 for a, b in zip(fracs, fracs[1:]))