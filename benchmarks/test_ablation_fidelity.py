"""Ablation: aggregate pipeline model vs per-block high-fidelity simulation.

The engines use the aggregate mode (one logical pipeline whose stage times
are pre-divided across CPU workers, with per-block DMA latency folded into
transfer segments) because it simulates in O(chunks) events. This bench
re-simulates real BigKernel schedules in the per-block mode — every block
with its own six stage processes contending for the shared CPU threads,
FIFO link and GPU slots — and checks the cheap model tracks the detailed
one.
"""

from repro.apps import get_app
from repro.bench.report import render_table
from repro.engines import BigKernelEngine, EngineConfig
from repro.runtime.pipeline import (
    ChunkWork,
    run_pipeline,
    run_pipeline_per_block,
)
from repro.units import MiB


def to_per_block(chunks, n_blocks, workers, mt_eff=0.85):
    """Un-aggregate a schedule: each block carries 1/n of every chunk's
    work, with undivided (single-thread) assembly/scatter durations."""
    blocks = []
    for _ in range(n_blocks):
        rows = []
        for c in chunks:
            rows.append(
                ChunkWork(
                    index=c.index,
                    t_addr_gen=c.t_addr_gen,
                    addr_bytes_d2h=c.addr_bytes_d2h // n_blocks,
                    t_assembly=c.t_assembly * workers * mt_eff / n_blocks,
                    xfer_bytes=c.xfer_bytes // n_blocks,
                    t_compute=c.t_compute,
                    write_bytes=c.write_bytes // n_blocks,
                    t_scatter=c.t_scatter * workers * mt_eff / n_blocks,
                    xfer_segments=1,
                )
            )
        blocks.append(rows)
    return blocks


def test_fidelity_comparison(benchmark):
    cfg = EngineConfig(chunk_bytes=2 * MiB)

    def run():
        rows = []
        for app_name in ("kmeans", "netflix", "wordcount"):
            app = get_app(app_name)
            data = app.generate(n_bytes=16 * MiB, seed=7)
            engine = BigKernelEngine()
            sched = engine._schedule(app, data, cfg)
            n_blocks = min(cfg.num_blocks, 8)
            aggregate = run_pipeline(
                cfg.hardware, sched.chunks, sched.pipe_cfg
            ).total_time
            detailed = run_pipeline_per_block(
                cfg.hardware,
                to_per_block(sched.chunks, n_blocks, sched.workers),
                sched.pipe_cfg,
                cpu_threads=cfg.hardware.cpu.threads,
            ).total_time
            rows.append((app_name, aggregate, detailed))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        [
            name,
            f"{agg * 1e3:.3f} ms",
            f"{det * 1e3:.3f} ms",
            f"{agg / det:.2f}x",
        ]
        for name, agg, det in rows
    ]
    print("\n" + render_table(
        ["app", "aggregate model", "per-block simulation", "ratio"],
        printable,
        title="Ablation: pipeline model fidelity (BigKernel schedules)",
    ))
    for name, agg, det in rows:
        assert 0.6 < agg / det < 1.7, name
