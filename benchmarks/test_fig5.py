"""Fig. 5: incremental benefit of (i) overlapping computation and
communication, (ii) transfer-volume reduction, (iii) memory coalescing.

Shape checks follow the paper's Section VI-B discussion: WC and MasterCard
gain nothing from volume reduction (100% read); Opinion Finder gains little
from any communication optimization (compute-dominant); the sparse readers
gain substantially from reduction.
"""

from repro.bench import fig5
from repro.bench.paper_data import NO_VOLUME_REDUCTION


def test_fig5(benchmark, settings):
    fig = benchmark.pedantic(lambda: fig5(settings), rounds=1, iterations=1)
    print("\n" + fig.text)

    for app, v in fig.series.items():
        # cumulative features never hurt
        assert v["reduction"] >= v["overlap"] * 0.99, app
        assert v["coalescing"] >= v["reduction"] * 0.99, app
        # the complete system beats single-buffering everywhere
        assert v["coalescing"] > 1.0, app

    # no reduction headroom for the 100%-read apps
    for app in NO_VOLUME_REDUCTION:
        v = fig.series[app]
        assert v["reduction"] / v["overlap"] < 1.1, app

    # large reduction benefit where reads are sparse
    for app in ("kmeans", "netflix", "dna", "mastercard_indexed"):
        v = fig.series[app]
        assert v["reduction"] / v["overlap"] > 1.15, app

    # compute-dominant Opinion Finder benefits least overall
    assert fig.series["opinion"]["coalescing"] == min(
        v["coalescing"] for v in fig.series.values()
    )
