"""Fig. 4(a): speedup of all five schemes over the serial CPU baseline.

Regenerates the figure's series and checks the paper's stated aggregates:
BigKernel over single-buffer up to 4.6x / avg 2.6x, over double-buffer up
to 3.1x / avg 1.7x, over multithreaded CPU up to 7.2x / avg 3.0x.
"""

import statistics

from repro.bench import BenchSettings, fig4a, run_matrix
from repro.bench.paper_data import AGGREGATES


def _aggregate(matrix, base):
    ratios = [
        matrix.get(app, base).sim_time / matrix.get(app, "bigkernel").sim_time
        for app in matrix.apps
    ]
    return statistics.mean(ratios), max(ratios)


def test_fig4a(benchmark, settings, matrix):
    fig = benchmark.pedantic(
        lambda: fig4a(matrix=matrix), rounds=1, iterations=1
    )
    print("\n" + fig.text)

    for base, paper in AGGREGATES.items():
        _, baseline = base
        avg, peak = _aggregate(matrix, baseline)
        paper_avg, paper_max = AGGREGATES[base]["avg"], AGGREGATES[base]["max"]
        print(
            f"BigKernel vs {baseline}: avg {avg:.2f}x (paper {paper_avg}x), "
            f"max {peak:.2f}x (paper {paper_max}x)"
        )
        # shape assertion: within 40% of the paper's stated aggregates
        assert 0.6 * paper_avg <= avg <= 1.4 * paper_avg, baseline
        assert 0.6 * paper_max <= peak <= 1.4 * paper_max, baseline

    # per-app ordering: BigKernel wins everywhere (the paper's headline)
    for app in matrix.apps:
        assert fig.series[app]["bigkernel"] > fig.series[app]["gpu_double"]
        assert fig.series[app]["bigkernel"] > fig.series[app]["gpu_single"]
        assert fig.series[app]["bigkernel"] > fig.series[app]["cpu_mt"]
