"""Ablation (extension): multi-GPU scaling of the BigKernel pipeline.

Shards the stream across simulated devices and reports the scaling curve
for a transfer-bound app (Netflix) and a compute-bound one (Word Count),
with dedicated vs shared PCIe links.
"""

from repro.apps import get_app
from repro.bench.report import render_table
from repro.engines import BigKernelEngine, EngineConfig
from repro.ext import MultiGpuBigKernelEngine
from repro.units import MiB


def test_multigpu_scaling(benchmark):
    cfg = EngineConfig(chunk_bytes=1 * MiB)

    def run():
        out = {}
        for app_name in ("netflix", "wordcount"):
            app = get_app(app_name)
            data = app.generate(n_bytes=16 * MiB, seed=7)
            base = BigKernelEngine().run(app, data, cfg).sim_time
            rows = {1: base}
            shared = {}
            for n in (2, 4):
                rows[n] = MultiGpuBigKernelEngine(n).run(app, data, cfg).sim_time
                shared[n] = MultiGpuBigKernelEngine(n, shared_link=True).run(
                    app, data, cfg
                ).sim_time
            out[app_name] = (rows, shared)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    printable = []
    for app_name, (rows, shared) in results.items():
        base = rows[1]
        for n in (1, 2, 4):
            printable.append(
                [
                    app_name,
                    n,
                    f"{rows[n] * 1e3:.2f} ms",
                    f"{base / rows[n]:.2f}x",
                    "-" if n == 1 else f"{base / shared[n]:.2f}x",
                ]
            )
    print("\n" + render_table(
        ["app", "GPUs", "time (dedicated links)", "scaling", "scaling (shared link)"],
        printable,
        title="Extension: multi-GPU BigKernel scaling",
    ))

    for app_name, (rows, shared) in results.items():
        assert rows[2] < rows[1]
        assert rows[4] <= rows[2] * 1.01
        # shared link scales no better than dedicated links
        for n in (2, 4):
            assert shared[n] >= rows[n] * 0.999
