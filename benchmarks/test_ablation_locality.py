"""Ablation: the data-assembly read-locality optimization (Section IV-B).

Measured two ways: (i) exactly, with the set-associative cache simulator on
real gathered address streams read in the two candidate orders; (ii) at
engine scale, comparing pattern-on (locality-enabled) vs pattern-off
assembly stage times.
"""

import numpy as np
import pytest

from repro.apps import get_app
from repro.bench.report import render_table
from repro.engines import BigKernelEngine, EngineConfig
from repro.hw.spec import XEON_E5
from repro.runtime.assembly import assembly_read_order, measure_assembly_hit_rate
from repro.units import MiB


def test_measured_cache_hit_rates(benchmark):
    """Exact CacheSim hit rates of per-thread-contiguous vs GPU-order reads
    over the K-means gather stream."""
    app = get_app("kmeans")
    data = app.generate(n_bytes=2 * MiB, seed=3)
    threads = 128
    units = app.n_units(data)
    per = units // threads

    def measure():
        streams = [
            app.chunk_read_offsets(data, t * per, (t + 1) * per)
            for t in range(threads)
        ]
        good = measure_assembly_hit_rate(
            assembly_read_order(streams, True), 8, XEON_E5, sample=8192
        )
        bad = measure_assembly_hit_rate(
            assembly_read_order(streams, False), 8, XEON_E5, sample=8192
        )
        return good, bad

    good, bad = benchmark.pedantic(measure, rounds=1, iterations=1)
    print("\n" + render_table(
        ["read order", "cache hit rate"],
        [["per-thread contiguous (opt)", f"{good * 100:.1f}%"],
         ["GPU access order", f"{bad * 100:.1f}%"]],
        title="Ablation: assembly read-locality (K-means gather, CacheSim)",
    ))
    assert good >= bad


def test_engine_level_assembly_stage(benchmark):
    """Locality optimization (enabled by the recognized pattern) shortens
    the assembly stage at engine scale."""
    app = get_app("kmeans")
    data = app.generate(n_bytes=16 * MiB, seed=3)
    cfg = EngineConfig(chunk_bytes=4 * MiB)

    def run():
        on = BigKernelEngine().run(app, data, cfg)
        off = BigKernelEngine().run(app, data, cfg.with_(pattern_recognition=False))
        return on, off

    on, off = benchmark.pedantic(run, rounds=1, iterations=1)
    asm_on = on.metrics.stage_totals["data_assembly"]
    asm_off = off.metrics.stage_totals["data_assembly"]
    print(f"\nassembly stage: locality on {asm_on * 1e3:.3f} ms, "
          f"off {asm_off * 1e3:.3f} ms")
    assert asm_on < asm_off
