"""Ablation: per-scheme configuration tuning.

The paper configures each implementation with its empirically best thread
count and buffer sizes (Section VI). This bench reproduces that
methodology with the autotuner and reports how much tuning matters —
and that the headline comparison (BigKernel vs double buffering) holds
when *both* sides get their best configurations.
"""

from repro.apps import get_app
from repro.bench.report import render_table
from repro.bench.sweep import autotune
from repro.engines import BigKernelEngine, EngineConfig, GpuDoubleBufferEngine
from repro.units import MiB

GRID = {"chunk_bytes": [512 * 1024, 1 * MiB, 2 * MiB, 4 * MiB]}


def test_autotuned_comparison(benchmark):
    def run():
        out = {}
        for app_name in ("kmeans", "netflix", "wordcount"):
            app = get_app(app_name)
            data = app.generate(n_bytes=16 * MiB, seed=7)
            base = EngineConfig(chunk_bytes=512 * 1024)
            rows = {}
            for engine in (GpuDoubleBufferEngine(), BigKernelEngine()):
                cfg, sweep_res = autotune(engine, app, data, base, grid=GRID)
                default_t = engine.run(app, data, base).sim_time
                rows[engine.name] = (
                    default_t,
                    sweep_res.best.sim_time,
                    cfg.chunk_bytes,
                )
            out[app_name] = rows
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    printable = []
    for app_name, rows in results.items():
        for engine, (default_t, best_t, chunk) in rows.items():
            printable.append(
                [
                    app_name,
                    engine,
                    f"{default_t * 1e3:.2f} ms",
                    f"{best_t * 1e3:.2f} ms",
                    f"{chunk // 1024} KiB",
                    f"{default_t / best_t:.2f}x",
                ]
            )
    print("\n" + render_table(
        ["app", "engine", "default (512 KiB)", "tuned", "best chunk", "tuning gain"],
        printable,
        title="Ablation: per-scheme configuration tuning",
    ))

    for app_name, rows in results.items():
        # tuning never hurts
        for engine, (default_t, best_t, _) in rows.items():
            assert best_t <= default_t * 1.001, (app_name, engine)
        # the headline holds with both sides at their best
        assert (
            rows["bigkernel"][1] < rows["gpu_double"][1]
        ), f"BigKernel must win tuned-vs-tuned on {app_name}"
