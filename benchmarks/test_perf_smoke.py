"""Perf smoke: wall-clock of the analytic fast path vs the DES.

Times (``time.perf_counter``) a ~500-chunk BigKernel run, a 16-point
autotune sweep, the raw DES event throughput, and a DES-bound
thread-vs-process sweep, and records the measurements to
``BENCH_pipeline.json`` at the repo root.

Every threshold is *warn-only*: wall-clock on shared CI boxes is
too noisy for a hard assert, but the recorded JSON makes regressions
visible across commits. Expected on any machine: the analytic pipeline
beats the DES by well over 5x at 500 chunks (it is O(n) arithmetic vs
an event queue), the cached sweep beats the cold serial sweep by the
cache hit rate, and the DES core clears 1.5x the pre-optimization event
rate. The process-vs-thread expectation additionally needs real cores:
on a single-CPU box a process pool cannot beat the GIL, so that check
downgrades to recording only.
"""

import json
import os
import time
import warnings
from pathlib import Path

from repro.apps import get_app
from repro.bench.sweep import RUN_CACHE, sweep
from repro.engines import BigKernelEngine, EngineConfig
from repro.units import MiB

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
WARN_SPEEDUP = 5.0

#: DES event throughput of the pre-optimization core (measured on the
#: reference box: plain-method dispatch, no __slots__, un-inlined loop)
DES_BASELINE_EVENTS_PER_SEC = 0.647e6
DES_WARN_SPEEDUP = 1.5
PROCESS_WARN_SPEEDUP = 2.0

SWEEP_GRID = {
    "chunk_bytes": [256 * 1024, 512 * 1024, 1 * MiB, 2 * MiB],
    "num_blocks": [8, 16, 32, 64],
}


def _record(entry: dict) -> None:
    entries = []
    if BENCH_FILE.exists():
        entries = json.loads(BENCH_FILE.read_text())
    entries = [e for e in entries if e["name"] != entry["name"]]
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def _warn_if_slow(name: str, speedup: float) -> None:
    if speedup < WARN_SPEEDUP:
        warnings.warn(
            f"{name}: speedup {speedup:.1f}x below the {WARN_SPEEDUP:.0f}x "
            f"expectation (warn-only; see BENCH_pipeline.json)",
            stacklevel=2,
        )


def test_fastpath_500_chunk_run():
    app = get_app("wordcount")
    # 32 MiB of records at 64 KiB chunk payloads ~= 500 pipeline chunks
    data = app.generate(n_bytes=32 * MiB, seed=7)
    engine = BigKernelEngine()
    cfg = EngineConfig(chunk_bytes=64 * 1024, functional=False)
    engine._schedule(app, data, cfg)  # build once so neither timing pays it

    t0 = time.perf_counter()
    slow = engine.run(app, data, cfg.with_(fastpath=False))
    t_des = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = engine.run(app, data, cfg)
    t_fast = time.perf_counter() - t0

    assert fast.sim_time == slow.sim_time  # exactness is non-negotiable
    assert fast.metrics.n_chunks >= 500
    speedup = t_des / t_fast if t_fast > 0 else float("inf")
    _record(
        {
            "name": "bigkernel_500_chunk_run",
            "n_chunks": fast.metrics.n_chunks,
            "des_seconds": t_des,
            "fastpath_seconds": t_fast,
            "speedup": speedup,
            "sim_time": fast.sim_time,
        }
    )
    _warn_if_slow("bigkernel_500_chunk_run", speedup)


def test_sweep_16_points_cached_parallel():
    app = get_app("wordcount")
    data = app.generate(n_bytes=8 * MiB, seed=7)
    engine = BigKernelEngine()
    base = EngineConfig(chunk_bytes=512 * 1024, functional=False)
    RUN_CACHE.clear()

    t0 = time.perf_counter()
    cold = sweep(engine, app, data, base, SWEEP_GRID, jobs=1, cache=False)
    t_serial = time.perf_counter() - t0

    # warm the cache, then measure the repeat sweep (the figure-harness
    # pattern: every artifact re-tunes the same engine/app pairs)
    sweep(engine, app, data, base, SWEEP_GRID, jobs=4, cache=True)
    t0 = time.perf_counter()
    warm = sweep(engine, app, data, base, SWEEP_GRID, jobs=4, cache=True)
    t_cached = time.perf_counter() - t0

    assert len(cold.points) == 16 and len(warm.points) == 16
    assert warm.best.params == cold.best.params
    speedup = t_serial / t_cached if t_cached > 0 else float("inf")
    _record(
        {
            "name": "sweep_16_point_cached",
            "points": len(warm.points),
            "serial_cold_seconds": t_serial,
            "parallel_cached_seconds": t_cached,
            "speedup": speedup,
            "cache_hits": RUN_CACHE.hits,
        }
    )
    _warn_if_slow("sweep_16_point_cached", speedup)
    RUN_CACHE.clear()


def test_des_event_throughput():
    """Raw event rate of the DES core (the ping microbenchmark).

    100 processes x 2000 timeout steps = 200200 events of pure dispatch:
    no pipeline model, so this isolates exactly what the ``sim.core``
    hot-loop optimizations (``__slots__``, inlined run loop, flattened
    Timeout, cached resume callback) bought. Best-of-3 to shave scheduler
    noise.
    """
    from repro.sim.core import Environment

    n_procs, n_steps = 100, 2000

    def ticker(env):
        for _ in range(n_steps):
            yield env.timeout(1)

    best_rate = 0.0
    events = 0
    for _ in range(3):
        env = Environment()
        for _ in range(n_procs):
            env.process(ticker(env))
        t0 = time.perf_counter()
        env.run()
        elapsed = time.perf_counter() - t0
        events = env._eid
        best_rate = max(best_rate, events / elapsed)

    speedup = best_rate / DES_BASELINE_EVENTS_PER_SEC
    _record(
        {
            "name": "des_event_throughput",
            "events": events,
            "events_per_sec": best_rate,
            "baseline_events_per_sec": DES_BASELINE_EVENTS_PER_SEC,
            "speedup_vs_baseline": speedup,
        }
    )
    if speedup < DES_WARN_SPEEDUP:
        warnings.warn(
            f"des_event_throughput: {best_rate / 1e6:.2f}M events/s is "
            f"{speedup:.2f}x the pre-optimization baseline, below the "
            f"{DES_WARN_SPEEDUP:.1f}x expectation (warn-only)",
            stacklevel=2,
        )


def test_des_bound_sweep_process_vs_thread():
    """Thread vs process backend on a purely DES-bound grid.

    Every point runs the pure-Python simulator (``fastpath=False``), so
    the GIL serializes the thread backend while process workers run truly
    concurrently — the process pool should win by ~min(jobs, cores) once
    points dwarf the fork + regeneration overhead. On a single-CPU box
    there is no concurrency to buy and the fork tax makes processes
    *slower*; the expectation is skipped there (recorded either way).
    """
    from repro.bench.sweep import _resolve_backend

    app = get_app("kmeans")
    data = app.generate(n_bytes=32 * MiB, seed=7)
    engine = BigKernelEngine()
    base = EngineConfig(fastpath=False, functional=False)
    grid = {"chunk_bytes": [8 * 1024, 16 * 1024], "num_blocks": [8, 16, 32, 64]}
    n_points = 8

    t0 = time.perf_counter()
    threaded = sweep(engine, app, data, base, grid, jobs=4, backend="thread")
    t_thread = time.perf_counter() - t0

    t0 = time.perf_counter()
    proc = sweep(engine, app, data, base, grid, jobs=4, backend="process")
    t_proc = time.perf_counter() - t0

    # equivalence is a hard assert even though the timing is not
    assert [(p.params, p.sim_time) for p in threaded.points] == [
        (p.params, p.sim_time) for p in proc.points
    ]
    cores = os.cpu_count() or 1
    # what backend="auto" would have chosen for this grid on this box —
    # the dispatch heuristic's verdict belongs next to the timings it is
    # supposed to predict (a 1-core runner records "thread" here, which
    # explains a process_speedup < 1 without flagging a regression)
    auto_backend = _resolve_backend(
        "auto", engine, app, data, base, jobs=4, n_points=n_points
    )
    speedup = t_thread / t_proc if t_proc > 0 else float("inf")
    _record(
        {
            "name": "des_bound_sweep_process_vs_thread",
            "points": len(proc.points),
            "jobs": 4,
            "cpu_count": cores,
            "auto_backend": auto_backend,
            "thread_seconds": t_thread,
            "process_seconds": t_proc,
            "process_speedup": speedup,
            # consumers must gate any speedup expectation on this flag: a
            # process pool cannot beat the GIL without a second core, so
            # on a 1-core runner the ratio is pure fork overhead noise
            "process_timing_meaningful": cores >= 2,
        }
    )
    if cores < 2:
        # a process pool cannot beat the GIL without a second core: the
        # timing expectation is meaningless there, so don't even warn
        return
    if cores >= 4 and speedup < PROCESS_WARN_SPEEDUP:
        warnings.warn(
            f"des_bound_sweep_process_vs_thread: process backend only "
            f"{speedup:.2f}x over threads on {cores} cores, below the "
            f"{PROCESS_WARN_SPEEDUP:.0f}x expectation (warn-only)",
            stacklevel=2,
        )


def test_uvm_comparison():
    """BigKernel vs the unified-memory engine family on the paper's six
    apps: the competitor comparison (``repro bench``).

    Unlike the wall-clock checks above, the *orderings* here are hard
    asserts — they are simulated-time facts, deterministic on any box:
    both prefetched UVM variants beat plain demand paging on every app,
    and BigKernel beats the best UVM variant on most apps (prefetching
    narrows the gap but cannot buy the pipeline's pinned bandwidth or
    transfer-volume reduction).
    """
    from repro.bench.uvm import run_uvm_comparison

    t0 = time.perf_counter()
    comp = run_uvm_comparison()
    elapsed = time.perf_counter() - t0

    for app in comp.apps:
        plain = comp.sim_time(app, "gpu_uvm")
        assert comp.sim_time(app, "uvm_readahead") < plain, app
        assert comp.sim_time(app, "uvm_learned") < plain, app
    wins = sum(
        1
        for app in comp.apps
        if comp.sim_time(app, "bigkernel")
        < comp.sim_time(app, comp.best_uvm(app))
    )
    assert wins >= 4, f"bigkernel only beats the best UVM variant on {wins}/6"

    entry = comp.figure_entry()
    entry["bigkernel_wins"] = wins
    entry["wall_seconds"] = elapsed
    _record(entry)


def test_multigpu_scaling():
    """1→8 GPU scaling sweep per app: the sharded scale-out engine
    (``repro bench --gpus``).

    Every cell runs through the true DES with each shard's trace audited
    by the pipeline invariant battery, every K-GPU merged output is
    cross-checked bit-equal against the single-GPU run (the harness hard
    asserts both), and the closed-form shard model prices every cell.
    The scaling-shape facts are simulated-time facts, deterministic on
    any box, so they are hard asserts too: compute-bound apps gain from
    a second GPU, a shared root complex never beats dedicated links, and
    the analytic predictions stay within the published tolerance.
    """
    from repro.bench.multigpu import run_multigpu_scaling
    from repro.engines.multigpu import MultiGpuBigKernelEngine
    from repro.verify.differential import ANALYTIC_TOL

    t0 = time.perf_counter()
    scaling = run_multigpu_scaling(
        gpu_counts=(1, 2, 4, 8), verify_shards=True, predict=True
    )
    elapsed = time.perf_counter() - t0

    compute_bound = ("kmeans", "wordcount", "opinion", "mastercard")
    for app in compute_bound:
        assert scaling.speedup(app, 2) > 1.0, app
    worst = 0.0
    for app in scaling.apps:
        for n in scaling.gpu_counts:
            worst = max(worst, scaling.prediction_rel_err(app, n))
    assert worst <= ANALYTIC_TOL, (
        f"analytic shard model off by {worst:.2e} somewhere in the sweep"
    )
    # a shared root complex never beats dedicated links (spot-check at 2)
    app0 = scaling.apps[0]
    app_obj = get_app(app0)
    data = app_obj.generate(n_bytes=scaling.data_bytes, seed=scaling.seed)
    cfg = EngineConfig(
        chunk_bytes=max(256 * 1024, scaling.data_bytes // 4)
    )
    shared = MultiGpuBigKernelEngine(2, shared_link=True).run(
        app_obj, data, cfg
    )
    assert shared.sim_time >= scaling.sim_time(app0, 2) * (1 - 1e-12)

    entry = scaling.figure_entry()
    entry["wall_seconds"] = elapsed
    entry["worst_prediction_rel_err"] = worst
    _record(entry)


def test_kernel_exec_throughput():
    """Compiled NumPy backend vs the tree-walking interpreter on the dna
    kernel: same outputs and counters, >= 10x elements/sec expected."""
    import numpy as np

    from repro.kernelc.codegen import KernelInterpreter
    from repro.kernelc.compile import (
        compile_kernel,
        resident_kinds_of,
        vector_fn_names,
    )

    app = get_app("dna")
    data = app.generate(n_bytes=512 * 1024, seed=7)
    n = app.n_units(data)
    kernel = app.kernel()

    ctx_i = app.make_ir_context(data)
    t0 = time.perf_counter()
    interp = KernelInterpreter(kernel, ctx_i)
    interp.run_thread(0, 0, n)
    t_interp = time.perf_counter() - t0

    ctx_c = app.make_ir_context(data)
    compiled = compile_kernel(
        kernel,
        vector_fns=vector_fn_names(ctx_c.device_fns),
        resident_kinds=resident_kinds_of(ctx_c.resident),
    )
    t0 = time.perf_counter()
    run = compiled.run_range(ctx_c, 0, n)
    t_compiled = time.perf_counter() - t0

    # exactness is non-negotiable; only the wall-clock is warn-only
    assert np.array_equal(
        ctx_i.resident["table"], ctx_c.resident["table"]
    )
    assert run.stats.n_ops == interp.stats.n_ops
    assert run.stats.mapped_read_bytes == interp.stats.mapped_read_bytes

    speedup = t_interp / t_compiled if t_compiled > 0 else float("inf")
    _record(
        {
            "name": "kernel_exec_throughput",
            "app": "dna",
            "n_records": n,
            "interp_elements_per_sec": n / t_interp,
            "compiled_elements_per_sec": n / t_compiled,
            "speedup": speedup,
            "interp_seconds": t_interp,
            "compiled_seconds": t_compiled,
        }
    )
    if speedup < 10.0:
        warnings.warn(
            f"kernel_exec_throughput: compiled backend {speedup:.1f}x below "
            f"the 10x expectation (warn-only; see BENCH_pipeline.json)",
            stacklevel=2,
        )


def test_analytic_sweep():
    """Million-point analytic sweep plus a DES spot-check of its optimum.

    The closed-form predictor prices a generated grid of >= 1,000,000
    BigKernel configurations (chunk bytes x blocks x threads x ring
    depth) as pure NumPy array ops; the wall-clock is recorded, then a
    single DES run at the analytic argbest must land within the
    ``verify --analytic`` tolerance (the predictor is machine-exact on
    clean geometries, so this is a hard assert). Finally the hybrid
    sweep mode — rank analytically, DES-verify only the frontier — must
    return the same winner as the pure-DES 16-point sweep.
    """
    from repro.analytic import predict_grid, suggest_grid
    from repro.verify.differential import ANALYTIC_TOL

    app = get_app("wordcount")
    data = app.generate(n_bytes=4 * MiB, seed=7)
    engine = BigKernelEngine()
    base = EngineConfig(functional=False)

    grid = suggest_grid(1_000_000)
    t0 = time.perf_counter()
    gp = predict_grid(app, data, grid, base, engine=engine)
    elapsed = time.perf_counter() - t0
    assert gp.n_points >= 1_000_000

    best_idx = gp.argbest()
    predicted = float(gp.sim_time[best_idx])
    des = engine.run(app, data, gp.config_at(best_idx)).sim_time
    rel_err = abs(predicted - des) / des
    assert rel_err <= ANALYTIC_TOL, (
        f"DES at the analytic argbest: {des} vs predicted {predicted} "
        f"(rel err {rel_err:.2e})"
    )

    hybrid = sweep(
        engine, app, data, base, SWEEP_GRID, mode="hybrid", top_k=4
    )
    pure = sweep(engine, app, data, base, SWEEP_GRID)
    assert hybrid.best.params == pure.best.params
    assert hybrid.best.sim_time == pure.best.sim_time
    assert len(hybrid.points) <= len(pure.points)

    _record(
        {
            "name": "analytic_sweep",
            "app": "wordcount",
            "points": gp.n_points,
            "wall_seconds": elapsed,
            "points_per_sec": gp.n_points / elapsed,
            "best_params": gp.best_params(),
            "predicted_best": predicted,
            "des_at_best": des,
            "rel_err": rel_err,
            "hybrid_points_evaluated": len(hybrid.points),
            "hybrid_matches_des_best": hybrid.best.params == pure.best.params,
        }
    )
    if elapsed > 60.0:
        warnings.warn(
            f"analytic_sweep: {gp.n_points:,} points took {elapsed:.1f}s "
            f"(warn-only; see BENCH_pipeline.json)",
            stacklevel=2,
        )
