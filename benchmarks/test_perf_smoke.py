"""Perf smoke: wall-clock of the analytic fast path vs the DES.

Times (``time.perf_counter``) a ~500-chunk BigKernel run and a 16-point
autotune sweep, fast path + caching against the DES / serial baselines,
and records the measurements to ``BENCH_pipeline.json`` at the repo root.

The speedup threshold is *warn-only*: wall-clock on shared CI boxes is
too noisy for a hard assert, but the recorded JSON makes regressions
visible across commits. Expected on any machine: the analytic pipeline
beats the DES by well over 5x at 500 chunks (it is O(n) arithmetic vs
an event queue), and the cached sweep beats the cold serial sweep by the
cache hit rate.
"""

import json
import time
import warnings
from pathlib import Path

from repro.apps import get_app
from repro.bench.sweep import RUN_CACHE, sweep
from repro.engines import BigKernelEngine, EngineConfig
from repro.units import MiB

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"
WARN_SPEEDUP = 5.0

SWEEP_GRID = {
    "chunk_bytes": [256 * 1024, 512 * 1024, 1 * MiB, 2 * MiB],
    "num_blocks": [8, 16, 32, 64],
}


def _record(entry: dict) -> None:
    entries = []
    if BENCH_FILE.exists():
        entries = json.loads(BENCH_FILE.read_text())
    entries = [e for e in entries if e["name"] != entry["name"]]
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def _warn_if_slow(name: str, speedup: float) -> None:
    if speedup < WARN_SPEEDUP:
        warnings.warn(
            f"{name}: speedup {speedup:.1f}x below the {WARN_SPEEDUP:.0f}x "
            f"expectation (warn-only; see BENCH_pipeline.json)",
            stacklevel=2,
        )


def test_fastpath_500_chunk_run():
    app = get_app("wordcount")
    # 32 MiB of records at 64 KiB chunk payloads ~= 500 pipeline chunks
    data = app.generate(n_bytes=32 * MiB, seed=7)
    engine = BigKernelEngine()
    cfg = EngineConfig(chunk_bytes=64 * 1024, functional=False)
    engine._schedule(app, data, cfg)  # build once so neither timing pays it

    t0 = time.perf_counter()
    slow = engine.run(app, data, cfg.with_(fastpath=False))
    t_des = time.perf_counter() - t0

    t0 = time.perf_counter()
    fast = engine.run(app, data, cfg)
    t_fast = time.perf_counter() - t0

    assert fast.sim_time == slow.sim_time  # exactness is non-negotiable
    assert fast.metrics.n_chunks >= 500
    speedup = t_des / t_fast if t_fast > 0 else float("inf")
    _record(
        {
            "name": "bigkernel_500_chunk_run",
            "n_chunks": fast.metrics.n_chunks,
            "des_seconds": t_des,
            "fastpath_seconds": t_fast,
            "speedup": speedup,
            "sim_time": fast.sim_time,
        }
    )
    _warn_if_slow("bigkernel_500_chunk_run", speedup)


def test_sweep_16_points_cached_parallel():
    app = get_app("wordcount")
    data = app.generate(n_bytes=8 * MiB, seed=7)
    engine = BigKernelEngine()
    base = EngineConfig(chunk_bytes=512 * 1024, functional=False)
    RUN_CACHE.clear()

    t0 = time.perf_counter()
    cold = sweep(engine, app, data, base, SWEEP_GRID, jobs=1, cache=False)
    t_serial = time.perf_counter() - t0

    # warm the cache, then measure the repeat sweep (the figure-harness
    # pattern: every artifact re-tunes the same engine/app pairs)
    sweep(engine, app, data, base, SWEEP_GRID, jobs=4, cache=True)
    t0 = time.perf_counter()
    warm = sweep(engine, app, data, base, SWEEP_GRID, jobs=4, cache=True)
    t_cached = time.perf_counter() - t0

    assert len(cold.points) == 16 and len(warm.points) == 16
    assert warm.best.params == cold.best.params
    speedup = t_serial / t_cached if t_cached > 0 else float("inf")
    _record(
        {
            "name": "sweep_16_point_cached",
            "points": len(warm.points),
            "serial_cold_seconds": t_serial,
            "parallel_cached_seconds": t_cached,
            "speedup": speedup,
            "cache_hits": RUN_CACHE.hits,
        }
    )
    _warn_if_slow("sweep_16_point_cached", speedup)
    RUN_CACHE.clear()
