"""Shared fixtures for the figure/table benchmark harnesses.

Benchmarks run at "full" reproduction scale (32 MiB datasets, 8 MiB chunk
payloads — the paper's sizes scaled by ~200x; all reported effects are
per-byte ratios, which scaling preserves). The expensive apps-x-engines
matrix is computed once per session and shared.
"""

import pytest

from repro.bench import BenchSettings, run_matrix
from repro.engines import EngineConfig
from repro.units import MiB

FULL = BenchSettings(
    data_bytes=32 * MiB,
    seed=7,
    # 2 MiB chunk payloads give every app 15+ pipeline chunks at this
    # dataset size, so steady-state overlap (not pipeline fill) dominates
    config=EngineConfig(chunk_bytes=2 * MiB),
)


@pytest.fixture(scope="session")
def settings():
    return FULL


@pytest.fixture(scope="session")
def matrix(settings):
    return run_matrix(settings)
