"""Fig. 2: the four-stage pipeline's overlap structure.

The paper's Fig. 2 is a schematic of chunks flowing through the stages;
here it is *measured*: the bench runs BigKernel on K-means, prints the
timeline as an ASCII Gantt chart (the terminal rendition of Fig. 2), and
asserts the steady-state overlap properties the schematic depicts.
"""

from repro.apps import get_app
from repro.bench.report import render_gantt
from repro.engines import BigKernelEngine, EngineConfig
from repro.runtime.pipeline import (
    STAGE_ADDR_GEN,
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
)
from repro.units import MiB


def test_fig2_pipeline_overlap(benchmark):
    app = get_app("kmeans")
    data = app.generate(n_bytes=16 * MiB, seed=7)
    cfg = EngineConfig(chunk_bytes=1 * MiB)

    res = benchmark.pedantic(
        lambda: BigKernelEngine().run(app, data, cfg), rounds=1, iterations=1
    )
    trace = res.trace
    assert trace is not None
    print("\nFig. 2 (measured): BigKernel pipeline timeline, K-means\n")
    print(render_gantt(trace, width=76))

    # the heavy stages overlap pairwise in steady state
    pairs = [
        (STAGE_ASSEMBLY, STAGE_COMPUTE),
        (STAGE_TRANSFER, STAGE_COMPUTE),
        (STAGE_ASSEMBLY, STAGE_TRANSFER),
    ]
    for a, b in pairs:
        assert trace.overlap_time(a, b) > 0, (a, b)
    # address generation is so short it may fall entirely into scheduling
    # gaps; either it overlaps something or it is negligible
    ag_overlaps = sum(
        trace.overlap_time(STAGE_ADDR_GEN, other)
        for other in (STAGE_ASSEMBLY, STAGE_TRANSFER, STAGE_COMPUTE)
    )
    assert ag_overlaps > 0 or trace.total_time(STAGE_ADDR_GEN) < 0.05 * res.sim_time

    # the whole run is far shorter than the serialized stage sum
    serial = sum(
        trace.total_time(s)
        for s in (STAGE_ADDR_GEN, STAGE_ASSEMBLY, STAGE_TRANSFER, STAGE_COMPUTE)
    )
    assert res.sim_time < serial * 0.85

    # per chunk, stages run in Fig. 2's order
    for idx in range(res.metrics.n_chunks):
        stage_ivs = {
            iv.label: iv
            for iv in trace.intervals
            if iv.meta.get("chunk") == idx
            and iv.label
            in (STAGE_ADDR_GEN, STAGE_ASSEMBLY, STAGE_TRANSFER, STAGE_COMPUTE)
        }
        order = [STAGE_ADDR_GEN, STAGE_ASSEMBLY, STAGE_TRANSFER, STAGE_COMPUTE]
        for a, b in zip(order, order[1:]):
            if a in stage_ivs and b in stage_ivs:
                assert stage_ivs[a].end <= stage_ivs[b].start + 1e-12
