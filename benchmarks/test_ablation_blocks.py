"""Ablation: active-thread-block buffer allocation (Section IV-D).

The paper allocates buffer sets only for thread blocks that can actually be
resident (``min(numSetBlocks, Rgpu/Rtb)``), so each set can be larger. This
bench shows (i) the active-block computation bounding a huge launch, and
(ii) the memory saved vs naive per-requested-block allocation.
"""

from repro.bench.report import render_table
from repro.hw import GTX680, GpuDevice
from repro.hw.gpu_memory import GpuMemoryAllocator
from repro.hw.pinned import PinnedAllocator
from repro.runtime.buffers import BlockBuffers, BufferConfig
from repro.runtime.scheduler import ThreadLayout, plan_blocks
from repro.units import GiB, MiB


def test_active_block_allocation(benchmark):
    gpu = GpuDevice(GTX680)
    layout = ThreadLayout(compute_threads=256)  # 512 threads per block
    buffers = BufferConfig(
        data_buf_bytes=4 * MiB, addr_buf_entries=64 * 1024, instances=2
    )

    def run():
        plans = {}
        for requested in (8, 64, 1024):
            plan = plan_blocks(gpu, layout, buffers, requested)
            gpu_naive = requested * buffers.gpu_bytes_per_block()
            gpu_active = plan.active_blocks * buffers.gpu_bytes_per_block()
            plans[requested] = (plan.active_blocks, gpu_naive, gpu_active)
        return plans

    plans = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [
            req,
            active,
            f"{naive / MiB:.0f} MiB",
            f"{used / MiB:.0f} MiB",
        ]
        for req, (active, naive, used) in plans.items()
    ]
    print("\n" + render_table(
        ["requested blocks", "active blocks", "naive GPU footprint", "active-only footprint"],
        rows,
        title="Ablation: buffers for active vs requested thread blocks",
    ))
    # 512 threads/block, 2048 threads/SM, 8 SMs -> at most 32 active blocks
    active_1024 = plans[1024][0]
    assert active_1024 == 32
    # naive allocation for 1024 blocks would not even fit the 2 GiB device
    assert plans[1024][1] > GTX680.global_mem_bytes
    assert plans[1024][2] <= GTX680.global_mem_bytes

    # and the active-only allocation genuinely fits through the allocator
    gpu_mem = GpuMemoryAllocator(GTX680.global_mem_bytes)
    pinned = PinnedAllocator(8 * GiB)
    blocks = [BlockBuffers(b, buffers) for b in range(active_1024)]
    for bb in blocks:
        bb.allocate(pinned, gpu_mem)
    assert gpu_mem.used == plans[1024][2]
    for bb in blocks:
        bb.release(pinned, gpu_mem)
