"""Table II: performance improvement from access-pattern recognition.

Shape checks: byte-granular apps (Word Count, MasterCard) benefit most;
Opinion Finder's span-granular addresses benefit least; the indexed
MasterCard variant has no pattern at all (NA)."""

from repro.bench import table2


def test_table2(benchmark, settings):
    t2 = benchmark.pedantic(lambda: table2(settings), rounds=1, iterations=1)
    print("\n" + t2.text)

    rows = t2.rows
    assert rows["mastercard_indexed"]["improvement"] is None  # paper: NA

    wc = rows["wordcount"]["improvement"]
    mca = rows["mastercard"]["improvement"]
    of = rows["opinion"]["improvement"]
    km = rows["kmeans"]["improvement"]
    assert wc is not None and wc > 0.3  # paper: 66%
    assert mca is not None and mca > 0.15  # paper: 57%
    assert km is not None and 0.1 < km < 0.6  # paper: 31%
    assert of is not None and of < 0.15  # paper: 6%
    # byte-granular beats span-granular
    assert wc > of and mca > of
