"""Perf smoke: serving throughput vs the naive one-job-at-a-time loop.

Runs ``repro.bench.serve.run_serve_benchmark`` — a ~60-request
repeat-heavy multi-tenant trace served at three load levels — and records
the measurements as the ``serve_throughput`` entry in
``BENCH_pipeline.json``.

Unlike the other perf-smoke thresholds, the speedup here IS a hard
assert: both sides of the ratio are wall-clock on the same box in the
same process, so machine noise largely divides out, and the mechanism
behind the gap (cache short-circuit + batching + template reuse) is
deterministic. The expected ratio is ~10x or more; the assert keeps a
wide margin at 3x. Bit-equality of every served response against its
one-shot oracle and rejection behavior under overload are exact
properties and assert at full strength.
"""

import json
from pathlib import Path

from repro.bench.serve import run_serve_benchmark

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

HARD_SPEEDUP = 3.0


def _record(entry: dict) -> None:
    entries = []
    if BENCH_FILE.exists():
        entries = json.loads(BENCH_FILE.read_text())
    entries = [e for e in entries if e["name"] != entry["name"]]
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def test_serve_throughput():
    result = run_serve_benchmark()
    _record(result.figure_entry())

    # every completed response bit-equals its fresh one-shot oracle
    assert result.verified > 0
    assert result.verify_failures == 0

    levels = {level.label: level for level in result.levels}
    assert set(levels) == {"saturation", "moderate", "overload"}

    # batched + cached serving clears >= 3x the naive loop's throughput
    assert result.capacity_speedup >= HARD_SPEEDUP, (
        f"serve capacity only {result.capacity_speedup:.2f}x the naive loop"
    )

    # the cache short-circuit and the coalescer both did real work
    saturation = levels["saturation"]
    assert saturation.cached > 0
    assert saturation.engine_runs < result.n_requests

    # latency percentiles were measured at every level
    for level in result.levels:
        assert level.p50 <= level.p99

    # overload sheds load instead of queueing without bound, and what it
    # admits it completes
    overload = levels["overload"]
    assert overload.rejected > 0
    assert overload.cached + overload.coalesced + overload.served > 0
