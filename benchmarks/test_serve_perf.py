"""Perf smoke: serving throughput vs the naive one-job-at-a-time loop.

Runs ``repro.bench.serve.run_serve_benchmark`` — a ~60-request
repeat-heavy multi-tenant trace served at three load levels — and records
the measurements as the ``serve_throughput`` entry in
``BENCH_pipeline.json``.

Unlike the other perf-smoke thresholds, the speedup here IS a hard
assert: both sides of the ratio are wall-clock on the same box in the
same process, so machine noise largely divides out, and the mechanism
behind the gap (cache short-circuit + batching + template reuse) is
deterministic. The expected ratio is ~10x or more; the assert keeps a
wide margin at 3x. Bit-equality of every served response against its
one-shot oracle and rejection behavior under overload are exact
properties and assert at full strength.
"""

import json
from pathlib import Path

from repro.bench.serve import run_serve_benchmark

BENCH_FILE = Path(__file__).resolve().parent.parent / "BENCH_pipeline.json"

HARD_SPEEDUP = 3.0


def _record(entry: dict) -> None:
    entries = []
    if BENCH_FILE.exists():
        entries = json.loads(BENCH_FILE.read_text())
    entries = [e for e in entries if e["name"] != entry["name"]]
    entries.append(entry)
    BENCH_FILE.write_text(json.dumps(entries, indent=2) + "\n")


def test_serve_throughput():
    result = run_serve_benchmark()
    _record(result.figure_entry())

    # every completed response bit-equals its fresh one-shot oracle
    assert result.verified > 0
    assert result.verify_failures == 0

    levels = {level.label: level for level in result.levels}
    assert set(levels) == {"saturation", "moderate", "overload"}

    # batched + cached serving clears >= 3x the naive loop's throughput
    assert result.capacity_speedup >= HARD_SPEEDUP, (
        f"serve capacity only {result.capacity_speedup:.2f}x the naive loop"
    )

    # the cache short-circuit and the coalescer both did real work
    saturation = levels["saturation"]
    assert saturation.cached > 0
    assert saturation.engine_runs < result.n_requests

    # latency percentiles were measured at every level
    for level in result.levels:
        assert level.p50 <= level.p99

    # overload sheds load instead of queueing without bound, and what it
    # admits it completes
    overload = levels["overload"]
    assert overload.rejected > 0
    assert overload.cached + overload.coalesced + overload.served > 0


def test_serve_slo():
    """Predictor-guided EDF vs deadline-blind FIFO under 20x overload.

    Both sides see identical arrivals, identical SLOs and an identically
    pre-calibrated pricer; the only difference is the scheduling policy.
    The p99 ratio is a hard assert: both numbers are wall-clock on the
    same box in the same process, and the mechanism (EDF serves the
    still-meetable work first, admission and shedding keep doomed work
    out of the queue, adaptive windows ship urgent rounds early) is
    deterministic given the trace.
    """
    from repro.bench.serve import run_serve_slo_benchmark

    result = run_serve_slo_benchmark()
    _record(result.figure_entry())

    # every completed response, from both policies, bit-equals its oracle
    assert result.verified > 0
    assert result.verify_failures == 0

    # every shed / predictively rejected response carries the typed error
    assert result.untyped_terminals == 0

    # the cost-aware stack actually engaged: it dropped provably doomed
    # work instead of serving everything late
    assert result.edf.shed + result.edf.rejected > 0

    # >= 2x better p99 over completed responses under 20x overload
    assert result.p99_improvement >= 2.0, (
        f"EDF p99 only {result.p99_improvement:.2f}x better than FIFO"
    )

    # strictly higher SLO attainment than the deadline-blind baseline
    assert result.edf.attainment > result.fifo.attainment, (
        f"EDF attainment {result.edf.attainment:.3f} not above FIFO "
        f"{result.fifo.attainment:.3f}"
    )

    # same denominator on both sides: every request carried a deadline
    assert result.edf.slo_total == result.fifo.slo_total == result.n_requests
