"""Ablation: buffer sizing and ring depth.

The paper configures each implementation with the buffer sizes that give
the best execution time (Section VI) and argues (Section IV-D) that
allocating buffers only for *active* thread blocks lets them be larger,
"potentially improving performance by reducing the number of
synchronization points". This bench sweeps both knobs.
"""

import pytest

from repro.apps import get_app
from repro.bench.report import render_table
from repro.engines import BigKernelEngine, EngineConfig
from repro.units import MiB


@pytest.fixture(scope="module")
def workload():
    app = get_app("kmeans")
    data = app.generate(n_bytes=32 * MiB, seed=7)
    return app, data


def test_chunk_size_sweep(benchmark, workload):
    """Larger chunks amortize per-chunk latency until memory pressure."""
    app, data = workload
    engine = BigKernelEngine()
    sizes = [256 * 1024, 1 * MiB, 4 * MiB, 8 * MiB, 16 * MiB]

    def sweep():
        return {
            s: engine.run(app, data, EngineConfig(chunk_bytes=s)).sim_time
            for s in sizes
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[f"{s // 1024} KiB", f"{t * 1e3:.3f} ms"] for s, t in times.items()]
    print("\n" + render_table(["chunk payload", "sim time"], rows,
                              title="Ablation: chunk-size sweep (K-means)"))
    # the sweep is U-shaped: small chunks pay per-chunk DMA latency and
    # synchronization; huge chunks leave too few chunks to pipeline
    best = min(times, key=times.get)
    assert best not in (sizes[0], sizes[-1])
    assert times[best] < times[256 * 1024]
    assert times[best] < times[16 * MiB]


def test_ring_depth_sweep(benchmark, workload):
    """Deeper rings decouple jittery stages; two instances is the minimum."""
    app, data = workload
    engine = BigKernelEngine()
    depths = [2, 3, 4, 6]

    def sweep():
        return {
            d: engine.run(
                app, data, EngineConfig(chunk_bytes=2 * MiB, ring_depth=d)
            ).sim_time
            for d in depths
        }

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [[d, f"{t * 1e3:.3f} ms"] for d, t in times.items()]
    print("\n" + render_table(["ring depth", "sim time"], rows,
                              title="Ablation: buffer-ring depth (K-means)"))
    # deeper rings never hurt on a homogeneous workload
    assert times[6] <= times[2] * 1.01
