"""Fig. 6: relative completion time of each BigKernel pipeline stage.

Shape checks: address generation is the cheapest stage (paper: "usually
less than 20%"), and computation is the slowest stage for most apps (the
paper's conclusion that the bottleneck migrated from PCIe to the GPU).
"""

from repro.bench import fig6
from repro.runtime.pipeline import FORWARD_STAGES


def test_fig6(benchmark, settings, matrix):
    fig = benchmark.pedantic(
        lambda: fig6(settings, matrix=matrix), rounds=1, iterations=1
    )
    print("\n" + fig.text)

    for app, stages in fig.series.items():
        assert set(stages) == set(FORWARD_STAGES)
        assert max(stages.values()) == 1.0

    # addr-gen cheapest for the patterned apps
    cheap = sum(1 for s in fig.series.values() if s["addr_gen"] <= 0.35)
    assert cheap >= 6

    # computation is the slowest stage for most apps
    dominant = sum(
        1 for s in fig.series.values() if s["compute"] == max(s.values())
    )
    assert dominant >= 4
