"""Table I: application mapped-data characteristics, measured from the
kernels' actual address streams."""

from repro.bench import table1
from repro.bench.paper_data import TABLE1


def test_table1(benchmark, settings):
    t1 = benchmark.pedantic(lambda: table1(settings), rounds=1, iterations=1)
    print("\n" + t1.text)

    for app, row in t1.rows.items():
        paper = TABLE1[app]
        # measured read fraction within 8 points of the paper's
        assert abs(row["read"] - paper["read"]) <= 0.08, app
        # modified column: only K-means writes mapped data
        if app == "kmeans":
            assert 0.04 <= row["modified"] <= 0.16
        else:
            assert row["modified"] == 0.0, app
        assert row["record_type"] == paper["record_type"]
