"""Fig. 4(b): computation/communication ratio of the single-buffer scheme.

Shape checks: Word Count and Opinion Finder are computation-dominant (the
paper's explanation for their small BigKernel gains); the sparse readers
are communication-dominated.
"""

from repro.bench import fig4b
from repro.bench.paper_data import COMPUTATION_DOMINANT


def test_fig4b(benchmark, settings, matrix):
    fig = benchmark.pedantic(
        lambda: fig4b(matrix=matrix), rounds=1, iterations=1
    )
    print("\n" + fig.text)

    for app in COMPUTATION_DOMINANT:
        assert fig.series[app]["computation"] > 0.5, app
    for app in ("kmeans", "netflix", "dna", "mastercard_indexed"):
        assert fig.series[app]["communication"] > 0.5, app
    # MasterCard sits in between: heavy parse compute but full transfers
    assert 0.3 < fig.series["mastercard"]["computation"] < 0.9
