"""Ablation: pattern recognizers on phase-changing address streams.

Compares the paper's one-shot tracker (falls back to raw addresses on the
first mismatch) against the Section IV-A suggested extension (patterns may
change midstream) across streams with increasing numbers of stride phases.
"""

import numpy as np

from repro.bench.report import render_table
from repro.runtime.pattern import (
    ADDRESS_BYTES,
    AdaptiveAddressTracker,
    OnlineAddressTracker,
)


def make_stream(n_phases, phase_len=2048, seed=1):
    rng = np.random.default_rng(seed)
    pieces = []
    for _ in range(n_phases):
        base = int(rng.integers(0, 10**7))
        stride = int(rng.integers(1, 16))
        pieces.append(base + np.arange(phase_len, dtype=np.int64) * stride)
    return np.concatenate(pieces)


def test_tracker_comparison(benchmark):
    def run():
        rows = []
        for phases in (1, 2, 4, 8):
            stream = make_stream(phases)
            raw_bytes = stream.size * ADDRESS_BYTES
            base = OnlineAddressTracker(temp_buffer=16)
            base.feed_many(stream)
            base.finish()
            adaptive = AdaptiveAddressTracker(temp_buffer=16, max_segments=16)
            adaptive.feed_many(stream)
            adaptive.finish()
            np.testing.assert_array_equal(base.addresses(), stream)
            np.testing.assert_array_equal(adaptive.addresses(), stream)
            rows.append(
                (phases, raw_bytes, base.cpu_bytes(), adaptive.cpu_bytes())
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    printable = [
        [
            p,
            f"{raw}",
            f"{b} ({raw / max(b, 1):.0f}x saved)",
            f"{a} ({raw / max(a, 1):.0f}x saved)",
        ]
        for p, raw, b, a in rows
    ]
    print("\n" + render_table(
        ["stride phases", "raw addr bytes", "paper tracker", "adaptive tracker"],
        printable,
        title="Ablation: address-stream compression vs phase changes",
    ))
    for phases, raw, base_b, adaptive_b in rows:
        if phases == 1:
            assert base_b == adaptive_b  # identical on single-pattern streams
        else:
            # the paper's tracker degrades to raw addresses; the adaptive
            # one stays within a few descriptors
            assert base_b == raw
            assert adaptive_b < raw / 10
