"""Online stride-pattern recognition (paper Section IV-A).

Each address-generation thread first collects a handful of addresses in a
small private temp buffer, tries to extract a ``[base, strides...]`` pattern
from them, then *verifies* every subsequently generated address against the
pattern. On success only the tiny descriptor crosses to the CPU instead of
one 4/8-byte address per accessed element — the optimization behind
Table II's results (66% for Word Count, where addresses would otherwise
outweigh the 1-byte data eight-fold).

A pattern is a base address plus a repeating cycle of strides:
``0x100, 0x105, 0x110, 0x115`` -> base ``0x100``, strides ``(5,)``;
K-means' per-record ``x,y,z`` reads give strides ``(8, 8, 32)``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

#: size of one raw address sent to the CPU (64-bit)
ADDRESS_BYTES = 8
#: serialized pattern descriptor: base + count + stride-cycle length + up to
#: a few strides (generous fixed bound)
PATTERN_DESCRIPTOR_BYTES = 64


@dataclass(frozen=True)
class StridePattern:
    """``addresses[i] = base + sum of the first i strides (cycled)``."""

    base: int
    strides: tuple[int, ...]

    def __post_init__(self):
        if not self.strides:
            raise ValueError("a pattern needs at least one stride")

    @property
    def period(self) -> int:
        return len(self.strides)

    @property
    def cycle_span(self) -> int:
        """Bytes advanced per full stride cycle."""
        return int(sum(self.strides))

    def expand(self, n: int) -> np.ndarray:
        """Reproduce the first ``n`` addresses (what the CPU does)."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.int64)
        out = np.empty(n, dtype=np.int64)
        out[0] = self.base
        if n > 1:
            reps = -(-(n - 1) // self.period)  # ceil
            cycle = np.asarray(self.strides, dtype=np.int64)
            diffs = np.tile(cycle, reps)[: n - 1]
            np.cumsum(diffs, out=out[1:])
            out[1:] += self.base
        return out

    def address_at(self, i: int) -> int:
        """The i-th address under the pattern."""
        if i < 0:
            raise ValueError("index must be non-negative")
        full, rem = divmod(i, self.period)
        return self.base + full * self.cycle_span + int(sum(self.strides[:rem]))

    def matches(self, i: int, address: int) -> bool:
        """Online verification of one generated address."""
        return self.address_at(i) == int(address)


class PatternRecognizer:
    """Extracts a stride pattern from a temp buffer of addresses."""

    def __init__(self, max_period: int = 4, min_samples: int = 8):
        if max_period < 1:
            raise ValueError("max_period must be >= 1")
        if min_samples < 4:
            raise ValueError("min_samples must be >= 4")
        self.max_period = max_period
        self.min_samples = min_samples

    def recognize(self, addresses: Sequence[int]) -> Optional[StridePattern]:
        """Smallest-period stride cycle explaining all samples, or None.

        Requires at least ``min_samples`` addresses and at least two full
        cycles of evidence for the candidate period.
        """
        addrs = np.asarray(addresses, dtype=np.int64)
        if addrs.size < self.min_samples:
            return None
        diffs = np.diff(addrs)
        for period in range(1, self.max_period + 1):
            if diffs.size < 2 * period:
                break
            cycle = diffs[:period]
            reps = -(-diffs.size // period)
            predicted = np.tile(cycle, reps)[: diffs.size]
            if np.array_equal(predicted, diffs):
                return StridePattern(int(addrs[0]), tuple(int(s) for s in cycle))
        return None


class OnlineAddressTracker:
    """Per-thread online state machine from Section IV-A.

    Feed generated addresses one at a time. The tracker mirrors the GPU-side
    behaviour: collect a temp buffer, attempt recognition, then verify; on
    any mismatch fall back to raw address emission for the rest of the
    stream ("address generation is started again ... without attempting to
    identify a pattern"). ``cpu_bytes`` reports what crossed to CPU memory.
    """

    COLLECTING = "collecting"
    VERIFYING = "verifying"
    FALLBACK = "fallback"

    def __init__(self, recognizer: Optional[PatternRecognizer] = None, temp_buffer: int = 8):
        self.recognizer = recognizer or PatternRecognizer(min_samples=max(4, temp_buffer))
        self.temp_buffer = temp_buffer
        self.state = self.COLLECTING
        self.pattern: Optional[StridePattern] = None
        self._buffer: list[int] = []
        self._count = 0
        self.raw_emitted: list[int] = []

    @property
    def count(self) -> int:
        """Addresses generated so far."""
        return self._count

    def feed(self, address: int) -> None:
        address = int(address)
        if self.state == self.COLLECTING:
            self._buffer.append(address)
            self._count += 1
            if len(self._buffer) >= self.temp_buffer:
                pat = self.recognizer.recognize(self._buffer)
                if pat is not None:
                    self.pattern = pat
                    self.state = self.VERIFYING
                else:
                    self._fall_back()
        elif self.state == self.VERIFYING:
            assert self.pattern is not None
            if self.pattern.matches(self._count, address):
                self._count += 1
            else:
                # Restart without pattern matching: all addresses so far
                # (reproducible from the failed pattern) plus this one go raw.
                self._buffer = list(self.pattern.expand(self._count)) + [address]
                self._count += 1
                self._fall_back()
        else:  # FALLBACK
            self.raw_emitted.append(address)
            self._count += 1

    def feed_many(self, addresses: Iterable[int]) -> None:
        for a in addresses:
            self.feed(a)

    def finish(self) -> None:
        """End of stream: a still-collecting buffer is flushed raw, a
        verified pattern stays a pattern."""
        if self.state == self.COLLECTING:
            pat = self.recognizer.recognize(self._buffer)
            if pat is not None and len(self._buffer) >= self.recognizer.min_samples:
                self.pattern = pat
                self.state = self.VERIFYING
            else:
                self._fall_back()

    def _fall_back(self) -> None:
        self.raw_emitted.extend(self._buffer)
        self._buffer = []
        self.pattern = None
        self.state = self.FALLBACK

    # -- results ---------------------------------------------------------
    @property
    def has_pattern(self) -> bool:
        return self.state == self.VERIFYING and self.pattern is not None

    def addresses(self) -> np.ndarray:
        """The full reproduced address stream (CPU side)."""
        if self.has_pattern:
            assert self.pattern is not None
            return self.pattern.expand(self._count)
        return np.asarray(self.raw_emitted + self._buffer, dtype=np.int64)

    def cpu_bytes(self) -> int:
        """Bytes shipped to CPU memory for this thread's stream."""
        if self.has_pattern:
            return PATTERN_DESCRIPTOR_BYTES
        return len(self.raw_emitted + self._buffer) * ADDRESS_BYTES


class AdaptiveAddressTracker:
    """Extension from Section IV-A's closing remark: patterns may *change
    midstream*.

    Where :class:`OnlineAddressTracker` abandons pattern mode forever on the
    first mismatch, this tracker closes the current pattern segment and
    starts recognizing a new one, shipping one descriptor per segment. Only
    when the stream fragments into more than ``max_segments`` pieces does it
    fall back to raw addresses — bounding the descriptor overhead the same
    way the original bounds temp-buffer memory.
    """

    def __init__(
        self,
        recognizer: Optional[PatternRecognizer] = None,
        temp_buffer: int = 8,
        max_segments: int = 8,
    ):
        if max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.recognizer = recognizer or PatternRecognizer(min_samples=max(4, temp_buffer))
        self.temp_buffer = temp_buffer
        self.max_segments = max_segments
        #: closed (pattern, count) segments, in stream order
        self.segments: list[tuple[StridePattern, int]] = []
        self._buffer: list[int] = []
        self._current: Optional[StridePattern] = None
        self._current_count = 0
        self.raw_emitted: list[int] = []
        self._raw_mode = False

    @property
    def fell_back(self) -> bool:
        """True once the stream fragmented past ``max_segments``."""
        return self._raw_mode

    def feed(self, address: int) -> None:
        address = int(address)
        if self._raw_mode:
            self.raw_emitted.append(address)
            return
        if self._current is not None:
            if self._current.matches(self._current_count, address):
                self._current_count += 1
                return
            # pattern changed midstream: close the segment, start anew
            self._close_segment()
            if len(self.segments) >= self.max_segments:
                self._go_raw([address])
                return
        self._buffer.append(address)
        if len(self._buffer) >= self.temp_buffer:
            pat = self.recognizer.recognize(self._buffer)
            if pat is not None:
                self._current = pat
                self._current_count = len(self._buffer)
                self._buffer = []
            else:
                self._go_raw([])

    def feed_many(self, addresses) -> None:
        for a in addresses:
            self.feed(a)

    def finish(self) -> None:
        """Close out the stream (flush any open segment / buffer)."""
        if self._raw_mode:
            return
        if self._current is not None:
            self._close_segment()
        if self._buffer:
            pat = self.recognizer.recognize(self._buffer)
            if pat is not None and len(self.segments) < self.max_segments:
                self.segments.append((pat, len(self._buffer)))
                self._buffer = []
            else:
                self._go_raw([])

    def _close_segment(self) -> None:
        assert self._current is not None
        self.segments.append((self._current, self._current_count))
        self._current = None
        self._current_count = 0

    def _go_raw(self, extra: list[int]) -> None:
        """Abandon segmentation: replay everything as raw addresses."""
        self._raw_mode = True
        replay: list[int] = []
        for pat, count in self.segments:
            replay.extend(pat.expand(count).tolist())
        self.segments = []
        replay.extend(self._buffer)
        self._buffer = []
        replay.extend(extra)
        self.raw_emitted = replay

    # -- results ----------------------------------------------------------
    def addresses(self) -> np.ndarray:
        """The full reproduced address stream (CPU side)."""
        if self._raw_mode:
            return np.asarray(self.raw_emitted, dtype=np.int64)
        parts = [pat.expand(count) for pat, count in self.segments]
        if self._current is not None:
            parts.append(self._current.expand(self._current_count))
        if self._buffer:
            parts.append(np.asarray(self._buffer, dtype=np.int64))
        if not parts:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(parts)

    def cpu_bytes(self) -> int:
        """Bytes shipped to CPU memory for this thread's stream."""
        if self._raw_mode:
            return len(self.raw_emitted) * ADDRESS_BYTES
        n_desc = len(self.segments) + (1 if self._current is not None else 0)
        return n_desc * PATTERN_DESCRIPTOR_BYTES + len(self._buffer) * ADDRESS_BYTES
