"""BigKernel runtime: the paper's primary contribution.

Provides the ``streamingMalloc``/``streamingMap`` programming model
(:mod:`~repro.runtime.streaming`), online stride-pattern recognition that
compresses the address stream (:mod:`~repro.runtime.pattern`), the CPU-side
data-assembly stage with its read-locality optimization
(:mod:`~repro.runtime.assembly`), per-thread-block multi-instance buffer
rings (:mod:`~repro.runtime.buffers`), active-thread-block accounting
(:mod:`~repro.runtime.scheduler`), and the 4-stage (6 with mapped writes)
pipeline that runs it all on the simulated timeline
(:mod:`~repro.runtime.pipeline`).
"""

from repro.runtime.pattern import (
    StridePattern,
    PatternRecognizer,
    OnlineAddressTracker,
    AdaptiveAddressTracker,
    PATTERN_DESCRIPTOR_BYTES,
    ADDRESS_BYTES,
)
from repro.runtime.streaming import StreamingArray, StreamingRegistry
from repro.runtime.launcher import bigkernel_launch, KernelApplication, LaunchSpec
from repro.runtime.buffers import BufferRing, BlockBuffers, BufferConfig
from repro.runtime.assembly import (
    gather_values,
    gather_bytes,
    interleave_layout,
    assembly_read_order,
    estimate_assembly_hit_rate,
)
from repro.runtime.scheduler import ThreadLayout, plan_blocks
from repro.runtime.pipeline import (
    ChunkWork,
    PipelineConfig,
    PipelineResult,
    run_pipeline,
    run_pipeline_per_block,
    STAGE_ADDR_GEN,
    STAGE_ASSEMBLY,
    STAGE_TRANSFER,
    STAGE_COMPUTE,
    STAGE_WRITEBACK_XFER,
    STAGE_WRITEBACK_SCATTER,
)

__all__ = [
    "StridePattern",
    "PatternRecognizer",
    "OnlineAddressTracker",
    "AdaptiveAddressTracker",
    "PATTERN_DESCRIPTOR_BYTES",
    "ADDRESS_BYTES",
    "StreamingArray",
    "StreamingRegistry",
    "bigkernel_launch",
    "KernelApplication",
    "LaunchSpec",
    "BufferRing",
    "BlockBuffers",
    "BufferConfig",
    "gather_values",
    "gather_bytes",
    "interleave_layout",
    "assembly_read_order",
    "estimate_assembly_hit_rate",
    "ThreadLayout",
    "plan_blocks",
    "ChunkWork",
    "PipelineConfig",
    "PipelineResult",
    "run_pipeline",
    "run_pipeline_per_block",
    "STAGE_ADDR_GEN",
    "STAGE_ASSEMBLY",
    "STAGE_TRANSFER",
    "STAGE_COMPUTE",
    "STAGE_WRITEBACK_XFER",
    "STAGE_WRITEBACK_SCATTER",
]
