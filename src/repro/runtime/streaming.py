"""The streaming programming model: ``streamingMalloc`` / ``streamingMap``.

This is the API surface the paper's Section III-A example uses: the
programmer declares an arbitrarily large device array and maps it to a host
structure; BigKernel manages chunking, buffering and transfer behind it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import RuntimeConfigError
from repro.kernelc.ir import RecordSchema


@dataclass
class StreamingArray:
    """A pseudo-virtual device array backed by host memory.

    ``host`` is a structured NumPy array whose dtype matches ``schema``.
    ``writable`` marks arrays whose mapped records the kernel modifies
    (K-means' clusterIds), which activates the two write-back pipeline
    stages.
    """

    name: str
    schema: RecordSchema
    host: np.ndarray
    writable: bool = False

    def __post_init__(self):
        if self.host.dtype.itemsize != self.schema.record_size:
            raise RuntimeConfigError(
                f"host dtype itemsize {self.host.dtype.itemsize} != record "
                f"size {self.schema.record_size} for {self.name!r}"
            )

    @property
    def n_records(self) -> int:
        return int(self.host.shape[0])

    @property
    def nbytes(self) -> int:
        return self.n_records * self.schema.record_size

    def byte_view(self) -> np.ndarray:
        """Flat uint8 view for byte-addressed gathering."""
        return self.host.view(np.uint8).reshape(-1)


class StreamingRegistry:
    """Tracks declared streaming arrays for one kernel launch.

    Mirrors the ``streamingMalloc`` (declare size) + ``streamingMap`` (bind
    host memory) call pair from the paper's CPU-side example.
    """

    def __init__(self) -> None:
        self._declared: dict[str, int] = {}
        self._arrays: dict[str, StreamingArray] = {}

    def streaming_malloc(self, name: str, nbytes: int) -> str:
        """Declare a pseudo-virtual device array of ``nbytes``."""
        if nbytes <= 0:
            raise RuntimeConfigError(f"streamingMalloc({name!r}): size must be > 0")
        if name in self._declared:
            raise RuntimeConfigError(f"streamingMalloc({name!r}): already declared")
        self._declared[name] = int(nbytes)
        return name

    def streaming_map(
        self,
        name: str,
        host: np.ndarray,
        schema: RecordSchema,
        writable: bool = False,
    ) -> StreamingArray:
        """Bind host memory to a declared array."""
        if name not in self._declared:
            raise RuntimeConfigError(f"streamingMap({name!r}): not declared")
        arr = StreamingArray(name, schema, host, writable)
        if arr.nbytes > self._declared[name]:
            raise RuntimeConfigError(
                f"streamingMap({name!r}): host data ({arr.nbytes} B) exceeds "
                f"declared size ({self._declared[name]} B)"
            )
        self._arrays[name] = arr
        return arr

    def get(self, name: str) -> StreamingArray:
        try:
            return self._arrays[name]
        except KeyError:
            raise RuntimeConfigError(f"streaming array {name!r} is not mapped")

    @property
    def arrays(self) -> list[StreamingArray]:
        return list(self._arrays.values())

    def total_mapped_bytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())
