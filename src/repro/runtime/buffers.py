"""Per-thread-block buffer sets and the multi-instance ring.

BigKernel needs, per thread block: a pinned CPU-side address buffer, a
pinned CPU-side prefetch buffer, a GPU-side data buffer — and, for kernels
that write mapped data, a GPU-side write buffer plus a pinned CPU-side
write-landing buffer. *Multiple instances* of each exist so stages can
overlap (Section III: "At minimum, two of each are required"); the ring
discipline prevents stage *n* from reusing an instance before its consumer
three stages downstream is done, which the paper implements by barriering
each chunk iteration against iteration ``n - 3``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional

from repro.errors import RuntimeConfigError, SynchronizationError
from repro.hw.gpu_memory import GpuMemoryAllocator
from repro.hw.pinned import PinnedAllocator


@dataclass(frozen=True)
class BufferConfig:
    """Sizing for one thread block's buffer set."""

    #: payload capacity of one data-buffer instance (bytes)
    data_buf_bytes: int
    #: capacity of one address-buffer instance (addresses)
    addr_buf_entries: int
    #: ring depth (instances of each buffer)
    instances: int = 2
    #: bytes per address entry
    address_bytes: int = 8
    #: write buffers only exist when the kernel writes mapped data
    write_buf_bytes: int = 0

    def __post_init__(self):
        if self.data_buf_bytes <= 0:
            raise RuntimeConfigError("data_buf_bytes must be positive")
        if self.addr_buf_entries <= 0:
            raise RuntimeConfigError("addr_buf_entries must be positive")
        if self.instances < 2:
            raise RuntimeConfigError(
                "at least two instances of each buffer are required for "
                "producer/consumer overlap (paper Section III)"
            )

    @property
    def addr_buf_bytes(self) -> int:
        return self.addr_buf_entries * self.address_bytes

    def with_instances(self, instances: int) -> "BufferConfig":
        """Same sizing at a different ring depth (degradation policies
        shrink toward the paper's minimum of two)."""
        return replace(self, instances=instances)

    def pinned_bytes_per_block(self) -> int:
        """CPU-side pinned footprint of one block's buffer set."""
        per_instance = self.addr_buf_bytes + self.data_buf_bytes + self.write_buf_bytes
        return per_instance * self.instances

    def gpu_bytes_per_block(self) -> int:
        """GPU-side footprint of one block's buffer set."""
        per_instance = self.data_buf_bytes + self.write_buf_bytes
        return per_instance * self.instances


class BufferRing:
    """Fixed set of reusable slots with produce/consume hand-off tracking.

    This is the *functional* ring (payload passing and misuse detection);
    the *temporal* backpressure on the simulated timeline is enforced by the
    pipeline's bounded stores and semaphores.
    """

    def __init__(self, instances: int, name: str = "ring"):
        if instances < 2:
            raise RuntimeConfigError("ring needs at least two instances")
        self.name = name
        self.instances = instances
        self._slots: list[Optional[Any]] = [None] * instances
        self._produced = 0
        self._consumed = 0

    @property
    def in_flight(self) -> int:
        return self._produced - self._consumed

    def produce(self, payload: Any) -> int:
        """Fill the next slot; errors if the ring is full (overrun)."""
        if self.in_flight >= self.instances:
            raise SynchronizationError(
                f"{self.name}: produced into a slot not yet consumed "
                f"(in flight {self.in_flight} of {self.instances})"
            )
        slot = self._produced % self.instances
        self._slots[slot] = payload
        self._produced += 1
        return slot

    def consume(self) -> Any:
        """Take the oldest produced payload; errors on consume-before-produce."""
        if self._consumed >= self._produced:
            raise SynchronizationError(f"{self.name}: consume before produce")
        slot = self._consumed % self.instances
        payload = self._slots[slot]
        self._slots[slot] = None
        self._consumed += 1
        return payload


@dataclass
class BlockBuffers:
    """All buffers of one thread block, allocated against real accounting.

    Allocation goes through the pinned and GPU allocators so that
    configurations exceeding the testbed's memory fail the way they would
    on hardware, and so the active-block policy (Section IV-D) has real
    numbers to work with.
    """

    block_id: int
    config: BufferConfig
    addr_ring: BufferRing = field(init=False)
    data_ring: BufferRing = field(init=False)
    write_ring: Optional[BufferRing] = field(init=False)

    def __post_init__(self):
        self.addr_ring = BufferRing(self.config.instances, f"addr[{self.block_id}]")
        self.data_ring = BufferRing(self.config.instances, f"data[{self.block_id}]")
        self.write_ring = (
            BufferRing(self.config.instances, f"write[{self.block_id}]")
            if self.config.write_buf_bytes
            else None
        )
        self._pinned_handles: list = []
        self._gpu_handles: list = []

    def allocate(self, pinned: PinnedAllocator, gpu: GpuMemoryAllocator) -> None:
        """Reserve the pinned and GPU memory this block's set needs."""
        c = self.config
        for i in range(c.instances):
            self._pinned_handles.append(
                pinned.alloc(c.addr_buf_bytes, f"addrBuf[{self.block_id}][{i}]")
            )
            self._pinned_handles.append(
                pinned.alloc(c.data_buf_bytes, f"prefetchBuf[{self.block_id}][{i}]")
            )
            self._gpu_handles.append(
                gpu.alloc(c.data_buf_bytes, f"dataBuf[{self.block_id}][{i}]")
            )
            if c.write_buf_bytes:
                self._pinned_handles.append(
                    pinned.alloc(c.write_buf_bytes, f"writeLanding[{self.block_id}][{i}]")
                )
                self._gpu_handles.append(
                    gpu.alloc(c.write_buf_bytes, f"writeBuf[{self.block_id}][{i}]")
                )

    def release(self, pinned: PinnedAllocator, gpu: GpuMemoryAllocator) -> None:
        """Return everything (used when inactive blocks recycle buffers)."""
        for h in self._pinned_handles:
            pinned.free(h)
        for h in self._gpu_handles:
            gpu.free(h)
        self._pinned_handles.clear()
        self._gpu_handles.clear()
