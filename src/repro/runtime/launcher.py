"""The BigKernel front end: launch an IR kernel over streaming data.

This is the paper's programming model as a single call: write one kernel,
``streamingMalloc``/``streamingMap`` the big structure, and launch —
chunking, buffering, address generation, pattern recognition, transfers
and layout are nobody's problem:

    registry = StreamingRegistry()
    registry.streaming_malloc("d_particles", nbytes)
    registry.streaming_map("d_particles", host_array, schema, writable=True)
    result = bigkernel_launch(kernel, registry, resident=..., params=...)

Everything the engines need — the access profile, the address streams,
the functional semantics — is *derived from the kernel itself*:
:class:`KernelApplication` runs the compiler transformations and measures
a sample execution instead of requiring a hand-written
:class:`~repro.apps.base.Application`. Execution is interpreter-speed, so
this front end targets demo/validation scale; the packaged benchmarks use
vectorized Application kernels for bulk runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application
from repro.engines.base import EngineConfig, RunResult
from repro.engines.bigkernel import BigKernelEngine
from repro.errors import RuntimeConfigError, SlicingError
from repro.kernelc.codegen import ExecutionContext, KernelInterpreter
from repro.kernelc.compile import (
    affine_streams,
    compile_kernel,
    resident_kinds_of,
    try_compile_kernel,
    vector_fn_names,
)
from repro.kernelc.ir import Kernel
from repro.kernelc.slicing import make_addrgen_kernel
from repro.kernelc.validate import validate_kernel
from repro.runtime.streaming import StreamingRegistry

#: records sampled to measure the kernel's access profile
PROFILE_SAMPLE = 32


@dataclass
class LaunchSpec:
    """Optional knobs for :func:`bigkernel_launch`."""

    #: arithmetic weight of one opaque device-function call
    call_ops: float = 20.0
    #: warp-divergence factor (see AccessProfile.gpu_divergence)
    gpu_divergence: float = 4.0
    #: CPU ops per GPU op for the scalar baselines
    cpu_ops_factor: float = 2.0
    #: extract the user-facing output after the run
    make_output: Optional[Callable[[ExecutionContext], Any]] = None


class KernelApplication(Application):
    """An Application derived from a kernel by compilation + measurement."""

    writes_mapped = False

    def __init__(
        self,
        kernel: Kernel,
        registry: StreamingRegistry,
        resident: Optional[dict] = None,
        params: Optional[dict] = None,
        device_fns: Optional[dict] = None,
        spec: Optional[LaunchSpec] = None,
        kernel_exec: str = "auto",
    ):
        validate_kernel(kernel)
        if kernel_exec not in ("auto", "compiled", "interp"):
            raise RuntimeConfigError(
                "kernel_exec must be 'auto', 'compiled', or 'interp'"
            )
        if len(kernel.mapped) != 1:
            raise RuntimeConfigError(
                "the launch front end streams exactly one mapped structure; "
                f"kernel {kernel.name!r} maps {sorted(kernel.mapped)}"
            )
        self.kernel_ir = kernel
        self.registry = registry
        self.resident_init = dict(resident or {})
        self.params_init = dict(params or {})
        self.device_fns = dict(device_fns or {})
        self.spec = spec or LaunchSpec()
        self.kernel_exec = kernel_exec
        # lazy caches: False = not yet resolved (None is a valid verdict)
        self._compiled_main: Any = False
        self._compiled_ag: Any = False
        self._affine: Any = False

        (self.primary_name,) = kernel.mapped
        self.schema = kernel.mapped[self.primary_name]
        array = registry.get(self.primary_name)
        if array.schema.record_size != self.schema.record_size:
            raise RuntimeConfigError(
                "mapped schema in the kernel does not match the streamed array"
            )
        self.name = f"launch_{kernel.name}"
        self.display_name = f"launch:{kernel.name}"
        self.writes_mapped = array.writable

        self._data = AppData(
            app=self.name,
            mapped={self.primary_name: array.host},
            schemas={self.primary_name: self.schema},
            resident={k: v for k, v in self.resident_init.items()},
            params=dict(self.params_init),
            primary=self.primary_name,
        )
        self._measured: Optional[AccessProfile] = None

    # ------------------------------------------------------------- data
    @property
    def data(self) -> AppData:
        """The AppData bound to the streamed host array."""
        return self._data

    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        """The data is supplied by the registry, not generated."""
        return self._data

    # --------------------------------------------------------- execution
    def _make_ctx(self, data: AppData) -> ExecutionContext:
        return ExecutionContext(
            mapped={self.primary_name: data.mapped[self.primary_name]},
            resident=data.resident,
            params=dict(data.params),
            device_fns=self.device_fns,
        )

    def make_state(self, data: AppData) -> Any:
        return {"ctx": self._make_ctx(data)}

    def start_pass(self, data: AppData, state: Any, pass_idx: int) -> None:
        if "pass_idx" in self.kernel_ir.params:
            state["ctx"].params["pass_idx"] = pass_idx

    # ------------------------------------------------- vectorized backend
    def _vector_gate(self) -> tuple:
        return (
            vector_fn_names(self.device_fns),
            resident_kinds_of(self.resident_init),
        )

    def compiled_kernel(self):
        """The vectorized executor for the original-form kernel, or None
        when ``kernel_exec`` (or the vectorizability analysis) routes
        execution to the interpreter. ``kernel_exec="compiled"`` raises
        :class:`~repro.errors.VectorizationError` on unvectorizable IR."""
        if self._compiled_main is False:
            if self.kernel_exec == "interp":
                self._compiled_main = None
            else:
                vfns, rkinds = self._vector_gate()
                if self.kernel_exec == "compiled":
                    self._compiled_main = compile_kernel(
                        self.kernel_ir, vector_fns=vfns, resident_kinds=rkinds
                    )
                else:
                    self._compiled_main = try_compile_kernel(
                        self.kernel_ir, vector_fns=vfns, resident_kinds=rkinds
                    )
        return self._compiled_main

    def _compiled_addrgen(self):
        """Best-effort vectorized executor for the addr-gen slice."""
        if self._compiled_ag is False:
            try:
                ag_kernel = make_addrgen_kernel(self.kernel_ir)
            except SlicingError:
                ag_kernel = None
            if ag_kernel is None or self.kernel_exec == "interp":
                self._compiled_ag = None
            else:
                vfns, rkinds = self._vector_gate()
                self._compiled_ag = try_compile_kernel(
                    ag_kernel, vector_fns=vfns, resident_kinds=rkinds
                )
        return self._compiled_ag

    def _affine_streams(self):
        """Closed-form address streams of the addr-gen slice, if affine."""
        if self._affine is False:
            try:
                ag_kernel = make_addrgen_kernel(self.kernel_ir)
            except SlicingError:
                self._affine = None
            else:
                self._affine = affine_streams(ag_kernel)
        return self._affine

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        compiled = self.compiled_kernel()
        if compiled is not None:
            compiled.run_range(state["ctx"], lo, hi)
            return
        interp = KernelInterpreter(self.kernel_ir, state["ctx"])
        interp.run_thread(0, lo, hi)

    def finalize(self, data: AppData, state: Any) -> Any:
        if self.spec.make_output is not None:
            return self.spec.make_output(state["ctx"])
        return state["ctx"].resident

    def outputs_equal(self, a: Any, b: Any) -> bool:
        if isinstance(a, dict) and isinstance(b, dict):
            return set(a) == set(b) and all(
                np.allclose(a[k], b[k], rtol=0, atol=1e-9) for k in a
            )
        if isinstance(a, np.ndarray):
            return bool(np.allclose(a, b, rtol=0, atol=1e-9))
        return bool(a == b)

    # ---------------------------------------------------- characterization
    def _measure(self) -> AccessProfile:
        """Run the addr-gen slice (or original) over a sample and derive
        the access profile the cost models need."""
        if self._measured is not None:
            return self._measured
        data = self._data
        n = min(PROFILE_SAMPLE, data.n_records)
        # fresh context so measurement does not disturb user state
        ctx = ExecutionContext(
            mapped={self.primary_name: data.mapped[self.primary_name]},
            resident={
                k: np.copy(v) if isinstance(v, np.ndarray) else v
                for k, v in data.resident.items()
            },
            params=dict(data.params),
            device_fns=self.device_fns,
        )
        if "pass_idx" in self.kernel_ir.params:
            ctx.params["pass_idx"] = 0

        try:
            ag_kernel = make_addrgen_kernel(self.kernel_ir)
            sliceable = True
        except SlicingError:
            ag_kernel = None
            sliceable = False

        compiled = self.compiled_kernel()
        if compiled is not None:
            stats = compiled.run_range(ctx, 0, n).stats
        else:
            interp = KernelInterpreter(self.kernel_ir, ctx)
            interp.run_thread(0, 0, n)
            stats = interp.stats

        if ag_kernel is not None:
            compiled_ag = self._compiled_addrgen()
            if compiled_ag is not None:
                records = compiled_ag.run_range(ctx, 0, n).read_records()
            else:
                ag = KernelInterpreter(ag_kernel, ctx)
                ag.run_thread(0, 0, n)
                records = ag.read_addresses
            offsets = np.asarray([r.offset for r in records], dtype=np.int64)
            sizes = np.asarray([r.nbytes for r in records], dtype=np.int64)
            spans = _contiguous_spans(offsets, sizes)
        else:
            spans = max(1, stats.n_mapped_reads // max(n, 1))

        reads_per = stats.n_mapped_reads / max(n, 1)
        read_bytes_per = stats.mapped_read_bytes / max(n, 1)
        writes_per = stats.n_mapped_writes / max(n, 1)
        write_bytes_per = stats.mapped_write_bytes / max(n, 1)
        elem = int(round(read_bytes_per / reads_per)) if reads_per else 1
        gpu_ops = (
            stats.n_ops + stats.n_calls * self.spec.call_ops
        ) / max(n, 1)

        self._measured = AccessProfile(
            record_bytes=self.schema.record_size,
            read_bytes_per_record=read_bytes_per,
            write_bytes_per_record=write_bytes_per,
            reads_per_record=reads_per,
            writes_per_record=writes_per,
            elem_bytes=max(elem, 1),
            gpu_ops_per_record=max(gpu_ops, 1.0),
            cpu_ops_per_record=max(gpu_ops * self.spec.cpu_ops_factor, 1.0),
            resident_bytes_per_record=8.0
            * stats.n_resident_accesses
            / max(n, 1)
            * 0.25,  # mostly cache-resident
            pattern_friendly=True,
            sliceable=sliceable,
            passes=2 if "pass_idx" in self.kernel_ir.params else 1,
            gather_granularity_bytes=float(
                read_bytes_per / spans if spans else elem
            ),
            addresses_per_record=float(spans),
            gpu_divergence=self.spec.gpu_divergence,
        )
        return self._measured

    @property
    def n_passes(self) -> int:  # type: ignore[override]
        return 2 if "pass_idx" in self.kernel_ir.params else 1

    def access_profile(self, data: AppData) -> AccessProfile:
        return self._measure()

    def _stream_offsets(self, data: AppData, lo: int, hi: int,
                        is_write: bool) -> Optional[np.ndarray]:
        """Address stream via the fastest available route: closed-form
        affine expansion, then the compiled addr-gen slice, then None
        (caller falls back to the interpreter)."""
        aff = self._affine_streams()
        if aff is not None:
            stream = aff[1] if is_write else aff[0]
            if stream is not None:
                return stream.expand(lo, hi)
        compiled_ag = self._compiled_addrgen()
        if compiled_ag is not None:
            ctx = self._make_ctx(data)
            if "pass_idx" in self.kernel_ir.params:
                ctx.params["pass_idx"] = 0
            run = compiled_ag.run_range(ctx, lo, hi)
            return run.write_offsets() if is_write else run.read_offsets()
        return None

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        """The sliced kernel's own address stream for ``[lo, hi)`` (or a
        whole-range byte walk for unsliceable kernels)."""
        try:
            ag_kernel = make_addrgen_kernel(self.kernel_ir)
        except SlicingError:
            rec = self.schema.record_size
            return np.arange(lo * rec, hi * rec, dtype=np.int64)
        fast = self._stream_offsets(data, lo, hi, is_write=False)
        if fast is not None:
            return fast
        ctx = self._make_ctx(data)
        if "pass_idx" in self.kernel_ir.params:
            ctx.params["pass_idx"] = 0
        ag = KernelInterpreter(ag_kernel, ctx)
        ag.run_thread(0, lo, hi)
        return np.asarray([r.offset for r in ag.read_addresses], dtype=np.int64)

    def chunk_write_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        try:
            ag_kernel = make_addrgen_kernel(self.kernel_ir)
        except SlicingError:
            return np.empty(0, dtype=np.int64)
        fast = self._stream_offsets(data, lo, hi, is_write=True)
        if fast is not None:
            return fast
        ctx = self._make_ctx(data)
        if "pass_idx" in self.kernel_ir.params:
            ctx.params["pass_idx"] = 0
        ag = KernelInterpreter(ag_kernel, ctx)
        ag.run_thread(0, lo, hi)
        return np.asarray([r.offset for r in ag.write_addresses], dtype=np.int64)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        return self.kernel_ir

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        return self._make_ctx(data)

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> Any:
        if self.spec.make_output is not None:
            return self.spec.make_output(ctx)
        return ctx.resident


def _contiguous_spans(offsets: np.ndarray, sizes: np.ndarray) -> float:
    """Average number of contiguous runs per record in the address stream."""
    if offsets.size == 0:
        return 1.0
    spans = 1
    for i in range(1, offsets.size):
        if offsets[i] != offsets[i - 1] + sizes[i - 1]:
            spans += 1
    return max(spans / max(PROFILE_SAMPLE, 1), 1.0 / PROFILE_SAMPLE)


def bigkernel_launch(
    kernel: Kernel,
    registry: StreamingRegistry,
    resident: Optional[dict] = None,
    params: Optional[dict] = None,
    device_fns: Optional[dict] = None,
    config: Optional[EngineConfig] = None,
    spec: Optional[LaunchSpec] = None,
    engine: Optional[BigKernelEngine] = None,
    verify: bool = False,
) -> RunResult:
    """Compile, characterize, and run ``kernel`` over the mapped data.

    Returns the engine's :class:`RunResult`: functional output (the
    resident state, or ``spec.make_output``'s extraction) plus the
    simulated time, metrics and pipeline trace.

    With ``verify=True`` the launch is double-checked after the run: the
    pipeline timeline goes through the trace invariant checkers and the
    output is diffed against a serial-oracle execution of the same kernel
    (:mod:`repro.verify`); a :class:`~repro.errors.VerificationError` is
    raised on any divergence.
    """
    cfg = config or EngineConfig()
    app = KernelApplication(
        kernel, registry, resident, params, device_fns, spec,
        kernel_exec=cfg.kernel_exec,
    )
    eng = engine or BigKernelEngine()
    if not verify:
        return eng.run(app, app.data, cfg)

    from repro.engines.cpu_serial import CpuSerialEngine
    from repro.errors import VerificationError
    from repro.verify.invariants import verify_run

    # the interpreter mutates the mapped/resident arrays in place, so the
    # oracle must replay from the pre-launch state and the engine's final
    # state must win afterwards
    pre = _snapshot_state(app)
    result = eng.run(app, app.data, cfg)
    verify_run(result, cfg).raise_if_failed()
    post = _snapshot_state(app)
    _restore_state(app, pre)
    oracle = CpuSerialEngine().run(app, app.data, cfg)
    oracle_post = _snapshot_state(app)
    _restore_state(app, post)
    if not app.outputs_equal(oracle.output, result.output):
        raise VerificationError(
            f"launch of {kernel.name!r}: {eng.name} output diverged from "
            f"the serial oracle"
        )
    if not np.array_equal(
        post[0].view(np.uint8), oracle_post[0].view(np.uint8)
    ):
        raise VerificationError(
            f"launch of {kernel.name!r}: mapped write-back diverged from "
            f"the serial oracle"
        )
    return result


def _snapshot_state(app: KernelApplication) -> tuple:
    """Copy of the launch's mutable state (mapped bytes + resident)."""
    data = app.data
    return (
        data.mapped[app.primary_name].copy(),
        {
            k: np.copy(v) if isinstance(v, np.ndarray) else v
            for k, v in data.resident.items()
        },
    )


def _restore_state(app: KernelApplication, snapshot: tuple) -> None:
    data = app.data
    host, resident = snapshot
    np.copyto(data.mapped[app.primary_name], host)
    for k, v in resident.items():
        if isinstance(v, np.ndarray):
            np.copyto(data.resident[k], v)
        else:
            data.resident[k] = v
