"""The BigKernel 4-stage pipeline (6 with mapped writes) as simulated
processes.

Stage processes are connected by bounded stores whose capacity equals the
buffer-ring depth, so backpressure (a stage cannot run ahead of the
consumer of its buffer instances) emerges from the queueing rather than
being hard-coded; the paper implements the same constraint by barriering
address generation of iteration *n* against computation of iteration
*n - 3*.

Resource mapping:

* GPU — capacity-2 resource: one slot for the address-generation warps,
  one for the computation warps (they are different warps of the same
  resident blocks and genuinely overlap).
* CPU — capacity = number of host worker threads dedicated to assembly.
* PCIe — the full-duplex :class:`~repro.hw.pcie.PcieLink`: prefetch-buffer
  DMAs go host-to-device; address traffic and write buffers go
  device-to-host. Each h2d data DMA is chased by a flag write, preserving
  the paper's in-order completion-signalling trick.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.errors import RuntimeConfigError
from repro.faults.inject import FaultInjector, as_injector
from repro.hw.pcie import D2H, H2D, DmaEngine, PcieLink
from repro.hw.spec import HardwareSpec
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.stores import Store
from repro.sim.sync import Flag, Semaphore
from repro.sim.trace import TraceRecorder

STAGE_ADDR_GEN = "addr_gen"
STAGE_ASSEMBLY = "data_assembly"
STAGE_TRANSFER = "data_transfer"
STAGE_COMPUTE = "compute"
STAGE_WRITEBACK_XFER = "write_transfer"
STAGE_WRITEBACK_SCATTER = "write_scatter"

#: the four forward stages, in order (used by figure harnesses)
FORWARD_STAGES = (STAGE_ADDR_GEN, STAGE_ASSEMBLY, STAGE_TRANSFER, STAGE_COMPUTE)


@dataclass(frozen=True)
class ChunkWork:
    """Pre-computed stage costs for one pipeline chunk.

    The engine derives these from counted work (records, bytes, addresses)
    via the hardware cost models; the pipeline is only responsible for the
    *scheduling* — what overlaps with what.
    """

    index: int
    #: GPU time of the address-generation stage
    t_addr_gen: float
    #: device-to-host address traffic (0 when a pattern was recognized)
    addr_bytes_d2h: int
    #: CPU time of the data-assembly stage
    t_assembly: float
    #: prefetch-buffer payload transferred host-to-device
    xfer_bytes: int
    #: GPU time of the computation stage
    t_compute: float
    #: device-to-host write-buffer payload (mapped writes)
    write_bytes: int = 0
    #: CPU time of the write-scatter stage
    t_scatter: float = 0.0
    #: physical DMAs per logical transfer (one per thread-block buffer set)
    xfer_segments: int = 1

    def __post_init__(self):
        for name in ("t_addr_gen", "t_assembly", "t_compute", "t_scatter"):
            if getattr(self, name) < 0:
                raise RuntimeConfigError(f"{name} must be non-negative")
        if self.addr_bytes_d2h < 0 or self.xfer_bytes < 0 or self.write_bytes < 0:
            raise RuntimeConfigError("byte counts must be non-negative")


@dataclass(frozen=True)
class PipelineConfig:
    """Scheduling knobs of one pipeline run."""

    #: buffer instances per set — bounds how far stages may run ahead
    ring_depth: int = 2
    #: host threads servicing assembly/scatter (one per block in the paper;
    #: bounded by hardware threads)
    cpu_workers: int = 1
    #: fixed per-chunk synchronization cost added GPU-side (flag polling +
    #: two bar.red barriers)
    sync_overhead: float = 0.0

    def __post_init__(self):
        if self.ring_depth < 2:
            raise RuntimeConfigError("ring_depth must be >= 2 (paper Section III)")
        if self.cpu_workers < 1:
            raise RuntimeConfigError("cpu_workers must be >= 1")
        if self.sync_overhead < 0:
            raise RuntimeConfigError("sync_overhead must be non-negative")


@dataclass
class PipelineResult:
    """Timeline outcome of one pipeline run.

    ``trace`` is None when the run went through the analytic fast path
    (:mod:`repro.runtime.fastpath`) — the totals are still exact, but no
    per-interval timeline was recorded.
    """

    total_time: float
    n_chunks: int
    trace: Optional[TraceRecorder]
    #: wall-clock-style sum of each stage's busy intervals
    stage_totals: dict = field(default_factory=dict)
    bytes_h2d: int = 0
    bytes_d2h: int = 0

    def stage_fraction(self, stage: str) -> float:
        """Stage total relative to the longest stage (Fig. 6's y-axis)."""
        longest = max(self.stage_totals.values()) if self.stage_totals else 0.0
        if longest <= 0:
            return 0.0
        return self.stage_totals.get(stage, 0.0) / longest


def _spawn_block_processes(
    env: Environment,
    link: PcieLink,
    dma: DmaEngine,
    gpu: Resource,
    cpu: Resource,
    chunks: list[ChunkWork],
    config: PipelineConfig,
    trace: TraceRecorder,
    block: Optional[int] = None,
    faults: Optional[FaultInjector] = None,
) -> None:
    """Wire up one pipeline's stage processes over shared resources.

    ``block`` tags trace records for per-block runs; the aggregate mode
    passes None. ``faults`` is the active fault injector, if any — the
    assembly stage consults it for injected stalls (DMA-level faults are
    handled inside the link itself).
    """
    depth = config.ring_depth
    tag = "" if block is None else f"[{block}]"
    meta = {} if block is None else {"block": block}
    addr_store = Store(env, capacity=depth, name=f"addr_ready{tag}")
    asm_store = Store(env, capacity=depth, name=f"prefetch_ready{tag}")
    comp_store = Store(env, capacity=depth, name=f"data_ready{tag}")
    wb_store = Store(env, capacity=depth, name=f"write_ready{tag}")
    scatter_store = Store(env, capacity=depth, name=f"scatter_ready{tag}")
    # Address buffers of iteration n are reusable once computation of
    # iteration n - depth has consumed its data buffer.
    ring = Semaphore(env, value=depth, name=f"buffer_ring{tag}")

    has_writes = any(c.write_bytes > 0 for c in chunks)

    def addr_gen_proc() -> Generator:
        for chunk in chunks:
            yield ring.acquire()
            with gpu.request() as grant:
                yield grant
                start = env.now
                yield env.timeout(chunk.t_addr_gen)
                trace.record(
                    "gpu", STAGE_ADDR_GEN, start, env.now, chunk=chunk.index, **meta
                )
            if chunk.addr_bytes_d2h > 0:
                # ship the address buffer (or nothing, if a pattern compressed
                # it away — descriptor cost is folded into t_addr_gen)
                done = dma.copy_async(
                    chunk.addr_bytes_d2h,
                    D2H,
                    label=STAGE_ADDR_GEN,
                    chunk=chunk.index,
                    **meta,
                )
                yield done
            yield addr_store.put(chunk)

    def assembly_proc() -> Generator:
        for _ in chunks:
            chunk = yield addr_store.get()
            with cpu.request() as grant:
                yield grant
                start = env.now
                yield env.timeout(chunk.t_assembly)
                stall = (
                    faults.assembly_stall(chunk.index) if faults is not None else 0.0
                )
                if stall > 0:
                    # a stalled worker keeps its CPU slot, so the stall
                    # lengthens the recorded assembly interval
                    faults.note_stall(stall)
                    yield env.timeout(stall)
                    trace.record(
                        "cpu",
                        STAGE_ASSEMBLY,
                        start,
                        env.now,
                        chunk=chunk.index,
                        stall=stall,
                        **meta,
                    )
                else:
                    trace.record(
                        "cpu", STAGE_ASSEMBLY, start, env.now, chunk=chunk.index, **meta
                    )
            yield asm_store.put(chunk)

    def transfer_proc() -> Generator:
        for _ in chunks:
            chunk = yield asm_store.get()
            flag = Flag(env, name=f"data_ready{tag}[{chunk.index}]")
            dma.copy_with_flag(
                chunk.xfer_bytes,
                flag,
                H2D,
                label=STAGE_TRANSFER,
                segments=chunk.xfer_segments,
                chunk=chunk.index,
                **meta,
            )
            yield flag.wait()
            yield comp_store.put(chunk)

    def compute_proc() -> Generator:
        for _ in chunks:
            chunk = yield comp_store.get()
            with gpu.request() as grant:
                yield grant
                start = env.now
                yield env.timeout(chunk.t_compute + config.sync_overhead)
                trace.record(
                    "gpu", STAGE_COMPUTE, start, env.now, chunk=chunk.index, **meta
                )
            ring.release()
            if has_writes:
                yield wb_store.put(chunk)

    def writeback_xfer_proc() -> Generator:
        for _ in chunks:
            chunk = yield wb_store.get()
            if chunk.write_bytes > 0:
                done = dma.copy_async(
                    chunk.write_bytes,
                    D2H,
                    label=STAGE_WRITEBACK_XFER,
                    segments=chunk.xfer_segments,
                    chunk=chunk.index,
                    **meta,
                )
                yield done
            yield scatter_store.put(chunk)

    def scatter_proc() -> Generator:
        for _ in chunks:
            chunk = yield scatter_store.get()
            if chunk.t_scatter > 0:
                with cpu.request() as grant:
                    yield grant
                    start = env.now
                    yield env.timeout(chunk.t_scatter)
                    trace.record(
                        "cpu",
                        STAGE_WRITEBACK_SCATTER,
                        start,
                        env.now,
                        chunk=chunk.index,
                        **meta,
                    )

    env.process(addr_gen_proc())
    env.process(assembly_proc())
    env.process(transfer_proc())
    env.process(compute_proc())
    if has_writes:
        env.process(writeback_xfer_proc())
        env.process(scatter_proc())


def _collect_result(env, link, trace, n_chunks) -> PipelineResult:
    stage_totals = {
        label: trace.total_time(label)
        for label in trace.labels()
        if not label.endswith("-flag")
    }
    return PipelineResult(
        total_time=env.now,
        n_chunks=n_chunks,
        trace=trace,
        stage_totals=stage_totals,
        bytes_h2d=link.bytes_moved[H2D],
        bytes_d2h=link.bytes_moved[D2H],
    )


def _memoized_fastpath(hardware, chunks, config) -> PipelineResult:
    """Replay the closed form from the schedule's memo when possible.

    Keyed on everything the recurrence reads beyond the template itself
    (both frozen dataclasses). Hits return a fresh :class:`PipelineResult`
    shell around the memoized numbers so a caller mutating
    ``stage_totals`` cannot poison later runs.
    """
    from repro.runtime.fastpath import FASTPATH_MEMO_STATS, run_fastpath

    key = (hardware, config)
    hit = chunks.fastpath_memo.get(key)
    if hit is None:
        hit = run_fastpath(hardware, chunks, config)
        chunks.fastpath_memo[key] = hit
        FASTPATH_MEMO_STATS["computed"] += 1
    else:
        FASTPATH_MEMO_STATS["reused"] += 1
    return PipelineResult(
        total_time=hit.total_time,
        n_chunks=hit.n_chunks,
        trace=None,
        stage_totals=dict(hit.stage_totals),
        bytes_h2d=hit.bytes_h2d,
        bytes_d2h=hit.bytes_d2h,
    )


def run_pipeline(
    hardware: HardwareSpec,
    chunks: list[ChunkWork],
    config: PipelineConfig = PipelineConfig(),
    trace: Optional[TraceRecorder] = None,
    verify: bool = False,
    fastpath: Optional[bool] = None,
    faults=None,
) -> PipelineResult:
    """Simulate the full pipeline over ``chunks``; returns the timeline.

    ``chunks`` is the global chunk sequence (the engine aggregates
    homogeneous thread blocks into these); stage durations already account
    for intra-stage parallelism. What this function adds is the *overlap
    structure* and the shared-resource contention.

    With ``verify=True`` the resulting timeline is run through the trace
    invariant checkers (:mod:`repro.verify.invariants`) and a
    :class:`~repro.errors.VerificationError` is raised on any violation.

    ``fastpath`` selects the analytic steady-state engine
    (:mod:`repro.runtime.fastpath`): ``None`` (default) engages it only for
    :class:`~repro.runtime.fastpath.TemplatedChunks` schedules, ``True``
    also tries plain lists, ``False`` forces the DES. The fast path is used
    only when no trace is requested, ``verify`` is off, and
    :func:`~repro.runtime.fastpath.fastpath_supported` confirms the run is
    in its exact-coverage envelope; otherwise the DES runs as before.

    ``faults`` accepts a :class:`~repro.faults.plan.FaultPlan` or a
    :class:`~repro.faults.inject.FaultInjector`; an *active* plan always
    forces the DES (injected faults make the timeline heterogeneous in
    ways the closed form does not cover).
    """
    if not len(chunks):
        raise RuntimeConfigError("pipeline needs at least one chunk")
    from repro.runtime.fastpath import (
        TemplatedChunks,
        fastpath_supported,
        run_fastpath,
    )

    injector = as_injector(faults)
    want_fast = (
        fastpath if fastpath is not None else isinstance(chunks, TemplatedChunks)
    )
    if want_fast and trace is None and not verify:
        ok, _reason = fastpath_supported(chunks, config, faults=injector)
        if ok:
            if isinstance(chunks, TemplatedChunks):
                return _memoized_fastpath(hardware, chunks, config)
            return run_fastpath(hardware, chunks, config)
    if isinstance(chunks, TemplatedChunks):
        chunks = chunks.materialize()
    env = Environment()
    trace = trace if trace is not None else TraceRecorder()
    link = PcieLink(env, hardware.pcie, trace=trace, faults=injector)
    dma = DmaEngine(link)
    gpu = Resource(env, capacity=2, name="gpu")
    cpu = Resource(env, capacity=config.cpu_workers, name="cpu")
    _spawn_block_processes(
        env, link, dma, gpu, cpu, chunks, config, trace, faults=injector
    )
    env.run()
    result = _collect_result(env, link, trace, len(chunks))
    if verify:
        from repro.verify.invariants import verify_pipeline_trace

        verify_pipeline_trace(
            trace,
            gpu_capacity=2,
            cpu_workers=config.cpu_workers,
            ring_depth=config.ring_depth,
            chunks=chunks,
            bytes_h2d=result.bytes_h2d,
            bytes_d2h=result.bytes_d2h,
        ).raise_if_failed()
    return result


def run_pipeline_per_block(
    hardware: HardwareSpec,
    block_chunks: list[list[ChunkWork]],
    config: PipelineConfig = PipelineConfig(),
    cpu_threads: int = 8,
    trace: Optional[TraceRecorder] = None,
    verify: bool = False,
    faults=None,
) -> PipelineResult:
    """High-fidelity mode: one full pipeline per thread block.

    Where :func:`run_pipeline` takes pre-aggregated stage durations (CPU
    work already divided by the worker count, DMA latency folded into
    ``xfer_segments``), this mode gives each block its own stage processes
    and lets the contention *emerge*: all blocks' assembly threads compete
    for ``cpu_threads`` hardware threads, every block's buffer DMAs queue
    individually on the shared FIFO link, and each block's addr-gen/compute
    warps occupy their own GPU slots. Per-block chunk durations must be
    per-block work (undivided).

    The aggregate mode remains the default (it simulates in O(chunks)
    events rather than O(blocks x chunks)); this mode exists to validate
    it — see ``benchmarks/test_ablation_fidelity.py``.
    """
    if not block_chunks or not any(block_chunks):
        raise RuntimeConfigError("per-block pipeline needs at least one chunk")
    injector = as_injector(faults)
    env = Environment()
    trace = trace if trace is not None else TraceRecorder()
    link = PcieLink(env, hardware.pcie, trace=trace, faults=injector)
    dma = DmaEngine(link)
    # each block's addr-gen and compute halves occupy their own warp slots
    gpu = Resource(env, capacity=2 * len(block_chunks), name="gpu")
    cpu = Resource(env, capacity=cpu_threads, name="cpu")
    for b, chunks in enumerate(block_chunks):
        if chunks:
            _spawn_block_processes(
                env, link, dma, gpu, cpu, chunks, config, trace, block=b,
                faults=injector,
            )
    env.run()
    result = _collect_result(
        env, link, trace, sum(len(c) for c in block_chunks)
    )
    if verify:
        from repro.verify.invariants import verify_pipeline_trace

        verify_pipeline_trace(
            trace,
            gpu_capacity=2 * len(block_chunks),
            cpu_workers=cpu_threads,
            ring_depth=config.ring_depth,
            bytes_h2d=result.bytes_h2d,
            bytes_d2h=result.bytes_d2h,
        ).raise_if_failed()
    return result
