"""Thread-block planning: warp-segregated layout and active-block policy.

BigKernel launches twice as many GPU threads as the original program: half
generate addresses, half compute. Warps must be *homogeneous* — an
addr-gen thread and a compute thread in the same warp would diverge on the
role branch of Fig. 3 and serialize both halves. Buffers are allocated only
for thread blocks that can actually be resident (Section IV-D), so they can
be made larger.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RuntimeConfigError
from repro.hw.gpu import BlockResources, GpuDevice
from repro.runtime.buffers import BufferConfig


@dataclass(frozen=True)
class ThreadLayout:
    """Thread organization of one BigKernel thread block."""

    #: computation threads per block in the *original* program
    compute_threads: int
    warp_size: int = 32

    def __post_init__(self):
        if self.compute_threads < 1:
            raise RuntimeConfigError("compute_threads must be >= 1")
        if self.compute_threads % self.warp_size:
            raise RuntimeConfigError(
                f"compute_threads ({self.compute_threads}) must be a multiple "
                f"of the warp size ({self.warp_size}) for warp-homogeneous "
                "role assignment"
            )

    @property
    def addrgen_threads(self) -> int:
        """One addr-gen thread per compute thread (same virtual tid)."""
        return self.compute_threads

    @property
    def total_threads(self) -> int:
        return 2 * self.compute_threads

    @property
    def warps(self) -> int:
        return self.total_threads // self.warp_size

    def role_of_warp(self, warp_index: int) -> str:
        """First half of the block's warps generate addresses, second half
        compute; every warp is role-homogeneous (no divergence)."""
        if not 0 <= warp_index < self.warps:
            raise RuntimeConfigError(f"warp index {warp_index} out of range")
        return "addrgen" if warp_index < self.warps // 2 else "compute"

    def is_divergence_free(self) -> bool:
        """No warp mixes roles (true by construction; kept for tests)."""
        half = self.warps // 2
        return self.warps == 2 * half


@dataclass(frozen=True)
class BlockPlan:
    """Resolved launch plan for one BigKernel run."""

    active_blocks: int
    requested_blocks: int
    layout: ThreadLayout
    buffers: BufferConfig

    @property
    def total_compute_threads(self) -> int:
        return self.active_blocks * self.layout.compute_threads

    @property
    def total_gpu_threads(self) -> int:
        return self.active_blocks * self.layout.total_threads


def plan_blocks(
    gpu: GpuDevice,
    layout: ThreadLayout,
    buffers: BufferConfig,
    num_set_blocks: int,
    shared_mem_per_block: int = 0,
    registers_per_thread: int = 32,
) -> BlockPlan:
    """Compute active blocks: ``min(numSetBlocks, Rgpu / Rtb)``.

    ``Rtb`` (per-block resource needs) is known at compile time; the GPU's
    resources are probed at run time — the paper's hybrid method. Buffers
    are then sized/allocated for *active* blocks only.
    """
    if num_set_blocks < 1:
        raise RuntimeConfigError("num_set_blocks must be >= 1")
    req = BlockResources(
        threads=layout.total_threads,
        shared_mem_bytes=shared_mem_per_block,
        registers_per_thread=registers_per_thread,
    )
    active = gpu.active_blocks(req, num_set_blocks)
    return BlockPlan(
        active_blocks=active,
        requested_blocks=num_set_blocks,
        layout=layout,
        buffers=buffers,
    )
