"""Analytic steady-state fast path for the 4-stage pipeline.

:func:`~repro.runtime.pipeline.run_pipeline` simulates every chunk through
the generator-based discrete-event core, even when the caller only wants
the aggregate :class:`~repro.runtime.pipeline.PipelineResult` totals. For
the dominant case — a run whose chunks are one repeated template (plus a
ragged tail), no mapped writes, no tracing, no verification — the DES is
pure overhead: its timeline is fully determined by a per-chunk recurrence
of ``max``/``+`` over a ``ring_depth`` window, which this module evaluates
directly in O(chunks) arithmetic with no events, generators or heap.

Why the recurrence is *exact* (not an approximation) in the covered case:

* The GPU resource has capacity 2 and exactly two aggregate-mode users
  (the addr-gen process and the compute process), so it never queues.
* The CPU resource is used only by the assembly process (the scatter
  process exists only for mapped writes), so it never queues either.
* The host-to-device DMA channel only ever holds one data+flag pair at a
  time because the transfer process waits for the completion flag before
  issuing the next pair; the device-to-host channel only ever holds one
  address DMA because the addr-gen process awaits each inline. Neither
  FIFO ever has cross-chunk queueing.

What remains is the bounded-ring backpressure (the semaphore and the
capacity-``ring_depth`` stores), which is exactly a per-resource ``max``
against the stage event of chunk ``i - ring_depth``. Every addition the
recurrence performs has the same operands, in the same association order,
as the corresponding DES timeout — the fast path is bit-identical-in-time
to the DES, and the ``fastpath-vs-des`` differential oracle
(:func:`repro.verify.differential.run_fastpath_differential`) holds it to
that claim on every run of ``python -m repro verify --fastpath``.

The fast path declines (and :func:`~repro.runtime.pipeline.run_pipeline`
falls back to the DES) whenever any of its assumptions could be violated:
heterogeneous chunks, mapped writes, an externally supplied trace, a
``verify=`` run, or a ring deeper than the chunk list (a degenerate case
the steady-state framing does not model). :func:`fastpath_supported`
reports the decision and the reason, and ``tests/test_fastpath.py`` pins
the whole fallback matrix.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Iterator, Optional, Sequence

from repro.errors import RuntimeConfigError
from repro.hw.spec import HardwareSpec
from repro.runtime.pipeline import (
    STAGE_ADDR_GEN,
    STAGE_ASSEMBLY,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    ChunkWork,
    PipelineConfig,
    PipelineResult,
)

#: bytes of the trailing completion-flag DMA (DmaEngine.copy_with_flag)
FLAG_BYTES = 4

#: process-wide accounting of the per-template result memo (see
#: ``TemplatedChunks.fastpath_memo``): ``computed`` counts closed-form
#: evaluations, ``reused`` counts runs answered from a prior evaluation of
#: the same schedule under the same hardware/pipeline config
FASTPATH_MEMO_STATS = {"computed": 0, "reused": 0}


class TemplatedChunks(Sequence):
    """Lazy chunk sequence: one template repeated, plus a ragged tail.

    Engines produce this instead of materializing ``passes × n`` identical
    :class:`ChunkWork` objects. Per pass the sequence is ``n_full`` copies
    of ``template`` followed by ``tail`` (when the unit count does not
    divide evenly); global chunk indices run ``0 .. len-1`` across passes.

    The object is the fast path's opt-in signal: ``run_pipeline`` routes a
    ``TemplatedChunks`` schedule to the analytic engine automatically (all
    eligibility gates still apply). Materialization — for the DES fallback
    or for callers that index chunks — is cached.
    """

    def __init__(
        self,
        template: ChunkWork,
        n_full: int,
        tail: Optional[ChunkWork] = None,
        passes: int = 1,
    ):
        if n_full < 0:
            raise RuntimeConfigError("n_full must be non-negative")
        if passes < 1:
            raise RuntimeConfigError("passes must be >= 1")
        if n_full == 0 and tail is None:
            raise RuntimeConfigError("template schedule needs at least one chunk")
        self.template = replace(template, index=0)
        self.tail = replace(tail, index=0) if tail is not None else None
        self.n_full = n_full
        self.passes = passes
        self._materialized: Optional[list[ChunkWork]] = None
        #: closed-form results keyed on ``(hardware, pipeline config)``.
        #: Engines memoize whole schedules, so one TemplatedChunks instance
        #: is replayed across repeated runs (sweep plateaus, the serve hot
        #: loop); caching the recurrence's outcome here makes the repeat
        #: O(1) instead of O(chunks). Safe because the fast path is only
        #: entered fault-free/trace-free, where the result is a pure
        #: function of (template, hardware, config).
        self.fastpath_memo: dict = {}

    @property
    def per_pass(self) -> int:
        return self.n_full + (1 if self.tail is not None else 0)

    def __len__(self) -> int:
        return self.passes * self.per_pass

    def kind_at(self, i: int) -> ChunkWork:
        """The (index-0) template or tail this position follows."""
        if self.tail is not None and i % self.per_pass == self.per_pass - 1:
            return self.tail
        return self.template

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self[j] for j in range(*i.indices(len(self)))]
        n = len(self)
        if i < 0:
            i += n
        if not 0 <= i < n:
            raise IndexError(i)
        return replace(self.kind_at(i), index=i)

    def __iter__(self) -> Iterator[ChunkWork]:
        return iter(self.materialize())

    def materialize(self) -> list[ChunkWork]:
        """The equivalent eager chunk list (cached)."""
        if self._materialized is None:
            self._materialized = [
                replace(self.kind_at(i), index=i) for i in range(len(self))
            ]
        return self._materialized

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TemplatedChunks(n_full={self.n_full}, tail="
            f"{'yes' if self.tail else 'no'}, passes={self.passes})"
        )


def template_of(
    chunks: Sequence[ChunkWork],
) -> Optional[tuple[ChunkWork, int, Optional[ChunkWork], int]]:
    """``(template, n_full_per_pass, tail, passes)`` of a chunk sequence.

    A :class:`TemplatedChunks` yields its own structure; a plain list is
    recognized when every chunk equals the first (ignoring ``index``)
    except possibly the last (the ragged tail). Anything else —
    heterogeneous schedules — returns None, routing the run to the DES.
    """
    if isinstance(chunks, TemplatedChunks):
        return chunks.template, chunks.n_full, chunks.tail, chunks.passes
    lst = list(chunks)
    if not lst:
        return None
    base = replace(lst[0], index=0)
    for c in lst[1:-1]:
        if replace(c, index=0) != base:
            return None
    if len(lst) == 1:
        return base, 1, None, 1
    last = replace(lst[-1], index=0)
    if last == base:
        return base, len(lst), None, 1
    return base, len(lst) - 1, last, 1


def fastpath_supported(
    chunks: Sequence[ChunkWork], config: PipelineConfig, faults=None
) -> tuple[bool, str]:
    """Can the analytic engine reproduce the DES exactly for this run?

    Returns ``(supported, reason)``; the reason names the first failed
    gate (``"ok"`` when supported). Gates, in order:

    * ``empty`` — no chunks at all;
    * ``active-fault-plan`` — a fault plan is injecting something:
      degraded bandwidth, retried DMAs and stalls make the timeline
      heterogeneous in ways the closed form does not model, so the DES is
      authoritative under injection;
    * ``heterogeneous-chunks`` — the schedule is not template(+tail);
    * ``mapped-writes`` — any chunk carries write-back work (stages 5–6
      add CPU and d2h contention the closed form does not cover);
    * ``ring-deeper-than-run`` — ``ring_depth > n_chunks``: the ring
      never binds and the steady-state framing is degenerate; the DES is
      authoritative there.
    """
    n = len(chunks)
    if n == 0:
        return False, "empty"
    if faults is not None:
        from repro.faults.inject import as_injector

        injector = as_injector(faults)
        if injector is not None and injector.active:
            return False, "active-fault-plan"
    tpl = template_of(chunks)
    if tpl is None:
        return False, "heterogeneous-chunks"
    template, _, tail, _ = tpl
    kinds = (template,) if tail is None else (template, tail)
    if any(k.write_bytes > 0 or k.t_scatter > 0 for k in kinds):
        return False, "mapped-writes"
    if config.ring_depth > n:
        return False, "ring-deeper-than-run"
    return True, "ok"


def run_fastpath(
    hardware: HardwareSpec,
    chunks: Sequence[ChunkWork],
    config: PipelineConfig = PipelineConfig(),
) -> PipelineResult:
    """Evaluate the pipeline timeline analytically (no DES).

    Callers should gate on :func:`fastpath_supported`;
    :func:`~repro.runtime.pipeline.run_pipeline` does so automatically.
    Returns a :class:`PipelineResult` whose ``total_time``,
    ``stage_totals`` and byte counters are bit-identical to the DES's;
    ``trace`` is None (tracing is precisely the work being skipped).
    """
    ok, reason = fastpath_supported(chunks, config)
    if not ok:
        raise RuntimeConfigError(f"fast path does not cover this run: {reason}")
    template, n_full, tail, passes = template_of(chunks)
    n = len(chunks)
    depth = config.ring_depth
    pcie = hardware.pcie
    per_pass = n_full + (1 if tail is not None else 0)

    # Per-kind durations, computed once: index 0 = template, 1 = tail.
    kinds = [template] if tail is None else [template, tail]
    t_ag = [k.t_addr_gen for k in kinds]
    addr_bytes = [k.addr_bytes_d2h for k in kinds]
    d_addr = [
        pcie.transfer_time(k.addr_bytes_d2h, pinned=True) if k.addr_bytes_d2h > 0
        else 0.0
        for k in kinds
    ]
    t_asm = [k.t_assembly for k in kinds]
    xfer_bytes = [k.xfer_bytes for k in kinds]
    t_data = [
        pcie.transfer_time(k.xfer_bytes, pinned=True, segments=k.xfer_segments)
        for k in kinds
    ]
    t_flag = pcie.transfer_time(FLAG_BYTES, pinned=True)
    # the DES computes the compute timeout as one pre-added operand
    t_comp = [k.t_compute + config.sync_overhead for k in kinds]

    # Per-chunk stage events the window lookback needs (chunk i consults
    # chunk i - depth). Scalars carry the previous chunk's value.
    asm_get = [0.0] * n
    xfer_get = [0.0] * n
    comp_get = [0.0] * n
    comp_end = [0.0] * n
    ag_done = asm_done = xfer_done = comp_prev = 0.0

    addr_total = asm_total = xfer_total = comp_total = 0.0
    h2d = d2h = 0

    has_tail = tail is not None
    for i in range(n):
        k = 1 if has_tail and i % per_pass == per_pass - 1 else 0

        # -- stage 1: address generation (+ inline address DMA) ----------
        ring_ready = comp_end[i - depth] if i >= depth else 0.0
        ag_start = ag_done if ag_done >= ring_ready else ring_ready
        ag_end = ag_start + t_ag[k]
        addr_total += ag_end - ag_start
        if addr_bytes[k] > 0:
            dma_end = ag_end + d_addr[k]
            addr_total += dma_end - ag_end
            d2h += addr_bytes[k]
        else:
            dma_end = ag_end
        slot = asm_get[i - depth] if i >= depth else 0.0
        ag_done = dma_end if dma_end >= slot else slot

        # -- stage 2: data assembly --------------------------------------
        g = asm_done if asm_done >= ag_done else ag_done
        asm_get[i] = g
        asm_end = g + t_asm[k]
        asm_total += asm_end - g
        slot = xfer_get[i - depth] if i >= depth else 0.0
        asm_done = asm_end if asm_end >= slot else slot

        # -- stage 3: prefetch transfer + completion flag ----------------
        g = xfer_done if xfer_done >= asm_done else asm_done
        xfer_get[i] = g
        data_end = g + t_data[k]
        xfer_total += data_end - g
        flag_end = data_end + t_flag
        h2d += xfer_bytes[k] + FLAG_BYTES
        slot = comp_get[i - depth] if i >= depth else 0.0
        xfer_done = flag_end if flag_end >= slot else slot

        # -- stage 4: computation (+ ring release) -----------------------
        g = comp_prev if comp_prev >= xfer_done else xfer_done
        comp_get[i] = g
        ce = g + t_comp[k]
        comp_total += ce - g
        comp_end[i] = ce
        comp_prev = ce

    return PipelineResult(
        total_time=comp_prev,
        n_chunks=n,
        trace=None,
        stage_totals={
            STAGE_ADDR_GEN: addr_total,
            STAGE_ASSEMBLY: asm_total,
            STAGE_TRANSFER: xfer_total,
            STAGE_COMPUTE: comp_total,
        },
        bytes_h2d=h2d,
        bytes_d2h=d2h,
    )
