"""Sharded multi-GPU pipeline execution on one simulated timeline.

:func:`run_pipeline_sharded` wires K per-shard 4/6-stage pipelines into a
single :class:`~repro.sim.core.Environment` so cross-shard contention
*emerges* from the event queue instead of being asserted:

* every shard gets its own GPU resource (capacity 2: addr-gen + compute
  warps) and its own CPU assembly pool, exactly as the single-GPU
  pipeline wires them;
* with ``shared_link=True`` all shards' DMAs queue on **one**
  :class:`~repro.hw.pcie.PcieLink` — the FIFO grant queue per direction
  is the root-complex port, so transfers of different shards serialize
  the way the SUMMA D2H serial-collection bottleneck does. Dedicated
  links give each shard a private queue (dual-x16 style boards).

Because ``copy_with_flag`` enqueues a chunk's data DMA and its flag
write in the caller's step, the paper's in-order completion-signalling
trick survives link sharing: another shard's transfer may slot between
two *chunks*, never between a chunk and its flag.

Each shard's stage records land in that shard's own
:class:`~repro.sim.trace.TraceRecorder` (dispatched on the ``block``
meta the stage processes and the DMA requests both carry), so the
standard invariant checkers can audit each shard's pipeline — capacity,
ordering, backpressure, byte conservation — independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import RuntimeConfigError
from repro.hw.pcie import D2H, H2D, DmaEngine, PcieLink
from repro.hw.spec import HardwareSpec
from repro.runtime.pipeline import (
    ChunkWork,
    PipelineConfig,
    PipelineResult,
    _spawn_block_processes,
)
from repro.sim.core import Environment
from repro.sim.resources import Resource
from repro.sim.trace import TraceRecorder


class ShardTraceRouter:
    """Trace sink dispatching records to per-shard recorders.

    The stage processes tag every record (and every DMA request's meta)
    with ``block=<shard>``; the router forwards each interval to that
    shard's :class:`TraceRecorder` so per-shard invariant checking sees
    exactly one pipeline per trace.
    """

    def __init__(self, shard_traces: list[TraceRecorder]):
        self._shards = shard_traces

    def record(self, track, label, start, end, **meta):
        shard = meta.get("block")
        if shard is None or not 0 <= shard < len(self._shards):
            raise RuntimeConfigError(
                f"sharded trace record without a shard tag: {track}/{label}"
            )
        return self._shards[shard].record(track, label, start, end, **meta)


@dataclass
class ShardedPipelineResult:
    """Outcome of one K-shard pipeline run on the combined timeline."""

    #: end of the combined timeline (slowest shard's finish)
    total_time: float
    #: per-shard results, each carrying that shard's own trace
    shards: list[PipelineResult] = field(default_factory=list)

    @property
    def n_chunks(self) -> int:
        return sum(s.n_chunks for s in self.shards)

    @property
    def bytes_h2d(self) -> int:
        return sum(s.bytes_h2d for s in self.shards)

    @property
    def bytes_d2h(self) -> int:
        return sum(s.bytes_d2h for s in self.shards)

    def stage_totals(self) -> dict:
        totals: dict = {}
        for s in self.shards:
            for k, v in s.stage_totals.items():
                totals[k] = totals.get(k, 0.0) + v
        return totals


def _trace_bytes(trace: TraceRecorder, track: str) -> int:
    return sum(int(iv.meta.get("nbytes", 0)) for iv in trace.by_track(track))


def run_pipeline_sharded(
    hardware: HardwareSpec,
    shard_chunks: list[list[ChunkWork]],
    shard_configs: list[PipelineConfig],
    shared_link: bool = False,
) -> ShardedPipelineResult:
    """Simulate K per-shard pipelines contending on the host fabric.

    ``shard_chunks[g]`` is shard ``g``'s chunk sequence (templated
    schedules are materialized); ``shard_configs[g]`` its scheduling
    knobs. ``shared_link`` routes every shard's DMAs through one PCIe
    root-complex port; otherwise each shard gets a dedicated link.

    NUMA/memory-bandwidth contention is *not* modeled here — it is a
    static derating of each shard's assembly costs (the engine prices
    shard chunks against :func:`repro.hw.topology.shard_mem_bandwidth`),
    which keeps the DES event count linear in chunks, not shards².
    """
    if not shard_chunks or not all(len(c) for c in shard_chunks):
        raise RuntimeConfigError("each shard needs at least one chunk")
    if len(shard_chunks) != len(shard_configs):
        raise RuntimeConfigError("one PipelineConfig per shard required")
    from repro.runtime.fastpath import TemplatedChunks

    shard_chunks = [
        c.materialize() if isinstance(c, TemplatedChunks) else c
        for c in shard_chunks
    ]
    env = Environment()
    traces = [TraceRecorder() for _ in shard_chunks]
    router = ShardTraceRouter(traces)

    if shared_link:
        link = PcieLink(env, hardware.pcie, trace=router)
        links = [link] * len(shard_chunks)
        dmas = [DmaEngine(link)] * len(shard_chunks)
    else:
        links = [
            PcieLink(env, hardware.pcie, trace=router) for _ in shard_chunks
        ]
        dmas = [DmaEngine(lk) for lk in links]

    for g, (chunks, cfg) in enumerate(zip(shard_chunks, shard_configs)):
        gpu = Resource(env, capacity=2, name=f"gpu{g}")
        cpu = Resource(env, capacity=cfg.cpu_workers, name=f"cpu{g}")
        _spawn_block_processes(
            env, links[g], dmas[g], gpu, cpu, chunks, cfg, router, block=g
        )
    env.run()

    shards = []
    for g, (chunks, trace) in enumerate(zip(shard_chunks, traces)):
        stage_totals = {
            label: trace.total_time(label)
            for label in trace.labels()
            if not label.endswith("-flag")
        }
        shards.append(
            PipelineResult(
                total_time=max((iv.end for iv in trace), default=0.0),
                n_chunks=len(chunks),
                trace=trace,
                stage_totals=stage_totals,
                bytes_h2d=_trace_bytes(trace, f"pcie-{H2D}"),
                bytes_d2h=_trace_bytes(trace, f"pcie-{D2H}"),
            )
        )
    # the link counters must agree with the per-shard trace sums — a
    # routing bug would silently mis-attribute bytes otherwise
    moved_h2d = sum(lk.bytes_moved[H2D] for lk in set(links))
    moved_d2h = sum(lk.bytes_moved[D2H] for lk in set(links))
    got_h2d = sum(s.bytes_h2d for s in shards)
    got_d2h = sum(s.bytes_d2h for s in shards)
    if (moved_h2d, moved_d2h) != (got_h2d, got_d2h):
        raise RuntimeConfigError(
            f"shard byte attribution mismatch: link moved "
            f"({moved_h2d}, {moved_d2h}) vs shard traces ({got_h2d}, {got_d2h})"
        )
    return ShardedPipelineResult(total_time=env.now, shards=shards)
