"""The CPU-side data-assembly stage (pipeline stage 2).

Gathers the bytes named by the address stream into the pinned prefetch
buffer, laid out in GPU access order so that, once transferred, consecutive
threads' simultaneous reads land in adjacent slots (coalesced).

The locality optimization (Section IV-B): when a pattern describes each GPU
thread's accesses, read the *source* per-thread-contiguously (one thread's
whole range at a time, which is nearly sequential in host memory) while
still *storing* in GPU access order. Reads dominate assembly cost, so
reordering only them captures most of the cache benefit.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import RuntimeConfigError
from repro.hw.cache import CacheSim, analytic_hit_rate
from repro.hw.spec import CpuSpec
from repro.kernelc.codegen import AddressRecord


def gather_values(byte_view: np.ndarray, addresses: Sequence[AddressRecord]) -> list:
    """Typed gather for interpreter-scale runs (one value per address)."""
    out = []
    for rec in addresses:
        raw = byte_view[rec.offset : rec.offset + rec.nbytes]
        if raw.size != rec.nbytes:
            raise RuntimeConfigError(
                f"address [{rec.offset}, {rec.offset + rec.nbytes}) outside "
                f"the {byte_view.size}-byte mapped array"
            )
        out.append(raw.view(rec.dtype)[0])
    return out


def _gather_bytes_reference(
    byte_view: np.ndarray, offsets: np.ndarray, elem_bytes: int
) -> np.ndarray:
    """Reference implementation of :func:`gather_bytes` (full index-matrix
    build). Kept as the equivalence oracle for the column-fill version —
    see ``tests/test_runtime_assembly.py``."""
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.size == 0:
        return np.empty(0, dtype=np.uint8)
    if offsets.min() < 0 or offsets.max() + elem_bytes > byte_view.size:
        raise RuntimeConfigError("gather offsets outside the mapped array")
    # index matrix: offsets[:, None] + arange(elem_bytes)
    idx = offsets[:, None] + np.arange(elem_bytes, dtype=np.int64)[None, :]
    return byte_view[idx.reshape(-1)]


def gather_bytes(
    byte_view: np.ndarray, offsets: np.ndarray, elem_bytes: int
) -> np.ndarray:
    """Vectorized gather of fixed-size elements into a contiguous buffer.

    Returns ``len(offsets) * elem_bytes`` bytes in the order given — i.e.
    GPU access order when ``offsets`` is the (interleaved) access stream.

    Fills the output a byte-column at a time (``elem_bytes`` fancy gathers
    of ``len(offsets)`` indices each), so peak index scratch is one int64
    per offset instead of the ``len(offsets) x elem_bytes`` int64 matrix
    the reference builds — 8 x ``elem_bytes`` bytes of traffic per gathered
    byte, gone.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    if offsets.size == 0:
        return np.empty(0, dtype=np.uint8)
    if offsets.min() < 0 or offsets.max() + elem_bytes > byte_view.size:
        raise RuntimeConfigError("gather offsets outside the mapped array")
    if elem_bytes == 1:
        return byte_view[offsets]
    out = np.empty((offsets.size, elem_bytes), dtype=np.uint8)
    for j in range(elem_bytes):
        out[:, j] = byte_view[offsets + j]
    return out.reshape(-1)


def _interleave_layout_loop(
    per_thread_offsets: Sequence[np.ndarray],
) -> np.ndarray:
    """Reference implementation of :func:`interleave_layout` (pure Python
    step loop). Kept as the equivalence oracle for the vectorized version —
    see ``tests/test_fastpath.py``."""
    streams = [np.asarray(s, dtype=np.int64) for s in per_thread_offsets]
    if not streams:
        return np.empty(0, dtype=np.int64)
    maxlen = max(s.size for s in streams)
    out: list[int] = []
    for step in range(maxlen):
        for s in streams:
            if step < s.size:
                out.append(int(s[step]))
    return np.asarray(out, dtype=np.int64)


def interleave_layout(
    per_thread_offsets: Sequence[np.ndarray],
) -> np.ndarray:
    """GPU access order over per-thread address streams.

    At each time step every computation thread pops its next element, so
    the prefetch buffer stores step 0 of all threads, then step 1, etc.
    Threads with exhausted streams simply drop out (ragged tails allowed).

    Vectorized: element ``(step, thread)`` sorts by ``step`` first, then
    thread index — one stable argsort over the concatenated streams
    replaces the per-step Python loop.
    """
    streams = [np.asarray(s, dtype=np.int64) for s in per_thread_offsets]
    if not streams:
        return np.empty(0, dtype=np.int64)
    lens = np.array([s.size for s in streams], dtype=np.int64)
    total = int(lens.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    if lens.min() == lens.max():
        # equal-length fast case: transpose does the interleave directly
        return np.stack(streams, axis=0).T.reshape(-1)
    values = np.concatenate(streams)
    # per-element step index: position within its own stream
    starts = np.cumsum(lens) - lens
    steps = np.arange(total, dtype=np.int64) - np.repeat(starts, lens)
    # sort by step, ties broken by thread order = concatenation order
    # (kind='stable' keeps the tie-break exact)
    order = np.argsort(steps, kind="stable")
    return values[order]


def assembly_read_order(
    per_thread_offsets: Sequence[np.ndarray], locality_opt: bool
) -> np.ndarray:
    """The order in which the CPU *reads* source data during assembly.

    With the optimization: whole threads at a time (near-sequential reads);
    without: GPU access order (interleaved across threads, poor locality
    when per-thread data is contiguous).
    """
    if locality_opt:
        streams = [np.asarray(s, dtype=np.int64) for s in per_thread_offsets]
        if not streams:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(streams)
    return interleave_layout(per_thread_offsets)


def measure_assembly_hit_rate(
    read_order: np.ndarray,
    elem_bytes: int,
    cpu: CpuSpec,
    sample: int = 4096,
) -> float:
    """Exact (sampled) hit rate of the assembly read stream via CacheSim."""
    order = np.asarray(read_order, dtype=np.int64)
    if order.size == 0:
        return 1.0
    if order.size > sample:
        order = order[:sample]
    ways = 8
    line = cpu.cache_line
    capacity = cpu.cache_bytes // (line * ways) * (line * ways)
    sim = CacheSim(capacity=capacity, line=line, ways=ways)
    return sim.run_trace(order, elem_bytes=elem_bytes)


def estimate_assembly_hit_rate(
    elem_bytes: int,
    record_bytes: int,
    threads: int,
    chunk_bytes: int,
    cpu: CpuSpec,
    locality_opt: bool,
    reads_per_record: float = 1.0,
) -> float:
    """Analytic hit rate used by the engine-scale cost model.

    With the locality optimization the read stream walks each thread's slab
    record by record: the lines a record spans are fetched once and all
    ``reads_per_record`` accesses share them, so the miss count per record
    is ``record_bytes / cache_line`` (at most one per access). Without it,
    consecutive reads jump between threads' slabs (~``chunk/threads``
    apart): each read opens its own line unless the whole chunk fits in
    cache.
    """
    if reads_per_record <= 0:
        return 1.0
    misses_per_record = min(
        float(reads_per_record), max(record_bytes / cpu.cache_line, 0.0)
    )
    seq_hit = max(0.0, 1.0 - misses_per_record / reads_per_record)
    if locality_opt:
        return seq_hit
    # GPU-access order interleaves the threads' streams round robin. Each
    # stream is itself sequential, so the live working set is one cache
    # line per stream: when that fits the cache the reads still mostly
    # hit, just with degraded hardware prefetching; past it, the streams
    # evict each other.
    stream_set = threads * cpu.cache_line * 2
    if stream_set <= cpu.cache_bytes:
        return 0.85 * seq_hit
    return analytic_hit_rate(
        elem_bytes,
        cpu.cache_line,
        sequential=False,
        working_set=stream_set,
        cache_bytes=cpu.cache_bytes,
    )
