"""Unit constants and formatting helpers.

All simulation times are in **seconds** (floats) and all sizes in **bytes**
(ints) unless a name says otherwise. Bandwidths are bytes/second.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Sizes (binary powers, as used for buffer/memory sizing)
# ---------------------------------------------------------------------------
KiB = 1024
MiB = 1024 * KiB
GiB = 1024 * MiB

# Decimal powers, as used by link/memory vendors for bandwidth figures.
KB = 1000
MB = 1000 * KB
GB = 1000 * MB

# ---------------------------------------------------------------------------
# Times
# ---------------------------------------------------------------------------
NS = 1e-9
US = 1e-6
MS = 1e-3


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary suffix (e.g. ``1.50 MiB``)."""
    n = float(n)
    for suffix, scale in (("GiB", GiB), ("MiB", MiB), ("KiB", KiB)):
        if abs(n) >= scale:
            return f"{n / scale:.2f} {suffix}"
    return f"{n:.0f} B"


def fmt_time(seconds: float) -> str:
    """Render a duration with an appropriate SI suffix."""
    s = float(seconds)
    if abs(s) >= 1.0:
        return f"{s:.3f} s"
    if abs(s) >= MS:
        return f"{s / MS:.3f} ms"
    if abs(s) >= US:
        return f"{s / US:.3f} us"
    return f"{s / NS:.1f} ns"


def fmt_bandwidth(bytes_per_s: float) -> str:
    """Render a bandwidth in GB/s (decimal, vendor convention)."""
    return f"{bytes_per_s / GB:.2f} GB/s"


def fmt_speedup(x: float) -> str:
    """Render a speedup factor the way the paper's figures do (``2.6x``)."""
    return f"{x:.2f}x"
