"""Orchestration for ``python -m repro verify``: the verification pillars
in one pass/fail sweep.

1. **Invariant suite** — run BigKernel (aggregate mode) on every app and
   invariant-check each timeline; also one per-block high-fidelity run.
2. **Differential suite** — every engine vs the serial oracle on every app.
3. **UVM differential suite** — the unified-memory engine family
   (``gpu_uvm``/``uvm_readahead``/``uvm_learned``) vs the serial oracle on
   every app, each timeline invariant-checked.
4. **Fuzz suite** — seeded random IR programs, pipeline schedules, and
   randomized UVM paging configurations.
5. **Fastpath suite** (``--fastpath``) — every (app, engine) cell run with
   the analytic steady-state pipeline vs with the DES forced; totals must
   agree within 1e-9 (see ``docs/performance.md``).
6. **Compiled suite** (``--compiled``) — every app's kernel run through the
   vectorized NumPy backend vs the tree-walking interpreter: outputs at
   1e-9 (rtol 0), InterpStats counters and addr-gen address streams exact,
   and analysis verdicts matching each app's declared expectation.
7. **Analytic suite** (``--analytic``) — the closed-form performance
   predictor (:mod:`repro.analytic`) vs the DES: every app on every
   predictable engine at the base geometry, plus fuzzed chunk/ring
   geometries, each cell within 5% relative error (most are exact).
8. **Multi-GPU suite** (``--multigpu``) — the sharded scale-out engine
   vs the serial oracle across GPU counts and link topologies: merged
   outputs bit-equal, every shard's DES trace invariant-checked with
   byte ledgers reconciled, analytic shard predictions within tolerance,
   plus fuzzed random fabrics (see ``docs/verification.md``).
9. **Serve suite** (``--serve``) — a seeded multi-tenant trace through a
   live server with the full amortization stack (run cache, coalescing,
   shared datasets); every response — served, coalesced or cached — must
   bit-equal (rtol 0, exact ``sim_time``) a fresh one-shot oracle run of
   the same job (see ``docs/serving.md``).

``--quick`` shrinks the datasets and iteration counts to CI scale.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.apps import ALL_APPS
from repro.engines import (
    UVM_ENGINES,
    BigKernelEngine,
    CpuSerialEngine,
    EngineConfig,
)
from repro.runtime.pipeline import run_pipeline_per_block
from repro.units import MiB
from repro.verify.differential import (
    AnalyticReport,
    CompiledReport,
    DifferentialReport,
    FastpathReport,
    MultiGpuReport,
    ServeReport,
    run_analytic_differential,
    run_compiled_differential,
    run_differential,
    run_fastpath_differential,
    run_multigpu_differential,
    run_serve_differential,
)
from repro.verify.fuzz import FuzzReport, run_fuzz
from repro.verify.invariants import (
    InvariantReport,
    verify_pipeline_trace,
    verify_run,
)


@dataclass
class VerifySummary:
    """Combined outcome of one verification sweep."""

    invariant_reports: dict = field(default_factory=dict)  # name -> report
    differential: Optional[DifferentialReport] = None
    uvm: Optional[DifferentialReport] = None
    fuzz: Optional[FuzzReport] = None
    fastpath: Optional[FastpathReport] = None
    compiled: Optional[CompiledReport] = None
    analytic: Optional[AnalyticReport] = None
    multigpu: Optional[MultiGpuReport] = None
    serve: Optional[ServeReport] = None

    @property
    def ok(self) -> bool:
        return (
            all(r.ok for r in self.invariant_reports.values())
            and (self.differential is None or self.differential.ok)
            and (self.uvm is None or self.uvm.ok)
            and (self.fuzz is None or self.fuzz.ok)
            and (self.fastpath is None or self.fastpath.ok)
            and (self.compiled is None or self.compiled.ok)
            and (self.analytic is None or self.analytic.ok)
            and (self.multigpu is None or self.multigpu.ok)
            and (self.serve is None or self.serve.ok)
        )

    def summary(self) -> str:
        lines = []
        bad_inv = [n for n, r in self.invariant_reports.items() if not r.ok]
        lines.append(
            f"invariants: {len(self.invariant_reports)} timeline(s) checked, "
            f"{len(bad_inv)} violated"
        )
        for name in bad_inv:
            lines.append(f"  {name}:")
            lines.extend(
                "  " + ln for ln in self.invariant_reports[name].summary().splitlines()
            )
        if self.differential is not None:
            lines.append(self.differential.summary())
        if self.uvm is not None:
            lines.append("uvm " + self.uvm.summary())
        if self.fuzz is not None:
            lines.append(self.fuzz.summary())
        if self.fastpath is not None:
            lines.append(self.fastpath.summary())
        if self.compiled is not None:
            lines.append(self.compiled.summary())
        if self.analytic is not None:
            lines.append(self.analytic.summary())
        if self.multigpu is not None:
            lines.append(self.multigpu.summary())
        if self.serve is not None:
            lines.append(self.serve.summary())
        lines.append("verify: " + ("PASS" if self.ok else "FAIL"))
        return "\n".join(lines)


def run_verify(
    quick: bool = False,
    seed: int = 7,
    data_bytes: Optional[int] = None,
    fuzz_iterations: Optional[int] = None,
    fastpath: bool = False,
    compiled: bool = False,
    analytic: bool = False,
    multigpu: bool = False,
    serve: bool = False,
    emit: Callable[[str], None] = print,
) -> VerifySummary:
    """Run the full verification sweep; ``emit`` narrates progress.

    ``fastpath=True`` appends the fastpath-vs-des differential: the full
    app x engine matrix with the analytic pipeline allowed vs DES forced,
    asserting the totals agree within 1e-9. ``compiled=True`` appends the
    compiled-vs-interpreter differential over every app's kernel.
    ``analytic=True`` appends the closed-form-predictor-vs-DES
    differential: the clean app x engine matrix plus fuzzed geometries,
    within 5% relative tolerance per cell. ``multigpu=True`` appends the
    sharded scale-out differential: every app across GPU counts and link
    topologies vs the serial oracle, each shard's trace invariant-checked
    and the analytic shard model held to tolerance, plus fuzzed fabrics.
    ``serve=True`` appends the serve differential: a seeded multi-tenant
    trace through a live server, every response bit-compared (rtol 0)
    against a fresh one-shot oracle of the same job.
    """
    data_bytes = data_bytes or (1 * MiB if quick else 4 * MiB)
    fuzz_n = fuzz_iterations if fuzz_iterations is not None else (8 if quick else 30)
    uvm_n = 4 if quick else 12
    config = EngineConfig(chunk_bytes=max(256 * 1024, data_bytes // 8))
    # the invariant checkers consume full timelines, which the analytic
    # fast path deliberately skips: pin the DES for pillar 1
    traced_config = config.with_(fastpath=False)
    n_pillars = (
        4 + (1 if fastpath else 0) + (1 if compiled else 0)
        + (1 if analytic else 0) + (1 if multigpu else 0)
        + (1 if serve else 0)
    )
    pillar = iter(range(5, n_pillars + 1))
    summary = VerifySummary()

    emit(
        f"[1/{n_pillars}] invariant suite: BigKernel timelines over "
        f"{len(ALL_APPS)} apps"
    )
    engine = BigKernelEngine()
    for cls in ALL_APPS:
        app = cls()
        data = app.generate(n_bytes=data_bytes, seed=seed)
        res = engine.run(app, data, traced_config)
        summary.invariant_reports[f"bigkernel/{app.name}"] = verify_run(
            res, traced_config
        )
    summary.invariant_reports["pipeline/per-block"] = _per_block_check(
        config, engine, seed, data_bytes
    )

    emit(f"[2/{n_pillars}] differential suite: engines vs cpu_serial oracle")
    summary.differential = run_differential(
        data_bytes=data_bytes, seed=seed, config=config
    )

    emit(
        f"[3/{n_pillars}] uvm differential suite: paging engines vs "
        f"cpu_serial oracle, timelines invariant-checked"
    )
    uvm_engines = [cls() for cls in UVM_ENGINES]
    summary.uvm = run_differential(
        data_bytes=data_bytes,
        seed=seed,
        config=config,
        engines=[CpuSerialEngine()] + uvm_engines,
        traced_engines=tuple(e.name for e in uvm_engines),
    )

    emit(
        f"[4/{n_pillars}] fuzz suite: {fuzz_n} IR + {fuzz_n} pipeline + "
        f"{uvm_n} uvm cases, seed {seed}"
    )
    summary.fuzz = run_fuzz(
        ir_iterations=fuzz_n, pipeline_iterations=fuzz_n,
        uvm_iterations=uvm_n, seed=seed,
    )

    if fastpath:
        emit(
            f"[{next(pillar)}/{n_pillars}] fastpath suite: analytic "
            f"pipeline vs DES, full app x engine matrix"
        )
        summary.fastpath = run_fastpath_differential(
            data_bytes=data_bytes, seed=seed, config=config
        )

    if compiled:
        emit(
            f"[{next(pillar)}/{n_pillars}] compiled suite: vectorized "
            f"backend vs interpreter over {len(ALL_APPS)} apps"
        )
        summary.compiled = run_compiled_differential(
            data_bytes=data_bytes, seed=seed
        )

    if analytic:
        fuzz_geoms = 6 if quick else 12
        emit(
            f"[{next(pillar)}/{n_pillars}] analytic suite: closed-form "
            f"predictor vs DES, clean matrix + {fuzz_geoms} fuzzed "
            f"geometries"
        )
        summary.analytic = run_analytic_differential(
            data_bytes=data_bytes,
            seed=seed,
            config=config,
            fuzz_iterations=fuzz_geoms,
        )

    if multigpu:
        gpu_counts = (1, 2) if quick else (1, 2, 4)
        fuzz_fabrics = 2 if quick else 5
        emit(
            f"[{next(pillar)}/{n_pillars}] multigpu suite: sharded "
            f"scale-out vs cpu_serial over GPU counts {gpu_counts}, "
            f"shard traces invariant-checked, + {fuzz_fabrics} fuzzed "
            f"fabrics"
        )
        summary.multigpu = run_multigpu_differential(
            data_bytes=data_bytes,
            seed=seed,
            config=config,
            gpu_counts=gpu_counts,
            fuzz_iterations=fuzz_fabrics,
        )

    if serve:
        duration = 1.5 if quick else 3.0
        emit(
            f"[{next(pillar)}/{n_pillars}] serve suite: {duration:g}s "
            f"multi-tenant trace through a live server, every response "
            f"vs its one-shot oracle"
        )
        summary.serve = run_serve_differential(
            data_bytes=min(data_bytes, 1 * MiB), seed=seed, duration=duration
        )
    return summary


def _per_block_check(
    config: EngineConfig, engine: BigKernelEngine, seed: int, data_bytes: int
) -> InvariantReport:
    """Invariant-check one high-fidelity per-block pipeline run."""
    app = ALL_APPS[0]()
    data = app.generate(n_bytes=data_bytes, seed=seed)
    sched = engine._schedule(app, data, config, workers_override=1)
    n_blocks = min(4, max(1, sched.active_blocks))
    block_chunks = [list(sched.chunks) for _ in range(n_blocks)]
    result = run_pipeline_per_block(
        config.hardware, block_chunks, sched.pipe_cfg, cpu_threads=4
    )
    return verify_pipeline_trace(
        result.trace,
        gpu_capacity=2 * n_blocks,
        cpu_workers=4,
        ring_depth=sched.pipe_cfg.ring_depth,
        bytes_h2d=result.bytes_h2d,
        bytes_d2h=result.bytes_d2h,
    )
