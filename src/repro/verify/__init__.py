"""Invariant-checking & differential verification (the safety net).

Three pillars, each usable on its own:

* :mod:`repro.verify.invariants` — physical-law checkers over pipeline
  timelines (capacity, causality, backpressure, byte conservation);
* :mod:`repro.verify.differential` — every engine vs the serial CPU
  oracle, bit-for-bit, with a structured mismatch report;
* :mod:`repro.verify.fuzz` — seeded random IR programs and pipeline
  schedules through the compiler round trip and the invariant checkers.

Opt-in pillars extend the sweep: ``--fastpath`` checks the analytic
steady-state pipeline (:mod:`repro.runtime.fastpath`) against the DES
across the full app x engine matrix (totals within 1e-9), ``--compiled``
checks the vectorized kernel backend against the interpreter, and
``--analytic`` checks the closed-form performance predictor
(:mod:`repro.analytic`) against the DES at 5% relative tolerance over
the clean matrix plus fuzzed geometries, and ``--multigpu`` checks the
sharded scale-out engine against the serial oracle across GPU counts
and link topologies — merged outputs bit-equal, every shard's trace
invariant-checked (:func:`~repro.verify.invariants.audit_sharded_run`),
analytic shard predictions within tolerance, plus fuzzed fabrics.
``--serve`` replays a seeded multi-tenant trace through a live
:class:`~repro.serve.Server` and bit-compares every response (rtol 0,
exact ``sim_time``) against a fresh one-shot oracle of the same job.

``python -m repro verify`` (see :mod:`repro.verify.runner`) runs the
suites and exits nonzero on any violation. Opt-in hooks:
``run_pipeline(..., verify=True)``, ``bigkernel_launch(..., verify=True)``
and ``BenchSettings(check_invariants=True)``.
"""

from repro.verify.differential import (
    AnalyticEntry,
    AnalyticReport,
    DiffEntry,
    DifferentialReport,
    FastpathEntry,
    FastpathReport,
    MultiGpuEntry,
    MultiGpuReport,
    ServeEntry,
    ServeReport,
    run_analytic_differential,
    run_differential,
    run_fastpath_differential,
    run_multigpu_differential,
    run_serve_differential,
)
from repro.verify.fuzz import FuzzFailure, FuzzReport, run_fuzz
from repro.verify.invariants import (
    InvariantReport,
    Violation,
    check_backpressure,
    check_byte_conservation,
    check_compute_after_transfer,
    check_flag_after_data,
    check_pcie_serialization,
    check_stage_order,
    check_track_capacity,
    audit_sharded_run,
    verify_pipeline_trace,
    verify_run,
)
from repro.verify.runner import VerifySummary, run_verify

__all__ = [
    "Violation",
    "InvariantReport",
    "check_track_capacity",
    "check_pcie_serialization",
    "check_flag_after_data",
    "check_compute_after_transfer",
    "check_stage_order",
    "check_backpressure",
    "check_byte_conservation",
    "audit_sharded_run",
    "verify_pipeline_trace",
    "verify_run",
    "AnalyticEntry",
    "AnalyticReport",
    "DiffEntry",
    "DifferentialReport",
    "FastpathEntry",
    "FastpathReport",
    "MultiGpuEntry",
    "MultiGpuReport",
    "ServeEntry",
    "ServeReport",
    "run_analytic_differential",
    "run_differential",
    "run_fastpath_differential",
    "run_multigpu_differential",
    "run_serve_differential",
    "FuzzFailure",
    "FuzzReport",
    "run_fuzz",
    "VerifySummary",
    "run_verify",
]
