"""Trace invariant checkers: the physical laws a pipeline timeline must obey.

The simulator's whole claim to fidelity is that its timelines are ones real
hardware could have produced. These checkers consume a
:class:`~repro.sim.trace.TraceRecorder` and mechanically assert the laws the
BigKernel design relies on:

* **Capacity** — the GPU runs at most two concurrent stage intervals (one
  addr-gen warp group, one compute warp group), the CPU at most
  ``cpu_workers``, and each PCIe direction is a single FIFO DMA engine
  (overlap across the two directions is the full-duplex property and is
  allowed; overlap within one direction is impossible hardware).
* **Causality** — a completion-flag write lands strictly after the data DMA
  it chases (the in-order trick of Section IV-C); computation of a chunk
  never starts before that chunk's transfer has fully landed; the four
  forward stages of one chunk appear in pipeline order.
* **Backpressure** — address generation of iteration *n* never starts
  before computation of iteration *n − ring_depth* has finished (the
  paper's barrier of *n* against *n − 3* for a depth-3 ring).
* **Byte conservation** — every chunk's planned payload appears exactly
  once on the host-to-device track with the planned byte count, and the
  per-direction byte totals match the link's accounting.

Every checker returns a list of :class:`Violation` records; the
:func:`verify_pipeline_trace` entry point bundles them into an
:class:`InvariantReport` that can summarize or raise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.errors import VerificationError
from repro.runtime.pipeline import (
    FORWARD_STAGES,
    STAGE_ADDR_GEN,
    STAGE_COMPUTE,
    STAGE_TRANSFER,
    STAGE_WRITEBACK_XFER,
    ChunkWork,
)
from repro.sim.trace import Interval, TraceRecorder

PCIE_TRACKS = ("pcie-h2d", "pcie-d2h")


@dataclass(frozen=True)
class Violation:
    """One broken invariant, anchored to the offending trace records."""

    invariant: str  # e.g. "gpu-capacity", "flag-before-data"
    message: str
    time: float
    intervals: tuple = ()

    def __str__(self) -> str:
        return f"[{self.invariant}] t={self.time:.6g}: {self.message}"


@dataclass
class InvariantReport:
    """Outcome of one invariant sweep over a trace."""

    checked: tuple[str, ...] = ()
    violations: list[Violation] = field(default_factory=list)
    n_intervals: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def extend(self, more: Sequence[Violation]) -> None:
        self.violations.extend(more)

    def summary(self) -> str:
        head = (
            f"{len(self.violations)} violation(s) over {self.n_intervals} "
            f"interval(s); checked: {', '.join(self.checked)}"
        )
        lines = [head] + [f"  {v}" for v in self.violations[:50]]
        if len(self.violations) > 50:
            lines.append(f"  ... and {len(self.violations) - 50} more")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.violations:
            raise VerificationError(self.summary())


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------

def _key(iv: Interval) -> tuple:
    """(block, chunk) identity of an interval, from its meta."""
    return (iv.meta.get("block"), iv.meta.get("chunk"))


def _by_stage_chunk(trace: TraceRecorder) -> dict:
    """{(block, chunk): {label: [intervals]}} for chunk-tagged records."""
    out: dict = {}
    for iv in trace:
        if iv.meta.get("chunk") is None:
            continue
        out.setdefault(_key(iv), {}).setdefault(iv.label, []).append(iv)
    return out


# ---------------------------------------------------------------------------
# capacity laws
# ---------------------------------------------------------------------------

def check_track_capacity(
    trace: TraceRecorder, track: str, capacity: int, invariant: Optional[str] = None
) -> list[Violation]:
    """No more than ``capacity`` concurrent intervals on ``track``.

    Sweep-line over interval endpoints; at equal timestamps an ending
    interval frees its slot before a starting one claims it (half-open
    semantics). Zero-duration intervals occupy no time and are skipped.
    """
    invariant = invariant or f"{track}-capacity"
    events = []  # (time, delta, interval); ends sort before starts
    for iv in trace.by_track(track):
        if iv.duration == 0:
            continue
        events.append((iv.start, 1, iv))
        events.append((iv.end, -1, iv))
    events.sort(key=lambda e: (e[0], e[1]))
    violations = []
    live: list[Interval] = []
    for t, delta, iv in events:
        if delta < 0:
            live.remove(iv)
            continue
        live.append(iv)
        if len(live) > capacity:
            labels = ", ".join(
                f"{x.label}{_key(x)}" for x in sorted(live, key=lambda x: x.start)
            )
            violations.append(
                Violation(
                    invariant,
                    f"{len(live)} concurrent intervals on {track!r} "
                    f"(capacity {capacity}): {labels}",
                    t,
                    tuple(live),
                )
            )
    return violations


def check_pcie_serialization(trace: TraceRecorder) -> list[Violation]:
    """Each PCIe direction is one FIFO DMA engine: no intra-direction
    overlap. Cross-direction overlap is the (allowed) full-duplex case."""
    violations = []
    for track in PCIE_TRACKS:
        violations.extend(
            check_track_capacity(trace, track, 1, invariant="pcie-serialization")
        )
    return violations


# ---------------------------------------------------------------------------
# causality laws
# ---------------------------------------------------------------------------

def check_flag_after_data(trace: TraceRecorder) -> list[Violation]:
    """Every ``<label>-flag`` write starts at/after the end of the data DMA
    it chases (same direction, same base label, same chunk identity)."""
    violations = []
    for track in PCIE_TRACKS:
        ivs = trace.by_track(track)
        data = {}
        for iv in ivs:
            if not iv.label.endswith("-flag") and iv.meta.get("chunk") is not None:
                data[(iv.label, _key(iv))] = iv
        for flag in ivs:
            if not flag.label.endswith("-flag"):
                continue
            base = flag.label[: -len("-flag")]
            src = data.get((base, _key(flag)))
            if src is None:
                if flag.meta.get("chunk") is not None:
                    violations.append(
                        Violation(
                            "flag-before-data",
                            f"flag {flag.label}{_key(flag)} on {track} has no "
                            f"matching data transfer",
                            flag.start,
                            (flag,),
                        )
                    )
                continue
            if flag.start < src.end:
                violations.append(
                    Violation(
                        "flag-before-data",
                        f"flag for {base}{_key(flag)} starts at {flag.start:.6g} "
                        f"before its data DMA ends at {src.end:.6g}",
                        flag.start,
                        (src, flag),
                    )
                )
    return violations


def check_compute_after_transfer(trace: TraceRecorder) -> list[Violation]:
    """Computation of a chunk starts only after that chunk's prefetch
    transfer has fully landed (the flag the GPU busy-waits on)."""
    violations = []
    for key, stages in _by_stage_chunk(trace).items():
        transfers = stages.get(STAGE_TRANSFER, [])
        for comp in stages.get(STAGE_COMPUTE, []):
            for xfer in transfers:
                if comp.start < xfer.end:
                    violations.append(
                        Violation(
                            "compute-before-transfer",
                            f"compute of chunk {key} starts at "
                            f"{comp.start:.6g} before its transfer ends at "
                            f"{xfer.end:.6g}",
                            comp.start,
                            (xfer, comp),
                        )
                    )
    return violations


def check_stage_order(trace: TraceRecorder) -> list[Violation]:
    """Within one chunk the forward stages appear in pipeline order:
    addr_gen ≤ assembly ≤ transfer ≤ compute (each stage's start is no
    earlier than the previous stage's end)."""
    violations = []
    for key, stages in _by_stage_chunk(trace).items():
        prev_label = None
        prev_end = None
        for label in FORWARD_STAGES:
            ivs = stages.get(label)
            if not ivs:
                continue
            start = min(iv.start for iv in ivs)
            if prev_end is not None and start < prev_end:
                violations.append(
                    Violation(
                        "stage-order",
                        f"{label} of chunk {key} starts at {start:.6g} before "
                        f"{prev_label} ends at {prev_end:.6g}",
                        start,
                        tuple(ivs),
                    )
                )
            prev_label = label
            prev_end = max(iv.end for iv in ivs)
    return violations


# ---------------------------------------------------------------------------
# backpressure law
# ---------------------------------------------------------------------------

def check_backpressure(trace: TraceRecorder, ring_depth: int) -> list[Violation]:
    """No stage runs more than ``ring_depth`` iterations ahead.

    The buffer ring has ``ring_depth`` instances, so address generation of
    chunk *n* may not start before computation of chunk *n − ring_depth*
    has released its buffer (per pipeline, i.e. per block tag).
    """
    if ring_depth < 1:
        raise VerificationError(f"ring_depth must be positive, got {ring_depth}")
    per_block: dict = {}
    for iv in trace:
        chunk = iv.meta.get("chunk")
        if chunk is None or iv.label not in (STAGE_ADDR_GEN, STAGE_COMPUTE):
            continue
        per_block.setdefault(iv.meta.get("block"), {}).setdefault(
            iv.label, {}
        )[chunk] = iv
    violations = []
    for block, stages in per_block.items():
        addr = stages.get(STAGE_ADDR_GEN, {})
        comp = stages.get(STAGE_COMPUTE, {})
        if not addr or not comp:
            continue
        base = min(addr)  # chunk indices need not start at 0
        for n, ag in sorted(addr.items()):
            pred = comp.get(n - ring_depth)
            if n - base < ring_depth or pred is None:
                continue
            if ag.start < pred.end:
                violations.append(
                    Violation(
                        "ring-backpressure",
                        f"addr_gen of chunk {n} (block {block}) starts at "
                        f"{ag.start:.6g} before compute of chunk "
                        f"{n - ring_depth} ends at {pred.end:.6g} "
                        f"(ring depth {ring_depth})",
                        ag.start,
                        (pred, ag),
                    )
                )
    return violations


# ---------------------------------------------------------------------------
# byte conservation
# ---------------------------------------------------------------------------

def check_byte_conservation(
    trace: TraceRecorder,
    chunks: Optional[Sequence[ChunkWork]] = None,
    bytes_h2d: Optional[int] = None,
    bytes_d2h: Optional[int] = None,
) -> list[Violation]:
    """Assembly→transfer→compute moves exactly the planned bytes.

    With ``chunks`` given, every chunk's ``xfer_bytes`` must appear exactly
    once per pipeline on the h2d track (and the addr/write d2h totals must
    match the plan). With link totals given, the per-track ``nbytes`` sums
    must equal the link's own accounting.
    """
    violations = []
    h2d_data = [
        iv
        for iv in trace.by_track("pcie-h2d")
        if not iv.label.endswith("-flag")
    ]
    if chunks is not None:
        seen: dict = {}
        for iv in h2d_data:
            if iv.label == STAGE_TRANSFER and iv.meta.get("chunk") is not None:
                seen.setdefault(_key(iv), []).append(iv)
        planned = {c.index: c for c in chunks}
        blocks = {k[0] for k in seen} or {None}
        for block in blocks:
            for idx, chunk in planned.items():
                ivs = seen.get((block, idx), [])
                if len(ivs) != 1:
                    violations.append(
                        Violation(
                            "byte-conservation",
                            f"chunk {idx} (block {block}) has {len(ivs)} data "
                            f"transfers, expected exactly 1",
                            ivs[0].start if ivs else 0.0,
                            tuple(ivs),
                        )
                    )
                    continue
                moved = ivs[0].meta.get("nbytes")
                if moved != chunk.xfer_bytes:
                    violations.append(
                        Violation(
                            "byte-conservation",
                            f"chunk {idx} (block {block}) transferred {moved} "
                            f"bytes, assembly produced {chunk.xfer_bytes}",
                            ivs[0].start,
                            (ivs[0],),
                        )
                    )
        n_pipelines = len(blocks)
        planned_addr = n_pipelines * sum(c.addr_bytes_d2h for c in chunks)
        planned_write = n_pipelines * sum(c.write_bytes for c in chunks)
        got_addr = sum(
            iv.meta.get("nbytes", 0)
            for iv in trace.by_track("pcie-d2h")
            if iv.label == STAGE_ADDR_GEN
        )
        got_write = sum(
            iv.meta.get("nbytes", 0)
            for iv in trace.by_track("pcie-d2h")
            if iv.label == STAGE_WRITEBACK_XFER
        )
        if got_addr != planned_addr:
            violations.append(
                Violation(
                    "byte-conservation",
                    f"address traffic d2h moved {got_addr} bytes, "
                    f"plan says {planned_addr}",
                    0.0,
                )
            )
        if got_write != planned_write:
            violations.append(
                Violation(
                    "byte-conservation",
                    f"write-back traffic d2h moved {got_write} bytes, "
                    f"plan says {planned_write}",
                    0.0,
                )
            )
    for direction, expected in (("pcie-h2d", bytes_h2d), ("pcie-d2h", bytes_d2h)):
        if expected is None:
            continue
        moved = sum(iv.meta.get("nbytes", 0) for iv in trace.by_track(direction))
        if moved != expected:
            violations.append(
                Violation(
                    "byte-conservation",
                    f"{direction} trace records {moved} bytes, link counted "
                    f"{expected}",
                    0.0,
                )
            )
    return violations


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def verify_pipeline_trace(
    trace: TraceRecorder,
    gpu_capacity: int = 2,
    cpu_workers: Optional[int] = None,
    ring_depth: Optional[int] = None,
    chunks: Optional[Sequence[ChunkWork]] = None,
    bytes_h2d: Optional[int] = None,
    bytes_d2h: Optional[int] = None,
) -> InvariantReport:
    """Run every applicable invariant checker over ``trace``.

    ``cpu_workers``/``ring_depth``/``chunks``/byte totals are optional —
    pass what the call site knows; the corresponding laws are skipped when
    the ground truth is unavailable.
    """
    report = InvariantReport(n_intervals=len(trace))
    checked = []

    report.extend(check_track_capacity(trace, "gpu", gpu_capacity, "gpu-capacity"))
    checked.append("gpu-capacity")
    if cpu_workers is not None:
        report.extend(
            check_track_capacity(trace, "cpu", cpu_workers, "cpu-capacity")
        )
        checked.append("cpu-capacity")
    report.extend(check_pcie_serialization(trace))
    checked.append("pcie-serialization")
    report.extend(check_flag_after_data(trace))
    checked.append("flag-before-data")
    report.extend(check_compute_after_transfer(trace))
    checked.append("compute-before-transfer")
    report.extend(check_stage_order(trace))
    checked.append("stage-order")
    if ring_depth is not None:
        report.extend(check_backpressure(trace, ring_depth))
        checked.append("ring-backpressure")
    if chunks is not None or bytes_h2d is not None or bytes_d2h is not None:
        report.extend(
            check_byte_conservation(trace, chunks, bytes_h2d, bytes_d2h)
        )
        checked.append("byte-conservation")

    report.checked = tuple(checked)
    return report


def audit_sharded_run(result, gpu_capacity: int = 2) -> list[str]:
    """Audit a sharded (multi-GPU) run shard by shard.

    Every shard's DES trace goes through the full invariant battery
    (:func:`verify_pipeline_trace` with that shard's chunk plan, worker
    count, ring depth, and byte totals), and the per-shard PCIe ledgers
    must sum to the run's aggregate byte counters — sharding must
    neither drop nor invent traffic. Returns a list of problem strings
    (empty = clean). Requires ``result.shard_details``, which only the
    true DES records (run with the fastpath disabled).
    """
    details = getattr(result, "shard_details", None)
    if details is None:
        return [
            f"{result.engine}: no shard traces recorded "
            "(run with fastpath disabled to audit shards)"
        ]
    problems: list[str] = []
    total_h2d = total_d2h = 0
    for d in details:
        report = verify_pipeline_trace(
            d["trace"],
            gpu_capacity=gpu_capacity,
            cpu_workers=d["pipe_cfg"].cpu_workers,
            ring_depth=d["pipe_cfg"].ring_depth,
            chunks=d["chunks"],
            bytes_h2d=d["bytes_h2d"],
            bytes_d2h=d["bytes_d2h"],
        )
        if not report.ok:
            problems.append(f"shard {d['shard']}: {report.summary()}")
        total_h2d += d["bytes_h2d"]
        total_d2h += d["bytes_d2h"]
    if total_h2d != result.metrics.bytes_h2d:
        problems.append(
            f"shard h2d ledgers sum to {total_h2d}, run counted "
            f"{result.metrics.bytes_h2d}"
        )
    if total_d2h != result.metrics.bytes_d2h:
        problems.append(
            f"shard d2h ledgers sum to {total_d2h}, run counted "
            f"{result.metrics.bytes_d2h}"
        )
    return problems


def verify_run(result, config=None) -> InvariantReport:
    """Invariant-check one engine :class:`~repro.engines.base.RunResult`.

    Applies the laws that hold for any aggregate-mode BigKernel run:
    GPU capacity 2, PCIe serialization, causality, stage order, link-total
    byte conservation, and — when ``config`` (an ``EngineConfig``) is
    given — ring-depth backpressure. CPU capacity is skipped because the
    engine pre-divides assembly times across workers.
    """
    if result.trace is None:
        return InvariantReport(checked=("none: no trace",))
    return verify_pipeline_trace(
        result.trace,
        gpu_capacity=2,
        ring_depth=config.ring_depth if config is not None else None,
        bytes_h2d=result.metrics.bytes_h2d,
        bytes_d2h=result.metrics.bytes_d2h,
    )
