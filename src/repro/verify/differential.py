"""Differential oracle: every engine must reproduce the serial CPU output.

All five execution schemes share one functional semantics (the chunked
kernel path); they differ only in *when* data moves and *what* the timeline
charges. The single-threaded :class:`~repro.engines.cpu_serial.CpuSerialEngine`
is therefore a trusted oracle: it has no pipeline, no buffers, no overlap —
nothing that a scheduling bug could corrupt. This module runs the full
app × engine matrix against that oracle, compares outputs bit-for-bit
(via each app's ``outputs_equal``, which is exact equality for integer
outputs and tight-tolerance comparison for accumulated floats), and
invariant-checks every BigKernel timeline on the side.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

import numpy as np

from repro.apps import ALL_APPS
from repro.engines import ALL_ENGINES, CpuSerialEngine, EngineConfig
from repro.errors import VerificationError
from repro.units import MiB
from repro.verify.invariants import InvariantReport, verify_run

ORACLE = CpuSerialEngine.name


def describe_output(value) -> str:
    """Short structural description of an engine output, for mismatch
    reports."""
    if isinstance(value, np.ndarray):
        return f"ndarray{value.shape} dtype={value.dtype}"
    if isinstance(value, dict):
        keys = ", ".join(sorted(map(str, value))[:6])
        return f"dict({len(value)}: {keys}{'...' if len(value) > 6 else ''})"
    if isinstance(value, (list, tuple)):
        return f"{type(value).__name__}(len={len(value)})"
    return f"{type(value).__name__}={value!r:.60}"


@dataclass
class DiffEntry:
    """One (app, engine) cell of the differential matrix."""

    app: str
    engine: str
    ok: bool
    detail: str = ""
    sim_time: float = 0.0
    invariants: Optional[InvariantReport] = None


@dataclass
class DifferentialReport:
    """Structured outcome of one oracle sweep."""

    oracle: str = ORACLE
    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def mismatches(self) -> list[DiffEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        lines = [
            f"differential vs {self.oracle}: {len(self.entries)} cells, "
            f"{len(self.mismatches)} mismatch(es)"
        ]
        for e in self.entries:
            status = "ok" if e.ok else "MISMATCH"
            line = f"  {e.app:12s} x {e.engine:12s} {status}"
            if e.detail:
                line += f" — {e.detail}"
            lines.append(line)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.mismatches:
            named = ", ".join(f"({e.app}, {e.engine})" for e in self.mismatches)
            raise VerificationError(
                f"differential mismatch in {named}\n{self.summary()}"
            )


def compare_outputs(app, reference, candidate) -> tuple[bool, str]:
    """(equal?, detail) for one engine output against the oracle's."""
    if app.outputs_equal(reference, candidate):
        return True, ""
    return False, (
        f"oracle={describe_output(reference)} vs "
        f"engine={describe_output(candidate)}"
    )


def run_differential(
    data_bytes: int = 2 * MiB,
    seed: int = 7,
    config: Optional[EngineConfig] = None,
    apps: Optional[Iterable] = None,
    engines: Optional[Iterable] = None,
    check_invariants: bool = True,
    traced_engines: tuple = ("bigkernel",),
) -> DifferentialReport:
    """Run every engine on every app and diff against the serial oracle.

    ``apps``/``engines`` accept instances (defaults: all six apps, all five
    schemes). Timelines of engines named in ``traced_engines`` additionally
    pass through the invariant checkers when ``check_invariants`` is set
    (default: BigKernel only; the UVM pillar passes the uvm family); a
    violated timeline marks the cell as a mismatch even if the output
    agreed.
    """
    config = config or EngineConfig(chunk_bytes=512 * 1024)
    apps = list(apps) if apps is not None else [cls() for cls in ALL_APPS]
    engines = (
        list(engines) if engines is not None else [cls() for cls in ALL_ENGINES]
    )
    oracle = next((e for e in engines if e.name == ORACLE), None)
    if oracle is None:
        oracle = CpuSerialEngine()
        engines = [oracle] + engines

    # invariant checking reads full timelines; the analytic fast path
    # records none, so those cells run against the DES explicitly
    traced_config = config.with_(fastpath=False) if config.fastpath else config

    report = DifferentialReport()
    for app in apps:
        data = app.generate(n_bytes=data_bytes, seed=seed)
        ref = oracle.run(app, data, config)
        report.entries.append(
            DiffEntry(app.name, oracle.name, True, sim_time=ref.sim_time)
        )
        for engine in engines:
            if engine is oracle:
                continue
            wants_trace = check_invariants and engine.name in traced_engines
            res = engine.run(app, data, traced_config if wants_trace else config)
            ok, detail = compare_outputs(app, ref.output, res.output)
            inv = None
            if wants_trace:
                inv = verify_run(res, traced_config)
                if not inv.ok:
                    ok = False
                    detail = (detail + "; " if detail else "") + inv.summary()
            report.entries.append(
                DiffEntry(app.name, engine.name, ok, detail, res.sim_time, inv)
            )
    return report


# --------------------------------------------------------------------------
# fastpath-vs-des mode: the analytic pipeline against the simulator
# --------------------------------------------------------------------------

#: relative tolerance for timeline comparisons — the fast path is designed
#: to be bit-identical, so this is purely a guard against future drift
FASTPATH_TOL = 1e-9


@dataclass
class FastpathEntry:
    """One (app, engine) cell of the fastpath-vs-des matrix."""

    app: str
    engine: str
    ok: bool
    used_fastpath: bool
    detail: str = ""
    sim_time_fast: float = 0.0
    sim_time_des: float = 0.0


@dataclass
class FastpathReport:
    """Structured outcome of one fastpath-vs-des sweep."""

    entries: list[FastpathEntry] = field(default_factory=list)
    tol: float = FASTPATH_TOL

    @property
    def mismatches(self) -> list[FastpathEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        fast_cells = sum(1 for e in self.entries if e.used_fastpath)
        lines = [
            f"fastpath vs des: {len(self.entries)} cells "
            f"({fast_cells} took the fast path), "
            f"{len(self.mismatches)} mismatch(es), tol {self.tol:g}"
        ]
        for e in self.entries:
            status = "ok" if e.ok else "MISMATCH"
            mode = "fast" if e.used_fastpath else "des-fallback"
            line = f"  {e.app:12s} x {e.engine:12s} {status} [{mode}]"
            if e.detail:
                line += f" — {e.detail}"
            lines.append(line)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.mismatches:
            named = ", ".join(f"({e.app}, {e.engine})" for e in self.mismatches)
            raise VerificationError(
                f"fastpath-vs-des mismatch in {named}\n{self.summary()}"
            )


def _close(a: float, b: float, tol: float) -> bool:
    return abs(a - b) <= tol * max(1.0, abs(a), abs(b))


def _diff_runs(app, fast, des, tol: float) -> list[str]:
    """Compare two runs of the same (app, engine) cell; returns problems."""
    problems = []
    if not _close(fast.sim_time, des.sim_time, tol):
        problems.append(
            f"sim_time {fast.sim_time!r} != {des.sim_time!r}"
        )
    for key in set(fast.metrics.stage_totals) | set(des.metrics.stage_totals):
        a = fast.metrics.stage_totals.get(key, 0.0)
        b = des.metrics.stage_totals.get(key, 0.0)
        if not _close(a, b, tol):
            problems.append(f"stage_totals[{key}] {a!r} != {b!r}")
    for attr in ("bytes_h2d", "bytes_d2h", "n_chunks"):
        a, b = getattr(fast.metrics, attr), getattr(des.metrics, attr)
        if a != b:
            problems.append(f"{attr} {a} != {b}")
    if not app.outputs_equal(fast.output, des.output):
        problems.append(
            f"output {describe_output(fast.output)} != "
            f"{describe_output(des.output)}"
        )
    return problems


def run_fastpath_differential(
    data_bytes: int = 2 * MiB,
    seed: int = 7,
    config: Optional[EngineConfig] = None,
    apps: Optional[Iterable] = None,
    engines: Optional[Iterable] = None,
    tol: float = FASTPATH_TOL,
) -> FastpathReport:
    """Run every (app, engine) cell twice — fast path allowed vs DES forced —
    and assert ``sim_time``/``stage_totals``/byte counters/outputs agree.

    This is the oracle that lets the analytic pipeline ship: the DES is
    the trusted model, and every cell must agree within ``tol`` (the fast
    path targets bit-identical, so 1e-9 has huge margin). Cells where the
    fast path declines (mapped writes, short runs) compare DES vs DES and
    pass trivially — ``used_fastpath`` records which cells actually
    exercised the analytic engine. Engine instances are reused between the
    two runs of a cell, so schedule memoization is shared and only the
    simulation layer differs.
    """
    config = config or EngineConfig(chunk_bytes=512 * 1024)
    fast_config = config.with_(fastpath=True)
    des_config = config.with_(fastpath=False)
    apps = list(apps) if apps is not None else [cls() for cls in ALL_APPS]
    engines = (
        list(engines) if engines is not None else [cls() for cls in ALL_ENGINES]
    )

    report = FastpathReport(tol=tol)
    for app in apps:
        data = app.generate(n_bytes=data_bytes, seed=seed)
        for engine in engines:
            fast = engine.run(app, data, fast_config)
            des = engine.run(app, data, des_config)
            problems = _diff_runs(app, fast, des, tol)
            report.entries.append(
                FastpathEntry(
                    app=app.name,
                    engine=engine.name,
                    ok=not problems,
                    used_fastpath=fast.trace is None and des.trace is not None,
                    detail="; ".join(problems),
                    sim_time_fast=fast.sim_time,
                    sim_time_des=des.sim_time,
                )
            )
    return report


# --------------------------------------------------------------------------
# compiled-vs-interpreter mode: the vectorized backend against the oracle
# --------------------------------------------------------------------------

#: absolute tolerance for compiled-vs-interpreter outputs (rtol is 0: the
#: backend targets bit-identical results, this guards against drift only)
COMPILED_TOL = 1e-9

_STAT_FIELDS = (
    "n_ops",
    "n_calls",
    "n_mapped_reads",
    "n_mapped_writes",
    "n_resident_accesses",
    "mapped_read_bytes",
    "mapped_write_bytes",
)


@dataclass
class CompiledEntry:
    """One app of the compiled-vs-interpreter sweep."""

    app: str
    ok: bool
    compiled: bool
    #: analysis verdict matched the app's declared ``compiled_expected``
    expected: bool
    fallback_reasons: tuple = ()
    detail: str = ""


@dataclass
class CompiledReport:
    """Structured outcome of one compiled-vs-interpreter sweep."""

    entries: list[CompiledEntry] = field(default_factory=list)
    tol: float = COMPILED_TOL

    @property
    def mismatches(self) -> list[CompiledEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        n_compiled = sum(1 for e in self.entries if e.compiled)
        lines = [
            f"compiled vs interpreter: {len(self.entries)} apps "
            f"({n_compiled} compiled, "
            f"{len(self.entries) - n_compiled} interpreter-fallback), "
            f"{len(self.mismatches)} mismatch(es), atol {self.tol:g}"
        ]
        for e in self.entries:
            status = "ok" if e.ok else "MISMATCH"
            mode = "compiled" if e.compiled else "fallback"
            line = f"  {e.app:20s} {status} [{mode}]"
            if e.fallback_reasons:
                line += f" — {'; '.join(e.fallback_reasons)}"
            if e.detail:
                line += f" — {e.detail}"
            lines.append(line)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.mismatches:
            named = ", ".join(e.app for e in self.mismatches)
            raise VerificationError(
                f"compiled-vs-interpreter mismatch in {named}\n{self.summary()}"
            )


def _clone_app_data(data):
    """Independent copy of an AppData's mutable arrays (the kernels write
    mapped fields and resident tables in place)."""
    import copy as _copy

    clone = _copy.copy(data)
    clone.mapped = {k: v.copy() for k, v in data.mapped.items()}
    clone.resident = {
        k: (v.copy() if isinstance(v, np.ndarray) else _copy.deepcopy(v))
        for k, v in data.resident.items()
    }
    clone.params = dict(data.params)
    return clone


def _outputs_close(app, a, b, tol: float) -> tuple[bool, str]:
    if isinstance(a, dict) and isinstance(b, dict):
        if set(a) != set(b):
            return False, f"output keys {sorted(a)} != {sorted(b)}"
        bad = [
            k for k in a if not np.allclose(a[k], b[k], rtol=0, atol=tol)
        ]
        if bad:
            return False, f"output arrays diverge: {bad}"
        return True, ""
    if isinstance(a, np.ndarray):
        if np.allclose(a, b, rtol=0, atol=tol):
            return True, ""
        return False, (
            f"output {describe_output(a)} != {describe_output(b)}"
        )
    return (a == b), "" if a == b else f"output {a!r} != {b!r}"


def run_compiled_differential(
    data_bytes: int = 2 * MiB,
    seed: int = 7,
    apps: Optional[Iterable] = None,
    tol: float = COMPILED_TOL,
) -> CompiledReport:
    """Run every app's kernel through the interpreter and (where the
    vectorizability analysis admits it) the compiled NumPy backend, over
    the same data, and compare outputs, InterpStats counters, and
    addr-gen address streams.

    The tree-walking interpreter is the trusted oracle; the compiled
    backend must agree exactly — stats and streams are integer-compared,
    outputs at ``rtol=0, atol=tol``. Apps the analysis rejects
    (``compiled_expected = False``: wordcount's and mastercard's
    loop-carried scanner state) record their fallback reasons and pass if
    the verdict matches the declaration, so an analysis regression that
    silently starts rejecting (or admitting) a kernel fails the pillar.
    """
    from repro.errors import SlicingError
    from repro.kernelc.codegen import InterpStats, KernelInterpreter
    from repro.kernelc.compile import (
        compile_kernel,
        resident_kinds_of,
        vector_fn_names,
    )
    from repro.kernelc.analysis import analyze_vectorizable
    from repro.kernelc.slicing import make_addrgen_kernel

    apps = list(apps) if apps is not None else [cls() for cls in ALL_APPS]
    report = CompiledReport(tol=tol)
    for app in apps:
        base = app.generate(n_bytes=data_bytes, seed=seed)
        data_i = _clone_app_data(base)
        data_c = _clone_app_data(base)
        kernel = app.kernel()
        n = app.n_units(base)
        ctx_i = app.make_ir_context(data_i)
        ctx_c = app.make_ir_context(data_c)
        vfns = vector_fn_names(ctx_c.device_fns)
        rkinds = resident_kinds_of(ctx_c.resident)
        verdict = analyze_vectorizable(
            kernel, vector_fns=vfns, resident_kinds=rkinds
        )
        expected = verdict.ok == app.compiled_expected

        if not verdict.ok:
            report.entries.append(
                CompiledEntry(
                    app=app.name,
                    ok=expected,
                    compiled=False,
                    expected=expected,
                    fallback_reasons=verdict.reasons,
                    detail=""
                    if expected
                    else "analysis rejected a kernel declared compilable",
                )
            )
            continue

        problems: list[str] = []
        if not expected:
            problems.append("analysis admitted a kernel declared fallback")

        interp = KernelInterpreter(kernel, ctx_i)
        compiled = compile_kernel(
            kernel, vector_fns=vfns, resident_kinds=rkinds
        )
        cstats = InterpStats()
        for p in range(app.n_passes):
            if "pass_idx" in kernel.params:
                ctx_i.params["pass_idx"] = p
                ctx_c.params["pass_idx"] = p
            interp.run_thread(0, 0, n)
            run = compiled.run_range(ctx_c, 0, n)
            for f in _STAT_FIELDS:
                setattr(cstats, f, getattr(cstats, f) + getattr(run.stats, f))

        ok_out, detail = _outputs_close(
            app, app.ir_output(data_i, ctx_i), app.ir_output(data_c, ctx_c),
            tol,
        )
        if not ok_out:
            problems.append(detail)
        for f in _STAT_FIELDS:
            a, b = getattr(interp.stats, f), getattr(cstats, f)
            if a != b:
                problems.append(f"stats.{f} {a} != {b}")

        try:
            ag_kernel = make_addrgen_kernel(kernel)
        except SlicingError:
            ag_kernel = None
        if ag_kernel is not None:
            ag_verdict = analyze_vectorizable(
                ag_kernel, vector_fns=vfns, resident_kinds=rkinds
            )
            if ag_verdict.ok:
                ctx_ai = app.make_ir_context(_clone_app_data(base))
                ctx_ac = app.make_ir_context(_clone_app_data(base))
                if "pass_idx" in ag_kernel.params:
                    ctx_ai.params["pass_idx"] = 0
                    ctx_ac.params["pass_idx"] = 0
                ag_i = KernelInterpreter(ag_kernel, ctx_ai)
                ag_i.run_thread(0, 0, n)
                ag_c = compile_kernel(
                    ag_kernel, vector_fns=vfns, resident_kinds=rkinds
                )
                run = ag_c.run_range(ctx_ac, 0, n)
                r_i = np.asarray(
                    [r.offset for r in ag_i.read_addresses], dtype=np.int64
                )
                w_i = np.asarray(
                    [r.offset for r in ag_i.write_addresses], dtype=np.int64
                )
                if not np.array_equal(run.read_offsets(), r_i):
                    problems.append("read address stream diverged")
                if not np.array_equal(run.write_offsets(), w_i):
                    problems.append("write address stream diverged")

        report.entries.append(
            CompiledEntry(
                app=app.name,
                ok=not problems,
                compiled=True,
                expected=expected,
                detail="; ".join(problems),
            )
        )
    return report


# --------------------------------------------------------------------------
# analytic-vs-des mode: the closed-form predictor against the simulator
# --------------------------------------------------------------------------

#: relative tolerance for predictor-vs-DES totals. The predictor's bound
#: family is exact (machine epsilon) on almost every cell; the tolerance
#: absorbs the few cells where a bound is a certified *lower* envelope of
#: a DES artifact (e.g. kmeans gpu_double drain interleaving, ~1.3e-2).
ANALYTIC_TOL = 5e-2


@dataclass
class AnalyticEntry:
    """One (app, engine, geometry) cell of the predictor-vs-DES matrix."""

    app: str
    engine: str
    ok: bool
    predicted: float = 0.0
    simulated: float = 0.0
    fuzzed: bool = False
    detail: str = ""

    @property
    def rel_err(self) -> float:
        scale = max(abs(self.simulated), 1e-300)
        return abs(self.predicted - self.simulated) / scale


@dataclass
class AnalyticReport:
    """Structured outcome of one predictor-vs-DES sweep."""

    entries: list[AnalyticEntry] = field(default_factory=list)
    tol: float = ANALYTIC_TOL

    @property
    def mismatches(self) -> list[AnalyticEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def worst(self) -> float:
        return max((e.rel_err for e in self.entries), default=0.0)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        fuzz_cells = sum(1 for e in self.entries if e.fuzzed)
        lines = [
            f"analytic vs des: {len(self.entries)} cells "
            f"({fuzz_cells} fuzzed geometries), "
            f"{len(self.mismatches)} over tolerance, "
            f"worst rel err {self.worst:.2e} (tol {self.tol:g})"
        ]
        for e in self.entries:
            status = "ok" if e.ok else "OVER-TOL"
            mode = "fuzz" if e.fuzzed else "clean"
            line = (
                f"  {e.app:12s} x {e.engine:12s} {status} [{mode}] "
                f"rel {e.rel_err:.2e}"
            )
            if e.detail:
                line += f" — {e.detail}"
            lines.append(line)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.mismatches:
            named = ", ".join(f"({e.app}, {e.engine})" for e in self.mismatches)
            raise VerificationError(
                f"analytic-vs-des over tolerance in {named}\n{self.summary()}"
            )


def run_analytic_differential(
    data_bytes: int = 2 * MiB,
    seed: int = 7,
    config: Optional[EngineConfig] = None,
    apps: Optional[Iterable] = None,
    tol: float = ANALYTIC_TOL,
    fuzz_iterations: int = 8,
) -> AnalyticReport:
    """Validate the closed-form predictor against the DES.

    Two phases. The *clean matrix* prices every app on every predictable
    engine at the base geometry and runs the same configuration through
    the engine with the fast path disabled (a true event-by-event
    simulation); each cell's relative error must stay within ``tol``.
    The *fuzz loop* then draws ``fuzz_iterations`` random geometries
    (chunk bytes, block count, ring depth) for the pipelined engines
    (``bigkernel``/``gpu_double`` — the ones whose totals actually move
    with geometry) from ``random.Random(f"analytic-{seed}")`` and holds
    them to the same tolerance.

    Runs are non-functional (``functional=False``): the predictor prices
    the timeline only, so the kernels need not execute.
    """
    import random

    from repro.analytic import PREDICTABLE_ENGINES, predict_run, resolve_engine

    config = config or EngineConfig(chunk_bytes=512 * 1024)
    config = config.with_(functional=False, fastpath=False)
    apps = list(apps) if apps is not None else [cls() for cls in ALL_APPS]
    datasets = {
        app.name: app.generate(n_bytes=data_bytes, seed=seed) for app in apps
    }

    report = AnalyticReport(tol=tol)

    def check(app, engine_name, cfg, fuzzed, detail=""):
        data = datasets[app.name]
        predicted = predict_run(app, data, cfg, engine=engine_name).sim_time
        simulated = resolve_engine(engine_name).run(app, data, cfg).sim_time
        entry = AnalyticEntry(
            app=app.name,
            engine=engine_name,
            ok=True,
            predicted=predicted,
            simulated=simulated,
            fuzzed=fuzzed,
            detail=detail,
        )
        entry.ok = entry.rel_err <= tol
        report.entries.append(entry)

    for app in apps:
        for engine_name in PREDICTABLE_ENGINES:
            check(app, engine_name, config, fuzzed=False)

    rng = random.Random(f"analytic-{seed}")
    for _ in range(fuzz_iterations):
        app = rng.choice(apps)
        engine_name = rng.choice(["bigkernel", "gpu_double"])
        cfg = config.with_(
            chunk_bytes=rng.choice([64, 128, 256, 512, 1024, 2048]) * 1024,
            num_blocks=rng.choice([4, 8, 16, 32]),
            ring_depth=rng.randint(2, 6),
            compute_threads=32 * rng.randint(1, 16),
        )
        check(
            app,
            engine_name,
            cfg,
            fuzzed=True,
            detail=(
                f"cb={cfg.chunk_bytes // 1024}K nb={cfg.num_blocks} "
                f"rd={cfg.ring_depth} ct={cfg.compute_threads}"
            ),
        )
    return report


# --------------------------------------------------------------------------
# multi-gpu mode: the sharded scale-out engine vs the oracle, per shard
# --------------------------------------------------------------------------

#: tolerance for dedicated-link cells at the clean matrix's standard
#: geometry: those share the exact per-shard bound family of the
#: fastpath, so anything past noise is model drift.
MULTIGPU_DEDICATED_TOL = 5e-3

#: tolerance for shared-root-complex cells and for fuzzed corner
#: fabrics of either link type. The shard model is a steady-state bound
#: family: with only 2-3 chunks per shard, pipeline fill/drain and
#: write-back interleaving on the shared port move the DES up to ~9%
#: off the bounds (worst observed 8.9e-2, kmeans at 512 KiB / 4 shared
#: GPUs / 64 KiB chunks — deterministic across data seeds and ring
#: depths). Typical cells sit well under 2%.
MULTIGPU_SHARED_TOL = 1e-1


@dataclass
class MultiGpuEntry:
    """One (app, fabric) cell of the multi-GPU differential matrix."""

    app: str
    engine: str
    ok: bool
    detail: str = ""
    sim_time: float = 0.0
    #: shard traces audited in this cell
    shards: int = 0
    predicted: float = 0.0
    fuzzed: bool = False

    @property
    def rel_err(self) -> float:
        """Analytic shard prediction vs the DES total."""
        scale = max(abs(self.sim_time), 1e-300)
        return abs(self.predicted - self.sim_time) / scale


@dataclass
class MultiGpuReport:
    """Structured outcome of one multi-GPU differential sweep."""

    oracle: str = ORACLE
    entries: list[MultiGpuEntry] = field(default_factory=list)

    @property
    def mismatches(self) -> list[MultiGpuEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def shards_audited(self) -> int:
        return sum(e.shards for e in self.entries)

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        fuzz_cells = sum(1 for e in self.entries if e.fuzzed)
        lines = [
            f"multigpu vs {self.oracle}: {len(self.entries)} cells "
            f"({fuzz_cells} fuzzed fabrics, {self.shards_audited} shard "
            f"traces audited), {len(self.mismatches)} mismatch(es)"
        ]
        for e in self.entries:
            status = "ok" if e.ok else "MISMATCH"
            mode = "fuzz" if e.fuzzed else "clean"
            line = (
                f"  {e.app:12s} x {e.engine:32s} {status} [{mode}] "
                f"rel {e.rel_err:.2e}"
            )
            if e.detail:
                line += f" — {e.detail}"
            lines.append(line)
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.mismatches:
            named = ", ".join(f"({e.app}, {e.engine})" for e in self.mismatches)
            raise VerificationError(
                f"multigpu differential mismatch in {named}\n{self.summary()}"
            )


def run_multigpu_differential(
    data_bytes: int = 2 * MiB,
    seed: int = 7,
    config: Optional[EngineConfig] = None,
    apps: Optional[Iterable] = None,
    gpu_counts: Iterable[int] = (1, 2, 4),
    tol: float = MULTIGPU_SHARED_TOL,
    fuzz_iterations: int = 4,
) -> MultiGpuReport:
    """Validate the sharded scale-out engine against the serial oracle.

    Two phases, mirroring the analytic suite. The *clean matrix* runs
    every app across ``gpu_counts`` with dedicated links and (for K>1)
    a shared root complex, always through the true DES. Each cell must
    satisfy three laws at once:

    * the merged output matches ``cpu_serial`` bit-for-bit — sharding
      plus the cross-GPU merge is invisible to the result;
    * every shard's trace passes the full pipeline invariant battery and
      the per-shard byte ledgers sum to the run's counters
      (:func:`repro.verify.invariants.audit_sharded_run`);
    * the closed-form shard predictor prices the cell — dedicated links
      within :data:`MULTIGPU_DEDICATED_TOL` (exact bound family), shared
      links within ``tol`` (default :data:`MULTIGPU_SHARED_TOL`, sized
      for the fill/drain corner geometries the steady-state bounds
      cannot capture).

    The *fuzz loop* then draws ``fuzz_iterations`` random fabrics (GPU
    count, link topology, NUMA placement, chunk geometry) through
    :func:`repro.verify.fuzz.check_multigpu_differential`, each seeded
    ``random.Random(f"multigpu-{seed}-{case}")`` so any failure is
    reproducible from (seed, case) alone.
    """
    import random

    from repro.analytic import predict_run
    from repro.engines.multigpu import MultiGpuBigKernelEngine
    from repro.verify.fuzz import check_multigpu_differential
    from repro.verify.invariants import audit_sharded_run

    config = config or EngineConfig(chunk_bytes=512 * 1024)
    # shard traces only exist on the true DES; totals are fastpath-identical
    config = config.with_(fastpath=False)
    apps = list(apps) if apps is not None else [cls() for cls in ALL_APPS]
    oracle = CpuSerialEngine()
    report = MultiGpuReport()

    for app in apps:
        data = app.generate(n_bytes=data_bytes, seed=seed)
        ref = oracle.run(app, data, config)
        for n in gpu_counts:
            for shared in (False,) if n == 1 else (False, True):
                eng = MultiGpuBigKernelEngine(n, shared_link=shared)
                res = eng.run(app, data, config)
                ok, detail = compare_outputs(app, ref.output, res.output)
                problems = [detail] if detail else []
                problems += audit_sharded_run(res)
                entry = MultiGpuEntry(
                    app=app.name,
                    engine=eng.name,
                    ok=True,
                    sim_time=res.sim_time,
                    shards=len(res.shard_details or ()),
                    predicted=predict_run(app, data, config, eng).sim_time,
                )
                cell_tol = tol if shared else MULTIGPU_DEDICATED_TOL
                if entry.rel_err > cell_tol:
                    problems.append(
                        f"analytic rel err {entry.rel_err:.2e} > {cell_tol:g}"
                    )
                entry.ok = not problems
                entry.detail = "; ".join(problems)
                report.entries.append(entry)

    for case in range(fuzz_iterations):
        rng = random.Random(f"multigpu-{seed}-{case}")
        try:
            drawn = check_multigpu_differential(rng)
            report.entries.append(
                MultiGpuEntry(
                    app=drawn["app"],
                    engine=drawn["engine"],
                    ok=True,
                    sim_time=drawn["sim_time"],
                    shards=drawn["shards"],
                    predicted=drawn["sim_time"] * (1 + drawn["rel_err"]),
                    fuzzed=True,
                )
            )
        except VerificationError as exc:
            report.entries.append(
                MultiGpuEntry(
                    app="(fuzz)",
                    engine=f"seed {seed} case {case}",
                    ok=False,
                    detail=str(exc),
                    fuzzed=True,
                )
            )
    return report


# --------------------------------------------------------------------------
# serve mode: the multi-tenant serving layer vs one-shot oracle runs
# --------------------------------------------------------------------------


def _bit_equal(a, b) -> bool:
    """Exact structural equality (rtol 0): the serving layer's contract is
    that batching and caching are *invisible*, so no tolerance applies."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        a, b = np.asarray(a), np.asarray(b)
        return a.dtype == b.dtype and bool(np.array_equal(a, b))
    if isinstance(a, dict) and isinstance(b, dict):
        return set(a) == set(b) and all(_bit_equal(a[k], b[k]) for k in a)
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_bit_equal(x, y) for x, y in zip(a, b))
    return bool(a == b)


@dataclass
class ServeEntry:
    """One served request graded against its one-shot oracle."""

    req_id: int
    tenant: str
    app: str
    engine: str
    status: str
    ok: bool
    detail: str = ""


@dataclass
class ServeReport:
    """Structured outcome of one serve-vs-one-shot sweep."""

    entries: list[ServeEntry] = field(default_factory=list)
    cached: int = 0
    coalesced: int = 0
    served: int = 0
    engine_runs: int = 0
    #: typed SLO terminals from the overloaded phase (shed + predicted
    #: rejections) — not mismatches, but accounted and type-checked
    shed: int = 0
    rejected: int = 0

    @property
    def mismatches(self) -> list[ServeEntry]:
        return [e for e in self.entries if not e.ok]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def summary(self) -> str:
        lines = [
            f"serve vs one-shot: {len(self.entries)} grades "
            f"({self.served} served, {self.coalesced} coalesced, "
            f"{self.cached} cached; {self.engine_runs} engine runs; "
            f"slo phase shed {self.shed}, rejected {self.rejected}), "
            f"{len(self.mismatches)} mismatch(es)"
        ]
        for e in self.mismatches:
            lines.append(
                f"  req {e.req_id} [{e.tenant}] {e.app} x {e.engine} "
                f"({e.status}) MISMATCH — {e.detail}"
            )
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.mismatches:
            named = ", ".join(str(e.req_id) for e in self.mismatches)
            raise VerificationError(
                f"serve differential mismatch in request(s) {named}\n"
                f"{self.summary()}"
            )


def run_serve_differential(
    data_bytes: int = 512 * 1024,
    seed: int = 7,
    duration: float = 2.0,
    rate: float = 25.0,
) -> ServeReport:
    """Serve a short seeded trace and bit-compare every response.

    A repeat-heavy multi-tenant trace goes through a live
    :class:`~repro.serve.Server` with the full amortization stack engaged
    (run cache, batch coalescing, shared datasets, engine memos); then
    *every* completed response — served, coalesced, or cached alike — is
    compared against a fresh one-shot oracle (new app, newly generated
    dataset, new engine, no caches) for that exact job. ``sim_time`` must
    be exactly equal and outputs bit-equal with zero tolerance. The queue
    is sized above the trace so nothing is rejected: in this pillar a
    rejection or a failure is itself a mismatch.

    A second, *overloaded* phase then replays the same trace compressed
    into a burst with every tenant carrying a tight SLO (derived from the
    first phase's measured mean service time) through the EDF + admission
    + adaptive-batching stack: completed responses must still bit-equal
    the same oracles, while shed and predictively rejected responses must
    be properly *typed* terminals (a
    :class:`~repro.errors.SloViolationError` on the response) and the
    accounting identities must close exactly — the SLO machinery may drop
    work, but never silently and never incorrectly.
    """
    from repro.bench.sweep import RunCache
    from repro.errors import SloViolationError
    from repro.serve import (
        ServeConfig,
        Server,
        TraceSpec,
        generate_trace,
        oneshot_oracle,
        scale_trace,
        serve_trace,
        with_slo,
    )

    spec = TraceSpec(
        seed=seed, duration=duration, rate=rate, data_bytes=data_bytes
    )
    trace = generate_trace(spec)
    config = ServeConfig(max_queue=len(trace) + 1)
    # memory-only cache: the pillar must be hermetic, not a disk-state test
    with Server(config, cache=RunCache(disk=None)) as server:
        outcome = serve_trace(server, trace)

    jobs = {req.req_id: (req.tenant, req.job) for req in trace}
    oracles: dict = {}
    report = ServeReport(
        cached=outcome.metrics.cached,
        coalesced=outcome.metrics.coalesced,
        served=outcome.metrics.served,
        engine_runs=outcome.metrics.engine_runs,
    )
    def grade(resp, phase: str, slo_phase: bool) -> None:
        tenant, job = jobs[resp.req_id]
        entry = ServeEntry(
            req_id=resp.req_id,
            tenant=tenant,
            app=job.dataset.app,
            engine=job.engine.name,
            status=f"{phase}:{resp.status}",
            ok=True,
        )
        if resp.status in ("rejected", "failed", "shed"):
            if not slo_phase:
                # phase 1 is sized so nothing is rejected or dropped
                entry.ok = False
                entry.detail = resp.error or f"request {resp.status}"
            elif resp.status == "failed":
                entry.ok = False
                entry.detail = resp.error or "request failed"
            elif resp.status == "shed":
                report.shed += 1
                if not isinstance(resp.exception, SloViolationError):
                    entry.ok = False
                    entry.detail = (
                        "shed response lacks a typed SloViolationError"
                    )
            else:
                report.rejected += 1
                queue_full = resp.error == "queue full"
                typed = isinstance(resp.exception, SloViolationError)
                if not (queue_full or typed):
                    entry.ok = False
                    entry.detail = (
                        "rejection is neither queue-full nor a typed "
                        "SloViolationError"
                    )
        else:
            key = (job.dataset, job.engine, job.config)
            oracle = oracles.get(key)
            if oracle is None:
                oracle = oracles[key] = oneshot_oracle(job)
            problems = []
            if resp.result.sim_time != oracle.sim_time:
                problems.append(
                    f"sim_time {resp.result.sim_time!r} != "
                    f"{oracle.sim_time!r}"
                )
            if job.config.functional and not _bit_equal(
                resp.result.output, oracle.output
            ):
                problems.append(
                    f"output {describe_output(resp.result.output)} != "
                    f"{describe_output(oracle.output)}"
                )
            if problems:
                entry.ok = False
                entry.detail = "; ".join(problems)
        report.entries.append(entry)

    for resp in outcome.responses:
        grade(resp, "open", slo_phase=False)

    # --- phase 2: burst overload with tight SLOs through EDF + admission ---
    mean_service = outcome.makespan / max(outcome.metrics.completed, 1)
    slo_ms = 1000.0 * 5.0 * mean_service
    slo_config = ServeConfig(
        max_queue=max(8, len(trace) // 4),
        scheduling="edf",
        adaptive_batch=True,
    )
    with Server(
        slo_config,
        tenants=with_slo(spec.tenants, slo_ms),
        cache=RunCache(disk=None),
    ) as server:
        slo_outcome = serve_trace(server, scale_trace(trace, 1e-3))
    report.engine_runs += slo_outcome.metrics.engine_runs
    for resp in slo_outcome.responses:
        grade(resp, "slo", slo_phase=True)

    m = slo_outcome.metrics
    if m.submitted != m.admitted + m.rejected or m.admitted != (
        m.completed + m.failed + m.shed
    ):
        report.entries.append(
            ServeEntry(
                req_id=-1,
                tenant="*",
                app="*",
                engine="*",
                status="slo:accounting",
                ok=False,
                detail=(
                    f"identity violated: submitted={m.submitted} "
                    f"admitted={m.admitted} rejected={m.rejected} "
                    f"completed={m.completed} failed={m.failed} "
                    f"shed={m.shed}"
                ),
            )
        )
    return report
