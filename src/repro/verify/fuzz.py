"""Deterministic fuzz/property harness for the compiler and the pipeline.

Two generators, both driven by a seeded ``random.Random`` so every failure
is reproducible from (seed, case index) alone — Hypothesis is *not*
required (the Hypothesis-based suite in ``tests/test_kernelc_random.py``
explores the same space more aggressively when it is installed):

* :func:`random_kernel` draws a random kernelc IR program (nested loops,
  branches, address arithmetic over the loop variables, mapped loads
  feeding resident accumulators, mapped stores) and
  :func:`check_kernel_roundtrip` asserts the BigKernel compiler path —
  address-generation slice + gather + databuf execution + write-back —
  reproduces the original kernel's effects byte-for-byte. Kernels the
  slicer rejects exercise the full-transfer fallback window instead.
* :func:`random_chunk_schedule` / :func:`random_pipeline_config` draw a
  random chunk plan and scheduling knobs, run the 4/6-stage pipeline
  simulation, and feed the resulting timeline through every trace
  invariant checker.
* :func:`check_uvm_differential` draws a random unified-memory paging
  configuration (page size, fault-batch size, device-memory capacity,
  prefetch mode) and asserts the UVM engine's output matches the serial
  oracle, its timeline passes the invariant checkers, and its page-byte
  ledger conserves (migrated == evicted + resident, written-back == d2h).
* :func:`check_multigpu_differential` draws a random sharded fabric
  (GPU count, shared vs dedicated links, NUMA placement, chunk geometry)
  and asserts the scale-out engine's merged output matches the serial
  oracle, every shard's DES trace passes the invariant battery, the
  per-shard byte ledgers reconcile, and the analytic shard model prices
  the run within tolerance.

:func:`run_fuzz` bundles the loops into a :class:`FuzzReport`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.errors import SlicingError, VerificationError
from repro.hw.spec import DEFAULT_HARDWARE
from repro.kernelc.codegen import ExecutionContext, KernelInterpreter
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Store,
    Var,
)
from repro.kernelc.printer import render_kernel
from repro.kernelc.slicing import make_addrgen_kernel
from repro.kernelc.transform import make_databuf_kernel
from repro.kernelc.validate import validate_kernel
from repro.runtime.pipeline import ChunkWork, PipelineConfig, run_pipeline
from repro.verify.invariants import verify_pipeline_trace

SCHEMA = RecordSchema.packed(
    [("a", "f8"), ("b", "i4"), ("c", "i4"), ("d", "f8")], record_size=32
)
#: fields the kernel reads; stores only target field "c" of the thread's
#: own record (the streaming contract: no mapped read-after-write)
READ_FIELDS = ("a", "b", "d")
N_RECORDS = 12
ACC_SIZE = 8
TMP_NAMES = ("t0", "t1", "t2")


@dataclass
class FuzzFailure:
    """One failing fuzz case, reproducible from (kind, seed, case)."""

    kind: str  # "ir" | "pipeline" | "uvm" | "multigpu"
    seed: int
    case: int
    message: str
    program: str = ""

    def __str__(self) -> str:
        head = f"[{self.kind} seed={self.seed} case={self.case}] {self.message}"
        return head + (f"\n{self.program}" if self.program else "")


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    seed: int = 0
    ir_cases: int = 0
    ir_sliced: int = 0
    #: IR cases the vectorized backend admitted (and matched exactly)
    ir_compiled: int = 0
    pipeline_cases: int = 0
    uvm_cases: int = 0
    multigpu_cases: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        lines = [
            f"fuzz seed={self.seed}: {self.ir_cases} IR case(s) "
            f"({self.ir_sliced} sliced, {self.ir_compiled} compiled), "
            f"{self.pipeline_cases} pipeline case(s), "
            f"{self.uvm_cases} uvm case(s), "
            f"{self.multigpu_cases} multigpu case(s), "
            f"{len(self.failures)} failure(s)"
        ]
        lines += [f"  {f}" for f in self.failures[:10]]
        if len(self.failures) > 10:
            lines.append(f"  ... and {len(self.failures) - 10} more")
        return "\n".join(lines)

    def raise_if_failed(self) -> None:
        if self.failures:
            raise VerificationError(self.summary())


# ---------------------------------------------------------------------------
# random IR programs
# ---------------------------------------------------------------------------

def _index_expr(rng: random.Random):
    """Address arithmetic from the loop variable only (sliceable)."""
    return rng.choice(
        [
            Var("i"),
            BinOp("%", BinOp("+", Var("i"), Const(1)), Const(N_RECORDS)),
            BinOp("%", BinOp("*", Var("i"), Const(3)), Const(N_RECORDS)),
            BinOp("-", BinOp("-", Var("end"), Const(1)), Var("i")),
        ]
    )


def _load_stmt(rng: random.Random):
    return Assign(
        rng.choice(TMP_NAMES),
        Load(MappedRef("arr", _index_expr(rng), rng.choice(READ_FIELDS))),
    )


def _compute_stmt(rng: random.Random):
    val = rng.choice([Var(n) for n in TMP_NAMES] + [Const(1), Const(2.5)])
    if rng.random() < 0.5:
        idx = rng.choice([Var("i"), Const(3)])
        return AtomicAdd("acc", BinOp("%", idx, Const(ACC_SIZE)), val)
    name = rng.choice(TMP_NAMES)
    return Assign(name, BinOp("+", Var(name), val))


def _store_stmt(rng: random.Random):
    return Store(
        MappedRef("arr", Var("i"), "c"),
        BinOp("%", Var(rng.choice(TMP_NAMES)), Const(1000)),
    )


def _atom(rng: random.Random):
    return rng.choice([_load_stmt, _compute_stmt, _store_stmt])(rng)


def _guarded(rng: random.Random):
    then = tuple(_atom(rng) for _ in range(rng.randint(1, 3)))
    els = tuple(_atom(rng) for _ in range(rng.randint(0, 2)))
    return If(BinOp(">", Var(rng.choice(("t0", "t1"))), Const(0)), then, els)


def _inner_loop(rng: random.Random):
    def inner_stmt():
        if rng.random() < 0.5:
            return Assign(
                rng.choice(TMP_NAMES),
                Load(
                    MappedRef(
                        "arr",
                        BinOp(
                            "%",
                            BinOp("+", Var("i"), Var("j")),
                            Const(N_RECORDS),
                        ),
                        rng.choice(READ_FIELDS),
                    )
                ),
            )
        return _compute_stmt(rng)

    body = tuple(inner_stmt() for _ in range(rng.randint(1, 3)))
    return For("j", Const(0), Const(rng.randint(1, 3)), body)


def random_kernel(rng: random.Random) -> Kernel:
    """One random (sliceable-by-construction) per-thread kernel."""
    inits = tuple(Assign(n, Const(0)) for n in TMP_NAMES)
    body = [_load_stmt(rng)]
    for _ in range(rng.randint(0, 6)):
        roll = rng.random()
        if roll < 0.6:
            body.append(_atom(rng))
        elif roll < 0.8:
            body.append(_guarded(rng))
        else:
            body.append(_inner_loop(rng))
    loop = For("i", Var("start"), Var("end"), tuple(body))
    return Kernel(
        "fuzz_kernel",
        inits + (loop,),
        mapped={"arr": SCHEMA},
        resident=("acc",),
    )


def _make_ctx(seed: int) -> ExecutionContext:
    rng = np.random.default_rng(seed)
    arr = np.zeros(N_RECORDS, dtype=SCHEMA.numpy_dtype())
    arr["a"] = rng.uniform(-5, 5, N_RECORDS)
    arr["b"] = rng.integers(-100, 100, N_RECORDS)
    arr["c"] = rng.integers(-100, 100, N_RECORDS)
    arr["d"] = rng.uniform(-5, 5, N_RECORDS)
    return ExecutionContext(
        mapped={"arr": arr}, resident={"acc": np.zeros(ACC_SIZE, dtype=np.float64)}
    )


def check_kernel_roundtrip(kernel: Kernel, data_seed: int) -> bool:
    """Original execution == slice + gather + databuf (+ write-back).

    Returns True when the kernel took the sliced path, False for the
    full-transfer fallback; raises :class:`VerificationError` on any
    divergence.
    """
    validate_kernel(kernel)
    ctx_orig = _make_ctx(data_seed)
    orig = KernelInterpreter(kernel, ctx_orig)
    orig.run_thread(0, 0, N_RECORDS)

    ctx_bk = _make_ctx(data_seed)
    view = ctx_bk.mapped["arr"].view(np.uint8).reshape(-1)
    db = KernelInterpreter(make_databuf_kernel(kernel), ctx_bk)
    try:
        addrgen = make_addrgen_kernel(kernel)
    except SlicingError:
        # unsliceable: whole-range fallback window instead of a gather
        db.fallback_windows["arr"] = (0, view.copy())
        db.run_thread(0, 0, N_RECORDS)
        sliced = False
    else:
        ag = KernelInterpreter(addrgen, ctx_bk)
        ag.run_thread(0, 0, N_RECORDS)
        if len(ag.read_addresses) != orig.stats.n_mapped_reads:
            raise VerificationError(
                f"slice emitted {len(ag.read_addresses)} read addresses, "
                f"original performed {orig.stats.n_mapped_reads} reads"
            )
        # gather from the pre-run state, exactly like the assembly stage
        values = [
            view[r.offset : r.offset + r.nbytes].view(r.dtype)[0]
            for r in ag.read_addresses
        ]
        db.load_data(values)
        db.run_thread(0, 0, N_RECORDS)
        if len(ag.write_addresses) != len(db.write_queue):
            raise VerificationError(
                f"slice emitted {len(ag.write_addresses)} write addresses, "
                f"databuf queued {len(db.write_queue)} writes"
            )
        sliced = True

    if len(db.write_queue) != orig.stats.n_mapped_writes:
        raise VerificationError(
            f"databuf queued {len(db.write_queue)} writes, original "
            f"performed {orig.stats.n_mapped_writes}"
        )
    for rec, value in (
        [(r, v) for r, (_, v) in zip(ag.write_addresses, db.write_queue)]
        if sliced
        else db.write_queue
    ):
        view[rec.offset : rec.offset + rec.nbytes] = np.asarray(
            [value], dtype=rec.dtype
        ).view(np.uint8)

    if not np.array_equal(ctx_orig.resident["acc"], ctx_bk.resident["acc"]):
        raise VerificationError(
            f"resident state diverged: {ctx_orig.resident['acc']} vs "
            f"{ctx_bk.resident['acc']}"
        )
    if not np.array_equal(
        ctx_orig.mapped["arr"].view(np.uint8), ctx_bk.mapped["arr"].view(np.uint8)
    ):
        raise VerificationError("mapped array bytes diverged after write-back")
    return sliced


def check_kernel_compiled(kernel: Kernel, data_seed: int) -> bool:
    """Interpreter == vectorized backend (when the analysis admits it).

    Returns True when the kernel compiled, False for the documented
    interpreter fallback; raises :class:`VerificationError` on any
    divergence in outputs, InterpStats counters, or addr-gen streams.
    """
    from repro.kernelc.compile import compile_kernel, try_compile_kernel

    ctx_i = _make_ctx(data_seed)
    ctx_c = _make_ctx(data_seed)
    compiled = try_compile_kernel(
        kernel, resident_kinds={"acc": "f"}
    )
    if compiled is None:
        return False

    interp = KernelInterpreter(kernel, ctx_i)
    interp.run_thread(0, 0, N_RECORDS)
    run = compiled.run_range(ctx_c, 0, N_RECORDS)

    for f in (
        "n_ops", "n_calls", "n_mapped_reads", "n_mapped_writes",
        "n_resident_accesses", "mapped_read_bytes", "mapped_write_bytes",
    ):
        a, b = getattr(interp.stats, f), getattr(run.stats, f)
        if a != b:
            raise VerificationError(f"compiled stats.{f} {b} != interp {a}")
    if not np.allclose(
        ctx_i.resident["acc"], ctx_c.resident["acc"], rtol=0, atol=1e-9
    ):
        raise VerificationError(
            f"compiled resident state diverged: {ctx_c.resident['acc']} vs "
            f"{ctx_i.resident['acc']}"
        )
    if not np.array_equal(
        ctx_i.mapped["arr"].view(np.uint8), ctx_c.mapped["arr"].view(np.uint8)
    ):
        raise VerificationError("compiled mapped array bytes diverged")

    try:
        addrgen = make_addrgen_kernel(kernel)
    except SlicingError:
        return True
    ag_compiled = try_compile_kernel(addrgen, resident_kinds={"acc": "f"})
    if ag_compiled is None:
        return True
    ag = KernelInterpreter(addrgen, _make_ctx(data_seed))
    ag.run_thread(0, 0, N_RECORDS)
    ag_run = ag_compiled.run_range(_make_ctx(data_seed), 0, N_RECORDS)
    r_i = np.asarray([r.offset for r in ag.read_addresses], dtype=np.int64)
    w_i = np.asarray([r.offset for r in ag.write_addresses], dtype=np.int64)
    if not np.array_equal(ag_run.read_offsets(), r_i):
        raise VerificationError("compiled read address stream diverged")
    if not np.array_equal(ag_run.write_offsets(), w_i):
        raise VerificationError("compiled write address stream diverged")
    return True


# ---------------------------------------------------------------------------
# random pipeline schedules
# ---------------------------------------------------------------------------

def random_chunk_schedule(rng: random.Random) -> list[ChunkWork]:
    """A random chunk plan, including zero-cost and write-back corners."""
    n = rng.randint(1, 8)
    writes = rng.random() < 0.4
    chunks = []
    for i in range(n):
        wb = rng.randint(1, 64 * 1024) if writes and rng.random() < 0.8 else 0
        chunks.append(
            ChunkWork(
                index=i,
                t_addr_gen=rng.choice([0.0, rng.uniform(1e-6, 1e-3)]),
                addr_bytes_d2h=rng.choice([0, rng.randint(1, 256 * 1024)]),
                t_assembly=rng.uniform(0.0, 1e-3),
                xfer_bytes=rng.randint(1, 4 * 1024 * 1024),
                t_compute=rng.uniform(0.0, 1e-3),
                write_bytes=wb,
                t_scatter=rng.uniform(0.0, 1e-4) if wb else 0.0,
                xfer_segments=rng.randint(1, 4),
            )
        )
    return chunks


def random_pipeline_config(rng: random.Random) -> PipelineConfig:
    return PipelineConfig(
        ring_depth=rng.randint(2, 5),
        cpu_workers=rng.randint(1, 4),
        sync_overhead=rng.choice([0.0, rng.uniform(0.0, 1e-5)]),
    )


def check_pipeline_case(rng: random.Random) -> None:
    """Simulate one random schedule and invariant-check its timeline."""
    chunks = random_chunk_schedule(rng)
    config = random_pipeline_config(rng)
    result = run_pipeline(DEFAULT_HARDWARE, chunks, config)
    report = verify_pipeline_trace(
        result.trace,
        gpu_capacity=2,
        cpu_workers=config.cpu_workers,
        ring_depth=config.ring_depth,
        chunks=chunks,
        bytes_h2d=result.bytes_h2d,
        bytes_d2h=result.bytes_d2h,
    )
    report.raise_if_failed()


# ---------------------------------------------------------------------------
# random UVM paging configurations
# ---------------------------------------------------------------------------

def check_uvm_differential(rng: random.Random) -> None:
    """One random paged-UVM configuration against the serial oracle.

    Draws page geometry, fault-batch size, device-memory capacity, and
    prefetch mode; the run's output must match ``cpu_serial``, its
    timeline must pass every invariant checker, and the page table's
    byte ledger must reconcile with the PCIe byte counters.
    """
    from repro.apps import get_app
    from repro.engines import CpuSerialEngine, EngineConfig, GpuUvmEngine, UvmSpec
    from repro.units import KiB, MiB
    from repro.verify.invariants import verify_run

    app = get_app(rng.choice(("netflix", "dna", "kmeans", "mastercard")))
    data = app.generate(
        n_bytes=rng.choice((256 * KiB, 512 * KiB, 1 * MiB)),
        seed=rng.randint(0, 999),
    )
    spec = UvmSpec(
        page_bytes=rng.choice((4 * KiB, 16 * KiB, 64 * KiB)),
        batch_pages=rng.choice((4, 8, 16)),
        prefetch_hit=rng.choice((0.0, 0.5, 1.0)),
        device_mem_bytes=rng.choice((None, 256 * KiB, 1 * MiB)),
        max_window=rng.choice((2, 8, 32)),
    )
    config = EngineConfig(
        chunk_bytes=256 * KiB,
        prefetch=rng.choice(("none", "readahead", "learned")),
    )
    ref = CpuSerialEngine().run(app, data, config)
    res = GpuUvmEngine(spec).run(app, data, config)
    if not app.outputs_equal(ref.output, res.output):
        raise VerificationError(
            f"uvm output diverged from {ref.engine} on {app.name} "
            f"(spec={spec}, prefetch={config.prefetch})"
        )
    verify_run(res, config).raise_if_failed()
    paging = res.metrics.notes["paging"]
    if res.metrics.bytes_h2d != paging["migrated_bytes"]:
        raise VerificationError(
            f"h2d bytes {res.metrics.bytes_h2d} != migrated ledger "
            f"{paging['migrated_bytes']}"
        )
    if paging["migrated_bytes"] != paging["evicted_bytes"] + paging["resident_bytes"]:
        raise VerificationError(
            f"page ledger leaks: migrated {paging['migrated_bytes']} != "
            f"evicted {paging['evicted_bytes']} + resident "
            f"{paging['resident_bytes']}"
        )
    if res.metrics.bytes_d2h != paging["writeback_bytes"]:
        raise VerificationError(
            f"d2h bytes {res.metrics.bytes_d2h} != writeback ledger "
            f"{paging['writeback_bytes']}"
        )


# ---------------------------------------------------------------------------
# random multi-gpu fabrics
# ---------------------------------------------------------------------------

def check_multigpu_differential(rng: random.Random) -> dict:
    """One random sharded fabric against the serial oracle.

    Draws the GPU count, link topology (dedicated per-GPU links vs one
    shared root complex), NUMA placement mode, and chunk geometry, then
    runs the scale-out engine as a true DES. The merged output must
    match ``cpu_serial`` bit-for-bit, every shard's trace must pass the
    full pipeline invariant battery with the per-shard byte ledgers
    summing to the run's counters, and the closed-form shard predictor
    must price the run within the analytic tolerance. Returns a small
    description of the drawn cell for reporting.
    """
    from repro.analytic import predict_run
    from repro.apps import get_app
    from repro.engines import CpuSerialEngine, EngineConfig
    from repro.engines.multigpu import MultiGpuBigKernelEngine
    from repro.units import KiB, MiB
    from repro.verify.invariants import audit_sharded_run

    app = get_app(rng.choice(("netflix", "wordcount", "kmeans", "mastercard")))
    data = app.generate(
        n_bytes=rng.choice((512 * KiB, 1 * MiB, 2 * MiB)),
        seed=rng.randint(0, 999),
    )
    engine = MultiGpuBigKernelEngine(
        n_gpus=rng.choice((2, 3, 4, 8)),
        shared_link=rng.random() < 0.5,
        numa_aware=rng.random() < 0.75,
    )
    # shard traces only exist on the true DES (totals are identical)
    config = EngineConfig(
        chunk_bytes=rng.choice((64, 128, 256)) * KiB,
        ring_depth=rng.randint(2, 5),
        fastpath=False,
    )
    ref = CpuSerialEngine().run(app, data, config)
    res = engine.run(app, data, config)
    if not app.outputs_equal(ref.output, res.output):
        raise VerificationError(
            f"{engine.name} merged output diverged from {ref.engine} "
            f"on {app.name} (chunk={config.chunk_bytes // KiB}K)"
        )
    problems = audit_sharded_run(res)
    if problems:
        raise VerificationError(
            f"{engine.name} on {app.name}: " + "; ".join(problems)
        )
    predicted = predict_run(app, data, config, engine).sim_time
    rel_err = abs(predicted - res.sim_time) / max(abs(res.sim_time), 1e-300)
    # fuzzed fabrics are corner geometries by design (2-3 chunks per
    # shard, numa-blind 8-GPU splits), so both link types get the
    # fill/drain-sized tolerance rather than the clean-matrix bounds
    from repro.verify.differential import MULTIGPU_SHARED_TOL

    if rel_err > MULTIGPU_SHARED_TOL:
        raise VerificationError(
            f"analytic shard model off by {rel_err:.2e} "
            f"(> {MULTIGPU_SHARED_TOL:g}) "
            f"for {engine.name} on {app.name} "
            f"(chunk={config.chunk_bytes // KiB}K rd={config.ring_depth})"
        )
    return {
        "app": app.name,
        "engine": engine.name,
        "sim_time": res.sim_time,
        "shards": len(res.shard_details),
        "rel_err": rel_err,
    }


# ---------------------------------------------------------------------------
# entry point
# ---------------------------------------------------------------------------

def run_fuzz(
    ir_iterations: int = 25,
    pipeline_iterations: int = 25,
    seed: int = 0,
    uvm_iterations: int = 10,
    multigpu_iterations: int = 0,
) -> FuzzReport:
    """Run the fuzz loops; failures carry the reproducing (seed, case)."""
    report = FuzzReport(seed=seed)
    for case in range(ir_iterations):
        # string seeds hash via sha512 — stable across interpreter runs
        rng = random.Random(f"ir-{seed}-{case}")
        kernel: Optional[Kernel] = None
        try:
            kernel = random_kernel(rng)
            if check_kernel_roundtrip(kernel, data_seed=seed + case):
                report.ir_sliced += 1
            if check_kernel_compiled(kernel, data_seed=seed + case):
                report.ir_compiled += 1
        except VerificationError as exc:
            report.failures.append(
                FuzzFailure(
                    "ir",
                    seed,
                    case,
                    str(exc),
                    render_kernel(kernel) if kernel is not None else "",
                )
            )
        report.ir_cases += 1
    for case in range(pipeline_iterations):
        rng = random.Random(f"pipeline-{seed}-{case}")
        try:
            check_pipeline_case(rng)
        except VerificationError as exc:
            report.failures.append(FuzzFailure("pipeline", seed, case, str(exc)))
        report.pipeline_cases += 1
    for case in range(uvm_iterations):
        rng = random.Random(f"uvm-{seed}-{case}")
        try:
            check_uvm_differential(rng)
        except VerificationError as exc:
            report.failures.append(FuzzFailure("uvm", seed, case, str(exc)))
        report.uvm_cases += 1
    for case in range(multigpu_iterations):
        rng = random.Random(f"multigpu-{seed}-{case}")
        try:
            check_multigpu_differential(rng)
        except VerificationError as exc:
            report.failures.append(FuzzFailure("multigpu", seed, case, str(exc)))
        report.multigpu_cases += 1
    return report
