"""MasterCard Affinity: merchants co-visited by a target merchant's
customers.

Purchase transactions are variable-length delimiter-separated text records.
Two passes over the mapped data: pass 1 collects the customers of target
merchant X; pass 2 counts, per other merchant, visits by those customers.

Two variants (paper Section V):

* **Plain** — no index: the kernel must scan every byte to find record
  boundaries, so all data is transferred (100% read) and the only BigKernel
  benefits are pipelining + coalescing. The per-thread byte walk is a
  perfect stride-1 pattern, so pattern recognition still removes the
  address traffic (Table II: 57%).
* **Indexed** — a record-offset index lets the kernel read just the
  fixed-width card and merchant key fields (~25% of the data), unlocking
  the transfer-volume reduction; the index-driven addresses are irregular,
  so pattern recognition does not apply (Table II: NA).

Record format (synthetic): ``CCCCCCCC|MMMMMMMM|<variable amount/meta>;``
with zero-padded 8-digit card and merchant keys, matching real layouts
where key fields are fixed-width inside variable records.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application, register
from repro.kernelc.codegen import ExecutionContext
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    RecordSchema,
    ResidentLoad,
    ResidentStore,
    Var,
)
from repro.units import GB

BYTES = RecordSchema.bytes_schema()

N_CARDS = 1 << 14
N_MERCHANTS = 1 << 10
KEY_WIDTH = 8
SEP = ord(";")
BAR = ord("|")


def _render_transactions(
    rng: np.random.Generator, cards: np.ndarray, merchants: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Render parsed transactions to delimiter-separated text.

    Returns (text bytes, record start offsets).
    """
    tails = rng.integers(28, 62, cards.size)
    pieces = []
    for c, m, t in zip(cards.tolist(), merchants.tolist(), tails.tolist()):
        pieces.append(b"%08d|%08d|%s;" % (c, m, b"9" * t))
    text = np.frombuffer(b"".join(pieces), dtype=np.uint8)
    lens = np.array([len(p) for p in pieces], dtype=np.int64)
    starts = np.concatenate([[0], np.cumsum(lens)[:-1]])
    return text, starts


def _generate_common(app_name: str, n_bytes: int, seed: int) -> AppData:
    rng = np.random.default_rng(seed)
    avg_record = KEY_WIDTH * 2 + 2 + 45  # keys + separators + avg tail
    n = max(4, int(n_bytes / avg_record))
    cards = rng.integers(0, N_CARDS, n)
    ranks = np.arange(1, N_MERCHANTS + 1, dtype=np.float64)
    probs = ranks**-1.1
    probs /= probs.sum()
    merchants = rng.choice(N_MERCHANTS, size=n, p=probs)
    target = int(merchants[0])  # guaranteed to occur
    text, starts = _render_transactions(rng, cards, merchants)
    arr = np.zeros(text.size, dtype=BYTES.numpy_dtype())
    arr["byte"] = text
    return AppData(
        app=app_name,
        mapped={"transactions": arr},
        schemas={"transactions": BYTES},
        resident={
            "customers": np.zeros(N_CARDS, dtype=np.int64),
            "counts": np.zeros(N_MERCHANTS, dtype=np.int64),
            "record_index": starts,
        },
        params={"target": target, "numT": n, "pass_idx": 0},
        primary="transactions",
        meta={
            "cards": cards,
            "merchants": merchants,
            "record_starts": starts,
            "avg_record": text.size / n,
        },
    )


class _MastercardBase(Application):
    """Shared two-pass functional kernel over parsed transaction views."""

    writes_mapped = False
    n_passes = 2

    def make_state(self, data: AppData) -> Any:
        return {
            "customers": np.zeros(N_CARDS, dtype=bool),
            "counts": np.zeros(N_MERCHANTS, dtype=np.int64),
            "pass": 0,
        }

    def start_pass(self, data: AppData, state: Any, pass_idx: int) -> None:
        state["pass"] = pass_idx

    def _record_range(self, data: AppData, lo: int, hi: int) -> tuple[int, int]:
        """Map a unit range to a record range (identity for record units)."""
        return lo, hi

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        rlo, rhi = self._record_range(data, lo, hi)
        cards = data.meta["cards"][rlo:rhi]
        merchants = data.meta["merchants"][rlo:rhi]
        target = data.params["target"]
        if state["pass"] == 0:
            state["customers"][cards[merchants == target]] = True
        else:
            mask = state["customers"][cards] & (merchants != target)
            np.add.at(state["counts"], merchants[mask], 1)

    def finalize(self, data: AppData, state: Any) -> np.ndarray:
        return state["counts"]

    def outputs_equal(self, a: Any, b: Any) -> bool:
        return bool(np.array_equal(a, b))


@register
class MastercardAffinityApp(_MastercardBase):
    """Plain variant: byte-scanning over variable-length records."""

    name = "mastercard"
    display_name = "MasterCard Affinity"
    paper_data_bytes = int(6.4 * GB)
    #: the byte-scanner's parser state (card/merch/fld) is loop-carried
    #: across records, so the vectorized backend rejects it by design
    compiled_expected = False

    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        return _generate_common(self.name, n_bytes or self.default_bytes(), seed)

    # units are BYTES: the kernel walks every byte
    def n_units(self, data: AppData) -> int:
        return int(data.mapped["transactions"].shape[0])

    def chunk_bounds(self, data: AppData, chunk_units: int) -> list[tuple[int, int]]:
        """Byte chunks aligned to record separators."""
        text = data.mapped["transactions"]["byte"]
        n = text.size
        bounds = []
        lo = 0
        while lo < n:
            hi = min(lo + chunk_units, n)
            if hi < n:
                nxt = np.nonzero(text[hi:] == SEP)[0]
                hi = (hi + int(nxt[0]) + 1) if nxt.size else n
            bounds.append((lo, hi))
            lo = hi
        return bounds

    def _record_range(self, data: AppData, lo: int, hi: int) -> tuple[int, int]:
        starts = data.meta["record_starts"]
        rlo = int(np.searchsorted(starts, lo, side="left"))
        rhi = int(np.searchsorted(starts, hi, side="left"))
        return rlo, rhi

    def access_profile(self, data: AppData) -> AccessProfile:
        # NOTE: processing units are BYTES (the kernel must scan everything
        # to find the delimiters), so the profile is per byte.
        avg = float(data.meta["avg_record"])
        return AccessProfile(
            record_bytes=1.0,
            read_bytes_per_record=1.0,  # must scan everything
            write_bytes_per_record=0.0,
            reads_per_record=1.0,
            writes_per_record=0.0,
            elem_bytes=1,
            # per-byte parsing diverges within warps (delimiter branches):
            # divergence-adjusted op count
            gpu_ops_per_record=40.0 + 40.0 / avg,
            cpu_ops_per_record=20.0 + 40.0 / avg,
            resident_bytes_per_record=16.0 / avg,
            pattern_friendly=True,  # stride-1 byte walk
            sliceable=True,
            variable_length=True,
            passes=2,
            gather_granularity_bytes=4096.0,  # stride-1 runs bulk-copy
            gpu_divergence=24.0,  # per-byte delimiter branches
        )

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        return np.arange(lo, hi, dtype=np.int64)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        """Byte-scanning two-pass parser; digits accumulate into keys."""
        digit = lambda: BinOp("-", Var("c"), Const(ord("0")))
        body = (
            Assign("card", Const(0)),
            Assign("merch", Const(0)),
            Assign("fld", Const(0)),
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("c", Load(MappedRef("transactions", Var("i"), "byte"))),
                    If(
                        BinOp("==", Var("c"), Const(BAR)),
                        (Assign("fld", BinOp("+", Var("fld"), Const(1))),),
                        (
                            If(
                                BinOp("==", Var("c"), Const(SEP)),
                                (
                                    If(
                                        BinOp("==", Param("pass_idx"), Const(0)),
                                        (
                                            If(
                                                BinOp(
                                                    "==",
                                                    Var("merch"),
                                                    Param("target"),
                                                ),
                                                (
                                                    ResidentStore(
                                                        "customers",
                                                        Var("card"),
                                                        Const(1),
                                                    ),
                                                ),
                                            ),
                                        ),
                                        (
                                            If(
                                                BinOp(
                                                    "and",
                                                    BinOp(
                                                        "==",
                                                        ResidentLoad(
                                                            "customers", Var("card")
                                                        ),
                                                        Const(1),
                                                    ),
                                                    BinOp(
                                                        "!=",
                                                        Var("merch"),
                                                        Param("target"),
                                                    ),
                                                ),
                                                (
                                                    AtomicAdd(
                                                        "counts",
                                                        Var("merch"),
                                                        Const(1),
                                                    ),
                                                ),
                                            ),
                                        ),
                                    ),
                                    Assign("card", Const(0)),
                                    Assign("merch", Const(0)),
                                    Assign("fld", Const(0)),
                                ),
                                (
                                    If(
                                        BinOp("==", Var("fld"), Const(0)),
                                        (
                                            Assign(
                                                "card",
                                                BinOp(
                                                    "+",
                                                    BinOp("*", Var("card"), Const(10)),
                                                    digit(),
                                                ),
                                            ),
                                        ),
                                        (
                                            If(
                                                BinOp("==", Var("fld"), Const(1)),
                                                (
                                                    Assign(
                                                        "merch",
                                                        BinOp(
                                                            "+",
                                                            BinOp(
                                                                "*",
                                                                Var("merch"),
                                                                Const(10),
                                                            ),
                                                            digit(),
                                                        ),
                                                    ),
                                                ),
                                            ),
                                        ),
                                    ),
                                ),
                            ),
                        ),
                    ),
                ),
            ),
        )
        return Kernel(
            name="affinityKernel",
            body=body,
            mapped={"transactions": BYTES},
            resident=("customers", "counts"),
            params=("target", "pass_idx"),
        )

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        return ExecutionContext(
            mapped={"transactions": data.mapped["transactions"]},
            resident={
                "customers": np.zeros(N_CARDS, dtype=np.int64),
                "counts": np.zeros(N_MERCHANTS, dtype=np.int64),
            },
            params=dict(data.params),
        )

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> np.ndarray:
        return ctx.resident["counts"]


@register
class MastercardIndexedApp(_MastercardBase):
    """Indexed variant: the record index exposes the two key fields."""

    name = "mastercard_indexed"
    display_name = "MasterCard Affinity (indexed)"
    paper_data_bytes = int(6.4 * GB)

    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        return _generate_common(self.name, n_bytes or self.default_bytes(), seed)

    # units are RECORDS: the index removes the need to scan
    def n_units(self, data: AppData) -> int:
        return int(data.meta["cards"].size)

    def access_profile(self, data: AppData) -> AccessProfile:
        avg = float(data.meta["avg_record"])
        return AccessProfile(
            record_bytes=avg,
            read_bytes_per_record=2 * KEY_WIDTH,  # ~25% of the record
            write_bytes_per_record=0.0,
            reads_per_record=2,
            writes_per_record=0.0,
            elem_bytes=KEY_WIDTH,
            gpu_ops_per_record=2.0 * KEY_WIDTH * 6 + 30.0,
            cpu_ops_per_record=2.0 * KEY_WIDTH * 7 + 35.0,
            resident_bytes_per_record=24.0,  # index reads + table updates
            pattern_friendly=False,  # index-driven irregular strides
            sliceable=True,
            variable_length=True,
            passes=2,
            gather_granularity_bytes=float(KEY_WIDTH),
            addresses_per_record=2.0,  # two key-field spans per record
            gpu_divergence=6.0,
        )

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        starts = data.meta["record_starts"][lo:hi]
        offs = np.stack([starts, starts + KEY_WIDTH + 1], axis=1)
        return offs.reshape(-1)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        """Index-driven key reads; addresses come from the resident index."""
        digits_of = lambda base_var, out: tuple(
            s
            for j in range(KEY_WIDTH)
            for s in (
                Assign(
                    "c",
                    Load(
                        MappedRef(
                            "transactions",
                            BinOp("+", Var(base_var), Const(j)),
                            "byte",
                        )
                    ),
                ),
                Assign(
                    out,
                    BinOp(
                        "+",
                        BinOp("*", Var(out), Const(10)),
                        BinOp("-", Var("c"), Const(ord("0"))),
                    ),
                ),
            )
        )
        body = (
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("rs", ResidentLoad("record_index", Var("i"))),
                    Assign("ms", BinOp("+", Var("rs"), Const(KEY_WIDTH + 1))),
                    Assign("card", Const(0)),
                    Assign("merch", Const(0)),
                )
                + digits_of("rs", "card")
                + digits_of("ms", "merch")
                + (
                    If(
                        BinOp("==", Param("pass_idx"), Const(0)),
                        (
                            If(
                                BinOp("==", Var("merch"), Param("target")),
                                (ResidentStore("customers", Var("card"), Const(1)),),
                            ),
                        ),
                        (
                            If(
                                BinOp(
                                    "and",
                                    BinOp(
                                        "==",
                                        ResidentLoad("customers", Var("card")),
                                        Const(1),
                                    ),
                                    BinOp("!=", Var("merch"), Param("target")),
                                ),
                                (AtomicAdd("counts", Var("merch"), Const(1)),),
                            ),
                        ),
                    ),
                ),
            ),
        )
        return Kernel(
            name="affinityIndexedKernel",
            body=body,
            mapped={"transactions": BYTES},
            resident=("customers", "counts", "record_index"),
            params=("target", "pass_idx"),
        )

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        return ExecutionContext(
            mapped={"transactions": data.mapped["transactions"]},
            resident={
                "customers": np.zeros(N_CARDS, dtype=np.int64),
                "counts": np.zeros(N_MERCHANTS, dtype=np.int64),
                "record_index": data.meta["record_starts"],
            },
            params=dict(data.params),
        )

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> np.ndarray:
        return ctx.resident["counts"]
