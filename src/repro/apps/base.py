"""Application base classes and the access-characterization contract.

Every app provides three synchronized views of the same computation:

1. **Vectorized kernel** — ``make_state`` / ``process_chunk`` / ``finalize``:
   NumPy-speed semantics used by every engine for functional output (all
   five schemes must produce identical results; engines differ in *when and
   what* they move, which the simulator prices).
2. **Kernel IR** — ``kernel()`` + ``make_ir_context()``: the same program in
   :mod:`repro.kernelc` IR, used to exercise the real compiler
   transformations; tests cross-validate it against the vectorized kernel
   on small inputs.
3. **Access characterization** — ``access_profile()`` and
   ``chunk_read_offsets()``: what the kernel touches, feeding Table I, the
   pattern recognizer, the assembly stage and the coalescing model.
"""

from __future__ import annotations

import abc
import functools
import hashlib
import itertools
from dataclasses import dataclass, field
from typing import Any, Optional

import numpy as np

from repro.apps.datagen import DATAGEN_VERSION
from repro.errors import ApplicationError
from repro.kernelc.codegen import ExecutionContext
from repro.kernelc.ir import Kernel, RecordSchema

#: default down-scaling of the paper's dataset sizes (4.5-6.4 GB -> tens of MB)
DEFAULT_SCALE = 1.0 / 100.0


@dataclass
class AppData:
    """One generated dataset instance."""

    app: str
    #: mapped (streamed) structures: name -> structured array
    mapped: dict[str, np.ndarray]
    #: schemas of the mapped structures
    schemas: dict[str, RecordSchema]
    #: GPU-resident structures (copied once, not streamed)
    resident: dict[str, np.ndarray] = field(default_factory=dict)
    #: scalar kernel parameters
    params: dict[str, Any] = field(default_factory=dict)
    #: name of the primary streamed structure
    primary: str = ""
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def primary_array(self) -> np.ndarray:
        return self.mapped[self.primary]

    @property
    def n_records(self) -> int:
        return int(self.primary_array.shape[0])

    @property
    def record_bytes(self) -> int:
        return self.schemas[self.primary].record_size

    @property
    def total_mapped_bytes(self) -> int:
        return sum(
            arr.shape[0] * self.schemas[name].record_size
            for name, arr in self.mapped.items()
        )

    def byte_view(self, name: Optional[str] = None) -> np.ndarray:
        arr = self.mapped[name or self.primary]
        return arr.view(np.uint8).reshape(-1)


_FINGERPRINT_COUNTER = itertools.count(1)

#: process-wide accounting of :func:`dataset_key` work. ``requests`` counts
#: every key lookup; ``sha256_digests`` counts only the times the SHA-256
#: fallback actually hashed array bytes. The serve hot loop probes the run
#: cache on every request, so the gap between the two is the proof that
#: hashing is amortized: one digest per distinct hand-built dataset, zero
#: for recipe-stamped ones, no matter how many probes.
DATASET_HASH_STATS = {"requests": 0, "sha256_digests": 0}


def data_fingerprint(data: AppData) -> tuple:
    """Hashable *identity* token of one dataset instance.

    :class:`AppData` itself is unhashable (mutable dataclass), so caches
    (engine schedule memoization, ``bench.sweep``'s run cache) key on this
    instead. The token is minted once per instance and stashed in
    ``data.meta`` — two datasets get equal fingerprints only if they are
    the *same object*, which is exactly the safe notion of identity for an
    in-process cache: regenerating data (even with the same seed) gets a
    fresh token and therefore fresh cache entries.

    Use this key for caches scoped to one process whose entries may depend
    on anything the caller did to the instance (in-place edits included).
    For caches that must survive the process — the on-disk tier of
    :class:`repro.bench.sweep.RunCache` — or be shared between processes
    (the ``backend="process"`` sweep workers), use :func:`dataset_key`,
    which names the dataset by *content* instead.
    """
    token = data.meta.get("_fingerprint")
    if token is None:
        token = next(_FINGERPRINT_COUNTER)
        data.meta["_fingerprint"] = token
    return (data.app, data.n_records, token)


def dataset_key(data: AppData) -> tuple:
    """Hashable *content* token of a dataset: stable across processes.

    Unlike :func:`data_fingerprint` (identity: same object ⇒ same key),
    this names the dataset by what it contains, so two independently
    regenerated datasets — in this process, another process, or another CI
    run — get equal keys exactly when their bytes are equal. That is the
    right key for the persistent run cache and for ``backend="process"``
    sweep workers, which regenerate data locally instead of shipping
    arrays; it is the *wrong* key for anything keyed on an instance that
    may have been mutated in place after generation.

    Datasets produced by a registered app's ``generate`` carry their
    generation recipe in ``data.meta["datagen"]`` (stamped automatically by
    :class:`Application`), so the key is the cheap tuple ``("datagen", app,
    seed, n_bytes, DATAGEN_VERSION)`` — the datagen version ties it to the
    generator implementation. Hand-built :class:`AppData` instances fall
    back to a SHA-256 over the mapped/resident arrays and params, which is
    equally stable, just paid per instance.
    """
    DATASET_HASH_STATS["requests"] += 1
    token = data.meta.get("_dataset_key")
    if token is None:
        recipe = data.meta.get("datagen")
        if recipe is not None:
            token = (
                "datagen",
                data.app,
                recipe["seed"],
                recipe["n_bytes"],
                recipe["version"],
            )
        else:
            DATASET_HASH_STATS["sha256_digests"] += 1
            digest = hashlib.sha256()
            for group in (data.mapped, data.resident):
                for name in sorted(group):
                    digest.update(name.encode())
                    digest.update(np.ascontiguousarray(group[name]).tobytes())
            digest.update(repr(sorted(data.params.items())).encode())
            token = ("sha256", data.app, digest.hexdigest())
        data.meta["_dataset_key"] = token
    return token


@dataclass(frozen=True)
class AccessProfile:
    """Static per-record access characterization of an app's kernel.

    These are the quantities Table I reports (read/modified proportions of
    mapped data) plus what the cost models need (operation counts, access
    granularity, pattern-friendliness).
    """

    #: bytes of one (average) record
    record_bytes: float
    #: mapped bytes read per record
    read_bytes_per_record: float
    #: mapped bytes written per record
    write_bytes_per_record: float
    #: individual mapped read accesses per record
    reads_per_record: float
    #: individual mapped write accesses per record
    writes_per_record: float
    #: typical access granularity (element size)
    elem_bytes: int
    #: GPU arithmetic per record (ops)
    gpu_ops_per_record: float
    #: CPU arithmetic per record for the CPU baselines (ops; typically
    #: higher than GPU ops/record because scalar ISAs lack the GPU's free
    #: lane parallelism within a record)
    cpu_ops_per_record: float
    #: GPU-side traffic to resident structures per record (bytes)
    resident_bytes_per_record: float = 0.0
    #: do per-thread address streams follow a stride cycle?
    pattern_friendly: bool = True
    #: can the compiler build the address slice? (False -> full-transfer
    #: fallback)
    sliceable: bool = True
    #: variable-length records (drives Table I's record-type column)
    variable_length: bool = False
    #: how many passes over the mapped data the computation makes
    passes: int = 1
    #: contiguous-run size (bytes) the assembly gather can copy per loop
    #: iteration once a pattern exposes the layout; defaults to one element
    gather_granularity_bytes: float = 0.0
    #: addresses the sliced kernel emits per record when no pattern is
    #: recognized — one per contiguous field *span*, not one per element
    #: (the compiler coalesces adjacent accesses into one address). 0 means
    #: "same as reads_per_record".
    addresses_per_record: float = 0.0
    #: warp-divergence/atomic-serialization penalty on GPU arithmetic
    #: throughput (1 = uniform control flow; 32 = fully serialized warp).
    #: Byte-parsing kernels branch per character and contend on shared
    #: hash tables, which is what makes Word Count and Opinion Finder
    #: computation-dominant in the paper.
    gpu_divergence: float = 1.0

    @property
    def emitted_addresses_per_record(self) -> float:
        """Effective address count per record for the no-pattern path."""
        return self.addresses_per_record or self.reads_per_record

    @property
    def gather_run_bytes(self) -> float:
        """Effective contiguous-run size for pattern-driven gathering."""
        return self.gather_granularity_bytes or float(self.elem_bytes)

    @property
    def read_fraction(self) -> float:
        """Table I's "Read" column."""
        return self.read_bytes_per_record / self.record_bytes

    @property
    def write_fraction(self) -> float:
        """Table I's "Modified" column."""
        return self.write_bytes_per_record / self.record_bytes


def _stamping_generate(generate):
    """Wrap an app's ``generate`` so every dataset records its recipe.

    ``data.meta["datagen"]`` carries everything needed to regenerate the
    dataset deterministically elsewhere — the content identity behind
    :func:`dataset_key` and the ``backend="process"`` sweep workers. The
    requested (pre-default-resolution) ``n_bytes`` is recorded: two calls
    with the same arguments produce the same bytes, which is all the key
    needs.
    """

    @functools.wraps(generate)
    def wrapper(self, n_bytes: Optional[int] = None, seed: int = 0) -> "AppData":
        data = generate(self, n_bytes=n_bytes, seed=seed)
        if isinstance(data, AppData):
            data.meta.setdefault(
                "datagen",
                {"seed": seed, "n_bytes": n_bytes, "version": DATAGEN_VERSION},
            )
        return data

    wrapper._datagen_stamped = True
    return wrapper


class Application(abc.ABC):
    """Base class for the benchmark applications."""

    #: registry key, e.g. ``"kmeans"``
    name: str = ""
    #: label used in figures, e.g. ``"K-means"``
    display_name: str = ""
    #: dataset size used in the paper (Table I)
    paper_data_bytes: int = 0
    #: does the kernel modify mapped data?
    writes_mapped: bool = False
    #: how many passes over the mapped data the computation makes
    n_passes: int = 1
    #: whether the vectorized backend (repro.kernelc.compile) is expected
    #: to admit this app's kernel; False = the vectorizability analysis is
    #: known to reject it (loop-carried state) and the interpreter fallback
    #: is the documented behaviour — ``verify --compiled`` asserts the
    #: verdict matches this expectation either way
    compiled_expected: bool = True

    def __init_subclass__(cls, **kwargs):
        super().__init_subclass__(**kwargs)
        generate = cls.__dict__.get("generate")
        if generate is not None and not getattr(generate, "_datagen_stamped", False):
            cls.generate = _stamping_generate(generate)

    # ------------------------------------------------------------- data
    @abc.abstractmethod
    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        """Create a synthetic dataset of ~``n_bytes`` mapped data.

        Concrete implementations are wrapped by :func:`_stamping_generate`
        (via ``__init_subclass__``): the returned dataset's
        ``meta["datagen"]`` records ``{seed, n_bytes, version}`` so
        :func:`dataset_key` and the process-pool sweep workers can
        reproduce it by recipe.
        """

    def default_bytes(self) -> int:
        return max(1, int(self.paper_data_bytes * DEFAULT_SCALE))

    # ----------------------------------------------------- vectorized kernel
    @abc.abstractmethod
    def make_state(self, data: AppData) -> Any:
        """Fresh computation state (resident outputs, accumulators)."""

    @abc.abstractmethod
    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        """Process records ``[lo, hi)`` of the primary structure."""

    @abc.abstractmethod
    def finalize(self, data: AppData, state: Any) -> Any:
        """Produce the final output from the state."""

    def start_pass(self, data: AppData, state: Any, pass_idx: int) -> None:
        """Hook before each pass of a multi-pass computation."""

    def reference(self, data: AppData) -> Any:
        """Full-range run over all passes (the CPU-serial semantics)."""
        state = self.make_state(data)
        for p in range(self.n_passes):
            self.start_pass(data, state, p)
            self.process_chunk(data, state, 0, self.n_units(data))
        return self.finalize(data, state)

    def outputs_equal(self, a: Any, b: Any) -> bool:
        """Engine-output comparison; override for tolerant comparisons."""
        if isinstance(a, np.ndarray):
            return bool(np.array_equal(a, b))
        return bool(a == b)

    def merge_states(self, data: AppData, states: list) -> Any:
        """Reduce per-shard states into one (the cross-GPU merge stage).

        The default covers dict states of disjoint-shard accumulators:
        bool arrays OR together (membership sets), numeric arrays sum
        elementwise (count/moment tables starting from zeros), and
        scalars are kept when every shard agrees (pass counters) or
        summed otherwise. Apps whose state breaks that contract — an
        array carried non-zero across a merge, a scalar that is neither
        invariant nor additive — must override this (kmeans does, for
        its ``assigned`` tally).
        """
        if not states:
            raise ApplicationError("merge_states needs at least one state")
        if len(states) == 1:
            return states[0]
        first = states[0]
        if not isinstance(first, dict):
            raise ApplicationError(
                f"{self.name}: default merge_states only handles dict "
                f"states; override it for {type(first).__name__} state"
            )
        merged: dict = {}
        for key, head in first.items():
            values = [s[key] for s in states]
            if isinstance(head, np.ndarray):
                if head.dtype == np.bool_:
                    merged[key] = np.logical_or.reduce(values)
                else:
                    acc = head.copy()
                    for v in values[1:]:
                        acc += v
                    merged[key] = acc
            elif all(v == head for v in values[1:]):
                merged[key] = head
            else:
                merged[key] = sum(values)
        return merged

    # ------------------------------------------------------------ chunking
    def n_units(self, data: AppData) -> int:
        """Number of independently processable units (records or bytes)."""
        return data.n_records

    def chunk_bounds(self, data: AppData, chunk_units: int) -> list[tuple[int, int]]:
        """Split the unit range into chunks; apps with alignment constraints
        (variable-length records) override this."""
        if chunk_units < 1:
            raise ApplicationError("chunk_units must be >= 1")
        n = self.n_units(data)
        return [(lo, min(lo + chunk_units, n)) for lo in range(0, n, chunk_units)]

    # ---------------------------------------------------- characterization
    @abc.abstractmethod
    def access_profile(self, data: AppData) -> AccessProfile:
        """Static access characterization for the cost models / Table I."""

    @abc.abstractmethod
    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        """Byte offsets (into the primary byte view) the kernel reads for
        units ``[lo, hi)``, in per-unit program order."""

    def chunk_write_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        """Byte offsets the kernel writes for units ``[lo, hi)``."""
        return np.empty(0, dtype=np.int64)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Optional[Kernel]:
        """Kernel-IR form, when expressible (None only if genuinely not)."""
        return None

    def make_ir_context(self, data: AppData) -> Optional[ExecutionContext]:
        """Execution context binding ``data`` for the IR interpreter."""
        return None

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> Any:
        """Extract the comparable output after an IR run."""
        raise NotImplementedError


APP_REGISTRY: dict[str, type] = {}


def register(cls):
    """Class decorator adding an app to the registry."""
    if not cls.name:
        raise ApplicationError(f"{cls.__name__} has no name")
    APP_REGISTRY[cls.name] = cls
    return cls


def get_app(name: str) -> Application:
    """Instantiate a registered application by name."""
    try:
        return APP_REGISTRY[name]()
    except KeyError:
        raise ApplicationError(
            f"unknown app {name!r}; known: {sorted(APP_REGISTRY)}"
        )
