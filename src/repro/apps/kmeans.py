"""K-means assignment (the paper's running example).

Partitions ``n`` particles into ``k`` clusters by nearest mean. Records are
fixed-length (48 B: x/y/z doubles + a cluster id + padding); the kernel
reads the three coordinates (50% of each record) and writes the cluster id
— the only benchmark that *modifies* mapped data, exercising the two
write-back pipeline stages.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application, register
from repro.kernelc.codegen import ExecutionContext
from repro.kernelc.ir import (
    Assign,
    Call,
    For,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Store,
    Var,
)
from repro.units import GB

PARTICLE = RecordSchema.packed(
    [("x", "f8"), ("y", "f8"), ("z", "f8"), ("cid", "i4"), ("weight", "f4"),
     ("pad0", "f8"), ("pad1", "f8")],
    record_size=48,
)

#: coordinates read per record
READ_BYTES = 24
#: cluster id written per record
WRITE_BYTES = 4


@register
class KMeansApp(Application):
    """Nearest-cluster assignment over streamed particle records."""

    name = "kmeans"
    display_name = "K-means"
    paper_data_bytes = int(6.0 * GB)
    writes_mapped = True

    def __init__(self, n_clusters: int = 32):
        self.n_clusters = n_clusters

    # ------------------------------------------------------------- data
    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        n_bytes = n_bytes or self.default_bytes()
        n = max(1, n_bytes // PARTICLE.record_size)
        rng = np.random.default_rng(seed)
        particles = np.zeros(n, dtype=PARTICLE.numpy_dtype())
        centers = rng.uniform(-100, 100, (self.n_clusters, 3))
        owner = rng.integers(0, self.n_clusters, n)
        for i, f in enumerate("xyz"):
            particles[f] = centers[owner, i] + rng.normal(0, 5.0, n)
        particles["weight"] = rng.uniform(0, 1, n).astype(np.float32)
        clusters = centers + rng.normal(0, 2.0, centers.shape)
        return AppData(
            app=self.name,
            mapped={"particles": particles},
            schemas={"particles": PARTICLE},
            resident={"clusters": clusters},
            params={"numP": n, "numCl": self.n_clusters},
            primary="particles",
        )

    # ----------------------------------------------------- vectorized kernel
    def make_state(self, data: AppData) -> Any:
        return {"assigned": 0}

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        p = data.mapped["particles"]
        c = data.resident["clusters"]  # (k, 3)
        # distance matrix (hi-lo, k) via broadcasting
        dx = p["x"][lo:hi, None] - c[None, :, 0]
        dy = p["y"][lo:hi, None] - c[None, :, 1]
        dz = p["z"][lo:hi, None] - c[None, :, 2]
        d2 = dx * dx + dy * dy + dz * dz
        p["cid"][lo:hi] = np.argmin(d2, axis=1).astype(np.int32)
        state["assigned"] += hi - lo

    def finalize(self, data: AppData, state: Any) -> np.ndarray:
        return data.mapped["particles"]["cid"].copy()

    def merge_states(self, data: AppData, states: list) -> Any:
        # per-shard tallies are always additive — the default merge would
        # keep a single count when balanced shards happen to agree
        return {"assigned": sum(int(s["assigned"]) for s in states)}

    # ---------------------------------------------------- characterization
    def access_profile(self, data: AppData) -> AccessProfile:
        k = self.n_clusters
        return AccessProfile(
            record_bytes=PARTICLE.record_size,
            read_bytes_per_record=READ_BYTES,
            write_bytes_per_record=WRITE_BYTES,
            reads_per_record=3,
            writes_per_record=1,
            elem_bytes=8,
            # 3 subs + 3 muls + 2 adds + compare per cluster, plus argmin
            gpu_ops_per_record=9.0 * k + k,
            cpu_ops_per_record=22.0 * k,
            # the cluster array (k x 24 B) is cached on chip; DRAM traffic
            # to resident data is negligible
            resident_bytes_per_record=4.0,
            pattern_friendly=True,  # strides (8, 8, 32)
            sliceable=True,
            gather_granularity_bytes=24.0,  # x,y,z are contiguous
            addresses_per_record=3.0,  # one per double read
            gpu_divergence=16.0,  # fp64 at 1/24 rate + argmin-loop divergence
        )

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        base = np.arange(lo, hi, dtype=np.int64) * PARTICLE.record_size
        offs = base[:, None] + np.array([0, 8, 16], dtype=np.int64)[None, :]
        return offs.reshape(-1)

    def chunk_write_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        return np.arange(lo, hi, dtype=np.int64) * PARTICLE.record_size + 24

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        ref = lambda f: MappedRef("particles", Var("i"), f)
        body = (
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("x", Load(ref("x"))),
                    Assign("y", Load(ref("y"))),
                    Assign("z", Load(ref("z"))),
                    Assign(
                        "cid",
                        Call("findClosestCluster", (Var("x"), Var("y"), Var("z"))),
                    ),
                    Store(ref("cid"), Var("cid")),
                ),
            ),
        )
        return Kernel(
            name="clusterKernel",
            body=body,
            mapped={"particles": PARTICLE},
            resident=("clusters",),
            params=("numP",),
            device_functions=("findClosestCluster",),
        )

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        def find_closest(ctx, x, y, z):
            c = ctx.resident["clusters"]
            d = (c[:, 0] - x) ** 2 + (c[:, 1] - y) ** 2 + (c[:, 2] - z) ** 2
            return np.int32(np.argmin(d))

        def find_closest_batch(ctx, x, y, z):
            # batch form used by the compiled backend: one distance matrix
            # per lane-block, argmin along the cluster axis (ties resolve to
            # the lowest id, same as the scalar np.argmin)
            c = ctx.resident["clusters"]
            d = (
                (c[None, :, 0] - x[:, None]) ** 2
                + (c[None, :, 1] - y[:, None]) ** 2
                + (c[None, :, 2] - z[:, None]) ** 2
            )
            return np.argmin(d, axis=1)

        find_closest.vectorized = find_closest_batch

        return ExecutionContext(
            mapped={"particles": data.mapped["particles"]},
            resident={"clusters": data.resident["clusters"]},
            params=dict(data.params),
            device_fns={"findClosestCluster": find_closest},
        )

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> np.ndarray:
        return ctx.mapped["particles"]["cid"].copy()
