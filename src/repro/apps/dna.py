"""DNA assembly preprocessing (Meraculous-style k-mer counting).

Fixed-length fragment records (128 B: a 46-base read + quality/metadata);
the kernel hashes a k-base prefix of each fragment into a resident table to
count identical fragments and flag noisy (unique) ones, which a later
extension phase uses to merge overlapping fragments. 36% of each record is
read (the bases).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application, register
from repro.apps.datagen import dna_bases
from repro.kernelc.codegen import ExecutionContext
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Var,
)
from repro.units import GB

FRAG_LEN = 46
KMER = 16
TABLE_SIZE = 1 << 16
HASH_MOD = 1 << 32

_fields = [(f"b{j}", "u1") for j in range(FRAG_LEN)]
_fields += [("read_id", "i8"), ("quality", "f4"), ("lane", "i4")]
FRAGMENT = RecordSchema.packed(_fields, record_size=128)

READ_BYTES = FRAG_LEN  # 46 of 128 bytes ~ 36%


def _kmer_hashes(bases: np.ndarray) -> np.ndarray:
    """Vectorized polynomial hash over the first KMER bases. (n, >=KMER)."""
    h = np.zeros(bases.shape[0], dtype=np.uint32)
    for j in range(KMER):
        h = h * np.uint32(31) + bases[:, j].astype(np.uint32)
    return h


@register
class DnaAssemblyApp(Application):
    """k-mer prefix counting + noisy-fragment detection."""

    name = "dna"
    display_name = "DNA Assembly"
    paper_data_bytes = int(4.5 * GB)
    writes_mapped = False

    def __init__(self, genome_fraction: float = 0.01):
        #: fragments are drawn from a small underlying genome so that many
        #: k-mer prefixes repeat (as real shotgun reads do)
        self.genome_fraction = genome_fraction

    # ------------------------------------------------------------- data
    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        n_bytes = n_bytes or self.default_bytes()
        n = max(1, n_bytes // FRAGMENT.record_size)
        rng = np.random.default_rng(seed)
        genome_len = max(FRAG_LEN + 1, int(n * self.genome_fraction) + FRAG_LEN)
        genome = dna_bases(rng, genome_len)
        starts = rng.integers(0, genome_len - FRAG_LEN, n)
        idx = starts[:, None] + np.arange(FRAG_LEN)[None, :]
        frags = genome[idx]
        arr = np.zeros(n, dtype=FRAGMENT.numpy_dtype())
        for j in range(FRAG_LEN):
            arr[f"b{j}"] = frags[:, j]
        arr["read_id"] = np.arange(n)
        arr["quality"] = rng.uniform(0.5, 1.0, n).astype(np.float32)
        return AppData(
            app=self.name,
            mapped={"fragments": arr},
            schemas={"fragments": FRAGMENT},
            resident={"table": np.zeros(TABLE_SIZE, dtype=np.int64)},
            params={"numF": n},
            primary="fragments",
        )

    # ----------------------------------------------------- vectorized kernel
    def make_state(self, data: AppData) -> Any:
        return {"table": np.zeros(TABLE_SIZE, dtype=np.int64)}

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        f = data.mapped["fragments"]
        bases = np.stack(
            [f[f"b{j}"][lo:hi] for j in range(KMER)], axis=1
        )
        h = _kmer_hashes(bases)
        np.add.at(state["table"], (h % TABLE_SIZE).astype(np.int64), 1)

    def finalize(self, data: AppData, state: Any) -> dict:
        """Count table + noisy count + a bounded extension summary.

        The extension phase walks the (CPU-side) table looking for k-mers
        whose counts support merging — we summarize it as the number of
        extendable buckets, keeping the benchmark's compute on the GPU
        kernel where the paper has it.
        """
        table = state["table"]
        noisy = int(np.count_nonzero(table == 1))
        extendable = int(np.count_nonzero(table >= 2))
        return {"table": table, "noisy": noisy, "extendable": extendable}

    def outputs_equal(self, a: Any, b: Any) -> bool:
        return (
            bool(np.array_equal(a["table"], b["table"]))
            and a["noisy"] == b["noisy"]
            and a["extendable"] == b["extendable"]
        )

    # ---------------------------------------------------- characterization
    def access_profile(self, data: AppData) -> AccessProfile:
        return AccessProfile(
            record_bytes=FRAGMENT.record_size,
            read_bytes_per_record=READ_BYTES,
            write_bytes_per_record=0.0,
            reads_per_record=FRAG_LEN,
            writes_per_record=0.0,
            elem_bytes=1,
            # byte-wise hashing diverges within warps; atomic table updates
            # serialize: divergence-adjusted op count
            gpu_ops_per_record=16.0 * KMER + 4.0 * FRAG_LEN,
            cpu_ops_per_record=14.0 * KMER + 7.0 * FRAG_LEN,
            resident_bytes_per_record=8.0,  # table largely cache-resident
            pattern_friendly=True,  # byte strides inside fixed records
            sliceable=True,
            gather_granularity_bytes=float(FRAG_LEN),  # one run per fragment
            addresses_per_record=2.0,  # the fragment is read as two wide vectors
            gpu_divergence=8.0,  # hash-probe divergence + table atomics
        )

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        base = np.arange(lo, hi, dtype=np.int64) * FRAGMENT.record_size
        offs = np.arange(FRAG_LEN, dtype=np.int64)  # b0..b45 at offsets 0..45
        return (base[:, None] + offs[None, :]).reshape(-1)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        stmts: list = [Assign("h", Const(0))]
        for j in range(KMER):
            stmts.append(Assign("c", Load(MappedRef("fragments", Var("i"), f"b{j}"))))
            stmts.append(
                Assign(
                    "h",
                    BinOp(
                        "%",
                        BinOp("+", BinOp("*", Var("h"), Const(31)), Var("c")),
                        Const(HASH_MOD),
                    ),
                )
            )
        # the remaining bases are read for the extension phase
        for j in range(KMER, FRAG_LEN):
            stmts.append(Assign("c", Load(MappedRef("fragments", Var("i"), f"b{j}"))))
        stmts.append(
            AtomicAdd("table", BinOp("%", Var("h"), Const(TABLE_SIZE)), Const(1))
        )
        body = (For("i", Var("start"), Var("end"), tuple(stmts)),)
        return Kernel(
            name="dnaKernel",
            body=body,
            mapped={"fragments": FRAGMENT},
            resident=("table",),
        )

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        return ExecutionContext(
            mapped={"fragments": data.mapped["fragments"]},
            resident={"table": np.zeros(TABLE_SIZE, dtype=np.int64)},
            params=dict(data.params),
        )

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> dict:
        return self.finalize(data, {"table": ctx.resident["table"]})
