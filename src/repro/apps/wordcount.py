"""Word Count over a large mapped document.

Variable-length records (words), 100% of mapped data read, nothing
modified. The kernel streams bytes, builds a rolling hash per word, and
accumulates into a resident count table (the paper notes the centralized
hash table's synchronization burden makes this computation-dominant).

The address stream is a perfect stride-1 byte walk, so pattern recognition
replaces 8-byte-per-1-byte address traffic with one descriptor — the
largest Table II win (66%).
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application, register
from repro.apps.datagen import make_text
from repro.kernelc.codegen import ExecutionContext
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Var,
)
from repro.units import GB

BYTES = RecordSchema.bytes_schema()

#: hash-table size (resident)
TABLE_SIZE = 1 << 16
#: rolling-hash modulus (uint32 wraparound)
HASH_MOD = 1 << 32
SEP = 32  # space


def _word_hashes(text: np.ndarray, lo: int, hi: int) -> np.ndarray:
    """Vectorized rolling hash of every word fully inside [lo, hi).

    h = (h * 31 + c) mod 2^32, folded to the table size by the caller.
    """
    seg = text[lo:hi]
    is_sep = seg == SEP
    is_char = ~is_sep
    if not is_char.any():
        return np.empty(0, dtype=np.uint32)
    prev_sep = np.empty(seg.size, dtype=bool)
    prev_sep[0] = True
    prev_sep[1:] = is_sep[:-1]
    starts = np.nonzero(is_char & prev_sep)[0]
    # word lengths: distance to the next separator
    sep_pos = np.nonzero(is_sep)[0]
    if sep_pos.size:
        next_sep = np.searchsorted(sep_pos, starts)
        word_end = np.where(
            next_sep < sep_pos.size,
            sep_pos[np.minimum(next_sep, sep_pos.size - 1)],
            seg.size,
        )
    else:
        word_end = np.full(starts.shape, seg.size)
    lengths = word_end - starts
    h = np.zeros(starts.size, dtype=np.uint32)
    maxlen = int(lengths.max()) if lengths.size else 0
    for j in range(maxlen):
        mask = j < lengths
        idx = starts[mask] + j
        h[mask] = h[mask] * np.uint32(31) + seg[idx].astype(np.uint32)
    return h


@register
class WordCountApp(Application):
    """Hash-table word counting over streamed text."""

    name = "wordcount"
    display_name = "Word Count"
    paper_data_bytes = int(4.5 * GB)
    writes_mapped = False
    #: the running hash/length (h, n) are loop-carried across records, so
    #: the vectorized backend rejects this kernel by design
    compiled_expected = False

    # ------------------------------------------------------------- data
    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        n_bytes = n_bytes or self.default_bytes()
        rng = np.random.default_rng(seed)
        text = make_text(rng, n_bytes)
        arr = np.zeros(text.size, dtype=BYTES.numpy_dtype())
        arr["byte"] = text
        words = int(np.count_nonzero(text == SEP))
        avg_record = text.size / max(words, 1)
        return AppData(
            app=self.name,
            mapped={"text": arr},
            schemas={"text": BYTES},
            resident={"counts": np.zeros(TABLE_SIZE, dtype=np.int64)},
            params={"n": text.size},
            primary="text",
            meta={"avg_record": avg_record, "n_words": words},
        )

    # ----------------------------------------------------- vectorized kernel
    def make_state(self, data: AppData) -> Any:
        return {"counts": np.zeros(TABLE_SIZE, dtype=np.int64)}

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        text = data.mapped["text"]["byte"]
        h = _word_hashes(text, lo, hi)
        np.add.at(state["counts"], (h % TABLE_SIZE).astype(np.int64), 1)

    def finalize(self, data: AppData, state: Any) -> np.ndarray:
        return state["counts"]

    def outputs_equal(self, a: Any, b: Any) -> bool:
        return bool(np.array_equal(a, b))

    # ------------------------------------------------------------ chunking
    def chunk_bounds(self, data: AppData, chunk_units: int) -> list[tuple[int, int]]:
        """Byte chunks aligned to separators so words never straddle."""
        text = data.mapped["text"]["byte"]
        n = text.size
        bounds = []
        lo = 0
        while lo < n:
            hi = min(lo + chunk_units, n)
            if hi < n:
                # advance to just past the next separator
                nxt = np.nonzero(text[hi:] == SEP)[0]
                hi = (hi + int(nxt[0]) + 1) if nxt.size else n
            bounds.append((lo, hi))
            lo = hi
        return bounds

    # ---------------------------------------------------- characterization
    def access_profile(self, data: AppData) -> AccessProfile:
        # NOTE: processing units are BYTES for this app, so the profile is
        # per byte (read fraction 100%, Table I); avg word length only
        # affects the amortized per-word table-update cost.
        avg = float(data.meta.get("avg_record", 8.0))
        return AccessProfile(
            record_bytes=1.0,
            read_bytes_per_record=1.0,  # every byte is read
            write_bytes_per_record=0.0,
            reads_per_record=1.0,
            writes_per_record=0.0,
            elem_bytes=1,
            # per byte: compare + hash multiply-add; per word: a centralized
            # hash-table update with synchronization (the paper's
            # dominant-computation cause), amortized over the word's bytes
            # per-byte branching diverges within warps and the table
            # updates serialize on atomics: the op count is
            # divergence-adjusted (the paper's dominant-computation cause)
            gpu_ops_per_record=24.0 + 120.0 / avg,
            cpu_ops_per_record=32.0 + 64.0 / avg,
            resident_bytes_per_record=8.0 / avg,
            pattern_friendly=True,  # stride-1 bytes
            sliceable=True,
            variable_length=True,
            gather_granularity_bytes=4096.0,  # stride-1 runs bulk-copy
            gpu_divergence=24.0,  # per-byte branches + table atomics
        )

    def n_units(self, data: AppData) -> int:
        return int(data.mapped["text"].shape[0])

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        return np.arange(lo, hi, dtype=np.int64)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        c = Var("c")
        body = (
            Assign("h", Const(0)),
            Assign("n", Const(0)),
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("c", Load(MappedRef("text", Var("i"), "byte"))),
                    If(
                        BinOp("==", c, Const(SEP)),
                        (
                            If(
                                BinOp(">", Var("n"), Const(0)),
                                (
                                    AtomicAdd(
                                        "counts",
                                        BinOp("%", Var("h"), Const(TABLE_SIZE)),
                                        Const(1),
                                    ),
                                ),
                            ),
                            Assign("h", Const(0)),
                            Assign("n", Const(0)),
                        ),
                        (
                            Assign(
                                "h",
                                BinOp(
                                    "%",
                                    BinOp(
                                        "+", BinOp("*", Var("h"), Const(31)), c
                                    ),
                                    Const(HASH_MOD),
                                ),
                            ),
                            Assign("n", BinOp("+", Var("n"), Const(1))),
                        ),
                    ),
                ),
            ),
        )
        return Kernel(
            name="wordCountKernel",
            body=body,
            mapped={"text": BYTES},
            resident=("counts",),
        )

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        return ExecutionContext(
            mapped={"text": data.mapped["text"]},
            resident={"counts": np.zeros(TABLE_SIZE, dtype=np.int64)},
            params=dict(data.params),
        )

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> np.ndarray:
        return ctx.resident["counts"]
