"""The paper's six benchmark applications (plus the indexed MasterCard
variant), each with a synthetic data generator matching the published record
shapes, a vectorized NumPy reference kernel, a kernel-IR definition for the
compiler path, and an access characterization feeding the cost models.

Substitution note: the paper's datasets (MasterCard transactions, Netflix
ratings, tweets, DNA reads) are proprietary; generators produce synthetic
equivalents with the same record layouts and access ratios (Table I), at
sizes scaled down ~100x. All reported effects are per-byte/per-record
ratios, which scaling preserves.
"""

from repro.apps.base import Application, AppData, AccessProfile, APP_REGISTRY, get_app
from repro.apps.kmeans import KMeansApp
from repro.apps.wordcount import WordCountApp
from repro.apps.netflix import NetflixApp
from repro.apps.opinion import OpinionFinderApp
from repro.apps.dna import DnaAssemblyApp
from repro.apps.mastercard import MastercardAffinityApp, MastercardIndexedApp

ALL_APPS = (
    KMeansApp,
    WordCountApp,
    NetflixApp,
    OpinionFinderApp,
    DnaAssemblyApp,
    MastercardAffinityApp,
    MastercardIndexedApp,
)

__all__ = [
    "Application",
    "AppData",
    "AccessProfile",
    "APP_REGISTRY",
    "get_app",
    "KMeansApp",
    "WordCountApp",
    "NetflixApp",
    "OpinionFinderApp",
    "DnaAssemblyApp",
    "MastercardAffinityApp",
    "MastercardIndexedApp",
    "ALL_APPS",
]
