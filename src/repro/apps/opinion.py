"""Opinion Finder: tweet sentiment for a given subject.

Fixed-length tweet records (112 B: 20 word-ids of 4 B each + timestamp +
metadata; 73% read). Words of tweets mentioning the subject are looked up
in resident positive/negative/adverb dictionaries; an adverb doubles the
weight of the sentiment word that follows it (the paper's precedence rule).
Output is one aggregated sentiment score. Heavy lexical analysis per byte
makes this the most computation-dominant benchmark.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application, register
from repro.kernelc.codegen import ExecutionContext
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    ResidentLoad,
    Var,
)
from repro.units import GB

WORDS_PER_TWEET = 20
VOCAB = 1 << 14

_fields = [(f"w{j}", "i4") for j in range(WORDS_PER_TWEET)]
_fields += [("timestamp", "i8"), ("user", "i4"), ("retweets", "i4"), ("lang", "i4")]
TWEET = RecordSchema.packed(_fields, record_size=112)

#: the 20 word ids (80 B of 112 B) are read: ~71%; the paper reports 73%
READ_BYTES = WORDS_PER_TWEET * 4


@register
class OpinionFinderApp(Application):
    """Dictionary-based sentiment scoring of subject-matching tweets."""

    name = "opinion"
    display_name = "Opinion Finder"
    paper_data_bytes = int(6.2 * GB)
    writes_mapped = False

    def __init__(self, subject_words: int = 64, dict_frac: float = 0.08):
        self.subject_words = subject_words
        self.dict_frac = dict_frac

    # ------------------------------------------------------------- data
    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        n_bytes = n_bytes or self.default_bytes()
        n = max(1, n_bytes // TWEET.record_size)
        rng = np.random.default_rng(seed)
        arr = np.zeros(n, dtype=TWEET.numpy_dtype())
        for j in range(WORDS_PER_TWEET):
            arr[f"w{j}"] = rng.integers(0, VOCAB, n)
        arr["timestamp"] = rng.integers(0, 1 << 40, n)
        arr["user"] = rng.integers(0, 1 << 20, n)

        n_dict = int(VOCAB * self.dict_frac)
        ids = rng.permutation(VOCAB)
        positive = np.zeros(VOCAB, dtype=np.int8)
        negative = np.zeros(VOCAB, dtype=np.int8)
        adverb = np.zeros(VOCAB, dtype=np.int8)
        subject = np.zeros(VOCAB, dtype=np.int8)
        positive[ids[:n_dict]] = 1
        negative[ids[n_dict : 2 * n_dict]] = 1
        adverb[ids[2 * n_dict : 2 * n_dict + n_dict // 2]] = 1
        subject[ids[-self.subject_words :]] = 1
        return AppData(
            app=self.name,
            mapped={"tweets": arr},
            schemas={"tweets": TWEET},
            resident={
                "positive": positive,
                "negative": negative,
                "adverb": adverb,
                "subject": subject,
                "score": np.zeros(1, dtype=np.int64),
            },
            params={"numT": n},
            primary="tweets",
        )

    # ----------------------------------------------------- vectorized kernel
    def make_state(self, data: AppData) -> Any:
        return {"score": np.zeros(1, dtype=np.int64)}

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        t = data.mapped["tweets"]
        words = np.stack(
            [t[f"w{j}"][lo:hi].astype(np.int64) for j in range(WORDS_PER_TWEET)],
            axis=1,
        )  # (n, W)
        pos = data.resident["positive"][words].astype(np.int64)
        neg = data.resident["negative"][words].astype(np.int64)
        adv = data.resident["adverb"][words].astype(np.int64)
        subj = data.resident["subject"][words]
        mentions = subj.any(axis=1)
        # precedence: an adverb at position j-1 doubles word j's weight
        weight = np.ones_like(pos)
        weight[:, 1:] += adv[:, :-1]
        contrib = ((pos - neg) * weight).sum(axis=1)
        state["score"][0] += int(contrib[mentions].sum())

    def finalize(self, data: AppData, state: Any) -> int:
        return int(state["score"][0])

    def outputs_equal(self, a: Any, b: Any) -> bool:
        return int(a) == int(b)

    # ---------------------------------------------------- characterization
    def access_profile(self, data: AppData) -> AccessProfile:
        W = WORDS_PER_TWEET
        return AccessProfile(
            record_bytes=TWEET.record_size,
            read_bytes_per_record=READ_BYTES,
            write_bytes_per_record=0.0,
            reads_per_record=W,
            writes_per_record=0.0,
            elem_bytes=4,
            # four dictionary lookups + weighting per word, plus the
            # subject scan: dominant computation (paper Section VI-A)
            gpu_ops_per_record=220.0 * W,
            cpu_ops_per_record=180.0 * W,
            resident_bytes_per_record=8.0,  # dictionaries are cache-resident
            pattern_friendly=True,
            sliceable=True,
            gather_granularity_bytes=4.0 * W,  # word ids span contiguously
            addresses_per_record=1.0,  # the word-id block is one span
            gpu_divergence=28.0,  # per-word branching + dictionary probes
        )

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        base = np.arange(lo, hi, dtype=np.int64) * TWEET.record_size
        offs = [TWEET.field(f"w{j}").offset for j in range(WORDS_PER_TWEET)]
        field_offs = np.array(offs, dtype=np.int64)
        return (base[:, None] + field_offs[None, :]).reshape(-1)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        """Inner word loop unrolled over the fixed tweet width."""
        stmts: list = []
        # load all words, tracking subject mentions and weighted sentiment
        stmts.append(Assign("mentions", Const(0)))
        stmts.append(Assign("local", Const(0)))
        stmts.append(Assign("prev_adv", Const(0)))
        for j in range(WORDS_PER_TWEET):
            w = f"wv{j}"
            stmts.append(Assign(w, Load(MappedRef("tweets", Var("i"), f"w{j}"))))
            stmts.append(
                Assign(
                    "mentions",
                    BinOp("+", Var("mentions"), ResidentLoad("subject", Var(w))),
                )
            )
            sentiment = BinOp(
                "-",
                ResidentLoad("positive", Var(w)),
                ResidentLoad("negative", Var(w)),
            )
            weighted = BinOp(
                "*", sentiment, BinOp("+", Const(1), Var("prev_adv"))
            )
            stmts.append(Assign("local", BinOp("+", Var("local"), weighted)))
            stmts.append(Assign("prev_adv", ResidentLoad("adverb", Var(w))))
        stmts.append(
            If(
                BinOp(">", Var("mentions"), Const(0)),
                (AtomicAdd("score", Const(0), Var("local")),),
            )
        )
        body = (For("i", Var("start"), Var("end"), tuple(stmts)),)
        return Kernel(
            name="opinionKernel",
            body=body,
            mapped={"tweets": TWEET},
            resident=("positive", "negative", "adverb", "subject", "score"),
        )

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        return ExecutionContext(
            mapped={"tweets": data.mapped["tweets"]},
            resident={
                "positive": data.resident["positive"].astype(np.int64),
                "negative": data.resident["negative"].astype(np.int64),
                "adverb": data.resident["adverb"].astype(np.int64),
                "subject": data.resident["subject"].astype(np.int64),
                "score": np.zeros(1, dtype=np.int64),
            },
            params=dict(data.params),
        )

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> int:
        return int(ctx.resident["score"][0])
