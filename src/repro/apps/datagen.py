"""Shared synthetic data generation helpers."""

from __future__ import annotations

import numpy as np

from repro.errors import ApplicationError

#: Version of the deterministic data-generation scheme. Part of every
#: content-based :func:`repro.apps.base.dataset_key`, so bump it whenever a
#: change to this module (or to any app's ``generate``) alters the bytes
#: produced for a given ``(app, seed, n_bytes)`` — stale persistent-cache
#: entries (``repro.bench.sweep.DiskCache``) are then keyed away instead of
#: silently reused.
DATAGEN_VERSION = 1

_WORD_CHARS = np.frombuffer(b"abcdefghijklmnopqrstuvwxyz", dtype=np.uint8)


def make_vocabulary(
    rng: np.random.Generator, size: int, min_len: int = 3, max_len: int = 12
) -> list[bytes]:
    """Random lowercase words, unique-ish, zipf-ready."""
    if size < 1:
        raise ApplicationError("vocabulary size must be >= 1")
    vocab = []
    seen = set()
    while len(vocab) < size:
        ln = int(rng.integers(min_len, max_len + 1))
        w = bytes(rng.choice(_WORD_CHARS, ln))
        if w not in seen:
            seen.add(w)
            vocab.append(w)
    return vocab


def zipf_indices(rng: np.random.Generator, vocab_size: int, n: int, s: float = 1.2) -> np.ndarray:
    """Zipf-distributed indices into a vocabulary (word frequencies)."""
    ranks = np.arange(1, vocab_size + 1, dtype=np.float64)
    probs = ranks**-s
    probs /= probs.sum()
    return rng.choice(vocab_size, size=n, p=probs)


def make_text(
    rng: np.random.Generator, n_bytes: int, vocab_size: int = 2000, sep: int = 32
) -> np.ndarray:
    """Space-separated zipf text of ~``n_bytes`` as a uint8 array.

    Always ends with a separator so every word is terminated.
    """
    if n_bytes < 4:
        raise ApplicationError("text size must be >= 4 bytes")
    vocab = make_vocabulary(rng, vocab_size)
    avg = sum(len(w) for w in vocab) / len(vocab) + 1
    n_words = max(1, int(n_bytes / avg))
    idx = zipf_indices(rng, vocab_size, n_words)
    pieces = b" ".join(vocab[i] for i in idx) + b" "
    out = np.frombuffer(pieces, dtype=np.uint8)
    if out.size > n_bytes:
        # trim at the last separator before the limit
        cut = int(np.nonzero(out[:n_bytes] == sep)[0][-1]) + 1
        out = out[:cut]
    return np.ascontiguousarray(out)


def dna_bases(rng: np.random.Generator, shape) -> np.ndarray:
    """Random A/C/G/T bytes."""
    return np.frombuffer(b"ACGT", dtype=np.uint8)[rng.integers(0, 4, shape)]
