"""Netflix preference prediction (user-pair rating correlation).

An array of fixed-length rating records is mapped; the kernel reads a movie
id and the ratings of a pair of users (30% of each 80-byte record) and
accumulates correlation statistics into a GPU-resident table, from which
per-movie Pearson correlations are produced.
"""

from __future__ import annotations

from typing import Any, Optional

import numpy as np

from repro.apps.base import AccessProfile, AppData, Application, register
from repro.kernelc.codegen import ExecutionContext
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Const,
    For,
    Kernel,
    Load,
    MappedRef,
    RecordSchema,
    Var,
)
from repro.units import GB

RATING = RecordSchema.packed(
    [
        ("movie", "i4"),
        ("rating_a", "f8"),
        ("rating_b", "f8"),
        ("user_a", "i4"),
        ("user_b", "i4"),
        ("timestamp", "i8"),
        ("source", "i4"),
        ("flags", "i4"),
    ],
    record_size=80,
)

#: movie id + the two ratings: 4 + 8 + 8 = 20... plus user_a: 24 bytes = 30%
READ_FIELDS = ("movie", "rating_a", "rating_b")
READ_BYTES = 4 + 8 + 8 + 4  # includes user_a (weighting key): 24 B of 80 B
N_MOVIES = 4096
#: statistics accumulated per movie: n, sa, sb, sab, sa2, sb2
STATS = 6


@register
class NetflixApp(Application):
    """Per-movie correlation of user-pair ratings."""

    name = "netflix"
    display_name = "Netflix"
    paper_data_bytes = int(6.0 * GB)
    writes_mapped = False

    # ------------------------------------------------------------- data
    def generate(self, n_bytes: Optional[int] = None, seed: int = 0) -> AppData:
        n_bytes = n_bytes or self.default_bytes()
        n = max(1, n_bytes // RATING.record_size)
        rng = np.random.default_rng(seed)
        arr = np.zeros(n, dtype=RATING.numpy_dtype())
        arr["movie"] = rng.integers(0, N_MOVIES, n)
        base_quality = rng.uniform(1, 5, N_MOVIES)[arr["movie"]]
        arr["rating_a"] = np.clip(base_quality + rng.normal(0, 1, n), 1, 5)
        arr["rating_b"] = np.clip(base_quality + rng.normal(0, 1, n), 1, 5)
        arr["user_a"] = rng.integers(0, 1 << 20, n)
        arr["user_b"] = rng.integers(0, 1 << 20, n)
        arr["timestamp"] = rng.integers(0, 1 << 40, n)
        return AppData(
            app=self.name,
            mapped={"ratings": arr},
            schemas={"ratings": RATING},
            resident={"table": np.zeros(N_MOVIES * STATS, dtype=np.float64)},
            params={"numR": n},
            primary="ratings",
        )

    # ----------------------------------------------------- vectorized kernel
    def make_state(self, data: AppData) -> Any:
        return {"table": np.zeros(N_MOVIES * STATS, dtype=np.float64)}

    def process_chunk(self, data: AppData, state: Any, lo: int, hi: int) -> None:
        r = data.mapped["ratings"]
        m = r["movie"][lo:hi].astype(np.int64)
        a = r["rating_a"][lo:hi]
        b = r["rating_b"][lo:hi]
        t = state["table"]
        np.add.at(t, m * STATS + 0, 1.0)
        np.add.at(t, m * STATS + 1, a)
        np.add.at(t, m * STATS + 2, b)
        np.add.at(t, m * STATS + 3, a * b)
        np.add.at(t, m * STATS + 4, a * a)
        np.add.at(t, m * STATS + 5, b * b)

    def finalize(self, data: AppData, state: Any) -> np.ndarray:
        t = state["table"].reshape(N_MOVIES, STATS)
        n, sa, sb, sab, sa2, sb2 = (t[:, i] for i in range(6))
        with np.errstate(invalid="ignore", divide="ignore"):
            cov = sab - sa * sb / np.maximum(n, 1)
            var_a = sa2 - sa * sa / np.maximum(n, 1)
            var_b = sb2 - sb * sb / np.maximum(n, 1)
            corr = np.where(
                (n > 1) & (var_a > 0) & (var_b > 0),
                cov / np.sqrt(np.maximum(var_a * var_b, 1e-30)),
                0.0,
            )
        return corr

    def outputs_equal(self, a: Any, b: Any) -> bool:
        return bool(np.allclose(a, b, rtol=0, atol=1e-9))

    # ---------------------------------------------------- characterization
    def access_profile(self, data: AppData) -> AccessProfile:
        return AccessProfile(
            record_bytes=RATING.record_size,
            read_bytes_per_record=READ_BYTES,
            write_bytes_per_record=0.0,
            reads_per_record=3,  # the 24B span read as three 8B words
            writes_per_record=0.0,
            elem_bytes=8,
            gpu_ops_per_record=60.0,
            # six read-modify-writes on a 192 KiB table miss L1/L2 on the
            # CPU side; scalar cost per record is dominated by them
            cpu_ops_per_record=360.0,
            resident_bytes_per_record=16.0,  # table largely L2-resident GPU-side
            pattern_friendly=True,
            sliceable=True,
            gather_granularity_bytes=28.0,  # movie..user_a span contiguously
            addresses_per_record=1.0,  # movie..user_a is one contiguous span
            gpu_divergence=10.0,  # fp64 atomics contending on hot movie rows
        )

    def chunk_read_offsets(self, data: AppData, lo: int, hi: int) -> np.ndarray:
        base = np.arange(lo, hi, dtype=np.int64) * RATING.record_size
        # the contiguous movie..user_a span (24 B) read as three 8B words
        field_offs = np.array([0, 8, 16], dtype=np.int64)
        return (base[:, None] + field_offs[None, :]).reshape(-1)

    # ------------------------------------------------------- compiler path
    def kernel(self) -> Kernel:
        ref = lambda f: MappedRef("ratings", Var("i"), f)
        slot = lambda k: BinOp("+", BinOp("*", Var("m"), Const(STATS)), Const(k))
        body = (
            For(
                "i",
                Var("start"),
                Var("end"),
                (
                    Assign("m", Load(ref("movie"))),
                    Assign("a", Load(ref("rating_a"))),
                    Assign("b", Load(ref("rating_b"))),
                    Assign("ua", Load(ref("user_a"))),
                    AtomicAdd("table", slot(0), Const(1.0)),
                    AtomicAdd("table", slot(1), Var("a")),
                    AtomicAdd("table", slot(2), Var("b")),
                    AtomicAdd("table", slot(3), BinOp("*", Var("a"), Var("b"))),
                    AtomicAdd("table", slot(4), BinOp("*", Var("a"), Var("a"))),
                    AtomicAdd("table", slot(5), BinOp("*", Var("b"), Var("b"))),
                ),
            ),
        )
        return Kernel(
            name="netflixKernel",
            body=body,
            mapped={"ratings": RATING},
            resident=("table",),
        )

    def make_ir_context(self, data: AppData) -> ExecutionContext:
        return ExecutionContext(
            mapped={"ratings": data.mapped["ratings"]},
            resident={"table": np.zeros(N_MOVIES * STATS, dtype=np.float64)},
            params=dict(data.params),
        )

    def ir_output(self, data: AppData, ctx: ExecutionContext) -> np.ndarray:
        return self.finalize(data, {"table": ctx.resident["table"]})
