"""Run-matrix harness: all apps x all schemes, with dataset caching."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.apps import ALL_APPS, get_app
from repro.apps.base import AppData, Application
from repro.engines import (
    ALL_ENGINES,
    BigKernelEngine,
    CpuMtEngine,
    CpuSerialEngine,
    EngineConfig,
    GpuDoubleBufferEngine,
    GpuSingleBufferEngine,
    RunResult,
)
from repro.errors import ValidationFailure
from repro.units import MiB


@dataclass
class BenchSettings:
    """Workload sizing shared across one harness invocation."""

    data_bytes: int = 8 * MiB
    seed: int = 7
    config: EngineConfig = field(default_factory=lambda: EngineConfig(chunk_bytes=2 * MiB))
    #: cross-check every engine's output against the serial reference
    validate: bool = True
    #: run the trace invariant checkers (repro.verify) on every traced run
    check_invariants: bool = False
    #: route engine runs through the process-wide two-tier RunCache
    #: (:data:`repro.bench.sweep.RUN_CACHE`) — repeated harness invocations
    #: (every figure re-running the same matrix) and even separate
    #: processes then evaluate each (engine, app, dataset, config) cell
    #: once, via the persistent content-keyed disk tier
    cache: bool = False


@dataclass
class Matrix:
    """Results of one apps-x-engines sweep."""

    results: dict  # (app_name, engine_name) -> RunResult
    apps: tuple
    engines: tuple

    def get(self, app: str, engine: str) -> RunResult:
        return self.results[(app, engine)]

    def speedup(self, app: str, engine: str, baseline: str = "cpu_serial") -> float:
        return self.get(app, engine).speedup_over(self.get(app, baseline))


def default_engines():
    return (
        CpuSerialEngine(),
        CpuMtEngine(),
        GpuSingleBufferEngine(),
        GpuDoubleBufferEngine(),
        BigKernelEngine(),
    )


def _run_cell(engine, app, data, config, cache: bool) -> RunResult:
    """One matrix cell, optionally through the two-tier run cache."""
    if not cache:
        return engine.run(app, data, config)
    from repro.bench.sweep import RUN_CACHE, RunCache, _disk_key

    key = RunCache.key(engine, app, data, config)
    disk_key = _disk_key(engine, app, data, config, cache)
    result = RUN_CACHE.get(key, disk_key)
    if result is None:
        result = engine.run(app, data, config)
        RUN_CACHE.put(key, result, disk_key)
    return result


def run_matrix(
    settings: Optional[BenchSettings] = None,
    apps: Optional[Iterable[Application]] = None,
    engines: Optional[Iterable] = None,
) -> Matrix:
    """Run every engine on every app; validates output equality."""
    settings = settings or BenchSettings()
    apps = tuple(apps) if apps is not None else tuple(cls() for cls in ALL_APPS)
    engines = tuple(engines) if engines is not None else default_engines()

    config = settings.config
    if settings.check_invariants and config.fastpath:
        # invariant checking needs full timelines: force the DES (the
        # analytic fast path intentionally records no trace)
        config = config.with_(fastpath=False)

    results: dict = {}
    for app in apps:
        data = app.generate(n_bytes=settings.data_bytes, seed=settings.seed)
        reference = None
        for engine in engines:
            res = _run_cell(engine, app, data, config, settings.cache)
            results[(app.name, engine.name)] = res
            if reference is None:
                reference = res
            elif settings.validate and config.functional and not app.outputs_equal(
                reference.output, res.output
            ):
                raise ValidationFailure(
                    f"{engine.name} output differs from {reference.engine} "
                    f"on {app.name}"
                )
            if settings.check_invariants and res.trace is not None:
                from repro.verify.invariants import verify_run

                report = verify_run(res, config)
                if not report.ok:
                    raise ValidationFailure(
                        f"{engine.name} timeline on {app.name} violates "
                        f"pipeline invariants:\n{report.summary()}"
                    )
    return Matrix(
        results=results,
        apps=tuple(a.name for a in apps),
        engines=tuple(e.name for e in engines),
    )
