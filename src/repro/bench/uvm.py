"""BigKernel vs unified-memory demand paging: the competitor comparison.

The paper argues (Section II) that CUDA-style unified/managed memory is
the *convenience* alternative to BigKernel's explicit 4-stage pipeline:
the driver migrates pages on fault instead of the runtime streaming
chunks ahead of the kernel. This harness quantifies that argument on the
paper's six applications by running four schemes per app:

* ``bigkernel`` — the paper's pipelined engine (the contribution);
* ``gpu_uvm`` — pure fault-driven paging, no prefetch;
* ``uvm_readahead`` — paging plus the adaptive-window sequential
  readahead a production driver ships;
* ``uvm_learned`` — paging plus a pattern prefetcher fed by the same
  address-stream analysis BigKernel's own prefetch threads use.

Expected shape of the result (asserted by ``benchmarks/test_perf_smoke``
and pinned at reference scale by ``tests/test_calibration_lock``): both
prefetched variants beat plain UVM on every app, and BigKernel beats the
best UVM variant on most apps — prefetching narrows the gap but cannot
buy the pipeline's pinned-buffer bandwidth or its transfer-volume
reduction.

Exposed as ``python -m repro bench [--jobs N] [--backend B]``; with
``jobs > 1`` the (app, engine) cells fan out over the same picklable
:class:`~repro.bench.jobs.JobSpec` machinery the sweep and chaos
harnesses use, and come back in the serial nesting order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.apps import get_app
from repro.engines import (
    UVM_ENGINES,
    BigKernelEngine,
    EngineConfig,
)
from repro.errors import ReproError, ValidationFailure
from repro.units import MiB, fmt_time

#: the six applications of the paper's evaluation (the indexed MasterCard
#: variant is a Table II ablation, not part of the Fig. 4 matrix)
PAPER_APP_NAMES = (
    "kmeans",
    "wordcount",
    "netflix",
    "opinion",
    "dna",
    "mastercard",
)


def comparison_engines() -> tuple:
    """The four schemes of the comparison, in report column order."""
    return (BigKernelEngine(),) + tuple(cls() for cls in UVM_ENGINES)


@dataclass
class UvmComparison:
    """Results of one BigKernel-vs-UVM comparison sweep."""

    seed: int
    data_bytes: int
    apps: tuple = ()
    engines: tuple = ()
    results: dict = field(default_factory=dict)  # (app, engine) -> RunResult

    def get(self, app: str, engine: str):
        return self.results[(app, engine)]

    def sim_time(self, app: str, engine: str) -> float:
        return self.get(app, engine).sim_time

    def speedup(self, app: str, engine: str, baseline: str = "gpu_uvm") -> float:
        """How much faster ``engine`` is than ``baseline`` on ``app``."""
        return self.sim_time(app, baseline) / self.sim_time(app, engine)

    def summary(self) -> str:
        from repro.bench.report import render_table

        rows = []
        for app in self.apps:
            row = [app]
            for engine in self.engines:
                row.append(fmt_time(self.sim_time(app, engine)))
            row.append(f"{self.speedup(app, 'bigkernel', self.best_uvm(app)):.2f}x")
            rows.append(row)
        return render_table(
            ["app", *self.engines, "bigkernel vs best uvm"],
            rows,
            title=(
                f"BigKernel vs unified memory: "
                f"{self.data_bytes // MiB} MiB datasets, seed {self.seed}"
            ),
        )

    def best_uvm(self, app: str) -> str:
        """The fastest unified-memory variant on ``app``."""
        uvm = [e for e in self.engines if e != "bigkernel"]
        return min(uvm, key=lambda e: self.sim_time(app, e))

    def figure_entry(self) -> dict:
        """The ``BENCH_pipeline.json`` record of this comparison."""
        cells = {}
        for app in self.apps:
            per_app = {}
            for engine in self.engines:
                res = self.get(app, engine)
                cell = {"sim_time": res.sim_time}
                faults = res.metrics.notes.get("faults")
                if faults is not None:
                    cell["faults"] = faults
                per_app[engine] = cell
            per_app["bigkernel_vs_best_uvm"] = self.speedup(
                app, "bigkernel", self.best_uvm(app)
            )
            cells[app] = per_app
        return {
            "name": "uvm_comparison",
            "seed": self.seed,
            "data_bytes": self.data_bytes,
            "engines": list(self.engines),
            "apps": cells,
        }


def _comparison_jobs(apps, engines, datasets, config):
    """Picklable JobSpecs for every cell, in the serial nesting order."""
    from repro.bench.jobs import JobSpec, dataset_spec, engine_to_spec

    jobs = []
    for app in apps:
        dspec = dataset_spec(app, datasets[app.name])
        for engine in engines:
            espec = engine_to_spec(engine)
            if dspec is None or espec is None:
                return None
            jobs.append(JobSpec(dataset=dspec, engine=espec, config=config))
    return jobs


def run_uvm_comparison(
    data_bytes: int = 4 * MiB,
    seed: int = 4,
    config: Optional[EngineConfig] = None,
    apps: Optional[Iterable[str]] = None,
    jobs: int = 1,
    backend: str = "auto",
) -> UvmComparison:
    """Run the four-scheme comparison over the paper's six applications.

    Every engine's functional output is cross-checked against the first
    (BigKernel, itself differentially verified against the serial oracle
    by ``repro verify``) — a paging bug can slow the timeline, but it must
    never corrupt data. ``jobs > 1`` fans the cells across threads or a
    process pool of spec-replaying workers; cell order (and therefore the
    figure entry) is backend-invariant.
    """
    config = config or EngineConfig(chunk_bytes=max(256 * 1024, data_bytes // 4))
    app_names = tuple(apps) if apps is not None else PAPER_APP_NAMES
    app_objs = [get_app(name) for name in app_names]
    engines = comparison_engines()
    datasets = {
        app.name: app.generate(n_bytes=data_bytes, seed=seed)
        for app in app_objs
    }

    comparison = UvmComparison(
        seed=seed,
        data_bytes=data_bytes,
        apps=tuple(app_names),
        engines=tuple(e.name for e in engines),
    )

    cells = [(app, engine) for app in app_objs for engine in engines]
    results = None
    if jobs > 1 and len(cells) > 1:
        from repro.bench.sweep import BACKENDS

        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        specs = _comparison_jobs(app_objs, engines, datasets, config)
        use_process = backend == "process" or (
            backend == "auto" and specs is not None
        )
        if backend == "process" and specs is None:
            raise ReproError(
                "backend='process' needs registry apps and stock engines; "
                "use backend='thread' for custom instances"
            )
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        workers = min(jobs, len(cells))
        if use_process and specs is not None:
            from repro.bench.jobs import run_jobspec

            with ProcessPoolExecutor(max_workers=workers) as ex:
                results = list(ex.map(run_jobspec, specs))
        else:
            with ThreadPoolExecutor(max_workers=workers) as ex:
                results = list(
                    ex.map(
                        lambda c: c[1].run(c[0], datasets[c[0].name], config),
                        cells,
                    )
                )
    else:
        results = [
            engine.run(app, datasets[app.name], config)
            for app, engine in cells
        ]

    for (app, engine), res in zip(cells, results):
        comparison.results[(app.name, engine.name)] = res

    if config.functional:
        for app in app_objs:
            ref = comparison.get(app.name, engines[0].name)
            for engine in engines[1:]:
                res = comparison.get(app.name, engine.name)
                if not app.outputs_equal(ref.output, res.output):
                    raise ValidationFailure(
                        f"{engine.name} output differs from {ref.engine} "
                        f"on {app.name}"
                    )
    return comparison
