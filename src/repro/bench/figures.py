"""Figure harnesses: each returns the figure's data series plus a text
rendition, ready for paper-vs-measured comparison."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.apps import ALL_APPS, get_app
from repro.bench.harness import BenchSettings, Matrix, run_matrix
from repro.bench.paper_data import APP_ORDER
from repro.bench.report import render_series, render_table
from repro.engines import BigKernelEngine, BigKernelFeatures, GpuSingleBufferEngine
from repro.runtime.pipeline import FORWARD_STAGES, STAGE_WRITEBACK_SCATTER, STAGE_WRITEBACK_XFER


@dataclass
class FigureResult:
    """Data + rendering of one regenerated figure."""

    figure: str
    series: dict
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


# ---------------------------------------------------------------------------
# Fig. 4(a): speedup of every scheme over the serial CPU implementation
# ---------------------------------------------------------------------------

def fig4a(settings: Optional[BenchSettings] = None, matrix: Optional[Matrix] = None) -> FigureResult:
    """Per-app speedups over CPU-serial for all five schemes."""
    matrix = matrix or run_matrix(settings)
    series: dict = {}
    for app in APP_ORDER:
        if app not in matrix.apps:
            continue
        series[app] = {
            engine: matrix.speedup(app, engine)
            for engine in matrix.engines
            if engine != "cpu_serial"
        }
    rows = [
        [app] + [f"{series[app][e]:.2f}x" for e in series[app]]
        for app in series
    ]
    headers = ["app"] + [e for e in next(iter(series.values()))]
    text = render_table(headers, rows, title="Fig. 4(a): speedup over serial CPU")
    return FigureResult("fig4a", series, text)


# ---------------------------------------------------------------------------
# Fig. 4(b): computation / communication ratio of the single-buffer scheme
# ---------------------------------------------------------------------------

def fig4b(settings: Optional[BenchSettings] = None, matrix: Optional[Matrix] = None) -> FigureResult:
    """Computation share of comp+comm time in the single-buffer runs."""
    matrix = matrix or run_matrix(settings)
    series = {}
    for app in APP_ORDER:
        if app not in matrix.apps:
            continue
        m = matrix.get(app, "gpu_single").metrics
        series[app] = {
            "computation": m.comp_comm_ratio,
            "communication": 1.0 - m.comp_comm_ratio,
        }
    rows = [
        [app, f"{v['computation'] * 100:.0f}%", f"{v['communication'] * 100:.0f}%"]
        for app, v in series.items()
    ]
    text = render_table(
        ["app", "computation", "communication"],
        rows,
        title="Fig. 4(b): comp/comm ratio, single-buffer implementation",
    )
    return FigureResult("fig4b", series, text)


# ---------------------------------------------------------------------------
# Fig. 5: incremental benefit of overlap / volume reduction / coalescing
# ---------------------------------------------------------------------------

def fig5(settings: Optional[BenchSettings] = None) -> FigureResult:
    """Speedup over single-buffer of the three BigKernel variants.

    Variants are cumulative (as in the paper): overlap-only, then
    + transfer-volume reduction, then + memory coalescing (= full).
    """
    settings = settings or BenchSettings()
    single = GpuSingleBufferEngine()
    variants = (
        ("overlap", BigKernelEngine(BigKernelFeatures.overlap_only())),
        ("reduction", BigKernelEngine(BigKernelFeatures.with_reduction())),
        ("coalescing", BigKernelEngine(BigKernelFeatures.full())),
    )
    series: dict = {}
    for cls in ALL_APPS:
        app = cls()
        data = app.generate(n_bytes=settings.data_bytes, seed=settings.seed)
        t_single = single.run(app, data, settings.config).sim_time
        cumulative = {}
        for label, engine in variants:
            t = engine.run(app, data, settings.config).sim_time
            cumulative[label] = t_single / t
        series[app.name] = cumulative
    rows = [
        [
            app,
            f"{v['overlap']:.2f}x",
            f"{v['reduction']:.2f}x",
            f"{v['coalescing']:.2f}x",
        ]
        for app, v in series.items()
    ]
    text = render_table(
        ["app", "overlap only", "+volume reduction", "+coalescing (full)"],
        rows,
        title="Fig. 5: cumulative speedup over single-buffer by feature",
    )
    return FigureResult("fig5", series, text)


# ---------------------------------------------------------------------------
# Fig. 6: relative completion time of each BigKernel stage
# ---------------------------------------------------------------------------

def fig6(settings: Optional[BenchSettings] = None, matrix: Optional[Matrix] = None) -> FigureResult:
    """Per-stage busy time relative to the longest stage."""
    settings = settings or BenchSettings()
    if matrix is None:
        matrix = run_matrix(settings, engines=[BigKernelEngine()])
    series: dict = {}
    for app in APP_ORDER:
        if app not in matrix.apps:
            continue
        totals = dict(matrix.get(app, "bigkernel").metrics.stage_totals)
        # fold write-back stages into the forward view like the paper's
        # four-bar chart (the write stages overlap the forward pipeline)
        forward = {s: totals.get(s, 0.0) for s in FORWARD_STAGES}
        longest = max(forward.values()) if forward else 1.0
        series[app] = {
            s: (forward[s] / longest if longest > 0 else 0.0) for s in FORWARD_STAGES
        }
    rows = [
        [app] + [f"{series[app][s] * 100:.0f}%" for s in FORWARD_STAGES]
        for app in series
    ]
    text = render_table(
        ["app", *FORWARD_STAGES],
        rows,
        title="Fig. 6: stage completion time relative to the longest stage",
    )
    return FigureResult("fig6", series, text)
