"""Values the paper reports, for side-by-side comparison.

Figures 4-6 are bar charts without printed numbers; where the text states
aggregates ("average speedup of 1.7 over double buffering") we record those,
and for per-app chart values we record qualitative expectations used by the
regression assertions (who wins, what dominates).
"""

from repro.units import GB

#: application display order used throughout the paper's figures
APP_ORDER = (
    "kmeans",
    "wordcount",
    "netflix",
    "opinion",
    "dna",
    "mastercard",
    "mastercard_indexed",
)

#: Table I — mapped-data characteristics as printed in the paper
TABLE1 = {
    "kmeans": {
        "data_size": 6.0 * GB,
        "record_type": "Fixed-length",
        "read": 0.50,
        "modified": 0.12,
    },
    "wordcount": {
        "data_size": 4.5 * GB,
        "record_type": "Variable-length",
        "read": 1.00,
        "modified": 0.0,
    },
    "netflix": {
        "data_size": 6.0 * GB,
        "record_type": "Fixed-length",
        "read": 0.30,
        "modified": 0.0,
    },
    "opinion": {
        "data_size": 6.2 * GB,
        "record_type": "Fixed-length",
        "read": 0.73,
        "modified": 0.0,
    },
    "dna": {
        "data_size": 4.5 * GB,
        "record_type": "Fixed-length",
        "read": 0.36,
        "modified": 0.0,
    },
    "mastercard": {
        "data_size": 6.4 * GB,
        "record_type": "Variable-length",
        "read": 1.00,
        "modified": 0.0,
    },
    "mastercard_indexed": {
        "data_size": 6.4 * GB,
        "record_type": "Variable-length (indexed)",
        "read": 0.25,
        "modified": 0.0,
    },
}

#: Table II — performance improvement from pattern recognition
#: (None = not applicable: no pattern exists for index-driven addresses)
TABLE2 = {
    "kmeans": 0.31,
    "wordcount": 0.66,
    "netflix": 0.03,
    "opinion": 0.06,
    "dna": 0.07,
    "mastercard": 0.57,
    "mastercard_indexed": None,
}

#: Section VI-A aggregate speedups stated in the text
AGGREGATES = {
    ("bigkernel", "gpu_single"): {"avg": 2.6, "max": 4.6},
    ("bigkernel", "gpu_double"): {"avg": 1.7, "max": 3.1},
    ("bigkernel", "cpu_mt"): {"avg": 3.0, "max": 7.2},
}

#: Fig. 4(b)/Section VI qualitative expectations: which apps are
#: computation-dominant in the single-buffer implementation
COMPUTATION_DOMINANT = ("wordcount", "opinion")

#: Fig. 5 qualitative expectations: apps whose transfer volume cannot be
#: reduced (everything is read)
NO_VOLUME_REDUCTION = ("wordcount", "mastercard")

#: Fig. 6 qualitative expectation: address generation is the cheapest stage
#: ("usually less than 20%" of the longest stage)
ADDR_GEN_MAX_FRACTION = 0.35
