"""Benchmark harnesses regenerating every table and figure of the paper's
evaluation (Section VI).

* Fig. 4(a) — speedups of all five schemes over serial CPU: :mod:`figures`.
* Fig. 4(b) — computation/communication ratio of the single-buffer scheme.
* Fig. 5 — incremental benefit of overlap / transfer-volume reduction /
  memory coalescing (BigKernel feature ablation).
* Fig. 6 — relative completion time of the four pipeline stages.
* Table I — mapped-data characteristics, *measured* from the kernels'
  actual access streams: :mod:`tables`.
* Table II — performance improvement from pattern recognition.

``repro.bench.paper_data`` holds the paper-reported values each harness
prints next to the measured ones.
"""

from repro.bench.harness import BenchSettings, Matrix, run_matrix
from repro.bench.report import render_table, render_series, render_gantt
from repro.bench.figures import fig4a, fig4b, fig5, fig6
from repro.bench.tables import table1, table2
from repro.bench.sweep import (
    sweep,
    autotune,
    SweepResult,
    SweepPoint,
    RunCache,
    RUN_CACHE,
    DEFAULT_GRID,
)
from repro.bench.uvm import UvmComparison, run_uvm_comparison
from repro.bench.multigpu import (
    DEFAULT_GPU_COUNTS,
    MultiGpuScaling,
    run_multigpu_scaling,
    scaling_engines,
)
from repro.bench import paper_data

__all__ = [
    "BenchSettings",
    "Matrix",
    "run_matrix",
    "render_table",
    "render_series",
    "render_gantt",
    "fig4a",
    "fig4b",
    "fig5",
    "fig6",
    "table1",
    "table2",
    "sweep",
    "autotune",
    "SweepResult",
    "SweepPoint",
    "RunCache",
    "RUN_CACHE",
    "DEFAULT_GRID",
    "UvmComparison",
    "run_uvm_comparison",
    "DEFAULT_GPU_COUNTS",
    "MultiGpuScaling",
    "run_multigpu_scaling",
    "scaling_engines",
    "paper_data",
]
