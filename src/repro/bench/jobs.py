"""Picklable job specifications for the process-pool execution backend.

``sweep(backend="process")`` and ``chaos --backend process`` cannot ship
live objects to workers: engines carry memoization caches, ``AppData``
holds tens of megabytes of arrays, and pickling either would cost more
than the run itself. Instead the parent sends a :class:`JobSpec` — app
name, generation recipe (seed, requested bytes, datagen version), engine
identity, and the frozen :class:`~repro.engines.base.EngineConfig` — and
each worker *regenerates* the dataset locally. Generation is deterministic
(:func:`repro.apps.base.dataset_key` names datasets by exactly this
recipe), so every worker sees byte-identical data, and per-worker caches
(:data:`_WORKER_DATASETS`, :data:`_WORKER_ENGINES`) amortize the
regeneration and the engine's schedule memoization across all the points
a worker evaluates.

Only registry apps and stock engines are spec-able: a hand-built
``AppData`` or a custom engine instance has no recipe a worker could
replay, in which case :func:`dataset_spec` / :func:`engine_to_spec` return
``None`` and the caller falls back to the thread backend (or raises, when
the process backend was requested explicitly).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.apps.base import APP_REGISTRY, AppData, Application, get_app
from repro.engines.base import Engine, EngineConfig, RunResult
from repro.errors import ReproError


@dataclass(frozen=True)
class DatasetSpec:
    """Generation recipe of one dataset — enough to regenerate it."""

    app: str
    seed: int
    #: requested size as passed to ``generate`` (None = the app default)
    n_bytes: Optional[int]
    #: :data:`repro.apps.datagen.DATAGEN_VERSION` at spec time
    version: int


@dataclass(frozen=True)
class EngineSpec:
    """Engine identity: registry name plus the BigKernel feature label."""

    name: str
    variant: str = ""


@dataclass(frozen=True)
class JobSpec:
    """One engine run, fully described by value — safe to pickle."""

    dataset: DatasetSpec
    engine: EngineSpec
    config: EngineConfig


def dataset_spec(app: Application, data: AppData) -> Optional[DatasetSpec]:
    """The dataset's regeneration recipe, or None when it has none.

    Requires the generation stamp (``data.meta["datagen"]``) *and* that
    ``app`` is exactly the registered class for its name — a worker
    reconstructs the app as ``get_app(name)``, which must produce the same
    generator.
    """
    recipe = data.meta.get("datagen")
    if recipe is None or data.app != app.name:
        return None
    if APP_REGISTRY.get(app.name) is not type(app):
        return None
    return DatasetSpec(
        app=app.name,
        seed=recipe["seed"],
        n_bytes=recipe["n_bytes"],
        version=recipe["version"],
    )


def engine_to_spec(engine: Engine) -> Optional[EngineSpec]:
    """Identity of a stock engine, or None for custom engine types."""
    from repro.engines import ALL_ENGINES, UVM_ENGINES, BigKernelEngine
    from repro.engines.multigpu import MultiGpuBigKernelEngine
    from repro.engines.uvm import UvmSpec

    if type(engine) is MultiGpuBigKernelEngine:
        # the fabric rides in the variant: every constructor knob that
        # changes the timeline must survive the worker round-trip
        variant = ":".join(
            (
                engine.features.label,
                f"g{engine.n_gpus}",
                "shared" if engine.shared_link else "dedicated",
                "numa" if engine.numa_aware else "blind",
            )
        )
        return EngineSpec(name=MultiGpuBigKernelEngine.name, variant=variant)
    if type(engine) is BigKernelEngine:
        return EngineSpec(name=engine.name, variant=engine.features.label)
    if type(engine) in UVM_ENGINES:
        # only the stock paging model is replayable by name; a custom
        # UvmSpec has no registry recipe a worker could rebuild
        if engine.spec != UvmSpec():
            return None
        return EngineSpec(name=engine.name, variant=engine.prefetch or "")
    if type(engine) in ALL_ENGINES:
        return EngineSpec(name=engine.name)
    return None


def _features_from_label(label: str):
    from repro.engines import BigKernelFeatures

    factory = {
        "overlap-only": BigKernelFeatures.overlap_only,
        "volume-reduction": BigKernelFeatures.with_reduction,
        "full": BigKernelFeatures.full,
        "coalesce-only": lambda: BigKernelFeatures(
            reduce_volume=False, coalesce=True
        ),
    }.get(label or "full")
    if factory is None:
        raise ReproError(f"unknown BigKernel variant {label!r}")
    return factory()


def engine_from_spec(spec: EngineSpec) -> Engine:
    """Reconstruct the engine a spec names."""
    from repro.engines import ALL_ENGINES, BigKernelEngine
    from repro.engines.multigpu import MultiGpuBigKernelEngine

    if spec.name == MultiGpuBigKernelEngine.name:
        parts = spec.variant.split(":")
        if len(parts) != 4 or not parts[1].startswith("g"):
            raise ReproError(
                f"malformed multi-GPU engine variant {spec.variant!r}"
            )
        label, gpus, link, numa = parts
        return MultiGpuBigKernelEngine(
            n_gpus=int(gpus[1:]),
            features=_features_from_label(label),
            shared_link=link == "shared",
            numa_aware=numa == "numa",
        )
    if spec.name == BigKernelEngine.name:
        return BigKernelEngine(features=_features_from_label(spec.variant))
    from repro.engines import UVM_ENGINES

    for cls in UVM_ENGINES:
        if cls.name == spec.name:
            return cls(prefetch=spec.variant or None)
    for cls in ALL_ENGINES:
        if cls.name == spec.name:
            return cls()
    raise ReproError(f"unknown engine {spec.name!r} in job spec")


#: per-worker dataset cache: spec -> (app, data). A sweep fans one dataset
#: across many configs, so one regeneration serves a worker's whole share.
_WORKER_DATASETS: OrderedDict = OrderedDict()
_WORKER_DATASETS_MAX = 4

#: per-worker engine cache: reusing the instance keeps its schedule /
#: pattern / buffer memoization warm across the worker's grid points
_WORKER_ENGINES: dict = {}


def materialize_dataset(spec: DatasetSpec) -> tuple[Application, AppData]:
    """Regenerate (and cache) the app + dataset a spec names."""
    cached = _WORKER_DATASETS.get(spec)
    if cached is not None:
        _WORKER_DATASETS.move_to_end(spec)
        return cached
    from repro.apps.datagen import DATAGEN_VERSION

    if spec.version != DATAGEN_VERSION:
        raise ReproError(
            f"dataset spec for {spec.app!r} was made with datagen version "
            f"{spec.version}, worker has {DATAGEN_VERSION}"
        )
    app = get_app(spec.app)
    data = app.generate(n_bytes=spec.n_bytes, seed=spec.seed)
    _WORKER_DATASETS[spec] = (app, data)
    while len(_WORKER_DATASETS) > _WORKER_DATASETS_MAX:
        _WORKER_DATASETS.popitem(last=False)
    return app, data


def run_jobspec(spec: JobSpec) -> RunResult:
    """Execute one job in this process (the pool worker entry point)."""
    app, data = materialize_dataset(spec.dataset)
    engine = _WORKER_ENGINES.get(spec.engine)
    if engine is None:
        engine = _WORKER_ENGINES[spec.engine] = engine_from_spec(spec.engine)
    return engine.run(app, data, spec.config)
