"""Table harnesses: Table I (measured access characteristics) and
Table II (pattern-recognition benefit)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps import ALL_APPS
from repro.bench.harness import BenchSettings
from repro.bench.paper_data import TABLE1, TABLE2
from repro.bench.report import render_table
from repro.engines import BigKernelEngine, EngineConfig
from repro.units import fmt_bytes


@dataclass
class TableResult:
    table: str
    rows: dict
    text: str

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.text


def measure_access_fractions(app, data, sample_units: int = 4096) -> tuple[float, float]:
    """Measured read/modified byte fractions of the mapped data.

    Counts the *unique* bytes the kernel's access stream touches over a
    sample of units — the honest version of Table I's proportions.
    """
    profile = app.access_profile(data)
    n = min(sample_units, app.n_units(data))
    read_offs = app.chunk_read_offsets(data, 0, n)
    write_offs = app.chunk_write_offsets(data, 0, n)
    span = n * profile.record_bytes
    read_elem = int(
        round(profile.read_bytes_per_record / max(profile.reads_per_record, 1e-9))
    ) or 1
    write_elem = (
        int(round(profile.write_bytes_per_record / max(profile.writes_per_record, 1e-9)))
        if profile.writes_per_record
        else 0
    )
    read_bytes = _unique_coverage(read_offs, read_elem)
    write_bytes = _unique_coverage(write_offs, write_elem) if write_elem else 0
    return read_bytes / span, write_bytes / span


def _unique_coverage(offsets: np.ndarray, elem: int) -> int:
    if offsets.size == 0 or elem == 0:
        return 0
    touched = np.unique(
        (offsets[:, None] + np.arange(elem, dtype=np.int64)[None, :]).reshape(-1)
    )
    return int(touched.size)


def table1(settings: Optional[BenchSettings] = None) -> TableResult:
    """Table I: application mapped-data characteristics, measured."""
    settings = settings or BenchSettings()
    rows = {}
    printable = []
    for cls in ALL_APPS:
        app = cls()
        data = app.generate(n_bytes=settings.data_bytes, seed=settings.seed)
        profile = app.access_profile(data)
        read_frac, write_frac = measure_access_fractions(app, data)
        paper = TABLE1[app.name]
        rows[app.name] = {
            "data_size": data.total_mapped_bytes,
            "record_type": paper["record_type"],
            "variable_length": profile.variable_length,
            "read": read_frac,
            "modified": write_frac,
            "paper_read": paper["read"],
            "paper_modified": paper["modified"],
        }
        printable.append(
            [
                app.display_name,
                fmt_bytes(data.total_mapped_bytes),
                paper["record_type"],
                f"{read_frac * 100:.0f}% (paper {paper['read'] * 100:.0f}%)",
                f"{write_frac * 100:.0f}% (paper {paper['modified'] * 100:.0f}%)",
            ]
        )
    text = render_table(
        ["application", "data size", "record type", "read", "modified"],
        printable,
        title="Table I: application mapped data (measured vs paper)",
    )
    return TableResult("table1", rows, text)


def table2(settings: Optional[BenchSettings] = None) -> TableResult:
    """Table II: performance improvement from pattern recognition.

    Runs BigKernel with the pattern recognizer enabled and disabled; the
    improvement is ``t_off / t_on - 1``. Apps whose streams never match a
    pattern report NA, like the paper's indexed MasterCard row.
    """
    settings = settings or BenchSettings()
    engine = BigKernelEngine()
    rows = {}
    printable = []
    for cls in ALL_APPS:
        app = cls()
        data = app.generate(n_bytes=settings.data_bytes, seed=settings.seed)
        cfg_on = settings.config.with_(pattern_recognition=True)
        cfg_off = settings.config.with_(pattern_recognition=False)
        r_on = engine.run(app, data, cfg_on)
        r_off = engine.run(app, data, cfg_off)
        if r_on.metrics.pattern_fraction < 0.5:
            improvement = None  # no pattern exists: recognition cannot help
        else:
            improvement = r_off.sim_time / r_on.sim_time - 1.0
        paper = TABLE2[app.name]
        rows[app.name] = {
            "improvement": improvement,
            "paper": paper,
            "pattern_fraction": r_on.metrics.pattern_fraction,
        }
        printable.append(
            [
                app.display_name,
                "NA" if improvement is None else f"{improvement * 100:.0f}%",
                "NA" if paper is None else f"{paper * 100:.0f}%",
            ]
        )
    text = render_table(
        ["application", "measured", "paper"],
        printable,
        title="Table II: performance improvement from access patterns",
    )
    return TableResult("table2", rows, text)
