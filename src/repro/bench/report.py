"""Plain-text rendering of tables and bar-chart-style series."""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.sim.trace import Interval
from repro.units import fmt_time


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence],
    title: str = "",
) -> str:
    """Fixed-width ASCII table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    sep = "-+-".join("-" * w for w in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_series(
    series: dict,
    title: str = "",
    unit: str = "x",
    bar_scale: Optional[float] = None,
    width: int = 40,
) -> str:
    """Horizontal ASCII bars — a terminal rendition of the paper's charts.

    ``series`` maps label -> value (or label -> dict of sublabel -> value
    for grouped bars).
    """
    lines = [title] if title else []
    flat: list[tuple[str, float]] = []
    for label, value in series.items():
        if isinstance(value, dict):
            for sub, v in value.items():
                flat.append((f"{label} / {sub}", float(v)))
        else:
            flat.append((str(label), float(value)))
    if not flat:
        return title
    peak = bar_scale or max(v for _, v in flat) or 1.0
    label_w = max(len(l) for l, _ in flat)
    for label, v in flat:
        n = int(round(width * v / peak)) if peak > 0 else 0
        lines.append(f"{label.ljust(label_w)} | {'#' * n} {v:.2f}{unit}")
    return "\n".join(lines)


def _fmt(cell) -> str:
    if cell is None:
        return "NA"
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def render_gantt(
    trace,
    width: int = 72,
    tracks: Optional[Sequence[str]] = None,
    max_rows: int = 40,
) -> str:
    """ASCII Gantt chart of a :class:`~repro.sim.trace.TraceRecorder`.

    One row per (track, label); time runs left to right across ``width``
    columns. Gives a terminal-friendly view of the pipeline overlap that
    Fig. 2 of the paper draws.
    """
    intervals = trace.intervals
    if not intervals:
        return "(empty trace)"
    t0 = min(iv.start for iv in intervals)
    t1 = max(iv.end for iv in intervals)
    span = max(t1 - t0, 1e-12)
    if tracks is None:
        tracks = list(dict.fromkeys(iv.track for iv in intervals))

    rows: list[tuple[str, list[Interval]]] = []
    for track in tracks:
        track_ivs = [iv for iv in intervals if iv.track == track]
        for label in dict.fromkeys(iv.label for iv in track_ivs):
            rows.append(
                (f"{track}:{label}", [iv for iv in track_ivs if iv.label == label])
            )
    rows = rows[:max_rows]

    name_w = max(len(name) for name, _ in rows)
    lines = [f"{'':{name_w}}  |{'-' * width}| {fmt_time(span)}"]
    for name, ivs in rows:
        cells = [" "] * width
        for iv in ivs:
            lo = int((iv.start - t0) / span * width)
            hi = int((iv.end - t0) / span * width)
            hi = max(hi, lo + 1)
            for c in range(lo, min(hi, width)):
                cells[c] = "#"
        lines.append(f"{name:{name_w}}  |{''.join(cells)}|")
    return "\n".join(lines)
