"""Multi-GPU scale-out: the 1→K sharded-pipeline scaling sweep.

The scale-out engine (:mod:`repro.engines.multigpu`) partitions each
application across K modeled GPUs whose pipelines contend on the host
fabric — shared PCIe root complex, NUMA-split memory bandwidth, a fixed
CPU-thread budget — and pays a cross-GPU merge at every pass boundary.
This harness measures that model end to end: every paper application at
every GPU count, dedicated or shared links, with three cross-checks
folded into the sweep itself:

* **merged-output equality** — every K-GPU cell's functional output must
  be bit-equal (``outputs_equal``, rtol 0) to the single-GPU run;
* **per-shard invariants** (``verify_shards=True``) — each cell runs as
  a true DES and every shard's trace is audited by the standard pipeline
  checkers (capacity, ordering, backpressure, byte conservation);
* **analytic agreement** (``predict=True``) — the closed-form shard
  predictor prices every cell; dedicated-link cells must match the DES
  exactly, shared-link cells within the 5% analytic tolerance.

Expected shape (asserted by ``benchmarks/test_perf_smoke`` and pinned at
reference scale by ``tests/test_calibration_lock``): compute-bound apps
(wordcount, opinion, mastercard) scale to 8 GPUs with diminishing
returns; transfer-bound apps (netflix, dna) plateau — and can *regress*
at high K where the merge cost and the NUMA-split assembly floor eat the
shrinking per-shard win; a shared root complex is never faster than
dedicated links.

Exposed as ``python -m repro bench --gpus 1,2,4,8 [--shared-link]``;
cells fan out over the same picklable :class:`~repro.bench.jobs.JobSpec`
machinery as the UVM comparison and come back in serial nesting order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.apps import get_app
from repro.engines import EngineConfig
from repro.engines.multigpu import MultiGpuBigKernelEngine
from repro.errors import ReproError, ValidationFailure
from repro.units import MiB, fmt_time

from repro.bench.uvm import PAPER_APP_NAMES

#: the scaling ladder of the paper-style evaluation
DEFAULT_GPU_COUNTS = (1, 2, 4, 8)


def scaling_engines(
    gpu_counts: Iterable[int] = DEFAULT_GPU_COUNTS,
    shared_link: bool = False,
    numa_aware: bool = True,
) -> tuple:
    """One sharded engine per GPU count, in ladder order."""
    counts = tuple(gpu_counts)
    if not counts or any(n < 1 for n in counts):
        raise ReproError(f"gpu counts must be positive: {counts!r}")
    return tuple(
        MultiGpuBigKernelEngine(
            n_gpus=n, shared_link=shared_link, numa_aware=numa_aware
        )
        for n in counts
    )


@dataclass
class MultiGpuScaling:
    """Results of one 1→K GPU scaling sweep."""

    seed: int
    data_bytes: int
    gpu_counts: tuple = DEFAULT_GPU_COUNTS
    shared_link: bool = False
    numa_aware: bool = True
    apps: tuple = ()
    results: dict = field(default_factory=dict)  # (app, n_gpus) -> RunResult
    #: (app, n_gpus) -> closed-form predicted sim_time (when priced)
    predictions: dict = field(default_factory=dict)

    def get(self, app: str, n_gpus: int):
        return self.results[(app, n_gpus)]

    def sim_time(self, app: str, n_gpus: int) -> float:
        return self.get(app, n_gpus).sim_time

    def speedup(self, app: str, n_gpus: int) -> float:
        """Scaling over the single-GPU run of the same fabric."""
        return self.sim_time(app, self.gpu_counts[0]) / self.sim_time(app, n_gpus)

    def prediction_rel_err(self, app: str, n_gpus: int) -> float:
        """Relative error of the analytic price against the DES."""
        predicted = self.predictions[(app, n_gpus)]
        simulated = self.sim_time(app, n_gpus)
        return abs(predicted - simulated) / max(abs(simulated), 1e-300)

    def summary(self) -> str:
        from repro.bench.report import render_table

        rows = []
        for app in self.apps:
            row = [app]
            for n in self.gpu_counts:
                row.append(
                    f"{fmt_time(self.sim_time(app, n))} "
                    f"({self.speedup(app, n):.2f}x)"
                )
            rows.append(row)
        link = "shared root complex" if self.shared_link else "dedicated links"
        return render_table(
            ["app", *[f"{n} GPU{'s' if n > 1 else ''}" for n in self.gpu_counts]],
            rows,
            title=(
                f"Multi-GPU scaling ({link}): "
                f"{self.data_bytes // MiB} MiB datasets, seed {self.seed}"
            ),
        )

    def figure_entry(self) -> dict:
        """The ``BENCH_pipeline.json`` record of this sweep."""
        cells = {}
        for app in self.apps:
            per_app = {}
            for n in self.gpu_counts:
                res = self.get(app, n)
                cell = {
                    "sim_time": res.sim_time,
                    "speedup": self.speedup(app, n),
                    "merge_time": res.metrics.notes.get("merge_time", 0.0),
                }
                if (app, n) in self.predictions:
                    cell["predicted"] = self.predictions[(app, n)]
                    cell["prediction_rel_err"] = self.prediction_rel_err(app, n)
                per_app[f"g{n}"] = cell
            cells[app] = per_app
        return {
            "name": "multigpu_scaling",
            "seed": self.seed,
            "data_bytes": self.data_bytes,
            "gpu_counts": list(self.gpu_counts),
            "shared_link": self.shared_link,
            "numa_aware": self.numa_aware,
            "apps": cells,
        }


def _verify_cell_shards(app, res) -> None:
    """Audit every shard's trace with the standard pipeline checkers."""
    from repro.verify.invariants import audit_sharded_run

    problems = audit_sharded_run(res)
    if problems:
        raise ValidationFailure(
            f"{res.engine} on {app.name}: " + "; ".join(problems)
        )


def run_multigpu_scaling(
    data_bytes: int = 4 * MiB,
    seed: int = 4,
    config: Optional[EngineConfig] = None,
    apps: Optional[Iterable[str]] = None,
    gpu_counts: Iterable[int] = DEFAULT_GPU_COUNTS,
    shared_link: bool = False,
    numa_aware: bool = True,
    jobs: int = 1,
    backend: str = "auto",
    predict: bool = True,
    verify_shards: bool = False,
) -> MultiGpuScaling:
    """Run the scaling ladder over the paper's six applications.

    Every K-GPU cell's functional output is cross-checked against the
    single-GPU cell of the same ladder — sharding plus the merge stage
    must be invisible to the result, bit for bit. ``verify_shards=True``
    forces every cell through the true DES (the closed-form fastpath is
    proven time-identical) and audits each shard's trace; ``predict``
    prices every cell with the analytic shard model. ``jobs > 1`` fans
    cells across threads or a process pool of spec-replaying workers;
    cell order (and the figure entry) is backend-invariant.
    """
    config = config or EngineConfig(chunk_bytes=max(256 * 1024, data_bytes // 4))
    if verify_shards:
        # the DES yields per-shard traces; totals are identical either way
        config = config.with_(fastpath=False)
    app_names = tuple(apps) if apps is not None else PAPER_APP_NAMES
    app_objs = [get_app(name) for name in app_names]
    engines = scaling_engines(gpu_counts, shared_link, numa_aware)
    counts = tuple(e.n_gpus for e in engines)
    datasets = {
        app.name: app.generate(n_bytes=data_bytes, seed=seed)
        for app in app_objs
    }

    scaling = MultiGpuScaling(
        seed=seed,
        data_bytes=data_bytes,
        gpu_counts=counts,
        shared_link=shared_link,
        numa_aware=numa_aware,
        apps=tuple(app_names),
    )

    cells = [(app, engine) for app in app_objs for engine in engines]
    if jobs > 1 and len(cells) > 1:
        from repro.bench.sweep import BACKENDS
        from repro.bench.uvm import _comparison_jobs

        if backend not in BACKENDS:
            raise ReproError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        specs = _comparison_jobs(app_objs, engines, datasets, config)
        use_process = backend == "process" or (
            backend == "auto" and specs is not None
        )
        if backend == "process" and specs is None:
            raise ReproError(
                "backend='process' needs registry apps and stock engines; "
                "use backend='thread' for custom instances"
            )
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        workers = min(jobs, len(cells))
        if use_process and specs is not None:
            from repro.bench.jobs import run_jobspec

            with ProcessPoolExecutor(max_workers=workers) as ex:
                results = list(ex.map(run_jobspec, specs))
        else:
            with ThreadPoolExecutor(max_workers=workers) as ex:
                results = list(
                    ex.map(
                        lambda c: c[1].run(c[0], datasets[c[0].name], config),
                        cells,
                    )
                )
    else:
        results = [
            engine.run(app, datasets[app.name], config)
            for app, engine in cells
        ]

    for (app, engine), res in zip(cells, results):
        scaling.results[(app.name, engine.n_gpus)] = res

    if config.functional:
        for app in app_objs:
            ref = scaling.get(app.name, counts[0])
            for n in counts[1:]:
                res = scaling.get(app.name, n)
                if not app.outputs_equal(ref.output, res.output):
                    raise ValidationFailure(
                        f"{n}-GPU merged output differs from "
                        f"{counts[0]}-GPU on {app.name}"
                    )

    if verify_shards:
        for (app, engine), res in zip(cells, results):
            _verify_cell_shards(app, res)

    if predict:
        from repro.analytic import predict_run

        for app, engine in cells:
            pred = predict_run(app, datasets[app.name], config, engine)
            scaling.predictions[(app.name, engine.n_gpus)] = pred.sim_time

    return scaling
