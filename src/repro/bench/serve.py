"""Serving-throughput benchmark: batched multi-tenant server vs naive loop.

The baseline is the cost model of running the CLI once per request: every
job re-imports nothing but *regenerates its dataset, rebuilds its engine,
and replans its schedule from scratch* — exactly what ``repro run`` pays.
The server amortizes all three (dataset pool, engine pool, schedule /
fastpath / hash memos) and short-circuits exact repeats through the run
cache, so on a repeat-heavy trace it should clear several times the naive
throughput.

Three load levels exercise the full policy surface on the *same* job mix:

- ``saturation`` — every request arrives at t≈0 with an unbounded queue;
  makespan is pure service time, so completed/makespan measures the
  server's *capacity*. This is the number the ≥3x speedup claim is made
  against.
- ``moderate`` — open-loop arrivals at 2x the measured naive service
  rate: sustained load a naive loop could not hold, served with low
  queueing delay.
- ``overload`` — arrivals at 20x the naive rate into a small queue:
  admission control must shed load (rejections > 0) while everything
  admitted still completes.

Timing and verification are strictly separated: servers run with
verification off, then every completed response is bit-compared (exact
output equality and exact ``sim_time``) against a fresh one-shot oracle
recorded during the naive pass.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field

import numpy as np

from repro.apps.base import get_app
from repro.bench.sweep import RunCache
from repro.errors import ReproError, SloViolationError
from repro.serve.pricing import JobPricer
from repro.serve.scheduler import ServeConfig, Server, oneshot_oracle, serve_trace
from repro.serve.workload import TraceSpec, generate_trace, scale_trace, with_slo
from repro.units import KiB

#: default job mix: ~60 requests, repeat-heavy, two apps x two chunk sizes
DEFAULT_TRACE = TraceSpec(
    seed=23,
    duration=3.0,
    rate=20.0,
    data_bytes=512 * KiB,
    n_dataset_seeds=2,
    chunk_kib_choices=(256, 512),
    repeat_p=0.55,
)


@dataclass
class LoadLevel:
    """One measured operating point of the server."""

    label: str
    #: offered arrival rate (requests/second; inf for saturation)
    offered_rate: float
    jobs_per_sec: float
    p50: float
    p99: float
    rejected: int
    cached: int
    coalesced: int
    served: int
    engine_runs: int
    makespan: float


@dataclass
class ServeBenchResult:
    n_requests: int
    naive_seconds: float
    naive_jobs_per_sec: float
    levels: list = field(default_factory=list)
    verified: int = 0
    verify_failures: int = 0

    @property
    def capacity_speedup(self) -> float:
        """Saturation-level server throughput over the naive loop's."""
        for level in self.levels:
            if level.label == "saturation":
                return level.jobs_per_sec / self.naive_jobs_per_sec
        raise ReproError("benchmark did not run a saturation level")

    def figure_entry(self) -> dict:
        entry = {
            "name": "serve_throughput",
            "n_requests": self.n_requests,
            "naive_jobs_per_sec": round(self.naive_jobs_per_sec, 2),
            "speedup_vs_naive": round(self.capacity_speedup, 2),
            "verified": self.verified,
            "verify_failures": self.verify_failures,
        }
        for level in self.levels:
            entry[level.label] = {
                "offered_rate": (
                    None
                    if not np.isfinite(level.offered_rate)
                    else round(level.offered_rate, 2)
                ),
                "jobs_per_sec": round(level.jobs_per_sec, 2),
                "p50_s": round(level.p50, 5),
                "p99_s": round(level.p99, 5),
                "rejected": level.rejected,
                "cached": level.cached,
                "coalesced": level.coalesced,
                "engine_runs": level.engine_runs,
            }
        return entry

    def summary(self) -> str:
        lines = [
            f"naive loop: {self.n_requests} jobs in {self.naive_seconds:.2f}s "
            f"= {self.naive_jobs_per_sec:.2f} jobs/s",
            f"capacity speedup: {self.capacity_speedup:.2f}x",
        ]
        for level in self.levels:
            lines.append(
                f"  {level.label}: {level.jobs_per_sec:.2f} jobs/s "
                f"p50={level.p50:.4f}s p99={level.p99:.4f}s "
                f"rejected={level.rejected} cached={level.cached} "
                f"engine_runs={level.engine_runs}"
            )
        lines.append(
            f"verified {self.verified} responses, "
            f"{self.verify_failures} failures"
        )
        return "\n".join(lines)


def _serve_level(
    label: str,
    requests: list,
    offered_rate: float,
    config: ServeConfig,
    timer,
) -> tuple:
    """Run one load level on a fresh server; returns (level, responses)."""
    # memory-only cache: the benchmark must not depend on (or pollute)
    # whatever .repro-cache directory the host happens to have
    with Server(config, cache=RunCache(disk=None)) as server:
        outcome = serve_trace(server, requests, timer=timer)
    m = outcome.metrics
    level = LoadLevel(
        label=label,
        offered_rate=offered_rate,
        jobs_per_sec=outcome.jobs_per_sec,
        p50=m.p50,
        p99=m.p99,
        rejected=m.rejected,
        cached=m.cached,
        coalesced=m.coalesced,
        served=m.served,
        engine_runs=m.engine_runs,
        makespan=outcome.makespan,
    )
    return level, outcome.responses


def run_serve_benchmark(
    spec: TraceSpec = DEFAULT_TRACE,
    max_batch: int = 8,
    overload_queue: int = 16,
    timer=time.perf_counter,
) -> ServeBenchResult:
    """Measure naive vs batched serving on one trace; verify bit-equality."""
    trace = generate_trace(spec)
    if not trace:
        raise ReproError("trace spec produced no requests")

    # --- naive baseline: fresh app + dataset + engine per request, no
    # caches — and record each unique job's first result as the oracle
    oracles: dict = {}
    start = timer()
    for req in trace:
        result = oneshot_oracle(req.job)
        key = (req.job.dataset, req.job.engine, req.job.config)
        oracles.setdefault(key, result)
    naive_seconds = max(timer() - start, 1e-9)
    naive_rate = len(trace) / naive_seconds

    result = ServeBenchResult(
        n_requests=len(trace),
        naive_seconds=naive_seconds,
        naive_jobs_per_sec=naive_rate,
    )

    # --- saturation: everything arrives at once, queue unbounded ---
    burst = scale_trace(trace, 1e-9)
    level, responses = _serve_level(
        "saturation",
        burst,
        float("inf"),
        ServeConfig(max_queue=len(trace) + 1, max_batch=max_batch),
        timer,
    )
    result.levels.append(level)
    all_responses = [(trace, responses)]

    # --- moderate: open loop at 2x the naive service rate ---
    moderate = scale_trace(trace, spec.rate / (2.0 * naive_rate))
    level, responses = _serve_level(
        "moderate",
        moderate,
        2.0 * naive_rate,
        ServeConfig(max_queue=64, max_batch=max_batch),
        timer,
    )
    result.levels.append(level)
    all_responses.append((trace, responses))

    # --- overload: 20x the naive rate into a small queue ---
    overload = scale_trace(trace, spec.rate / (20.0 * naive_rate))
    level, responses = _serve_level(
        "overload",
        overload,
        20.0 * naive_rate,
        ServeConfig(max_queue=overload_queue, max_batch=max_batch),
        timer,
    )
    result.levels.append(level)
    all_responses.append((trace, responses))

    # --- verification: every completed response bit-equals its oracle ---
    by_id = {req.req_id: req.job for req in trace}
    for _, responses in all_responses:
        for resp in responses:
            if resp.status in ("rejected", "failed"):
                continue
            job = by_id[resp.req_id]
            oracle = oracles[(job.dataset, job.engine, job.config)]
            result.verified += 1
            ok = resp.result.sim_time == oracle.sim_time
            if job.config.functional:
                app = get_app(job.dataset.app)
                ok = ok and app.outputs_equal(resp.result.output, oracle.output)
            if not ok:
                result.verify_failures += 1
    return result


#: default job mix for the SLO benchmark: more unique work (lower repeat
#: probability, more dataset seeds) than the throughput trace, so queueing
#: delay — not the cache — dominates under overload
DEFAULT_SLO_TRACE = TraceSpec(
    seed=29,
    duration=3.0,
    rate=60.0,
    data_bytes=256 * KiB,
    n_dataset_seeds=3,
    chunk_kib_choices=(256, 512),
    repeat_p=0.3,
)


@dataclass
class SloPolicyResult:
    """One scheduling policy's outcome on the overloaded SLO'd trace."""

    label: str
    p99: float
    p50: float
    attainment: float
    slo_met: int
    slo_total: int
    completed: int
    shed: int
    rejected: int
    rejected_predicted: int
    engine_runs: int
    makespan: float

    def as_dict(self) -> dict:
        return {
            "p99_s": round(self.p99, 5),
            "p50_s": round(self.p50, 5),
            "attainment": round(self.attainment, 4),
            "slo_met": self.slo_met,
            "completed": self.completed,
            "shed": self.shed,
            "rejected": self.rejected,
            "rejected_predicted": self.rejected_predicted,
            "engine_runs": self.engine_runs,
        }


@dataclass
class ServeSloResult:
    """FIFO/fixed-window baseline vs EDF + admission + adaptive batching."""

    n_requests: int
    slo_ms: float
    overload: float
    capacity_jobs_per_sec: float
    fifo: SloPolicyResult
    edf: SloPolicyResult
    verified: int = 0
    verify_failures: int = 0
    #: shed/predicted-rejected responses carrying a typed SloViolationError
    typed_terminals: int = 0
    #: shed/predicted-rejected responses missing that typed exception
    untyped_terminals: int = 0

    @property
    def p99_improvement(self) -> float:
        """FIFO's completed-p99 over EDF's (higher = EDF wins)."""
        if self.edf.p99 <= 0:
            return float("inf")
        return self.fifo.p99 / self.edf.p99

    def figure_entry(self) -> dict:
        return {
            "name": "serve_slo",
            "n_requests": self.n_requests,
            "slo_ms": round(self.slo_ms, 2),
            "overload_x": round(self.overload, 1),
            "capacity_jobs_per_sec": round(self.capacity_jobs_per_sec, 2),
            "p99_improvement": round(self.p99_improvement, 2),
            "fifo": self.fifo.as_dict(),
            "edf": self.edf.as_dict(),
            "verified": self.verified,
            "verify_failures": self.verify_failures,
            "typed_terminals": self.typed_terminals,
            "untyped_terminals": self.untyped_terminals,
        }

    def summary(self) -> str:
        return "\n".join(
            [
                f"{self.n_requests} requests at {self.overload:.0f}x capacity "
                f"({self.capacity_jobs_per_sec:.1f} jobs/s), "
                f"slo={self.slo_ms:.0f}ms",
                f"  fifo: p99={self.fifo.p99:.4f}s attainment="
                f"{100 * self.fifo.attainment:.1f}% shed={self.fifo.shed} "
                f"rejected={self.fifo.rejected}",
                f"  edf:  p99={self.edf.p99:.4f}s attainment="
                f"{100 * self.edf.attainment:.1f}% shed={self.edf.shed} "
                f"rejected={self.edf.rejected} "
                f"(predicted={self.edf.rejected_predicted})",
                f"  p99 improvement: {self.p99_improvement:.2f}x; verified "
                f"{self.verified} responses, {self.verify_failures} failures",
            ]
        )


def _slo_policy(
    label: str,
    requests: list,
    tenants: tuple,
    config: ServeConfig,
    pricer: JobPricer,
    timer,
) -> tuple:
    with Server(
        config, tenants=tenants, cache=RunCache(disk=None), pricer=pricer
    ) as server:
        outcome = serve_trace(server, requests, timer=timer)
    m = outcome.metrics
    attainment = m.slo_attainment()
    policy = SloPolicyResult(
        label=label,
        p99=m.p99,
        p50=m.p50,
        attainment=0.0 if attainment is None else attainment,
        slo_met=m.slo_met,
        slo_total=m.slo_total,
        completed=m.completed,
        shed=m.shed,
        rejected=m.rejected,
        rejected_predicted=m.rejected_predicted,
        engine_runs=m.engine_runs,
        makespan=outcome.makespan,
    )
    return policy, outcome.responses, m


def run_serve_slo_benchmark(
    spec: TraceSpec = DEFAULT_SLO_TRACE,
    overload: float = 20.0,
    slo_service_mult: float = 25.0,
    max_batch: int = 8,
    max_queue: int = 128,
    timer=time.perf_counter,
) -> ServeSloResult:
    """Deadline-blind FIFO vs predictor-guided EDF under deep overload.

    Phase 1 saturates a FIFO server on the un-deadlined trace to measure
    the machine's serving *capacity* and to warm one pricer (the
    wall/sim calibration transfers to both contestants as equal prior
    knowledge).  The SLO is then set relative to the measured mean
    service time — ``slo_service_mult`` mean-services — so the benchmark
    poses the same *relative* deadline pressure on any machine, and the
    trace is re-timed to ``overload`` times capacity.

    Phase 2 replays that overloaded trace twice with every tenant
    carrying the SLO: once on the baseline (``scheduling="fifo"``, fixed
    window, deadline-blind) and once on the full cost-aware stack
    (``scheduling="edf"`` + predictive admission + adaptive batching).
    Every completed response from both sides is bit-compared against a
    fresh one-shot oracle; every shed or predictively rejected response
    must carry a typed :class:`~repro.errors.SloViolationError`.
    """
    trace = generate_trace(spec)
    if not trace:
        raise ReproError("trace spec produced no requests")

    oracles: dict = {}
    for req in trace:
        key = (req.job.dataset, req.job.engine, req.job.config)
        if key not in oracles:
            oracles[key] = oneshot_oracle(req.job)

    # --- phase 1: measure capacity and warm the pricer (no deadlines) ---
    pricer = JobPricer()
    burst = scale_trace(trace, 1e-9)
    with Server(
        ServeConfig(
            max_queue=len(trace) + 1, max_batch=max_batch, scheduling="fifo"
        ),
        tenants=spec.tenants,
        cache=RunCache(disk=None),
        pricer=pricer,
    ) as server:
        calibration = serve_trace(server, burst, timer=timer)
    capacity = calibration.jobs_per_sec
    if capacity <= 0 or calibration.metrics.completed == 0:
        raise ReproError("calibration run completed no requests")
    mean_service = calibration.makespan / calibration.metrics.completed
    slo_s = slo_service_mult * mean_service
    slo_ms = 1000.0 * slo_s

    # --- phase 2: the same work at `overload`x capacity, every tenant
    # carrying the measured-relative SLO ---
    slo_tenants = with_slo(spec.tenants, slo_ms)
    overloaded = scale_trace(trace, spec.rate / (overload * capacity))

    fifo_policy, fifo_responses, _ = _slo_policy(
        "fifo",
        overloaded,
        slo_tenants,
        ServeConfig(
            max_queue=max_queue, max_batch=max_batch, scheduling="fifo"
        ),
        copy.deepcopy(pricer),
        timer,
    )
    edf_policy, edf_responses, _ = _slo_policy(
        "edf",
        overloaded,
        slo_tenants,
        ServeConfig(
            max_queue=max_queue,
            max_batch=max_batch,
            scheduling="edf",
            adaptive_batch=True,
        ),
        copy.deepcopy(pricer),
        timer,
    )

    result = ServeSloResult(
        n_requests=len(trace),
        slo_ms=slo_ms,
        overload=overload,
        capacity_jobs_per_sec=capacity,
        fifo=fifo_policy,
        edf=edf_policy,
    )

    # --- verification: completed responses bit-equal their oracles;
    # shed / predicted-rejected responses carry the typed error ---
    by_id = {req.req_id: req.job for req in trace}
    for responses in (fifo_responses, edf_responses):
        for resp in responses:
            if resp.status in ("shed",) or (
                resp.status == "rejected" and resp.error != "queue full"
            ):
                if isinstance(resp.exception, SloViolationError):
                    result.typed_terminals += 1
                else:
                    result.untyped_terminals += 1
                continue
            if resp.status in ("rejected", "failed"):
                continue
            job = by_id[resp.req_id]
            oracle = oracles[(job.dataset, job.engine, job.config)]
            result.verified += 1
            ok = resp.result.sim_time == oracle.sim_time
            if job.config.functional:
                app = get_app(job.dataset.app)
                ok = ok and app.outputs_equal(resp.result.output, oracle.output)
            if not ok:
                result.verify_failures += 1
    return result
