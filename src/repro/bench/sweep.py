"""Parameter sweeps and the per-scheme autotuner.

The paper states (Section VI) that *each implementation is configured to
run with the number of GPU computation threads [and] buffer sizes that
result in the best execution time, as determined through
experimentation*. :func:`autotune` reproduces that methodology: it sweeps
a small grid per engine/app pair and returns the fastest configuration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Optional, Sequence

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig, RunResult
from repro.errors import ReproError
from repro.units import MiB


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    params: dict
    sim_time: float
    result: RunResult = field(compare=False, repr=False)


@dataclass
class SweepResult:
    """All points of one sweep, with the winner."""

    points: list[SweepPoint]

    @property
    def best(self) -> SweepPoint:
        if not self.points:
            raise ReproError("sweep produced no points")
        return min(self.points, key=lambda p: p.sim_time)

    def series(self, key: str) -> dict:
        """``param value -> sim time`` for rendering."""
        return {p.params[key]: p.sim_time for p in self.points}


def sweep(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: EngineConfig,
    grid: dict,
) -> SweepResult:
    """Run ``engine`` over the cartesian product of ``grid`` overrides.

    ``grid`` maps EngineConfig field names to candidate value lists; the
    product is evaluated in deterministic order.
    """
    keys = sorted(grid)
    points: list[SweepPoint] = []

    def rec(i: int, chosen: dict) -> None:
        if i == len(keys):
            cfg = base_config.with_(**chosen)
            result = engine.run(app, data, cfg)
            points.append(SweepPoint(dict(chosen), result.sim_time, result))
            return
        for value in grid[keys[i]]:
            chosen[keys[i]] = value
            rec(i + 1, chosen)
        del chosen[keys[i]]

    rec(0, {})
    return SweepResult(points)


#: the default tuning grid: buffer size and launch width, the two knobs
#: the paper tunes per implementation
DEFAULT_GRID = {
    "chunk_bytes": [512 * 1024, 1 * MiB, 2 * MiB, 4 * MiB],
    "num_blocks": [8, 16],
}


def autotune(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: Optional[EngineConfig] = None,
    grid: Optional[dict] = None,
) -> tuple[EngineConfig, SweepResult]:
    """Find the engine's best configuration for this app/dataset.

    Returns ``(best_config, full_sweep)``. CPU engines are configuration-
    insensitive and short-circuit to the base config.
    """
    base_config = base_config or EngineConfig()
    if engine.name.startswith("cpu"):
        result = engine.run(app, data, base_config)
        return base_config, SweepResult(
            [SweepPoint({}, result.sim_time, result)]
        )
    res = sweep(engine, app, data, base_config, grid or DEFAULT_GRID)
    return base_config.with_(**res.best.params), res
