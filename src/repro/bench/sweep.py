"""Parameter sweeps and the per-scheme autotuner.

The paper states (Section VI) that *each implementation is configured to
run with the number of GPU computation threads [and] buffer sizes that
result in the best execution time, as determined through
experimentation*. :func:`autotune` reproduces that methodology: it sweeps
a small grid per engine/app pair and returns the fastest configuration.

Three levers keep big grids fast (``docs/performance.md``):

* ``jobs=N`` fans the grid points across an executor. Points are
  independent engine runs; results are merged back in grid order, so the
  outcome — including every tie-break — is identical to the serial sweep.
* ``backend=`` picks the executor: ``"thread"`` (cheap, right when points
  resolve on the analytic fast path or mostly hit the cache),
  ``"process"`` (a :class:`~concurrent.futures.ProcessPoolExecutor` over
  picklable :class:`~repro.bench.jobs.JobSpec`\\ s — the GIL serializes
  DES-bound points on threads, so pure-Python simulation work needs real
  processes), or ``"auto"`` (process exactly when the run is DES-bound).
  Workers regenerate the dataset locally from its recipe instead of being
  shipped arrays.
* ``cache=True`` consults the two-tier :class:`RunCache`: an in-process
  LRU keyed on dataset *identity* in front of a persistent on-disk store
  (:class:`DiskCache`, SHA-256 content key under ``.repro-cache/``) keyed
  on dataset *content* — so repeated autotunes in one process, across
  processes, and across CI runs all evaluate each point once.
"""

from __future__ import annotations

import hashlib
import itertools
import os
import pickle
import threading
import time
from collections import OrderedDict
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.apps.base import AppData, Application, data_fingerprint, dataset_key
from repro.engines.base import Engine, EngineConfig, RunResult
from repro.errors import ReproError
from repro.units import MiB

#: Schema version of the persistent cache. Part of every disk key: bump it
#: whenever RunResult's shape or the simulation's timing semantics change,
#: so stale entries from older builds are keyed away rather than reused.
CACHE_SCHEMA_VERSION = 1

#: environment switch that disables the persistent tier entirely
_DISK_CACHE_OFF_ENV = "REPRO_NO_DISK_CACHE"
#: environment override for the persistent tier's location
_DISK_CACHE_DIR_ENV = "REPRO_CACHE_DIR"


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    params: dict
    sim_time: float
    result: RunResult = field(compare=False, repr=False)


@dataclass
class SweepResult:
    """All points of one sweep, with the winner."""

    points: list[SweepPoint]

    @property
    def best(self) -> SweepPoint:
        """The fastest point, with deterministic tie-breaking.

        Ties on ``sim_time`` are resolved toward the *smallest* resource
        footprint: lowest ``chunk_bytes`` first, then lowest
        ``num_blocks``, then grid order (``min`` is stable). Configuration-
        insensitive plateaus — common for CPU-bound apps — therefore
        always tune to the same config, whatever the grid order.
        """
        if not self.points:
            raise ReproError("sweep produced no points")
        inf = float("inf")
        return min(
            self.points,
            key=lambda p: (
                p.sim_time,
                p.params.get("chunk_bytes", inf),
                p.params.get("num_blocks", inf),
            ),
        )

    def series(self, key: str) -> dict:
        """``param value -> sim time`` for rendering."""
        return {p.params[key]: p.sim_time for p in self.points}


class DiskCache:
    """Persistent run-result store: one pickle per SHA-256 content key.

    Layout is ``<root>/<digest[:2]>/<digest[2:]>.pkl`` (git-object style
    fan-out). The root is resolved *per operation* — ``REPRO_CACHE_DIR``
    when set, else ``.repro-cache`` under the current directory — so tests
    and CI can redirect it without rebuilding caches. Writes go through a
    temp file + ``os.replace`` (atomic on POSIX), so concurrent writers
    (parallel sweeps, figure harnesses racing in CI) can only ever produce
    a complete entry; unreadable entries are treated as misses and
    deleted. Eviction is approximate LRU: reads bump mtime, and every
    :data:`_EVICT_EVERY` puts the oldest entries beyond ``max_entries``
    are removed. Setting ``REPRO_NO_DISK_CACHE`` makes every operation a
    no-op.
    """

    _EVICT_EVERY = 50
    #: orphaned temp files (a writer killed mid-``put``) older than this
    #: are swept during eviction; generous enough that no live writer —
    #: entries are small pickles — can still be mid-write
    _TMP_MAX_AGE = 300.0
    #: per-process counter making every temp filename unique: two threads
    #: of one process racing on the same digest must not share a temp file
    _tmp_seq = itertools.count()

    def __init__(self, root: Optional[os.PathLike] = None, max_entries: int = 4096):
        self._root = root
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        self._puts = 0
        self._lock = threading.Lock()

    @property
    def enabled(self) -> bool:
        return not os.environ.get(_DISK_CACHE_OFF_ENV)

    @property
    def root(self) -> Path:
        return Path(
            self._root
            or os.environ.get(_DISK_CACHE_DIR_ENV)
            or ".repro-cache"
        )

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest[2:]}.pkl"

    def get(self, digest: str) -> Optional[RunResult]:
        if not self.enabled:
            return None
        path = self._path(digest)
        try:
            with open(path, "rb") as fh:
                result = pickle.load(fh)
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            return None
        except Exception:
            # truncated/stale/unreadable entry: a miss, and not worth keeping
            try:
                path.unlink()
            except OSError:
                pass
            with self._lock:
                self.misses += 1
            return None
        try:
            os.utime(path)  # approximate-LRU recency bump
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        return result

    def put(self, digest: str, result: RunResult) -> None:
        if not self.enabled:
            return
        path = self._path(digest)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp = path.parent / (
                f".{path.name}.{os.getpid()}.{next(self._tmp_seq)}.tmp"
            )
            with open(tmp, "wb") as fh:
                pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except OSError:
            return  # cache writes are best-effort, never fatal
        with self._lock:
            self._puts += 1
            evict = self._puts % self._EVICT_EVERY == 0
        if evict:
            self._evict()

    def _evict(self) -> None:
        # Concurrent writers race this scan: an entry listed by glob may be
        # unlinked (another evictor, a clear(), a corrupt-entry reaper)
        # before it is stat'ed — treat every stat/unlink as best-effort.
        def mtime(path: Path) -> Optional[float]:
            try:
                return path.stat().st_mtime
            except OSError:
                return None

        entries = sorted(
            (m, p)
            for p in self.root.glob("??/*.pkl")
            if (m := mtime(p)) is not None
        )
        for _, path in entries[: max(0, len(entries) - self.max_entries)]:
            try:
                path.unlink()
            except OSError:
                pass
        # sweep temp files orphaned by a writer that died mid-put
        now = time.time()
        for tmp in self.root.glob("??/.*.tmp"):
            age = mtime(tmp)
            if age is not None and now - age > self._TMP_MAX_AGE:
                try:
                    tmp.unlink()
                except OSError:
                    pass

    def __len__(self) -> int:
        if not self.enabled or not self.root.is_dir():
            return 0
        return sum(1 for _ in self.root.glob("??/*.pkl"))

    def clear(self) -> None:
        if not self.root.is_dir():
            return
        for path in self.root.glob("??/*.pkl"):
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self.hits = self.misses = self._puts = 0


#: memoized ``content_run_key`` digests, keyed on dataset *identity* (plus
#: engine/config): the serve admission loop probes the cache once per
#: request, and re-deriving the SHA-256 — whose ``dataset_key`` component
#: may itself hash megabytes for hand-built datasets — on every probe of
#: the same run would put hashing on the hot path. Identity keying makes a
#: stale hit impossible: a regenerated dataset gets a fresh fingerprint.
_CONTENT_KEY_MEMO: OrderedDict = OrderedDict()
_CONTENT_KEY_MEMO_MAX = 4096
_CONTENT_KEY_LOCK = threading.Lock()

#: process-wide accounting: ``requests`` counts every ``content_run_key``
#: call, ``computed`` only the digests actually derived (memo misses)
CONTENT_KEY_STATS = {"requests": 0, "computed": 0}


def content_run_key(
    engine: Engine, app: Application, data: AppData, config: EngineConfig
) -> str:
    """SHA-256 disk key of one run, built from content identities only.

    Every component is stable across processes: the engine's
    ``cache_key`` string, the app name, the dataset's *content* key
    (:func:`repro.apps.base.dataset_key` — recipe or byte hash, never the
    per-instance fingerprint), and the frozen config's repr (dataclass
    reprs are deterministic, and include the hardware spec and any fault
    plan). :data:`CACHE_SCHEMA_VERSION` folds the build generation in.

    Digests are memoized per process on the dataset's *identity*
    fingerprint (plus engine and config), so repeated probes for the same
    run — the ``repro serve`` hot loop — hash exactly once
    (:data:`CONTENT_KEY_STATS` carries the proof).
    """
    memo_key = (engine.cache_key, app.name, data_fingerprint(data), config)
    with _CONTENT_KEY_LOCK:
        CONTENT_KEY_STATS["requests"] += 1
        digest = _CONTENT_KEY_MEMO.get(memo_key)
        if digest is not None:
            _CONTENT_KEY_MEMO.move_to_end(memo_key)
            return digest
    payload = repr(
        (
            CACHE_SCHEMA_VERSION,
            engine.cache_key,
            app.name,
            dataset_key(data),
            config,
        )
    )
    digest = hashlib.sha256(payload.encode()).hexdigest()
    with _CONTENT_KEY_LOCK:
        CONTENT_KEY_STATS["computed"] += 1
        _CONTENT_KEY_MEMO[memo_key] = digest
        _CONTENT_KEY_MEMO.move_to_end(memo_key)
        while len(_CONTENT_KEY_MEMO) > _CONTENT_KEY_MEMO_MAX:
            _CONTENT_KEY_MEMO.popitem(last=False)
    return digest


class RunCache:
    """Two-tier cache of engine runs, keyed on everything a run reads.

    The front tier is a thread-safe in-process LRU keyed on ``(engine
    cache_key, app name, dataset *identity* fingerprint, config)``: the
    fingerprint (:func:`repro.apps.base.data_fingerprint`) is minted per
    dataset *instance*, so within one process a stale hit is impossible
    even if data is regenerated or mutated.

    Behind it sits an optional persistent :class:`DiskCache` keyed by
    :func:`content_run_key` — dataset *content*, not identity — which is
    what lets a fresh process (a figure harness, a CI job, a pool worker's
    parent) reuse points evaluated by an earlier one. A disk hit is
    promoted into the memory tier under the caller's identity key.
    """

    def __init__(self, maxsize: int = 512, disk: Optional[DiskCache] = None):
        self.maxsize = maxsize
        self.disk = disk
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    @staticmethod
    def key(engine: Engine, app: Application, data: AppData, config: EngineConfig):
        return (engine.cache_key, app.name, data_fingerprint(data), config)

    def get(self, key, disk_key: Optional[str] = None) -> Optional[RunResult]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
        if self.disk is not None and disk_key is not None:
            result = self.disk.get(disk_key)
            if result is not None:
                with self._lock:
                    self._store(key, result)
                    self.hits += 1
                    self.disk_hits += 1
                return result
        with self._lock:
            self.misses += 1
        return None

    def contains(self, key) -> bool:
        """Silent membership probe of the memory tier.

        No stats update, no LRU touch, no disk promotion — the serving
        layer's admission pricer uses this to cost repeat jobs at zero
        without perturbing the hit/miss accounting of real lookups.
        """
        with self._lock:
            return key in self._entries

    def put(self, key, result: RunResult, disk_key: Optional[str] = None) -> None:
        with self._lock:
            self._store(key, result)
        if self.disk is not None and disk_key is not None:
            self.disk.put(disk_key, result)

    def _store(self, key, result: RunResult) -> None:
        # caller holds self._lock
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)

    def clear(self, disk: bool = False) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = self.disk_hits = 0
        if disk and self.disk is not None:
            self.disk.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: process-wide two-tier run cache used by ``sweep(..., cache=True)``
RUN_CACHE = RunCache(disk=DiskCache())

#: recognized ``backend=`` values
BACKENDS = ("thread", "process", "auto")


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def _des_bound(app: Application, config: EngineConfig) -> bool:
    """Will grid points resolve on the pure-Python DES (GIL-bound)?

    Mirrors the fast-path fallback matrix (``docs/performance.md``): an
    active fault plan forces the DES, ``fastpath=False`` asks for it, and
    mapped-writes apps fall back chunk by chunk.
    """
    if config.faults is not None and config.faults.active():
        return True
    return not config.fastpath or app.writes_mapped


def _resolve_backend(
    backend: str,
    engine: Engine,
    app: Application,
    data: AppData,
    config: EngineConfig,
    jobs: int,
    n_points: int = 0,
) -> str:
    """Pick thread vs process; validate explicit process requests."""
    if backend not in BACKENDS:
        raise ReproError(f"unknown sweep backend {backend!r}; known: {BACKENDS}")
    if backend == "thread" or jobs <= 1:
        return "thread"
    from repro.bench.jobs import dataset_spec, engine_to_spec

    speccable = (
        engine_to_spec(engine) is not None
        and dataset_spec(app, data) is not None
    )
    if backend == "process":
        if not speccable:
            raise ReproError(
                "backend='process' needs a registry app with a generation "
                "recipe and a stock engine (workers regenerate data by "
                "recipe); use backend='thread' for custom apps/engines"
            )
        return "process"
    # auto: processes pay a fork + regeneration tax, so only buy real
    # parallelism where threads cannot provide it (the GIL-bound DES) AND
    # the machine/grid can amortize the tax — on a 1-2 core box or a tiny
    # grid the workers serialize anyway and the process backend measured
    # 0.35x (BENCH_pipeline.json, 1-core run)
    cores = os.cpu_count() or 1
    if cores <= 2 or (n_points and n_points < 4):
        return "thread"
    return "process" if speccable and _des_bound(app, config) else "thread"


def _disk_key(
    engine: Engine,
    app: Application,
    data: AppData,
    cfg: EngineConfig,
    cache: bool,
) -> Optional[str]:
    if not cache or RUN_CACHE.disk is None or not RUN_CACHE.disk.enabled:
        return None
    return content_run_key(engine, app, data, cfg)


def _sweep_analytic(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: EngineConfig,
    grid: dict,
) -> SweepResult:
    """Price every grid point with the closed-form predictor."""
    from repro.analytic import predict_grid

    gp = predict_grid(app, data, grid, base_config, engine=engine)
    points = []
    for i, sim in enumerate(gp.sim_time):
        points.append(SweepPoint(gp.params_at(i), float(sim), None))
    return SweepResult(points)


def _hybrid_candidates(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: EngineConfig,
    grid: dict,
    combos: list,
    top_k: int,
) -> list:
    """Keep the analytically-best ``top_k`` combos (ties expanded).

    ``predict_grid`` enumerates sorted keys x listed values — the same
    order ``combos`` was built in — so selected flat indices map straight
    back. Returning them sorted preserves grid order, which keeps every
    downstream tie-break (and the process backend's merge) identical to a
    pure-DES sweep over the same candidate set.
    """
    if top_k >= len(combos):
        return combos
    from repro.analytic import predict_grid

    gp = predict_grid(app, data, grid, base_config, engine=engine)
    selected = sorted(gp.top(top_k, expand_ties=True))
    return [combos[i] for i in selected]


def sweep(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: EngineConfig,
    grid: dict,
    jobs: int = 1,
    cache: bool = False,
    backend: str = "auto",
    mode: str = "des",
    top_k: int = 8,
) -> SweepResult:
    """Run ``engine`` over the cartesian product of ``grid`` overrides.

    ``grid`` maps EngineConfig field names to candidate value lists; the
    product is enumerated in deterministic order (sorted keys, listed
    values). ``jobs`` > 1 evaluates points on an executor (0/None means
    one per CPU) selected by ``backend``: ``"thread"``, ``"process"``
    (picklable job specs, workers regenerate data locally), or ``"auto"``
    (process exactly when points are DES-bound — faulted, ``fastpath=
    False``, or mapped-writes runs — else thread). Whatever the backend,
    results merge in grid order, so the points list and the tie-broken
    winner are identical to the serial sweep's. ``cache=True`` consults
    the process-wide two-tier :data:`RUN_CACHE` (in-memory LRU + on-disk
    content-keyed store) before evaluating any point.

    ``mode`` selects how points are evaluated:

    - ``"des"`` (default): simulate every point.
    - ``"analytic"``: price every point with the closed-form predictor
      (``repro.analytic.predict_grid``) — no simulation at all, points
      carry ``result=None``. Grids limited to the predictor's sweepable
      fields; for million-point scans call ``predict_grid`` directly and
      skip the per-point ``SweepPoint`` materialization.
    - ``"hybrid"``: rank the full grid analytically, then DES-evaluate
      only the best ``top_k`` candidates (plus any points whose
      prediction exactly ties the k-th — analytic plateaus are bitwise
      ties), through the normal backend/cache machinery. The analytic
      ranking uses the same ``(sim_time, chunk_bytes, num_blocks, grid
      order)`` tie-break as :meth:`SweepResult.best`, so on plateaus the
      hybrid winner is identical to the pure-DES winner.
    """
    keys = sorted(grid)
    combos = [
        dict(zip(keys, values))
        for values in itertools.product(*(grid[k] for k in keys))
    ]

    if mode not in ("des", "analytic", "hybrid"):
        raise ReproError(f"unknown sweep mode {mode!r}: des | analytic | hybrid")
    if mode == "analytic":
        return _sweep_analytic(engine, app, data, base_config, grid)
    if mode == "hybrid" and len(combos) > 1:
        combos = _hybrid_candidates(
            engine, app, data, base_config, grid, combos, top_k
        )

    jobs = _resolve_jobs(jobs) if jobs != 1 else 1
    chosen_backend = _resolve_backend(
        backend, engine, app, data, base_config, jobs, n_points=len(combos)
    )
    if chosen_backend == "process" and len(combos) > 1:
        return SweepResult(
            _evaluate_process(engine, app, data, base_config, combos, jobs, cache)
        )

    def evaluate(chosen: dict) -> SweepPoint:
        cfg = base_config.with_(**chosen)
        result = None
        cache_key = disk_key = None
        if cache:
            cache_key = RunCache.key(engine, app, data, cfg)
            disk_key = _disk_key(engine, app, data, cfg, cache)
            result = RUN_CACHE.get(cache_key, disk_key)
        if result is None:
            result = engine.run(app, data, cfg)
            if cache:
                RUN_CACHE.put(cache_key, result, disk_key)
        return SweepPoint(dict(chosen), result.sim_time, result)

    if jobs == 1 or len(combos) <= 1:
        points = [evaluate(c) for c in combos]
    else:
        with ThreadPoolExecutor(max_workers=min(jobs, len(combos))) as ex:
            # executor.map preserves input order: deterministic merge
            points = list(ex.map(evaluate, combos))
    return SweepResult(points)


def _evaluate_process(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: EngineConfig,
    combos: list[dict],
    jobs: int,
    cache: bool,
) -> list[SweepPoint]:
    """Grid evaluation on a process pool, cache consulted parent-side.

    Workers know nothing of the cache: the parent resolves hits first,
    dispatches only the misses (``executor.map`` preserves submission
    order), then merges results back into their grid slots — point order
    and tie-breaks match the serial sweep exactly.
    """
    from repro.bench.jobs import JobSpec, dataset_spec, engine_to_spec, run_jobspec

    dspec = dataset_spec(app, data)
    espec = engine_to_spec(engine)
    points: list[Optional[SweepPoint]] = [None] * len(combos)
    pending: list[tuple[int, dict, EngineConfig, Optional[str]]] = []
    for i, chosen in enumerate(combos):
        cfg = base_config.with_(**chosen)
        result = None
        disk_key = None
        if cache:
            disk_key = _disk_key(engine, app, data, cfg, cache)
            result = RUN_CACHE.get(RunCache.key(engine, app, data, cfg), disk_key)
        if result is None:
            pending.append((i, chosen, cfg, disk_key))
        else:
            points[i] = SweepPoint(dict(chosen), result.sim_time, result)

    if pending:
        specs = [JobSpec(dspec, espec, cfg) for _, _, cfg, _ in pending]
        with ProcessPoolExecutor(max_workers=min(jobs, len(pending))) as ex:
            results = list(ex.map(run_jobspec, specs))
        for (i, chosen, cfg, disk_key), result in zip(pending, results):
            if cache:
                RUN_CACHE.put(RunCache.key(engine, app, data, cfg), result, disk_key)
            points[i] = SweepPoint(dict(chosen), result.sim_time, result)
    return points  # type: ignore[return-value]


#: the default tuning grid: buffer size and launch width, the two knobs
#: the paper tunes per implementation
DEFAULT_GRID = {
    "chunk_bytes": [512 * 1024, 1 * MiB, 2 * MiB, 4 * MiB],
    "num_blocks": [8, 16],
}


def autotune(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: Optional[EngineConfig] = None,
    grid: Optional[dict] = None,
    jobs: int = 1,
    cache: bool = False,
    backend: str = "auto",
    mode: str = "des",
    top_k: int = 8,
) -> tuple[EngineConfig, SweepResult]:
    """Find the engine's best configuration for this app/dataset.

    Returns ``(best_config, full_sweep)`` where ``best_config`` is
    ``base_config`` with the winning grid overrides applied (all other
    base fields preserved). Ties follow :meth:`SweepResult.best`'s
    deterministic ordering. CPU engines are configuration-insensitive and
    short-circuit to the base config. ``jobs``/``cache``/``backend``/
    ``mode``/``top_k`` pass through to :func:`sweep`.
    """
    base_config = base_config or EngineConfig()
    if engine.name.startswith("cpu"):
        result = engine.run(app, data, base_config)
        return base_config, SweepResult(
            [SweepPoint({}, result.sim_time, result)]
        )
    res = sweep(
        engine,
        app,
        data,
        base_config,
        grid or DEFAULT_GRID,
        jobs=jobs,
        cache=cache,
        backend=backend,
        mode=mode,
        top_k=top_k,
    )
    return base_config.with_(**res.best.params), res
