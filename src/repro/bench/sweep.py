"""Parameter sweeps and the per-scheme autotuner.

The paper states (Section VI) that *each implementation is configured to
run with the number of GPU computation threads [and] buffer sizes that
result in the best execution time, as determined through
experimentation*. :func:`autotune` reproduces that methodology: it sweeps
a small grid per engine/app pair and returns the fastest configuration.

Two levers keep big grids fast (``docs/performance.md``):

* ``jobs=N`` fans the grid points across a thread pool. Points are
  independent engine runs; results are merged back in grid order, so the
  outcome — including every tie-break — is identical to the serial sweep.
* ``cache=True`` consults the in-process :class:`RunCache`, an LRU of
  ``(engine identity, app, dataset fingerprint, config) -> RunResult``
  shared by all sweeps in the process, so repeated autotunes (e.g. every
  figure harness tuning the same engines) evaluate each point once.
"""

from __future__ import annotations

import itertools
import os
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Optional

from repro.apps.base import AppData, Application, data_fingerprint
from repro.engines.base import Engine, EngineConfig, RunResult
from repro.errors import ReproError
from repro.units import MiB


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration."""

    params: dict
    sim_time: float
    result: RunResult = field(compare=False, repr=False)


@dataclass
class SweepResult:
    """All points of one sweep, with the winner."""

    points: list[SweepPoint]

    @property
    def best(self) -> SweepPoint:
        """The fastest point, with deterministic tie-breaking.

        Ties on ``sim_time`` are resolved toward the *smallest* resource
        footprint: lowest ``chunk_bytes`` first, then lowest
        ``num_blocks``, then grid order (``min`` is stable). Configuration-
        insensitive plateaus — common for CPU-bound apps — therefore
        always tune to the same config, whatever the grid order.
        """
        if not self.points:
            raise ReproError("sweep produced no points")
        inf = float("inf")
        return min(
            self.points,
            key=lambda p: (
                p.sim_time,
                p.params.get("chunk_bytes", inf),
                p.params.get("num_blocks", inf),
            ),
        )

    def series(self, key: str) -> dict:
        """``param value -> sim time`` for rendering."""
        return {p.params[key]: p.sim_time for p in self.points}


class RunCache:
    """Thread-safe LRU of engine runs, keyed on everything a run reads.

    The key is ``(engine.cache_key, app name, dataset fingerprint,
    config)``: engine identity includes ablation features, the dataset
    fingerprint (:func:`repro.apps.base.data_fingerprint`) is minted per
    dataset *instance*, and :class:`EngineConfig` is frozen/hashable. A
    regenerated dataset — even same app and seed — gets a fresh
    fingerprint, so stale hits are impossible.
    """

    def __init__(self, maxsize: int = 512):
        self.maxsize = maxsize
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(engine: Engine, app: Application, data: AppData, config: EngineConfig):
        return (engine.cache_key, app.name, data_fingerprint(data), config)

    def get(self, key) -> Optional[RunResult]:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                return self._entries[key]
            self.misses += 1
            return None

    def put(self, key, result: RunResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: process-wide run cache used by ``sweep(..., cache=True)``
RUN_CACHE = RunCache()


def _resolve_jobs(jobs: Optional[int]) -> int:
    if jobs is None or jobs <= 0:
        return os.cpu_count() or 1
    return jobs


def sweep(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: EngineConfig,
    grid: dict,
    jobs: int = 1,
    cache: bool = False,
) -> SweepResult:
    """Run ``engine`` over the cartesian product of ``grid`` overrides.

    ``grid`` maps EngineConfig field names to candidate value lists; the
    product is enumerated in deterministic order (sorted keys, listed
    values). ``jobs`` > 1 evaluates points on a thread pool (0/None means
    one per CPU); the merge preserves grid order, so the result — points
    list and tie-broken winner alike — is independent of ``jobs``.
    ``cache=True`` reuses process-wide :data:`RUN_CACHE` entries for
    previously-seen ``(engine, app, data, config)`` combinations.
    """
    keys = sorted(grid)
    combos = [
        dict(zip(keys, values))
        for values in itertools.product(*(grid[k] for k in keys))
    ]

    def evaluate(chosen: dict) -> SweepPoint:
        cfg = base_config.with_(**chosen)
        cache_key = RunCache.key(engine, app, data, cfg) if cache else None
        result = RUN_CACHE.get(cache_key) if cache else None
        if result is None:
            result = engine.run(app, data, cfg)
            if cache:
                RUN_CACHE.put(cache_key, result)
        return SweepPoint(dict(chosen), result.sim_time, result)

    jobs = _resolve_jobs(jobs) if jobs != 1 else 1
    if jobs == 1 or len(combos) <= 1:
        points = [evaluate(c) for c in combos]
    else:
        with ThreadPoolExecutor(max_workers=min(jobs, len(combos))) as ex:
            # executor.map preserves input order: deterministic merge
            points = list(ex.map(evaluate, combos))
    return SweepResult(points)


#: the default tuning grid: buffer size and launch width, the two knobs
#: the paper tunes per implementation
DEFAULT_GRID = {
    "chunk_bytes": [512 * 1024, 1 * MiB, 2 * MiB, 4 * MiB],
    "num_blocks": [8, 16],
}


def autotune(
    engine: Engine,
    app: Application,
    data: AppData,
    base_config: Optional[EngineConfig] = None,
    grid: Optional[dict] = None,
    jobs: int = 1,
    cache: bool = False,
) -> tuple[EngineConfig, SweepResult]:
    """Find the engine's best configuration for this app/dataset.

    Returns ``(best_config, full_sweep)`` where ``best_config`` is
    ``base_config`` with the winning grid overrides applied (all other
    base fields preserved). Ties follow :meth:`SweepResult.best`'s
    deterministic ordering. CPU engines are configuration-insensitive and
    short-circuit to the base config. ``jobs``/``cache`` pass through to
    :func:`sweep`.
    """
    base_config = base_config or EngineConfig()
    if engine.name.startswith("cpu"):
        result = engine.run(app, data, base_config)
        return base_config, SweepResult(
            [SweepPoint({}, result.sim_time, result)]
        )
    res = sweep(
        engine, app, data, base_config, grid or DEFAULT_GRID, jobs=jobs, cache=cache
    )
    return base_config.with_(**res.best.params), res
