"""Vectorized whole-grid prediction: ``predict_grid``.

``predict_run`` prices one configuration; ``predict_grid`` prices a whole
sweep grid (chunk bytes × blocks × threads × ring depth) as NumPy array
ops — every per-point quantity the engines derive in Python (units per
chunk, tail geometry, active blocks, CPU workers, bandwidth-scaled stage
times, the full max-plus bound family) becomes one elementwise expression
over the flattened grid.  A million configurations price in a few
seconds; there is no per-point Python loop anywhere.

Two approximations relative to the exact scalar path, both documented and
covered by ``verify --analytic``:

- the pattern-recognition fraction is sampled once at the base config's
  geometry and treated as geometry-independent (the recognizer's verdict
  is a property of the app's address stream, not of chunk boundaries);
- the buffer allocator is not exercised per point (clean-run geometry is
  assumed to fit pinned/device memory, as it does for all shipped grids).

Grid point enumeration matches ``bench.sweep``: keys iterate in sorted
order with ``itertools.product`` semantics (last key fastest), and the
ranking tie-break is the sweep's ``best`` rule — ``(sim_time,
chunk_bytes, num_blocks, grid order)`` — so analytic ranking and DES
sweeping agree on plateaus.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig
from repro.engines.bigkernel import BigKernelEngine
from repro.engines.gpu_common import kernel_chunk_cost
from repro.engines.multigpu import MultiGpuBigKernelEngine
from repro.errors import HardwareError, ReproError
from repro.hw.topology import merge_cost, shard_mem_bandwidth, shard_workers, state_nbytes
from repro.runtime.fastpath import FLAG_BYTES
from repro.runtime.pattern import ADDRESS_BYTES

from repro.analytic.algebra import pipeline_bounds
from repro.analytic.model import AppModel, extract_app_model
from repro.analytic.predict import predict_run, resolve_engine

#: config fields predict_grid can sweep
GRID_FIELDS = ("chunk_bytes", "compute_threads", "num_blocks", "ring_depth")


@dataclass
class GridPrediction:
    """Predicted sim_time over every point of a sweep grid."""

    engine: str
    app: str
    #: swept config fields, in sorted (enumeration) order
    keys: Tuple[str, ...]
    #: per-point values of each swept field (flat, grid enumeration order)
    values: Dict[str, np.ndarray]
    #: per-point predicted total time
    sim_time: np.ndarray
    base_config: EngineConfig
    meta: Dict[str, object] = field(default_factory=dict)
    _order: Optional[np.ndarray] = field(default=None, repr=False)

    @property
    def n_points(self) -> int:
        return int(self.sim_time.size)

    def ranking(self) -> np.ndarray:
        """Point indices best-first under the sweep tie-break rule."""
        if self._order is None:
            zeros = np.zeros(self.sim_time.size, dtype=np.int64)
            cb = self.values.get("chunk_bytes", zeros)
            nb = self.values.get("num_blocks", zeros)
            # np.lexsort: last key is primary; stability preserves grid order
            self._order = np.lexsort((nb, cb, self.sim_time))
        return self._order

    def argbest(self) -> int:
        return int(self.ranking()[0])

    def params_at(self, index: int) -> Dict[str, int]:
        return {k: int(self.values[k][index]) for k in self.keys}

    def config_at(self, index: int) -> EngineConfig:
        return self.base_config.with_(**self.params_at(index))

    def best_params(self) -> Dict[str, int]:
        return self.params_at(self.argbest())

    def best_time(self) -> float:
        return float(self.sim_time[self.argbest()])

    def top(self, k: int, expand_ties: bool = True) -> List[int]:
        """Best ``k`` point indices; with ``expand_ties`` every point whose
        prediction exactly equals the k-th best is included too (analytic
        plateaus are bitwise-identical, so ties are meaningful)."""
        order = self.ranking()
        k = max(1, min(k, order.size))
        chosen = list(order[:k])
        if expand_ties and k < order.size:
            kth = self.sim_time[order[k - 1]]
            extra = order[k:]
            chosen.extend(extra[self.sim_time[extra] == kth])
        return [int(i) for i in chosen]


def _product_arrays(
    grid: Dict[str, Sequence[int]]
) -> Tuple[Tuple[str, ...], Dict[str, np.ndarray]]:
    """Flatten a grid to per-point value arrays in sweep enumeration order."""
    keys = tuple(sorted(grid))
    axes = [np.asarray(list(grid[k]), dtype=np.int64) for k in keys]
    if any(ax.size == 0 for ax in axes):
        raise ReproError("grid values must be non-empty lists")
    mesh = np.meshgrid(*axes, indexing="ij") if axes else []
    return keys, {k: m.ravel() for k, m in zip(keys, mesh)}


def _xfer(pcie, nbytes, segments=1):
    """Vectorized PcieSpec.transfer_time (pinned)."""
    bw = pcie.raw_bandwidth * pcie.pinned_efficiency
    return pcie.latency * segments + np.where(nbytes > 0, nbytes, 0) / bw


def _assembly_hit_rate(m: AppModel, cpu, threads, locality_opt: bool):
    """Vectorized runtime.assembly.estimate_assembly_hit_rate."""
    if m.reads_per_record <= 0:
        return 1.0
    record_bytes = int(max(m.record_bytes, 1))
    misses = min(float(m.reads_per_record), max(record_bytes / cpu.cache_line, 0.0))
    seq_hit = max(0.0, 1.0 - misses / m.reads_per_record)
    if locality_opt:
        return seq_hit
    stream_set = threads * (cpu.cache_line * 2)
    return np.where(
        stream_set <= cpu.cache_bytes,
        0.85 * seq_hit,
        np.minimum(1.0, cpu.cache_bytes / stream_set),
    )


def _bandwidth_scale(gpu, threads):
    saturating = gpu.num_sms * (gpu.max_threads_per_sm // 4)
    return np.minimum(1.0, threads / saturating)


def _active_blocks(gpu, num_blocks, compute_threads):
    """Vectorized scheduler.plan_blocks occupancy (no shared memory)."""
    req_threads = 2 * compute_threads
    if np.any(req_threads > gpu.max_threads_per_block):
        bad = int(compute_threads[req_threads > gpu.max_threads_per_block][0])
        raise HardwareError(
            f"block thread count {2 * bad} outside (0, {gpu.max_threads_per_block}]"
        )
    by_threads = gpu.max_threads_per_sm // req_threads
    by_regs = gpu.registers_per_sm // (32 * req_threads)
    per_sm = np.minimum(by_threads, by_regs)
    hw_max = np.maximum(0, per_sm) * gpu.num_sms
    if np.any(hw_max == 0):
        raise HardwareError(
            f"a block exceeds per-SM resources of {gpu.name} at some grid points"
        )
    return np.minimum(num_blocks, hw_max)


def _tail_geometry(units: int, upc):
    """(template_units, effective_n_full, tail_units, has_tail) per point."""
    n_full, rem = np.divmod(np.int64(units), upc)
    has_tail = (rem > 0) & (n_full > 0)
    tpl_units = np.where(n_full == 0, rem, upc)
    eff_n_full = np.where(n_full == 0, 1, n_full)
    tail_units = np.where(has_tail, rem, tpl_units)
    return tpl_units, eff_n_full, tail_units, has_tail


def _pipeline_total(m, hw, t, u, eff_n_full, has_tail, depth, cpu_workers):
    per_pass = eff_n_full + has_tail
    n = m.passes * per_pass
    n_tail = m.passes * np.where(has_tail, 1, 0)
    total, _, _ = pipeline_bounds(
        t,
        u,
        n=n,
        n_tail=n_tail,
        depth=depth,
        per_pass=per_pass,
        passes=m.passes,
        cpu_workers=cpu_workers,
    )
    return total


def predict_grid(
    app: Application,
    data: AppData,
    grid: Dict[str, Sequence[int]],
    base_config: Optional[EngineConfig] = None,
    engine: Union[str, Engine] = "bigkernel",
) -> GridPrediction:
    """Predict sim_time for every configuration in ``grid`` at once."""
    base = base_config if base_config is not None else EngineConfig()
    eng = resolve_engine(engine)
    unknown = set(grid) - set(GRID_FIELDS)
    if unknown:
        raise ReproError(
            f"predict_grid cannot sweep {sorted(unknown)}; "
            f"supported fields: {', '.join(GRID_FIELDS)}"
        )
    # EngineConfig's own validation, once per distinct value
    for key, vals in grid.items():
        for v in set(vals):
            base.with_(**{key: int(v)})
    keys, values = _product_arrays(grid)
    shape = values[keys[0]].shape if keys else (1,)

    def axis(name, default):
        return values.get(name, np.full(shape, default, dtype=np.int64))

    cb = axis("chunk_bytes", base.chunk_bytes)
    nb = axis("num_blocks", base.num_blocks)
    ct = axis("compute_threads", base.compute_threads)
    rd = axis("ring_depth", base.ring_depth)
    hw = base.hardware
    gpu, cpu, pcie = hw.gpu, hw.cpu, hw.pcie
    profile = app.access_profile(data)
    units = app.n_units(data)
    meta: Dict[str, object] = {}

    if eng.name in ("cpu_serial", "cpu_mt"):
        scalar = predict_run(app, data, base, engine=eng).sim_time
        sim = np.full(shape, scalar)
        meta["config_insensitive"] = True
        return GridPrediction(eng.name, app.name, keys, values, sim, base, meta)

    threads = nb * ct

    if eng.name == "gpu_single":
        upc = np.maximum(
            1, (cb / max(profile.record_bytes, 1e-12)).astype(np.int64)
        )
        tpl_u, eff_n_full, tail_u, has_tail = _tail_geometry(units, upc)
        cost_f = kernel_chunk_cost(profile, 1.0, coalesced=False)
        scale = _bandwidth_scale(gpu, threads)

        def serial_chunk(u_units):
            raw = u_units * profile.record_bytes
            comm = raw / (cpu.per_thread_bandwidth * 2.0 / 3.0) + _xfer(pcie, raw)
            n_ops = u_units * profile.gpu_ops_per_record * profile.gpu_divergence
            gbytes = u_units * (
                profile.read_bytes_per_record
                + profile.write_bytes_per_record
                + profile.resident_bytes_per_record
            )
            comp = (
                n_ops / gpu.peak_ops
                + (gbytes / cost_f.efficiency) / (gpu.effective_mem_bandwidth * scale)
                + gpu.kernel_launch_overhead
            )
            wb = u_units * profile.write_bytes_per_record
            comm = comm + np.where(
                wb > 0, _xfer(pcie, wb) + wb / (cpu.per_thread_bandwidth * 2.0 / 3.0), 0.0
            )
            return comm + comp

        per_pass = eff_n_full * serial_chunk(tpl_u.astype(np.float64)) + np.where(
            has_tail, serial_chunk(tail_u.astype(np.float64)), 0.0
        )
        sim = profile.passes * per_pass
        return GridPrediction(eng.name, app.name, keys, values, sim, base, meta)

    # -- pipelined engines: build template/tail stage tables vectorized -----
    if eng.name == "gpu_double":
        m = extract_app_model(app, data, base)
        upc = np.maximum(1, (cb / max(m.record_bytes, 1e-12)).astype(np.int64))
        tpl_u, eff_n_full, tail_u, has_tail = _tail_geometry(units, upc)
        scale = _bandwidth_scale(gpu, threads)
        eff = kernel_chunk_cost(profile, 1.0, coalesced=False).efficiency

        def kind(u_units):
            u_units = u_units.astype(np.float64)
            raw = u_units * m.record_bytes
            n_ops = u_units * m.gpu_ops_per_record * m.gpu_divergence
            gbytes = u_units * (
                m.read_bytes_per_record
                + m.write_bytes_per_record
                + m.resident_bytes_per_record
            )
            t_comp = (
                n_ops / gpu.peak_ops
                + (gbytes / eff) / (gpu.effective_mem_bandwidth * scale)
                + gpu.kernel_launch_overhead
            )
            wb_f = u_units * m.write_bytes_per_record
            wb = np.floor(wb_f)
            zero = np.zeros_like(raw)
            return dict(
                A=zero,
                S=raw / (cpu.per_thread_bandwidth * 2.0 / 3.0),
                X=_xfer(pcie, np.floor(raw)) + pcie.transfer_time(FLAG_BYTES),
                C=t_comp,
                WB=np.where(wb > 0, _xfer(pcie, wb), 0.0),
                SC=np.where(
                    wb_f > 0, wb_f / (cpu.per_thread_bandwidth * 2.0 / 3.0), 0.0
                ),
                d_addr=zero,
            )

        t = kind(tpl_u)
        u = kind(tail_u)
        sim = _pipeline_total(
            m, hw, t, u, eff_n_full, has_tail, depth=np.int64(2), cpu_workers=1
        )
        meta["note"] = "ring_depth fixed at 2 by the engine"
        return GridPrediction(eng.name, app.name, keys, values, sim, base, meta)

    # bigkernel / bigkernel_multigpu
    assert isinstance(eng, BigKernelEngine)

    if isinstance(eng, MultiGpuBigKernelEngine):
        fabric = eng.fabric
        per_shard = -(-units // fabric.n_gpus)  # ceil, as the engine shards
        shard_units = []
        remaining = units
        for g in range(fabric.n_gpus):
            su = min(per_shard, remaining)
            if su <= 0:
                break
            remaining -= su
            shard_units.append((g, su))
        n_shards = len(shard_units)
        wk = shard_workers(cpu, fabric)
        shared = eng.shared_link and n_shards > 1
        x_scale = n_shards if shared else 1
        sim = None
        d2h_total = None
        d2h_fill0 = None
        bmeta: Dict[str, object] = {}
        for g, su in shard_units:
            bw = shard_mem_bandwidth(cpu, g, fabric)
            s, d2h_occ, d2h_fill, bmeta = _bigkernel_grid_total(
                app,
                data,
                base,
                eng.features,
                su,
                cb,
                nb,
                ct,
                rd,
                workers_fixed=wk,
                mem_bandwidth=bw,
                x_scale=x_scale,
            )
            sim = s if sim is None else np.maximum(sim, s)
            d2h_total = d2h_occ if d2h_total is None else d2h_total + d2h_occ
            if d2h_fill0 is None:
                d2h_fill0 = d2h_fill
        if shared:
            # D2H port residency: all shards' address ships + write-backs
            # serialize on the one root-complex D2H channel
            sim = np.maximum(
                sim, np.where(d2h_total > 0, d2h_fill0 + d2h_total, 0.0)
            )
        merge = merge_cost(
            hw,
            fabric if n_shards == fabric.n_gpus else replace(fabric, n_gpus=n_shards),
            state_nbytes(app.make_state(data)),
            app.n_passes,
        )
        sim = sim + gpu.kernel_launch_overhead + merge
        meta.update(bmeta)
        meta.update(
            n_gpus=n_shards,
            shared_link=eng.shared_link,
            numa_aware=eng.numa_aware,
            workers_per_gpu=wk,
            merge_time=merge,
        )
        return GridPrediction(eng.name, app.name, keys, values, sim, base, meta)

    sim, _d2h_occ, _d2h_fill, bmeta = _bigkernel_grid_total(
        app, data, base, eng.features, units, cb, nb, ct, rd
    )
    sim = sim + gpu.kernel_launch_overhead
    meta.update(bmeta)
    return GridPrediction(eng.name, app.name, keys, values, sim, base, meta)


def _bigkernel_grid_total(
    app: Application,
    data: AppData,
    base: EngineConfig,
    features,
    units: int,
    cb,
    nb,
    ct,
    rd,
    workers_fixed: Optional[int] = None,
    mem_bandwidth: Optional[float] = None,
    x_scale: int = 1,
):
    """Vectorized bigkernel pipeline total for one schedule over a grid.

    The plain engine derives its CPU-worker pool from occupancy
    (``min(active_blocks, cpu.threads)``); the multi-GPU engine prices a
    *shard* through the same model by fixing ``workers_fixed`` (its
    per-shard worker budget), derating ``mem_bandwidth`` (the NUMA-node
    share feeding the assembly floor) and scaling H2D transfer service by
    ``x_scale`` (round-robin slots on a shared root-complex port).

    Returns ``(sim, d2h_occupancy, d2h_fill, meta)`` — the last three feed
    the shared-port D2H residency bound (kernel-launch overhead is *not*
    included in ``sim``).
    """
    hw = base.hardware
    gpu, cpu, pcie = hw.gpu, hw.cpu, hw.pcie
    profile = app.access_profile(data)
    threads = nb * ct
    mem_bw = cpu.mem_bandwidth if mem_bandwidth is None else mem_bandwidth
    m = extract_app_model(app, data, base, features=features)
    pattern_on = bool(base.pattern_recognition and m.pattern_fraction >= 0.5)
    reduce_volume = m.reduce_volume
    ppu = m.payload_per_unit
    upc = np.maximum(1, (cb / max(ppu, 1e-12)).astype(np.int64))
    tpl_u, eff_n_full, tail_u, has_tail = _tail_geometry(units, upc)
    active = _active_blocks(gpu, nb, ct)
    workers = (
        np.minimum(active, cpu.threads)
        if workers_fixed is None
        else np.int64(workers_fixed)
    )
    worker_eff = workers * cpu.mt_efficiency
    # flag_wait_overhead(2) + 2 * global_latency, as the engine prices sync
    sync = gpu.global_latency * 2 + 2 * gpu.global_latency
    scale = _bandwidth_scale(gpu, threads)
    coalesced = bool(features.coalesce and reduce_volume)
    eff = kernel_chunk_cost(profile, 1.0, coalesced=coalesced).efficiency
    hit = _assembly_hit_rate(m, cpu, threads, locality_opt=pattern_on)
    staging_bw = cpu.per_thread_bandwidth * 2.0 / 3.0
    miss_bw = cpu.cache_line / cpu.miss_latency

    def kind(u_units):
        u_units = u_units.astype(np.float64)
        raw = u_units * m.record_bytes
        emitted = u_units * m.emitted_addresses_per_record
        read_bytes = u_units * m.read_bytes_per_record
        payload = u_units * ppu
        t_ag = u_units * (2.0 + 3.0 * m.emitted_addresses_per_record) / gpu.peak_ops
        if reduce_volume and not pattern_on:
            addr_d2h = np.floor(emitted * ADDRESS_BYTES)
        else:
            addr_d2h = np.zeros_like(raw)
        if not reduce_volume:
            t_asm = raw / staging_bw / worker_eff
            t_asm = np.maximum(t_asm, 2.0 * raw / mem_bw)
        else:
            accesses = (
                read_bytes / m.gather_run_bytes if pattern_on else emitted
            )
            data_bytes = emitted * (read_bytes / np.maximum(emitted, 1e-9))
            read_t = (data_bytes * hit) / cpu.per_thread_bandwidth + (
                data_bytes * (1.0 - hit)
            ) / miss_bw
            write_t = data_bytes / cpu.per_thread_bandwidth
            addr_t = (
                0.0 if pattern_on else emitted * 8 / cpu.per_thread_bandwidth
            )
            loop_t = accesses * 6.0 / cpu.peak_ops_per_thread
            t_asm = (read_t + write_t + addr_t + loop_t) / worker_eff
            t_asm = np.maximum(t_asm, 2.0 * read_bytes / mem_bw)
        n_ops = u_units * m.gpu_ops_per_record * m.gpu_divergence
        gbytes = u_units * (
            m.read_bytes_per_record
            + m.write_bytes_per_record
            + m.resident_bytes_per_record
        )
        t_comp = n_ops / gpu.peak_ops + (gbytes / eff) / (
            gpu.effective_mem_bandwidth * scale
        )
        wb_f = u_units * m.write_bytes_per_record
        wb = np.floor(wb_f)
        if m.write_bytes_per_record > 0:
            w_elem = m.write_bytes_per_record / max(m.writes_per_record, 1e-9)
            sc_bytes = (u_units * m.writes_per_record) * w_elem
            t_sc = (
                sc_bytes / cpu.per_thread_bandwidth
                + (sc_bytes * 0.9) / cpu.per_thread_bandwidth
                + (sc_bytes * 0.1) / miss_bw
            ) / worker_eff
        else:
            t_sc = np.zeros_like(raw)
        t_x = _xfer(pcie, np.floor(payload), segments=workers) + pcie.transfer_time(
            FLAG_BYTES
        )
        if x_scale != 1:
            t_x = x_scale * t_x
        return dict(
            A=t_ag + np.where(addr_d2h > 0, _xfer(pcie, addr_d2h), 0.0),
            S=t_asm,
            X=t_x,
            C=t_comp + sync,
            WB=np.where(wb > 0, _xfer(pcie, wb, segments=workers), 0.0),
            SC=t_sc,
            d_addr=np.where(addr_d2h > 0, _xfer(pcie, addr_d2h), 0.0),
        )

    t = kind(tpl_u)
    u = kind(tail_u)
    cpu_workers = 2 if workers_fixed is None else workers_fixed
    sim = _pipeline_total(
        m, hw, t, u, eff_n_full, has_tail, depth=rd, cpu_workers=cpu_workers
    )
    d2h_occ = m.passes * (
        eff_n_full * (t["d_addr"] + t["WB"])
        + np.where(has_tail, u["d_addr"] + u["WB"], 0.0)
    )
    d2h_fill = t["A"] - t["d_addr"]
    bmeta = dict(
        pattern_on=pattern_on,
        pattern_fraction=m.pattern_fraction,
        reduce_volume=reduce_volume,
        features=m.feature_label,
    )
    return sim, d2h_occ, d2h_fill, bmeta


def suggest_grid(
    n_points: int, base_chunk: int = 64 * 1024, chunk_step: int = 16 * 1024
) -> Dict[str, List[int]]:
    """A deterministic ≥``n_points`` sweep grid over sane geometry ranges."""
    if n_points < 1:
        raise ReproError("n_points must be positive")
    num_blocks = [1, 2, 4, 6, 8, 12, 16, 24, 32, 48, 64]
    ring_depth = [2, 3, 4, 5, 6, 7, 8, 9]
    compute_threads = [32 * i for i in range(1, 17)]
    per_chunk = len(num_blocks) * len(ring_depth) * len(compute_threads)
    n_chunks = max(1, -(-n_points // per_chunk))
    chunk_bytes = [base_chunk + i * chunk_step for i in range(n_chunks)]
    return {
        "chunk_bytes": chunk_bytes,
        "compute_threads": compute_threads,
        "num_blocks": num_blocks,
        "ring_depth": ring_depth,
    }
