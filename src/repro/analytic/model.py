"""App cost models for the analytic predictor.

``AppModel`` freezes everything the closed-form predictor needs to know
about one (app, dataset, engine-features) triple into plain scalars:
the access-profile byte/op ratios, the aggregate totals, the compiler
slice verdict, and the sampled pattern-recognition fraction.  With the
model extracted once, evaluating a configuration — or a million of them
(``repro.analytic.grid``) — touches no app code at all.

One deliberate approximation lives here: the exact engine re-samples the
pattern fraction per (thread count, chunk geometry), while the model
samples it once at a reference geometry and treats it as
geometry-independent.  For the bundled apps the recognizer's verdict is a
property of the app's address stream, not of where chunk boundaries fall,
so the approximation is exact in practice; ``verify --analytic`` fuzzes
geometry precisely to keep that claim honest (the scalar
``predict_run`` path re-samples exactly, via the engine's own schedule).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional

from repro.apps.base import AppData, Application, dataset_key
from repro.engines.base import EngineConfig
from repro.engines.bigkernel import BigKernelEngine, BigKernelFeatures
from repro.engines.gpu_common import chunk_plan

#: process-wide accounting of :func:`extract_app_model` memoization, the
#: sibling of ``DATASET_HASH_STATS`` (apps.base) and ``CONTENT_KEY_STATS``
#: (bench.sweep): ``requests`` counts every extraction ask, ``hits`` the
#: ones answered from the content-keyed cache, ``misses`` the full
#: app-byte walks actually paid
ANALYTIC_MODEL_STATS = {"requests": 0, "hits": 0, "misses": 0}

#: content-keyed LRU of extracted models. The model is a frozen pure
#: function of (dataset content, engine features, sampling geometry), so
#: the key is exactly those: :func:`repro.apps.base.dataset_key` names the
#: bytes, and the geometry legs name everything
#: ``_sample_pattern_fraction`` reads (thread count and chunk size).
_MODEL_CACHE: "OrderedDict[tuple, AppModel]" = OrderedDict()
_MODEL_CACHE_MAX = 128


@dataclass(frozen=True)
class AppModel:
    """Scalar cost model of one (app, dataset, features) triple."""

    app: str
    units: int
    passes: int
    record_bytes: float
    read_bytes_per_record: float
    write_bytes_per_record: float
    reads_per_record: float
    writes_per_record: float
    elem_bytes: float
    gpu_ops_per_record: float
    cpu_ops_per_record: float
    resident_bytes_per_record: float
    emitted_addresses_per_record: float
    gather_run_bytes: float
    gpu_divergence: float
    #: aggregate streamed bytes (units × record_bytes, the totals() convention)
    data_bytes: int
    cpu_ops_total: float
    #: compiler slice verdict (falls back to the profile's claim)
    sliceable: bool
    pattern_friendly: Optional[bool]
    #: pattern fraction sampled at the reference geometry (0.0 when the
    #: profile opts out of sampling)
    pattern_fraction: float
    #: engine ablation switches (BigKernelFeatures)
    feature_reduce_volume: bool
    feature_coalesce: bool
    feature_label: str

    @property
    def reduce_volume(self) -> bool:
        """Does the modelled bigkernel run ship sliced payloads?"""
        return self.feature_reduce_volume and self.sliceable

    @property
    def payload_per_unit(self) -> float:
        """Bytes per unit crossing PCIe h2d under the modelled features."""
        return (
            self.read_bytes_per_record if self.reduce_volume else self.record_bytes
        )


def extract_app_model(
    app: Application,
    data: AppData,
    config: Optional[EngineConfig] = None,
    features: Optional[BigKernelFeatures] = None,
) -> AppModel:
    """Build the scalar model, sampling pattern state at ``config``'s geometry.

    Memoized on the dataset's content identity plus the feature set and the
    sampling geometry (``ANALYTIC_MODEL_STATS`` counts hits/misses), so a
    serving loop or grid sweep that prices the same (app, dataset, engine)
    cell repeatedly re-walks the app bytes exactly once.
    """
    config = config if config is not None else EngineConfig()
    features = features if features is not None else BigKernelFeatures.full()
    ANALYTIC_MODEL_STATS["requests"] += 1
    cache_key = (
        app.name,
        dataset_key(data),
        features.label,
        config.chunk_bytes,
        config.total_compute_threads,
        config.pattern_recognition,
    )
    cached = _MODEL_CACHE.get(cache_key)
    if cached is not None:
        ANALYTIC_MODEL_STATS["hits"] += 1
        _MODEL_CACHE.move_to_end(cache_key)
        return cached
    ANALYTIC_MODEL_STATS["misses"] += 1
    profile = app.access_profile(data)
    units = app.n_units(data)
    engine = BigKernelEngine(features)
    sliceable = engine._sliceable(app, profile)
    reduce_volume = features.reduce_volume and sliceable
    payload = profile.read_bytes_per_record if reduce_volume else profile.record_bytes
    fraction = 0.0
    if config.pattern_recognition and profile.pattern_friendly is not None:
        upc, _ = chunk_plan(units, config.chunk_bytes, payload)
        fraction = engine._sample_pattern_fraction(app, data, config, upc)
    data_bytes = int(units * profile.record_bytes)
    cpu_ops_total = units * profile.cpu_ops_per_record
    model = AppModel(
        app=app.name,
        units=units,
        passes=profile.passes,
        record_bytes=profile.record_bytes,
        read_bytes_per_record=profile.read_bytes_per_record,
        write_bytes_per_record=profile.write_bytes_per_record,
        reads_per_record=profile.reads_per_record,
        writes_per_record=profile.writes_per_record,
        elem_bytes=profile.elem_bytes,
        gpu_ops_per_record=profile.gpu_ops_per_record,
        cpu_ops_per_record=profile.cpu_ops_per_record,
        resident_bytes_per_record=profile.resident_bytes_per_record,
        emitted_addresses_per_record=profile.emitted_addresses_per_record,
        gather_run_bytes=profile.gather_run_bytes,
        gpu_divergence=profile.gpu_divergence,
        data_bytes=int(data_bytes),
        cpu_ops_total=cpu_ops_total,
        sliceable=sliceable,
        pattern_friendly=profile.pattern_friendly,
        pattern_fraction=fraction,
        feature_reduce_volume=features.reduce_volume,
        feature_coalesce=features.coalesce,
        feature_label=features.label,
    )
    _MODEL_CACHE[cache_key] = model
    while len(_MODEL_CACHE) > _MODEL_CACHE_MAX:
        _MODEL_CACHE.popitem(last=False)
    return model
