"""Instant roofline / what-if reports (``python -m repro report``).

Everything here is computed with the closed-form predictor — no simulator
events fire, so the report is effectively instant even for geometry scans:
per-engine predicted times, the bottleneck stage and overlap fraction of
the pipelined engines, the predicted BigKernel speedups the paper's Fig. 4
is about, and a chunk-size sensitivity scan done with ``predict_grid``.
"""

from __future__ import annotations

from typing import List, Optional

from repro.apps import get_app
from repro.engines.base import EngineConfig
from repro.hw.spec import HW_PRESETS, get_hardware
from repro.kernelc.analysis import kernel_intensity

from repro.analytic.grid import predict_grid
from repro.analytic.predict import PREDICTABLE_ENGINES, predict_run

#: chunk ladder scanned by the sensitivity section (KiB)
CHUNK_LADDER_KIB = (64, 128, 256, 512, 1024, 2048, 4096, 8192)


def _fmt_t(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f} s "
    if seconds >= 1e-3:
        return f"{seconds * 1e3:8.3f} ms"
    return f"{seconds * 1e6:8.2f} us"


def run_report(
    app_name: str,
    data_bytes: int = 8 * 2**20,
    seed: int = 7,
    config: Optional[EngineConfig] = None,
    hw_preset: Optional[str] = None,
) -> str:
    """Render the analytic report for one app as plain text."""
    app = get_app(app_name)
    config = config if config is not None else EngineConfig()
    if hw_preset is not None:
        hw = get_hardware(hw_preset)
        config = config.with_(hardware=hw)
    else:
        hw_preset = next(
            (k for k, v in HW_PRESETS.items() if v == config.hardware), "custom"
        )
    data = app.generate(n_bytes=data_bytes, seed=seed)
    profile = app.access_profile(data)
    units = app.n_units(data)

    lines: List[str] = []
    lines.append(
        f"analytic report: {app.name}  "
        f"({data_bytes / 2**20:.0f} MiB, seed {seed}, hw={hw_preset})"
    )
    lines.append("=" * len(lines[-1]))

    # -- kernel / profile census --------------------------------------------
    intensity = (
        profile.gpu_ops_per_record / profile.record_bytes
        if profile.record_bytes > 0
        else float("inf")
    )
    lines.append(
        f"profile: {units} units x {profile.record_bytes:g} B/record, "
        f"{profile.read_bytes_per_record:g} B read, "
        f"{profile.write_bytes_per_record:g} B written, "
        f"{profile.passes} pass(es)"
    )
    lines.append(
        f"intensity: {profile.gpu_ops_per_record:g} GPU ops/record "
        f"({intensity:.3f} ops/byte), "
        f"{profile.cpu_ops_per_record:g} CPU ops/record"
    )
    kernel = app.kernel()
    if kernel is not None:
        k = kernel_intensity(kernel)
        lines.append(
            f"kernel IR: {k.arithmetic_ops} arith ops, "
            f"{k.mapped_accesses} mapped + {k.resident_accesses} resident "
            f"accesses, {k.emitted_addresses} address emits, "
            f"{k.branches} branches, {k.loops} loops"
        )
    lines.append("")

    # -- per-engine predictions ---------------------------------------------
    preds = {
        name: predict_run(app, data, config, engine=name)
        for name in PREDICTABLE_ENGINES
    }
    lines.append(
        f"{'engine':12s} {'predicted':>11s}  {'bottleneck':18s} {'overlap':>7s}"
    )
    for name in PREDICTABLE_ENGINES:
        p = preds[name]
        lines.append(
            f"{name:12s} {_fmt_t(p.sim_time)}  {p.bottleneck:18s} "
            f"{p.overlap_fraction:6.0%}"
        )
    bk = preds["bigkernel"]
    lines.append("")
    lines.append(
        f"predicted speedups: bigkernel is "
        f"{preds['gpu_double'].sim_time / bk.sim_time:.2f}x vs gpu_double, "
        f"{preds['gpu_single'].sim_time / bk.sim_time:.2f}x vs gpu_single, "
        f"{preds['cpu_serial'].sim_time / bk.sim_time:.2f}x vs cpu_serial"
    )
    lines.append("")

    # -- bigkernel stage occupancy -------------------------------------------
    lines.append(f"bigkernel stage occupancy (binding bound: {bk.binding_bound}):")
    busiest = max(bk.stage_occupancy.values()) or 1.0
    for stage, busy in bk.stage_occupancy.items():
        bar = "#" * int(round(24 * busy / busiest))
        lines.append(f"  {stage:16s} {_fmt_t(busy)}  {bar}")
    lines.append("")

    # -- chunk-size sensitivity ----------------------------------------------
    ladder = [k * 1024 for k in CHUNK_LADDER_KIB]
    gp = predict_grid(
        app, data, {"chunk_bytes": ladder}, config, engine="bigkernel"
    )
    best = gp.best_params()["chunk_bytes"]
    lines.append("chunk-size sensitivity (bigkernel):")
    for i, cb in enumerate(ladder):
        mark = "  <- best" if cb == best else ""
        lines.append(
            f"  {cb // 1024:5d} KiB  {_fmt_t(float(gp.sim_time[i]))}{mark}"
        )
    return "\n".join(lines)
