"""Closed-form max-plus algebra for the bounded-ring pipeline.

PR 2 proved the pipelined engines' schedules are governed by a bounded-ring
recurrence (``runtime/fastpath.py``): chunk *i*'s stage chain cannot start
before stage resources free up *and* before compute of chunk ``i - depth``
retires its ring slot.  This module closes that recurrence analytically.
The completion time of a template(+tail) run is the maximum over a family
of lower bounds, each an exact critical-path candidate:

``st_{s}_{s'}`` (two-segment staircases)
    Ride stage *s* serially over chunks ``0..n-2`` (lead-in through the
    stages before *s* on chunk 0), bridge through stages ``(s..s']`` on
    chunk ``n-2``, finish stages ``[s'..end)`` on the last chunk.
    ``s == s'`` recovers the plain per-stage serial chain
    (lead-in + stage occupancy + lead-out).  Multi-pass runs with a tail
    chunk add an *inter-pass ring bubble*: at each pass boundary the
    stage-s chain competes with ``compute_end(j0 - depth)`` plus the
    descend back into *s*, and the (tiny) pass tail sitting inside the
    ring window cannot hide that latency.

``ring``
    The ring constraint chained on itself:
    ``compute_end(i) >= compute_end(i - depth) + chain(i)``, hopping
    ``depth`` chunks at a time; interior hops are template-dominated and
    the final hop lands on the last chunk (tail kind), plus the
    write-back drain.

``rs_{s}_{s'}``
    Ring-prefix + staircase-suffix: hop the ring to the last multiple of
    ``depth`` at or below ``n-2``, descend that chunk's stages to *s*,
    ride stage *s* serially to chunk ``n-2``, bridge to *s'*, finish on
    the last chunk.

``d2h``
    Device-to-host channel occupancy: address DMAs and write-back DMAs
    serialize on the single d2h DMA engine.

``cpu``
    With a single CPU worker, assembly and scatter serialize on it.

All bound families are *valid lower bounds* on the DES total, and their
maximum matches the DES to ~1e-15 on homogeneous runs and to well under
1% on the worst multi-pass tail geometries (see ``verify --analytic``).

Every formula here is elementwise NumPy: scalars in give scalars out
(0-d arrays, coerced by the callers), and full sweep-grid arrays in give
per-point totals out with no per-point Python loop — that is what makes
million-point sweeps take seconds (``repro.analytic.grid``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

#: the four always-present pipeline stages, in chunk order
STAGES4 = ("A", "S", "X", "C")
#: the full stage chain including the write-back phases
STAGES6 = ("A", "S", "X", "C", "WB", "SC")

#: map from algebra stage letters to the trace stage names used by the DES
STAGE_NAMES = {
    "A": "addr_gen",
    "S": "data_assembly",
    "X": "data_transfer",
    "C": "compute",
    "WB": "write_transfer",
    "SC": "write_scatter",
}

_NEG = -np.inf


def _ssum(terms) -> np.ndarray:
    """Left-to-right sum starting from 0.0 (matches the scalar reference)."""
    acc = np.float64(0.0)
    for term in terms:
        acc = acc + term
    return acc


def pipeline_bounds(
    t: Dict[str, np.ndarray],
    u: Dict[str, np.ndarray],
    n,
    n_tail,
    depth,
    per_pass,
    passes,
    cpu_workers,
) -> Tuple[np.ndarray, Dict[str, np.ndarray], Dict[str, np.ndarray]]:
    """Closed-form completion time of a template(+tail) pipeline run.

    ``t`` and ``u`` are per-stage duration tables for the template and the
    tail chunk kind (keys ``A S X C WB SC`` plus ``d_addr``, the pure
    address-DMA component of ``A``).  For runs without a tail, pass
    ``u = t`` and ``n_tail = 0``.  All values may be floats or broadcast-
    compatible NumPy arrays; integer geometry (``n`` total chunks,
    ``n_tail`` tail-kind chunks, ring ``depth``, ``per_pass`` chunks per
    pass, ``passes``, ``cpu_workers``) likewise.

    Returns ``(total, bounds, occupancy)``: the elementwise maximum over
    the bound family, the named family itself (inapplicable members are
    ``-inf``), and the per-stage busy-time occupancy
    ``n_tpl * t[s] + n_tail * u[s]``.
    """
    n = np.asarray(n)
    n_tail = np.asarray(n_tail)
    depth = np.asarray(depth)
    per_pass = np.asarray(per_pass)
    passes = np.asarray(passes)
    workers = np.asarray(cpu_workers)
    n_tpl = n - n_tail
    has_tail = n_tail > 0

    occ = {s: n_tpl * t[s] + n_tail * u[s] for s in STAGES6 + ("d_addr",)}
    L4_t = _ssum(t[s] for s in STAGES4)
    L4_u = _ssum(u[s] for s in STAGES4)

    bounds: Dict[str, np.ndarray] = {}

    # -- two-segment staircase family (with the inter-pass ring bubble) ------
    for i, s in enumerate(STAGES6):
        pre = _ssum(t[x] for x in STAGES6[:i])
        if s in STAGES4:
            si = STAGES4.index(s)
            # the ring hop from a pass boundary lands depth chunks back;
            # whether that chunk is the pass tail decides the hop pricing
            hop_is_tail = (depth % per_pass) == (1 % per_pass)
            post = _ssum(
                np.where(hop_is_tail, u[x], t[x]) for x in STAGES4[si + 1 :]
            )
            # tails inside the window of depth-1 chunks before the boundary
            k_tails = np.minimum(1 + (depth - 2) // per_pass, depth - 1)
            window = (depth - 1 - k_tails) * t[s] + k_tails * u[s]
            n_bound = np.maximum(0, passes - (depth + per_pass - 1) // per_pass)
            bubble = np.where(
                has_tail & (passes > 1),
                np.maximum(0.0, (post + pre) - window) * n_bound,
                0.0,
            )
        else:
            bubble = np.float64(0.0)
        for j in range(i, len(STAGES6)):
            sp = STAGES6[j]
            bridge = _ssum(t[x] for x in STAGES6[i + 1 : j + 1])
            tail_seg = _ssum(u[x] for x in STAGES6[j:])
            val = pre + occ[s] - u[s] + bridge + tail_seg + bubble
            if j > i:
                # the bridge chunk n-2 does not exist on single-chunk runs
                val = np.where(n < 2, _NEG, val)
            bounds[f"st_{s}_{sp}"] = val

    # -- ring bound ----------------------------------------------------------
    q, r = np.divmod(n - 1, depth)
    M_t = np.maximum(np.maximum(t["A"], t["S"]), np.maximum(t["X"], t["C"]))
    drain = u["WB"] + u["SC"]
    bounds["ring"] = np.where(
        q >= 1, L4_t + r * M_t + (q - 1) * L4_t + L4_u + drain, _NEG
    )

    # -- ring-prefix + staircase-suffix family -------------------------------
    j0 = np.where(n >= 2, ((n - 2) // depth) * depth, 0)
    rs_ok = (n >= 2) & (j0 >= depth)
    for i, s in enumerate(STAGES6):
        desc = _ssum(t[x] for x in STAGES6[: i + 1])
        for j in range(i, len(STAGES6)):
            sp = STAGES6[j]
            bridge = _ssum(t[x] for x in STAGES6[i + 1 : j + 1])
            tail_seg = _ssum(u[x] for x in STAGES6[j:])
            val = (j0 // depth) * L4_t + desc + (n - 2 - j0) * t[s] + bridge + tail_seg
            bounds[f"rs_{s}_{sp}"] = np.where(rs_ok, val, _NEG)

    # -- d2h channel occupancy (addr DMAs + write-back DMAs share the link) --
    bounds["d2h"] = (t["A"] - t["d_addr"]) + occ["d_addr"] + occ["WB"] + u["SC"]

    # -- single CPU worker serializes assembly + scatter ---------------------
    bounds["cpu"] = np.where(
        workers == 1,
        t["A"] + occ["S"] + occ["SC"] + u["X"] + u["C"] + u["WB"],
        _NEG,
    )

    total = np.float64(_NEG)
    for val in bounds.values():
        total = np.maximum(total, val)
    return total, bounds, occ
