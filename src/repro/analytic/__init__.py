"""Closed-form analytic performance predictor.

``predict_run`` prices one engine configuration in O(1) — same schedule
derivation as the engines, closed with the max-plus bound family of
:mod:`repro.analytic.algebra` instead of a simulation.  ``predict_grid``
vectorizes that over whole sweep grids (a million configurations in
seconds); ``repro report`` renders instant roofline / what-if output.
Validated against the DES by the ``verify --analytic`` pillar.
"""

from repro.analytic.algebra import STAGE_NAMES, pipeline_bounds
from repro.analytic.grid import (
    GRID_FIELDS,
    GridPrediction,
    predict_grid,
    suggest_grid,
)
from repro.analytic.model import (
    ANALYTIC_MODEL_STATS,
    AppModel,
    extract_app_model,
)
from repro.analytic.predict import (
    PREDICT_RUN_STATS,
    PREDICTABLE_ENGINES,
    PredictedRun,
    predict_run,
    predict_templated,
    predicted_sim_time,
    resolve_engine,
)
from repro.analytic.report import run_report

__all__ = [
    "ANALYTIC_MODEL_STATS",
    "AppModel",
    "PREDICT_RUN_STATS",
    "GRID_FIELDS",
    "GridPrediction",
    "PREDICTABLE_ENGINES",
    "PredictedRun",
    "STAGE_NAMES",
    "extract_app_model",
    "pipeline_bounds",
    "predict_grid",
    "predict_run",
    "predict_templated",
    "predicted_sim_time",
    "resolve_engine",
    "run_report",
    "suggest_grid",
]
