"""O(1)-per-configuration run prediction: ``predict_run``.

Where ``engine.run(...)`` walks a discrete-event (or fastpath) simulation
of the pipeline, ``predict_run(...)`` prices the same schedule in closed
form: it builds the engine's own chunk cost vectors (so every byte/op
ratio, buffer-planning and pattern-recognition decision is *identical* to
the simulated run) and closes the bounded-ring recurrence with the
max-plus bound family of :mod:`repro.analytic.algebra`.  No simulator
events fire; cost is a handful of float ops regardless of chunk count.

Scope: the five paper engines (``cpu_serial``, ``cpu_mt``, ``gpu_single``,
``gpu_double``, ``bigkernel`` incl. ablation feature sets) plus the
multi-GPU scale-out engine (``bigkernel_multigpu``: per-shard pipeline
bounds, a root-complex serialization bound for shared links, and the
closed-form merge cost shared with the engine).  The UVM family is
deliberately out of scope — demand paging's LRU page-table state has no
per-chunk closed form (see ``docs/performance.md``).
"""

from __future__ import annotations

import re
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from repro.apps.base import AppData, Application
from repro.engines.base import Engine, EngineConfig
from repro.engines.bigkernel import BigKernelEngine
from repro.engines.cpu_mt import CpuMtEngine
from repro.engines.cpu_serial import CpuSerialEngine
from repro.engines.gpu_common import chunk_plan, kernel_chunk_cost
from repro.engines.gpu_double import GpuDoubleBufferEngine
from repro.engines.gpu_single import GpuSingleBufferEngine
from repro.engines.multigpu import MultiGpuBigKernelEngine
from repro.errors import ReproError
from repro.hw.cpu import CpuDevice
from repro.hw.gpu import GpuDevice
from repro.runtime.fastpath import FLAG_BYTES, TemplatedChunks
from repro.runtime.pipeline import ChunkWork, PipelineConfig

from repro.analytic.algebra import STAGE_NAMES, STAGES6, pipeline_bounds

#: engines predict_run can price in closed form
PREDICTABLE_ENGINES = (
    "cpu_serial",
    "cpu_mt",
    "gpu_single",
    "gpu_double",
    "bigkernel",
    "bigkernel_multigpu",
)

_ENGINE_CLASSES = {
    "cpu_serial": CpuSerialEngine,
    "cpu_mt": CpuMtEngine,
    "gpu_single": GpuSingleBufferEngine,
    "gpu_double": GpuDoubleBufferEngine,
    "bigkernel": BigKernelEngine,
    "bigkernel_multigpu": MultiGpuBigKernelEngine,
}

#: instance names encode the fabric ("bigkernel_multigpu4_shared", ...)
_MULTIGPU_NAME = re.compile(r"^bigkernel_multigpu(\d*)(_shared)?(_numablind)?$")


def _multigpu_from_name(name: str) -> Optional[MultiGpuBigKernelEngine]:
    m = _MULTIGPU_NAME.match(name)
    if m is None:
        return None
    return MultiGpuBigKernelEngine(
        n_gpus=int(m.group(1)) if m.group(1) else 2,
        shared_link=bool(m.group(2)),
        numa_aware=not m.group(3),
    )


@dataclass
class PredictedRun:
    """Closed-form prediction of one engine run."""

    engine: str
    app: str
    #: predicted total simulated time (same unit as ``RunResult.sim_time``)
    sim_time: float
    #: per-stage busy time (trace stage names; CPU baselines use roofline legs)
    stage_occupancy: Dict[str, float]
    #: stage with the largest busy time
    bottleneck: str
    #: fraction of the smaller of (PCIe busy, compute busy) hidden under
    #: the other — 0 for fully serialized schemes, →1 for perfect pipelining
    overlap_fraction: float
    #: the bound family (named lower bounds; the max is ``sim_time``)
    bounds: Dict[str, float] = field(default_factory=dict, repr=False)
    #: name of the binding (maximal) bound
    binding_bound: str = ""
    n_chunks: int = 0


def resolve_engine(engine: Union[str, Engine]) -> Engine:
    """Return an engine instance predict_run knows how to price."""
    if isinstance(engine, Engine):
        if isinstance(engine, MultiGpuBigKernelEngine):
            return engine
        cls = _ENGINE_CLASSES.get(engine.name)
        if cls is None or not isinstance(engine, cls):
            raise ReproError(
                f"no closed-form model for engine {engine.name!r}; "
                f"predictable: {', '.join(PREDICTABLE_ENGINES)}"
            )
        return engine
    eng = _multigpu_from_name(engine)
    if eng is not None:
        return eng
    cls = _ENGINE_CLASSES.get(engine)
    if cls is None:
        raise ReproError(
            f"no closed-form model for engine {engine!r}; "
            f"predictable: {', '.join(PREDICTABLE_ENGINES)}"
        )
    return cls()


def chunk_durations(k: ChunkWork, pcie, sync: float) -> Dict[str, float]:
    """Per-stage durations of one chunk kind, as the DES would price them."""
    d_addr = (
        pcie.transfer_time(k.addr_bytes_d2h, pinned=True) if k.addr_bytes_d2h > 0 else 0.0
    )
    return dict(
        A=k.t_addr_gen + d_addr,
        S=k.t_assembly,
        X=pcie.transfer_time(k.xfer_bytes, pinned=True, segments=k.xfer_segments)
        + pcie.transfer_time(FLAG_BYTES, pinned=True),
        C=k.t_compute + sync,
        WB=(
            pcie.transfer_time(k.write_bytes, pinned=True, segments=k.xfer_segments)
            if k.write_bytes > 0
            else 0.0
        ),
        SC=k.t_scatter,
        d_addr=d_addr,
    )


def predict_templated(hw, chunks: TemplatedChunks, pipe_cfg: PipelineConfig):
    """Closed-form total of a template(+tail) pipeline run.

    Returns ``(total, bounds, occupancy)`` with plain-float values.
    """
    pcie = hw.pcie
    t = chunk_durations(chunks.template, pcie, pipe_cfg.sync_overhead)
    u = (
        chunk_durations(chunks.tail, pcie, pipe_cfg.sync_overhead)
        if chunks.tail is not None
        else t
    )
    n_tail = chunks.passes if chunks.tail is not None else 0
    total, bounds, occ = pipeline_bounds(
        t,
        u,
        n=len(chunks),
        n_tail=n_tail,
        depth=pipe_cfg.ring_depth,
        per_pass=chunks.per_pass,
        passes=chunks.passes,
        cpu_workers=pipe_cfg.cpu_workers,
    )
    bounds = {name: float(v) for name, v in bounds.items()}
    occupancy = {STAGE_NAMES[s]: float(occ[s]) for s in STAGES6}
    return float(total), bounds, occupancy


def _finish_pipelined(name, app_name, total, bounds, occupancy, n_chunks):
    comm = occupancy["data_transfer"] + occupancy["write_transfer"]
    comp = occupancy["compute"]
    floor = min(comm, comp)
    overlap = 0.0
    if floor > 0.0:
        overlap = min(1.0, max(0.0, (comm + comp - total) / floor))
    real_bounds = {k: v for k, v in bounds.items() if v != float("-inf")}
    binding = max(real_bounds, key=real_bounds.get)
    bottleneck = max(occupancy, key=occupancy.get)
    return PredictedRun(
        engine=name,
        app=app_name,
        sim_time=total,
        stage_occupancy=occupancy,
        bottleneck=bottleneck,
        overlap_fraction=overlap,
        bounds=real_bounds,
        binding_bound=binding,
        n_chunks=n_chunks,
    )


def _link_legs(chunks: TemplatedChunks, pcie, sync: float):
    """One shard's total busy time on each PCIe direction.

    Returns ``(h2d, d2h)``: the data+flag H2D traffic and the address-ship
    plus write-back D2H traffic, summed over template and tail chunks —
    exactly the residency a shard imposes on a shared root-complex port.
    """
    t = chunk_durations(chunks.template, pcie, sync)
    u = chunk_durations(chunks.tail, pcie, sync) if chunks.tail is not None else t
    n_tail = chunks.passes if chunks.tail is not None else 0
    n_main = len(chunks) - n_tail
    h2d = n_main * t["X"] + n_tail * u["X"]
    d2h = n_main * (t["d_addr"] + t["WB"]) + n_tail * (u["d_addr"] + u["WB"])
    return h2d, d2h


def _scaled_shared_total(hw, chunks: TemplatedChunks, pipe_cfg: PipelineConfig, k: int):
    """One shard's closed form under round-robin service on a shared port.

    K symmetric shards start together, so their H2D requests interleave
    in near-lockstep on the root-complex FIFO: a shard's data transfer is
    served once every K slots, i.e. with effective duration ``K * X``.
    Closing the ring recurrence with that service time captures both the
    latency throttling of compute-bound shards (the ring stalls waiting
    for slow transfers) and — via the X-occupancy bound — the port's
    total H2D residency.
    """
    pcie = hw.pcie
    t = chunk_durations(chunks.template, pcie, pipe_cfg.sync_overhead)
    t["X"] *= k
    if chunks.tail is not None:
        u = chunk_durations(chunks.tail, pcie, pipe_cfg.sync_overhead)
        u["X"] *= k
        n_tail = chunks.passes
    else:
        u = t
        n_tail = 0
    total, _bounds, _occ = pipeline_bounds(
        t,
        u,
        n=len(chunks),
        n_tail=n_tail,
        depth=pipe_cfg.ring_depth,
        per_pass=chunks.per_pass,
        passes=chunks.passes,
        cpu_workers=pipe_cfg.cpu_workers,
    )
    return float(total)


def _predict_multigpu(
    app: Application,
    data: AppData,
    config: EngineConfig,
    eng: MultiGpuBigKernelEngine,
) -> PredictedRun:
    """Price a sharded run: per-shard pipeline bounds + fabric bounds.

    Dedicated links: shards share nothing in the DES, so the slowest
    shard's closed form *is* the pipeline total (exact, as for single-GPU
    bigkernel). A shared root-complex port adds two contention estimates:
    each shard's ring closed with K-scaled transfer service
    (:func:`_scaled_shared_total`) and a D2H-channel residency bound
    (address ships + write-backs of *all* shards serialize on the one
    D2H port). The kernel-launch overhead and the closed-form merge cost
    (identical to the engine's ``_merge_time``) are added on top.
    """
    hw = config.hardware
    plans, _ = eng._shard_plan(app, data, config)
    per_shard = []
    for g, _su, sched in plans:
        total_g, bounds_g, occ_g = predict_templated(hw, sched.chunks, sched.pipe_cfg)
        per_shard.append((g, total_g, bounds_g, occ_g, sched))

    slowest = max(per_shard, key=lambda p: p[1])
    total = slowest[1]
    bounds = {f"shard{slowest[0]}:{k}": v for k, v in slowest[2].items()}
    occupancy: Dict[str, float] = {}
    for _g, _t, _b, occ_g, _s in per_shard:
        for k, v in occ_g.items():
            occupancy[k] = occupancy.get(k, 0.0) + v

    n_shards = len(per_shard)
    if eng.shared_link and n_shards > 1:
        pcie = hw.pcie
        shared_h2d = max(
            _scaled_shared_total(hw, sched.chunks, sched.pipe_cfg, n_shards)
            for _g, _t, _b, _o, sched in per_shard
        )
        bounds["shared_port_h2d"] = shared_h2d
        total = max(total, shared_h2d)
        d2h_sum = sum(
            _link_legs(sched.chunks, pcie, sched.pipe_cfg.sync_overhead)[1]
            for _g, _t, _b, _o, sched in per_shard
        )
        if d2h_sum > 0.0:
            # fill: the first address ship waits for chunk 0's addr-gen
            sched0 = per_shard[0][4]
            t0 = chunk_durations(
                sched0.chunks.template, pcie, sched0.pipe_cfg.sync_overhead
            )
            shared_d2h = (t0["A"] - t0["d_addr"]) + d2h_sum
            bounds["shared_port_d2h"] = shared_d2h
            total = max(total, shared_d2h)

    total += hw.gpu.kernel_launch_overhead
    total += eng._merge_time(app, data, hw, n_shards)
    n_chunks = sum(len(sched.chunks) for _g, _t, _b, _o, sched in per_shard)
    return _finish_pipelined(eng.name, app.name, total, bounds, occupancy, n_chunks)


def _gpu_double_chunks(app, data, config) -> TemplatedChunks:
    """Rebuild gpu_double's schedule exactly as the engine prices it."""
    hw = config.hardware
    profile = app.access_profile(data)
    gpu = GpuDevice(hw.gpu)
    cpu = CpuDevice(hw.cpu)
    units = app.n_units(data)
    upc, _ = chunk_plan(units, config.chunk_bytes, profile.record_bytes)
    threads = config.total_compute_threads

    def costs(u: int) -> ChunkWork:
        raw = u * profile.record_bytes
        cost = kernel_chunk_cost(profile, u, coalesced=False)
        t_comp = gpu.stage_time(cost, threads) + gpu.spec.kernel_launch_overhead
        wb = u * profile.write_bytes_per_record
        return ChunkWork(
            index=0,
            t_addr_gen=0.0,
            addr_bytes_d2h=0,
            t_assembly=cpu.staging_copy_time(raw),
            xfer_bytes=int(raw),
            t_compute=t_comp,
            write_bytes=int(wb),
            t_scatter=cpu.staging_copy_time(wb) if wb > 0 else 0.0,
        )

    n_full, rem = divmod(units, upc)
    if rem == 0:
        return TemplatedChunks(costs(upc), n_full, None, profile.passes)
    if n_full == 0:
        return TemplatedChunks(costs(rem), 1, None, profile.passes)
    return TemplatedChunks(costs(upc), n_full, costs(rem), profile.passes)


def predict_run(
    app: Application,
    data: AppData,
    config: Optional[EngineConfig] = None,
    engine: Union[str, Engine] = "bigkernel",
) -> PredictedRun:
    """Predict ``engine.run(app, data, config).sim_time`` without running it."""
    config = config if config is not None else EngineConfig()
    eng = resolve_engine(engine)
    hw = config.hardware
    profile = app.access_profile(data)
    units = app.n_units(data)
    cpu = CpuDevice(hw.cpu)

    if eng.name == "cpu_serial" or eng.name == "cpu_mt":
        n_ops = units * profile.cpu_ops_per_record * profile.passes
        nbytes = units * profile.record_bytes * profile.passes
        if eng.name == "cpu_serial":
            compute_t = n_ops / hw.cpu.peak_ops_per_thread
            mem_t = nbytes / hw.cpu.per_thread_bandwidth
        else:
            cores_used = min(hw.cpu.threads, hw.cpu.cores)
            compute_t = n_ops / (
                hw.cpu.peak_ops_per_thread * cores_used * hw.cpu.mt_efficiency
            )
            agg_bw = min(
                hw.cpu.mem_bandwidth, hw.cpu.threads * hw.cpu.per_thread_bandwidth
            )
            mem_t = nbytes / agg_bw
        total = max(compute_t, mem_t)
        occupancy = {"cpu_compute": compute_t, "cpu_memory": mem_t}
        return PredictedRun(
            engine=eng.name,
            app=app.name,
            sim_time=total,
            stage_occupancy=occupancy,
            bottleneck=max(occupancy, key=occupancy.get),
            overlap_fraction=0.0,
            bounds=dict(occupancy),
            binding_bound=max(occupancy, key=occupancy.get),
            n_chunks=1,
        )

    if eng.name == "gpu_single":
        gpu = GpuDevice(hw.gpu)
        upc, _ = chunk_plan(units, config.chunk_bytes, profile.record_bytes)
        threads = config.total_compute_threads

        def costs(u: int):
            raw = u * profile.record_bytes
            comm = cpu.staging_copy_time(raw) + hw.pcie.transfer_time(raw, pinned=True)
            cost = kernel_chunk_cost(profile, u, coalesced=False)
            comp = gpu.stage_time(cost, threads) + gpu.spec.kernel_launch_overhead
            wb = u * profile.write_bytes_per_record
            if wb > 0:
                comm += hw.pcie.transfer_time(wb, pinned=True)
                comm += cpu.staging_copy_time(wb)
            return comm, comp

        n_full, rem = divmod(units, upc)
        comm_f, comp_f = costs(upc) if n_full else (0.0, 0.0)
        comm_t, comp_t = costs(rem) if rem else (0.0, 0.0)
        comm = profile.passes * (n_full * comm_f + comm_t)
        comp = profile.passes * (n_full * comp_f + comp_t)
        total = comm + comp
        occupancy = {"data_transfer": comm, "compute": comp}
        return PredictedRun(
            engine=eng.name,
            app=app.name,
            sim_time=total,
            stage_occupancy=occupancy,
            bottleneck=max(occupancy, key=occupancy.get),
            overlap_fraction=0.0,
            bounds={"serial_chain": total},
            binding_bound="serial_chain",
            n_chunks=profile.passes * (n_full + (1 if rem else 0)),
        )

    if eng.name == "gpu_double":
        chunks = _gpu_double_chunks(app, data, config)
        pipe_cfg = PipelineConfig(ring_depth=2, cpu_workers=1)
        total, bounds, occupancy = predict_templated(hw, chunks, pipe_cfg)
        return _finish_pipelined(
            eng.name, app.name, total, bounds, occupancy, len(chunks)
        )

    if isinstance(eng, MultiGpuBigKernelEngine):
        return _predict_multigpu(app, data, config, eng)

    # bigkernel (any feature set): price the engine's own resolved schedule
    sched = eng._schedule(app, data, config)
    total, bounds, occupancy = predict_templated(hw, sched.chunks, sched.pipe_cfg)
    total += hw.gpu.kernel_launch_overhead
    return _finish_pipelined(
        eng.name, app.name, total, bounds, occupancy, len(sched.chunks)
    )


#: accounting of :func:`predicted_sim_time` memoization — the online
#: pricing loop of the serving layer asks per enqueued job, so hits should
#: dominate on any repeat-heavy trace
PREDICT_RUN_STATS = {"requests": 0, "hits": 0, "misses": 0}

_PREDICT_CACHE: "OrderedDict[tuple, float]" = OrderedDict()
_PREDICT_CACHE_MAX = 512


def predicted_sim_time(
    app: Application,
    data: AppData,
    config: Optional[EngineConfig] = None,
    engine: Union[str, Engine] = "bigkernel",
) -> float:
    """:func:`predict_run`'s ``sim_time``, memoized per compatibility key.

    The key is the content identity of the run — dataset content key,
    engine spec (name + variant), frozen config — exactly what the serving
    layer's batcher calls a compatibility class plus the per-job geometry.
    Raises :class:`ReproError` for engines with no closed-form model (the
    UVM family), same as :func:`predict_run`.
    """
    from repro.apps.base import dataset_key
    from repro.bench.jobs import engine_to_spec

    config = config if config is not None else EngineConfig()
    eng = resolve_engine(engine)
    PREDICT_RUN_STATS["requests"] += 1
    spec = engine_to_spec(eng)
    key = None
    if spec is not None:
        key = (app.name, dataset_key(data), spec, config)
        cached = _PREDICT_CACHE.get(key)
        if cached is not None:
            PREDICT_RUN_STATS["hits"] += 1
            _PREDICT_CACHE.move_to_end(key)
            return cached
    PREDICT_RUN_STATS["misses"] += 1
    sim_time = predict_run(app, data, config, eng).sim_time
    if key is not None:
        _PREDICT_CACHE[key] = sim_time
        while len(_PREDICT_CACHE) > _PREDICT_CACHE_MAX:
            _PREDICT_CACHE.popitem(last=False)
    return sim_time
