"""BigKernel reproduction library.

Reproduces Mokhtari & Stumm, *BigKernel -- High Performance CPU-GPU
Communication Pipelining for Big Data-style Applications* (IPDPS 2014) on a
simulated heterogeneous substrate: a discrete-event engine (:mod:`repro.sim`),
calibrated GPU/CPU/PCIe cost models (:mod:`repro.hw`), a kernel IR compiler
performing the paper's address-slice and data-buffer transformations
(:mod:`repro.kernelc`), the BigKernel 4/6-stage pipelined runtime
(:mod:`repro.runtime`), the five evaluated execution schemes
(:mod:`repro.engines`), the six benchmark applications (:mod:`repro.apps`),
and the figure/table harnesses (:mod:`repro.bench`).

Quickstart::

    from repro.apps import KMeansApp
    from repro.engines import BigKernelEngine, CpuSerialEngine

    app = KMeansApp()
    data = app.generate(n_bytes=2_000_000, seed=0)
    result = BigKernelEngine().run(app, data)
    reference = CpuSerialEngine().run(app, data)
    assert app.outputs_equal(result.output, reference.output)
    print(result.sim_time, reference.sim_time / result.sim_time, "x speedup")
"""

__version__ = "1.0.0"
