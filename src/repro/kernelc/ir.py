"""Kernel IR node definitions.

A :class:`Kernel` is a per-thread program over three kinds of state:

* **mapped arrays** — the arbitrarily-large streaming structures BigKernel
  manages (``streamingMap``-ed); accessed via :class:`Load`/:class:`Store`
  of a :class:`MappedRef` (record index + field).
* **resident arrays** — structures explicitly copied to GPU memory the
  traditional way (cluster centroids, dictionaries, output tables);
  accessed via :class:`ResidentLoad`/:class:`ResidentStore`/:class:`AtomicAdd`.
* **locals/params** — scalars.

The implicit thread context provides ``tid``, ``start`` and ``end`` — the
virtual thread id and its record range — mirroring the
``myParticleStartIndex``/``EndIndex`` idiom of the paper's Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Union

import numpy as np

from repro.errors import IRValidationError

# ---------------------------------------------------------------------------
# Record schemas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FieldSpec:
    """One field of a fixed-length record."""

    name: str
    dtype: str  # numpy dtype string, e.g. "f8", "i4", "u1"
    offset: int

    @property
    def nbytes(self) -> int:
        return np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class RecordSchema:
    """Byte layout of the records in a mapped array.

    ``fields`` must tile (a subset of) a ``record_size``-byte record without
    overlap. Variable-length byte data (text) uses a single ``u1`` field of
    record_size 1, i.e. the array is addressed byte-wise.
    """

    fields: tuple[FieldSpec, ...]
    record_size: int

    def __post_init__(self):
        seen = set()
        for f in self.fields:
            if f.name in seen:
                raise IRValidationError(f"duplicate field {f.name!r}")
            seen.add(f.name)
            if f.offset < 0 or f.offset + f.nbytes > self.record_size:
                raise IRValidationError(
                    f"field {f.name!r} [{f.offset}, {f.offset + f.nbytes}) "
                    f"outside record of {self.record_size} bytes"
                )
        spans = sorted((f.offset, f.offset + f.nbytes) for f in self.fields)
        for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
            if e1 > s2:
                raise IRValidationError("record fields overlap")

    def field(self, name: str) -> FieldSpec:
        for f in self.fields:
            if f.name == name:
                return f
        raise IRValidationError(f"no field {name!r} in schema")

    @property
    def field_names(self) -> tuple[str, ...]:
        return tuple(f.name for f in self.fields)

    def numpy_dtype(self) -> np.dtype:
        """Structured dtype with explicit offsets and itemsize."""
        return np.dtype(
            {
                "names": [f.name for f in self.fields],
                "formats": [f.dtype for f in self.fields],
                "offsets": [f.offset for f in self.fields],
                "itemsize": self.record_size,
            }
        )

    @staticmethod
    def packed(pairs: Sequence[tuple[str, str]], record_size: Optional[int] = None) -> "RecordSchema":
        """Build a schema by packing fields back to back."""
        fields = []
        off = 0
        for name, dtype in pairs:
            fields.append(FieldSpec(name, dtype, off))
            off += np.dtype(dtype).itemsize
        return RecordSchema(tuple(fields), record_size if record_size is not None else off)

    @staticmethod
    def bytes_schema() -> "RecordSchema":
        """Byte-addressed schema for variable-length (text) data."""
        return RecordSchema((FieldSpec("byte", "u1", 0),), 1)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


class Expr:
    """Base class for IR expressions."""

    def children(self) -> tuple["Expr", ...]:
        return ()


@dataclass(frozen=True)
class Const(Expr):
    value: Union[int, float, bool]


@dataclass(frozen=True)
class Var(Expr):
    """A kernel-local variable (including the builtins tid/start/end)."""

    name: str


@dataclass(frozen=True)
class Param(Expr):
    """A scalar kernel parameter (bound at launch)."""

    name: str


@dataclass(frozen=True)
class BinOp(Expr):
    op: str
    lhs: Expr
    rhs: Expr

    def children(self):
        return (self.lhs, self.rhs)


@dataclass(frozen=True)
class UnOp(Expr):
    op: str
    operand: Expr

    def children(self):
        return (self.operand,)


@dataclass(frozen=True)
class Call(Expr):
    """Call into a named device function (opaque compute, may read resident
    arrays through its closure, never mapped arrays)."""

    fn: str
    args: tuple[Expr, ...]

    def children(self):
        return self.args


@dataclass(frozen=True)
class MappedRef(Expr):
    """The *address* of ``array[index].field`` in a mapped structure."""

    array: str
    index: Expr
    field_name: str

    def children(self):
        return (self.index,)


@dataclass(frozen=True)
class Load(Expr):
    """Dereference of a mapped address — the accesses BigKernel rewrites."""

    ref: MappedRef

    def children(self):
        return (self.ref,)


@dataclass(frozen=True)
class ResidentLoad(Expr):
    """Read of a GPU-resident (non-mapped) array element."""

    array: str
    index: Expr

    def children(self):
        return (self.index,)


@dataclass(frozen=True)
class DataBufLoad(Expr):
    """Post-transform node: pop the next prefetched value (Section III's
    ``dataBuf[counter++][tid]``). Carries the original ref for tracing."""

    original: MappedRef


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


class Stmt:
    """Base class for IR statements."""


@dataclass(frozen=True)
class Assign(Stmt):
    var: str
    value: Expr


@dataclass(frozen=True)
class Store(Stmt):
    """Write to a mapped structure (handled via write buffers, Section III)."""

    ref: MappedRef
    value: Expr


@dataclass(frozen=True)
class WriteBufStore(Stmt):
    """Post-transform node: push the value into the GPU-side write buffer."""

    original: MappedRef
    value: Expr


@dataclass(frozen=True)
class EmitAddress(Stmt):
    """Post-slice node: record a mapped access's address instead of making it."""

    ref: MappedRef
    is_write: bool = False


@dataclass(frozen=True)
class ResidentStore(Stmt):
    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class AtomicAdd(Stmt):
    """Atomic accumulation into a resident array (hash tables, histograms)."""

    array: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()


@dataclass(frozen=True)
class For(Stmt):
    """``for var in range(start, end, step)`` over scalar expressions."""

    var: str
    start: Expr
    end: Expr
    body: tuple[Stmt, ...]
    step: Expr = Const(1)


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class Break(Stmt):
    pass


@dataclass(frozen=True)
class ExprStmt(Stmt):
    """Evaluate an expression for its effects (device-function calls)."""

    expr: Expr


# ---------------------------------------------------------------------------
# Kernel container
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Kernel:
    """A per-thread kernel program.

    ``mapped`` maps array name -> :class:`RecordSchema`; ``resident`` is the
    set of resident array names; ``params`` the scalar parameter names;
    ``device_functions`` the names the :class:`Call` nodes may reference.
    ``form`` tags which transformation produced this kernel.
    """

    name: str
    body: tuple[Stmt, ...]
    mapped: dict = field(default_factory=dict)
    resident: tuple[str, ...] = ()
    params: tuple[str, ...] = ()
    device_functions: tuple[str, ...] = ()
    form: str = "original"  # "original" | "addrgen" | "databuf"

    def schema(self, array: str) -> RecordSchema:
        try:
            return self.mapped[array]
        except KeyError:
            raise IRValidationError(f"{array!r} is not a mapped array of {self.name}")


def walk_exprs(expr: Expr):
    """Yield ``expr`` and every sub-expression, depth first."""
    yield expr
    for c in expr.children():
        yield from walk_exprs(c)


def stmt_exprs(stmt: Stmt) -> tuple[Expr, ...]:
    """Direct expressions of one statement (not recursing into bodies)."""
    if isinstance(stmt, Assign):
        return (stmt.value,)
    if isinstance(stmt, Store):
        return (stmt.ref, stmt.value)
    if isinstance(stmt, WriteBufStore):
        return (stmt.value,)
    if isinstance(stmt, EmitAddress):
        return (stmt.ref,)
    if isinstance(stmt, (ResidentStore, AtomicAdd)):
        return (stmt.index, stmt.value)
    if isinstance(stmt, If):
        return (stmt.cond,)
    if isinstance(stmt, For):
        return (stmt.start, stmt.end, stmt.step)
    if isinstance(stmt, While):
        return (stmt.cond,)
    if isinstance(stmt, ExprStmt):
        return (stmt.expr,)
    return ()


def stmt_bodies(stmt: Stmt) -> tuple[tuple[Stmt, ...], ...]:
    """Nested statement lists of one statement."""
    if isinstance(stmt, If):
        return (stmt.then_body, stmt.else_body)
    if isinstance(stmt, (For, While)):
        return (stmt.body,)
    return ()


def walk_stmts(body: Sequence[Stmt]):
    """Yield every statement in ``body``, depth first, in program order."""
    for s in body:
        yield s
        for b in stmt_bodies(s):
            yield from walk_stmts(b)
