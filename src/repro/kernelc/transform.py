"""The computation-kernel transformation (paper Section III, stage 4).

``make_databuf_kernel`` rewrites every mapped access to use the prefetched
data buffer: reads become :class:`DataBufLoad` (the ``dataBuf[counter++]``
idiom) and writes become :class:`WriteBufStore` into the GPU-side write
buffer. The rest of the kernel — including all resident-array work and
device-function calls — is untouched.

The same transformation serves the *fallback* path (unsliceable kernels,
where all data is transferred): only the interpreter's buffer semantics
differ (offset-indexed window instead of pop-in-order queue).
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import CompilerError
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    Const,
    DataBufLoad,
    Expr,
    ExprStmt,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    ResidentLoad,
    ResidentStore,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    WriteBufStore,
)


def _rewrite_expr(expr: Expr) -> Expr:
    if isinstance(expr, Load):
        ref = expr.ref
        new_index = _rewrite_expr(ref.index)
        return DataBufLoad(MappedRef(ref.array, new_index, ref.field_name))
    if isinstance(expr, (Const, Var, Param, DataBufLoad)):
        return expr
    if isinstance(expr, BinOp):
        return BinOp(expr.op, _rewrite_expr(expr.lhs), _rewrite_expr(expr.rhs))
    if isinstance(expr, UnOp):
        return UnOp(expr.op, _rewrite_expr(expr.operand))
    if isinstance(expr, Call):
        return Call(expr.fn, tuple(_rewrite_expr(a) for a in expr.args))
    if isinstance(expr, ResidentLoad):
        return ResidentLoad(expr.array, _rewrite_expr(expr.index))
    if isinstance(expr, MappedRef):
        # A bare MappedRef outside Load/Store would be an address leak.
        raise CompilerError("bare MappedRef outside Load/Store cannot be rewritten")
    raise CompilerError(f"unhandled expression kind {type(expr).__name__}")


def _rewrite_body(body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
    out: list[Stmt] = []
    for stmt in body:
        if isinstance(stmt, Assign):
            out.append(Assign(stmt.var, _rewrite_expr(stmt.value)))
        elif isinstance(stmt, Store):
            ref = stmt.ref
            new_ref = MappedRef(ref.array, _rewrite_expr(ref.index), ref.field_name)
            out.append(WriteBufStore(new_ref, _rewrite_expr(stmt.value)))
        elif isinstance(stmt, ResidentStore):
            out.append(
                ResidentStore(
                    stmt.array, _rewrite_expr(stmt.index), _rewrite_expr(stmt.value)
                )
            )
        elif isinstance(stmt, AtomicAdd):
            out.append(
                AtomicAdd(
                    stmt.array, _rewrite_expr(stmt.index), _rewrite_expr(stmt.value)
                )
            )
        elif isinstance(stmt, If):
            out.append(
                If(
                    _rewrite_expr(stmt.cond),
                    _rewrite_body(stmt.then_body),
                    _rewrite_body(stmt.else_body),
                )
            )
        elif isinstance(stmt, For):
            out.append(
                For(
                    stmt.var,
                    _rewrite_expr(stmt.start),
                    _rewrite_expr(stmt.end),
                    _rewrite_body(stmt.body),
                    _rewrite_expr(stmt.step),
                )
            )
        elif isinstance(stmt, While):
            out.append(While(_rewrite_expr(stmt.cond), _rewrite_body(stmt.body)))
        elif isinstance(stmt, (Break, ExprStmt)):
            if isinstance(stmt, ExprStmt):
                out.append(ExprStmt(_rewrite_expr(stmt.expr)))
            else:
                out.append(stmt)
        else:  # pragma: no cover - future node kinds
            raise CompilerError(f"unhandled statement kind {type(stmt).__name__}")
    return tuple(out)


def make_databuf_kernel(kernel: Kernel) -> Kernel:
    """Derive the computation kernel consuming the prefetch data buffer."""
    if kernel.form != "original":
        raise CompilerError(f"can only transform an original kernel, got {kernel.form!r}")
    return replace(kernel, body=_rewrite_body(kernel.body), form="databuf")
