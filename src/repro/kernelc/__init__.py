"""Kernel IR compiler.

BigKernel's programming-model claim rests on two *straight-forward compiler
transformations* (paper Section III): from one source kernel it derives

1. the **address-generation kernel** — the original with every statement
   removed except control flow, address arithmetic, and the memory accesses
   themselves, the latter rewritten to record their target addresses; and
2. the **computation kernel** — the original with mapped-memory accesses
   rewritten to consume the prefetched data buffer in access order.

This package implements those transformations on a small kernel IR, plus an
interpreter that can run a kernel in any of the three forms against
NumPy-backed data. Tests assert the paper's key soundness property: the
address stream emitted by (1) gathers exactly the bytes that make (2)
produce the same output as the original kernel.
"""

from repro.kernelc.ir import (
    # expressions
    Const,
    DataBufLoad,
    Var,
    Param,
    BinOp,
    UnOp,
    Call,
    Load,
    Store,
    MappedRef,
    ResidentLoad,
    ResidentStore,
    AtomicAdd,
    # statements
    Assign,
    For,
    While,
    If,
    Break,
    ExprStmt,
    EmitAddress,
    WriteBufStore,
    # containers
    Kernel,
    RecordSchema,
    FieldSpec,
)
from repro.kernelc.analysis import (
    mapped_accesses,
    require_sliceable,
    address_slice_vars,
    has_data_dependent_addressing,
)
from repro.kernelc.slicing import make_addrgen_kernel
from repro.kernelc.transform import make_databuf_kernel
from repro.kernelc.codegen import (
    KernelInterpreter,
    InterpStats,
    ExecutionContext,
    AddressRecord,
)
from repro.kernelc.printer import render_kernel, loc_count
from repro.kernelc.validate import validate_kernel

__all__ = [
    "Const",
    "Var",
    "Param",
    "BinOp",
    "UnOp",
    "Call",
    "Load",
    "Store",
    "MappedRef",
    "ResidentLoad",
    "ResidentStore",
    "AtomicAdd",
    "Assign",
    "For",
    "While",
    "If",
    "Break",
    "ExprStmt",
    "EmitAddress",
    "WriteBufStore",
    "DataBufLoad",
    "Kernel",
    "RecordSchema",
    "FieldSpec",
    "mapped_accesses",
    "require_sliceable",
    "InterpStats",
    "address_slice_vars",
    "has_data_dependent_addressing",
    "make_addrgen_kernel",
    "make_databuf_kernel",
    "KernelInterpreter",
    "ExecutionContext",
    "AddressRecord",
    "render_kernel",
    "loc_count",
    "validate_kernel",
]
