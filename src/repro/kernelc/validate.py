"""Structural validation of kernel IR.

Run before transformation so malformed kernels fail with a pointed message
rather than a mid-interpretation surprise.
"""

from __future__ import annotations

from repro.errors import IRValidationError
from repro.kernelc.analysis import BUILTIN_VARS, expr_loads
from repro.kernelc.ir import (
    Assign,
    Call,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    ResidentLoad,
    ResidentStore,
    AtomicAdd,
    Stmt,
    Store,
    While,
    stmt_bodies,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)


def validate_kernel(kernel: Kernel) -> None:
    """Raise :class:`IRValidationError` on structural problems.

    Checks: mapped/resident/param/device-function references resolve;
    mapped refs use declared fields; loads do not appear inside guard
    expressions (the evaluation-order contract of the slicer); variables
    are defined before use along a conservative straight-line scan.
    """
    _check_references(kernel)
    _check_guard_loads(kernel)
    _check_def_before_use(kernel)


def _check_references(kernel: Kernel) -> None:
    for stmt in walk_stmts(kernel.body):
        for expr in stmt_exprs(stmt):
            for node in walk_exprs(expr):
                if isinstance(node, MappedRef):
                    schema = kernel.mapped.get(node.array)
                    if schema is None:
                        raise IRValidationError(
                            f"mapped array {node.array!r} not declared in "
                            f"kernel {kernel.name!r}"
                        )
                    schema.field(node.field_name)  # raises on unknown field
                elif isinstance(node, ResidentLoad):
                    if node.array not in kernel.resident:
                        raise IRValidationError(
                            f"resident array {node.array!r} not declared"
                        )
                elif isinstance(node, Call):
                    if node.fn not in kernel.device_functions:
                        raise IRValidationError(
                            f"device function {node.fn!r} not declared"
                        )
        if isinstance(stmt, (ResidentStore, AtomicAdd)):
            if stmt.array not in kernel.resident:
                raise IRValidationError(f"resident array {stmt.array!r} not declared")


def _check_guard_loads(kernel: Kernel) -> None:
    for stmt in walk_stmts(kernel.body):
        guards = []
        if isinstance(stmt, If):
            guards.append(stmt.cond)
        elif isinstance(stmt, While):
            guards.append(stmt.cond)
        elif isinstance(stmt, For):
            guards.extend((stmt.start, stmt.end, stmt.step))
        for g in guards:
            if expr_loads(g):
                raise IRValidationError(
                    f"kernel {kernel.name!r} has a mapped Load inside a guard "
                    "expression; assign the loaded value to a local first"
                )


def _collect_defined(body, defined: set[str]) -> None:
    """Conservative: a variable assigned anywhere in the body is 'defined'."""
    for stmt in walk_stmts(body):
        if isinstance(stmt, Assign):
            defined.add(stmt.var)
        elif isinstance(stmt, For):
            defined.add(stmt.var)


def _check_def_before_use(kernel: Kernel) -> None:
    defined: set[str] = set(BUILTIN_VARS)
    _collect_defined(kernel.body, defined)
    from repro.kernelc.ir import Var

    for stmt in walk_stmts(kernel.body):
        for expr in stmt_exprs(stmt):
            for node in walk_exprs(expr):
                if isinstance(node, Var) and node.name not in defined:
                    raise IRValidationError(
                        f"variable {node.name!r} used but never assigned in "
                        f"kernel {kernel.name!r}"
                    )
