"""Kernel interpreter: runs original, addrgen, and databuf kernels.

One evaluator executes all three kernel forms against NumPy-backed state,
so the transformation soundness property — *addrgen's emitted addresses,
gathered and fed to the databuf kernel, reproduce the original kernel's
output* — is checkable end to end on real data.

Evaluation order contract (shared with the slicer): expressions evaluate
depth-first left-to-right; ``Store`` evaluates its value before recording
the write. ``Load`` nodes must not appear inside loop/branch guards (apps
assign loaded values to locals first); the slicer rejects kernels that
violate this via the data-dependence check.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

from repro.errors import BufferOverrun, CompilerError, IRValidationError
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    Const,
    DataBufLoad,
    EmitAddress,
    Expr,
    ExprStmt,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    ResidentLoad,
    ResidentStore,
    Stmt,
    UnOp,
    Var,
    While,
    WriteBufStore,
    Store,
)


@dataclass(frozen=True)
class AddressRecord:
    """One emitted mapped-access address (array-relative byte offset)."""

    array: str
    offset: int
    nbytes: int
    dtype: str
    is_write: bool = False


@dataclass
class ExecutionContext:
    """All state a kernel run touches.

    ``mapped`` holds structured NumPy arrays (one per mapped name) whose
    dtype comes from the :class:`RecordSchema`; ``resident`` holds plain
    arrays or dicts; ``device_fns`` maps names to Python callables invoked
    as ``fn(ctx, *args)``.
    """

    mapped: dict[str, np.ndarray] = field(default_factory=dict)
    resident: dict[str, Any] = field(default_factory=dict)
    params: dict[str, Any] = field(default_factory=dict)
    device_fns: dict[str, Callable] = field(default_factory=dict)


@dataclass
class InterpStats:
    """Work counters the cost models consume."""

    n_ops: int = 0
    n_calls: int = 0
    n_mapped_reads: int = 0
    n_mapped_writes: int = 0
    n_resident_accesses: int = 0
    mapped_read_bytes: int = 0
    mapped_write_bytes: int = 0


class _BreakLoop(Exception):
    pass


class KernelInterpreter:
    """Evaluates one kernel for one virtual thread."""

    def __init__(
        self,
        kernel: Kernel,
        ctx: ExecutionContext,
        max_steps: int = 50_000_000,
    ):
        self.kernel = kernel
        self.ctx = ctx
        #: hard ceiling on executed statements — a diverging ``While`` in a
        #: user kernel fails loudly instead of hanging the interpreter
        self.max_steps = max_steps
        self._steps = 0
        self.stats = InterpStats()
        # addrgen outputs
        self.read_addresses: list[AddressRecord] = []
        self.write_addresses: list[AddressRecord] = []
        # databuf inputs/outputs
        self.data_queue: deque = deque()
        self.write_queue: list[tuple[AddressRecord, Any]] = []
        #: fallback mode: data buffer holds whole per-array byte windows,
        #: reads are offset-indexed instead of popped in order
        self.fallback_windows: dict[str, tuple[int, np.ndarray]] = {}

    # ------------------------------------------------------------------ API
    def run_thread(self, tid: int, start: int, end: int, **extra_vars: Any) -> None:
        """Execute the kernel body for one thread's record range."""
        env: dict[str, Any] = {"tid": tid, "start": start, "end": end}
        env.update(extra_vars)
        try:
            self._exec_body(self.kernel.body, env)
        except _BreakLoop:
            raise CompilerError("break outside of a loop")

    def load_data(self, values) -> None:
        """Fill the data queue for a databuf-form run (in emission order)."""
        self.data_queue = deque(values)

    # ------------------------------------------------------------ addresses
    def _ref_record(self, ref: MappedRef, env: dict, is_write: bool) -> AddressRecord:
        schema = self.kernel.schema(ref.array)
        fspec = schema.field(ref.field_name)
        index = self._eval(ref.index, env)
        offset = int(index) * schema.record_size + fspec.offset
        return AddressRecord(ref.array, offset, fspec.nbytes, fspec.dtype, is_write)

    # ----------------------------------------------------------- evaluation
    def _eval(self, expr: Expr, env: dict) -> Any:
        if isinstance(expr, Const):
            return expr.value
        if isinstance(expr, Var):
            try:
                return env[expr.name]
            except KeyError:
                raise IRValidationError(f"undefined variable {expr.name!r}")
        if isinstance(expr, Param):
            try:
                return self.ctx.params[expr.name]
            except KeyError:
                raise IRValidationError(f"unbound parameter {expr.name!r}")
        if isinstance(expr, BinOp):
            lhs = self._eval(expr.lhs, env)
            rhs = self._eval(expr.rhs, env)
            self.stats.n_ops += 1
            return _BINOPS[expr.op](lhs, rhs)
        if isinstance(expr, UnOp):
            v = self._eval(expr.operand, env)
            self.stats.n_ops += 1
            return _UNOPS[expr.op](v)
        if isinstance(expr, Call):
            args = [self._eval(a, env) for a in expr.args]
            self.stats.n_calls += 1
            try:
                fn = self.ctx.device_fns[expr.fn]
            except KeyError:
                raise IRValidationError(f"unknown device function {expr.fn!r}")
            return fn(self.ctx, *args)
        if isinstance(expr, Load):
            rec = self._ref_record(expr.ref, env, is_write=False)
            self.stats.n_mapped_reads += 1
            self.stats.mapped_read_bytes += rec.nbytes
            arr = self.ctx.mapped[rec.array]
            index = rec.offset // arr.dtype.itemsize
            # Python scalars: kernel arithmetic is width-unbounded (the
            # modelled GPU registers are 32/64-bit; apps apply explicit
            # moduli), so narrow NumPy dtypes must not leak in.
            return arr[expr.ref.field_name][index].item()
        if isinstance(expr, DataBufLoad):
            rec = self._ref_record(expr.original, env, is_write=False)
            self.stats.n_mapped_reads += 1
            self.stats.mapped_read_bytes += rec.nbytes
            if rec.array in self.fallback_windows:
                base, window = self.fallback_windows[rec.array]
                lo = rec.offset - base
                if lo < 0 or lo + rec.nbytes > window.nbytes:
                    raise BufferOverrun(
                        f"fallback window miss: [{lo}, {lo + rec.nbytes}) of "
                        f"{window.nbytes}-byte window for {rec.array!r}"
                    )
                raw = window[lo : lo + rec.nbytes]
                return raw.view(rec.dtype)[0].item()
            if not self.data_queue:
                raise BufferOverrun(
                    "data buffer exhausted: computation consumed more values "
                    "than the address-generation stage emitted"
                )
            value = self.data_queue.popleft()
            return value.item() if isinstance(value, np.generic) else value
        if isinstance(expr, ResidentLoad):
            idx = self._eval(expr.index, env)
            self.stats.n_resident_accesses += 1
            value = self.ctx.resident[expr.array][int(idx)]
            return value.item() if isinstance(value, np.generic) else value
        if isinstance(expr, MappedRef):
            raise CompilerError("bare MappedRef evaluated; wrap in Load/Store")
        raise CompilerError(f"unhandled expression kind {type(expr).__name__}")

    # ------------------------------------------------------------ execution
    def _exec_body(self, body: tuple[Stmt, ...], env: dict) -> None:
        for stmt in body:
            self._exec(stmt, env)

    def _exec(self, stmt: Stmt, env: dict) -> None:
        self._steps += 1
        if self._steps > self.max_steps:
            raise CompilerError(
                f"kernel {self.kernel.name!r} exceeded {self.max_steps} "
                "interpreted statements — diverging loop?"
            )
        if isinstance(stmt, Assign):
            env[stmt.var] = self._eval(stmt.value, env)
        elif isinstance(stmt, Store):
            value = self._eval(stmt.value, env)
            rec = self._ref_record(stmt.ref, env, is_write=True)
            self.stats.n_mapped_writes += 1
            self.stats.mapped_write_bytes += rec.nbytes
            arr = self.ctx.mapped[rec.array]
            index = rec.offset // arr.dtype.itemsize
            arr[stmt.ref.field_name][index] = value
        elif isinstance(stmt, WriteBufStore):
            value = self._eval(stmt.value, env)
            rec = self._ref_record(stmt.original, env, is_write=True)
            self.stats.n_mapped_writes += 1
            self.stats.mapped_write_bytes += rec.nbytes
            self.write_queue.append((rec, value))
        elif isinstance(stmt, EmitAddress):
            rec = self._ref_record(stmt.ref, env, stmt.is_write)
            if stmt.is_write:
                self.write_addresses.append(rec)
            else:
                self.read_addresses.append(rec)
        elif isinstance(stmt, ResidentStore):
            idx = int(self._eval(stmt.index, env))
            value = self._eval(stmt.value, env)
            self.stats.n_resident_accesses += 1
            self.ctx.resident[stmt.array][idx] = value
        elif isinstance(stmt, AtomicAdd):
            idx = int(self._eval(stmt.index, env))
            value = self._eval(stmt.value, env)
            self.stats.n_resident_accesses += 1
            self.ctx.resident[stmt.array][idx] += value
        elif isinstance(stmt, If):
            if self._eval(stmt.cond, env):
                self._exec_body(stmt.then_body, env)
            else:
                self._exec_body(stmt.else_body, env)
        elif isinstance(stmt, For):
            start = int(self._eval(stmt.start, env))
            end = int(self._eval(stmt.end, env))
            step = int(self._eval(stmt.step, env))
            i = start
            try:
                while (i < end) if step > 0 else (i > end):
                    env[stmt.var] = i
                    self._exec_body(stmt.body, env)
                    # the loop variable may be advanced inside the body
                    i = env[stmt.var] + step
            except _BreakLoop:
                pass
        elif isinstance(stmt, While):
            try:
                while self._eval(stmt.cond, env):
                    self._exec_body(stmt.body, env)
            except _BreakLoop:
                pass
        elif isinstance(stmt, Break):
            raise _BreakLoop()
        elif isinstance(stmt, ExprStmt):
            self._eval(stmt.expr, env)
        else:  # pragma: no cover - future node kinds
            raise CompilerError(f"unhandled statement kind {type(stmt).__name__}")


_BINOPS: dict[str, Callable[[Any, Any], Any]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "and": lambda a, b: bool(a) and bool(b),
    "or": lambda a, b: bool(a) or bool(b),
    "&": lambda a, b: a & b,
    "|": lambda a, b: a | b,
    "^": lambda a, b: a ^ b,
    "<<": lambda a, b: a << b,
    ">>": lambda a, b: a >> b,
    "min": min,
    "max": max,
}

_UNOPS: dict[str, Callable[[Any], Any]] = {
    "-": lambda a: -a,
    "not": lambda a: not a,
    "~": lambda a: ~a,
}
