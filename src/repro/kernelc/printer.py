"""Pretty-printer: renders kernel IR as pseudo-CUDA source.

Used for documentation/debugging and for reproducing the paper's
footnote-1 observation that the generated BigKernel is much larger than the
source kernel it came from (``loc_count`` of original vs. transformed).
"""

from __future__ import annotations

from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    Const,
    DataBufLoad,
    EmitAddress,
    Expr,
    ExprStmt,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    ResidentLoad,
    ResidentStore,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    WriteBufStore,
)


def render_expr(expr: Expr) -> str:
    if isinstance(expr, Const):
        return repr(expr.value)
    if isinstance(expr, Var):
        return expr.name
    if isinstance(expr, Param):
        return expr.name
    if isinstance(expr, BinOp):
        if expr.op in ("min", "max"):
            return f"{expr.op}({render_expr(expr.lhs)}, {render_expr(expr.rhs)})"
        return f"({render_expr(expr.lhs)} {expr.op} {render_expr(expr.rhs)})"
    if isinstance(expr, UnOp):
        return f"({expr.op}{render_expr(expr.operand)})"
    if isinstance(expr, Call):
        return f"{expr.fn}({', '.join(render_expr(a) for a in expr.args)})"
    if isinstance(expr, MappedRef):
        return f"&{expr.array}[{render_expr(expr.index)}].{expr.field_name}"
    if isinstance(expr, Load):
        return render_expr(expr.ref)[1:]  # drop the '&'
    if isinstance(expr, DataBufLoad):
        return f"dataBuf[counter++][tid] /* {expr.original.array}.{expr.original.field_name} */"
    if isinstance(expr, ResidentLoad):
        return f"{expr.array}[{render_expr(expr.index)}]"
    return f"<{type(expr).__name__}>"


def _render_body(body: tuple[Stmt, ...], indent: int, out: list[str]) -> None:
    pad = "    " * indent
    for stmt in body:
        if isinstance(stmt, Assign):
            out.append(f"{pad}{stmt.var} = {render_expr(stmt.value)};")
        elif isinstance(stmt, Store):
            out.append(f"{pad}{render_expr(stmt.ref)[1:]} = {render_expr(stmt.value)};")
        elif isinstance(stmt, WriteBufStore):
            out.append(
                f"{pad}writeBuf[wcounter++][tid] = {render_expr(stmt.value)};"
                f" /* -> {stmt.original.array}.{stmt.original.field_name} */"
            )
        elif isinstance(stmt, EmitAddress):
            buf = "writeAddrBuf" if stmt.is_write else "addrBuf"
            out.append(f"{pad}{buf}[counter++][tid] = {render_expr(stmt.ref)};")
        elif isinstance(stmt, ResidentStore):
            out.append(
                f"{pad}{stmt.array}[{render_expr(stmt.index)}] = "
                f"{render_expr(stmt.value)};"
            )
        elif isinstance(stmt, AtomicAdd):
            out.append(
                f"{pad}atomicAdd(&{stmt.array}[{render_expr(stmt.index)}], "
                f"{render_expr(stmt.value)});"
            )
        elif isinstance(stmt, If):
            out.append(f"{pad}if ({render_expr(stmt.cond)}) {{")
            _render_body(stmt.then_body, indent + 1, out)
            if stmt.else_body:
                out.append(f"{pad}}} else {{")
                _render_body(stmt.else_body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, For):
            out.append(
                f"{pad}for ({stmt.var} = {render_expr(stmt.start)}; "
                f"{stmt.var} < {render_expr(stmt.end)}; "
                f"{stmt.var} += {render_expr(stmt.step)}) {{"
            )
            _render_body(stmt.body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, While):
            out.append(f"{pad}while ({render_expr(stmt.cond)}) {{")
            _render_body(stmt.body, indent + 1, out)
            out.append(f"{pad}}}")
        elif isinstance(stmt, Break):
            out.append(f"{pad}break;")
        elif isinstance(stmt, ExprStmt):
            out.append(f"{pad}{render_expr(stmt.expr)};")
        else:  # pragma: no cover
            out.append(f"{pad}<{type(stmt).__name__}>;")


def render_kernel(kernel: Kernel) -> str:
    """Render the whole kernel as pseudo-CUDA text."""
    lines = [
        f"// form: {kernel.form}",
        f"__global__ void {kernel.name}({', '.join(kernel.params)}) {{",
    ]
    _render_body(kernel.body, 1, lines)
    lines.append("}")
    return "\n".join(lines)


def loc_count(kernel: Kernel) -> int:
    """Non-empty source-line count of the rendered kernel."""
    return sum(1 for line in render_kernel(kernel).splitlines() if line.strip())
