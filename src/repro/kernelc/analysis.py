"""Dataflow analysis for the address-generation slice.

The slicer must keep exactly (paper Section III): statements contributing to
control flow around mapped accesses, statements contributing to the address
arithmetic of mapped accesses, and the accesses themselves. This module
computes the variable set those statements define (the *address slice*) and
detects the case the paper's transformation cannot handle — addresses or
control flow depending on mapped *data* — where BigKernel falls back to
transferring everything.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import SlicingError
from repro.kernelc.ir import (
    Assign,
    Call,
    Expr,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Stmt,
    Store,
    Var,
    While,
    stmt_bodies,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)

#: variables every thread has implicitly (Fig. 3's virtual-thread context)
BUILTIN_VARS = frozenset({"tid", "start", "end", "num_threads"})


def expr_vars(expr: Expr) -> set[str]:
    """Names of all :class:`Var` nodes in ``expr``."""
    return {e.name for e in walk_exprs(expr) if isinstance(e, Var)}


def expr_loads(expr: Expr) -> list[Load]:
    """All mapped loads in ``expr``, in depth-first (evaluation) order."""
    return [e for e in walk_exprs(expr) if isinstance(e, Load)]


def mapped_accesses(kernel: Kernel) -> list[tuple[str, MappedRef]]:
    """Every mapped access in the kernel as ("read"/"write", ref) pairs."""
    out: list[tuple[str, MappedRef]] = []
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, Store):
            for ld in expr_loads(stmt.ref.index) + expr_loads(stmt.value):
                out.append(("read", ld.ref))
            out.append(("write", stmt.ref))
        else:
            for expr in stmt_exprs(stmt):
                for ld in expr_loads(expr):
                    out.append(("read", ld.ref))
    return out


def _contains_mapped_access(stmt: Stmt) -> bool:
    for s in walk_stmts([stmt]):
        if isinstance(s, Store):
            return True
        for expr in stmt_exprs(s):
            if expr_loads(expr):
                return True
            if any(isinstance(e, MappedRef) for e in walk_exprs(expr)):
                return True
    return False


def _index_exprs(kernel: Kernel) -> list[Expr]:
    """Index expressions of every mapped reference."""
    out: list[Expr] = []
    for stmt in walk_stmts(kernel.body):
        for expr in stmt_exprs(stmt):
            for node in walk_exprs(expr):
                if isinstance(node, MappedRef):
                    out.append(node.index)
    return out


def _assigns_needed(stmt: Stmt, needed: set[str]) -> bool:
    """Does the subtree assign any address-relevant variable?"""
    for s in walk_stmts([stmt]):
        if isinstance(s, Assign) and s.var in needed:
            return True
        if isinstance(s, For) and s.var in needed:
            return True
    return False


def _relevant_guard_exprs(kernel: Kernel, needed: set[str]) -> list[Expr]:
    """Guard expressions controlling mapped accesses *or* assignments to
    address-relevant variables (control dependence of the address slice)."""
    relevant: list[Expr] = []

    def visit(body: Iterable[Stmt]) -> None:
        for stmt in body:
            controls = _contains_mapped_access(stmt) or _assigns_needed(stmt, needed)
            if controls:
                if isinstance(stmt, If):
                    relevant.append(stmt.cond)
                elif isinstance(stmt, For):
                    relevant.extend((stmt.start, stmt.end, stmt.step))
                elif isinstance(stmt, While):
                    relevant.append(stmt.cond)
            for b in stmt_bodies(stmt):
                visit(b)

    visit(kernel.body)
    return relevant


def address_slice_vars(kernel: Kernel) -> set[str]:
    """Fixpoint of variables feeding mapped addresses or their control flow.

    Includes control dependence: the guard of any structure containing a
    mapped access — or an assignment to an already-needed variable — is
    itself address-relevant, transitively.
    """
    needed: set[str] = set()
    for expr in _index_exprs(kernel):
        needed |= expr_vars(expr)

    changed = True
    while changed:
        changed = False
        # control dependence
        for guard in _relevant_guard_exprs(kernel, needed):
            new = expr_vars(guard) - needed
            if new:
                needed |= new
                changed = True
        # data dependence over assignments and loop variables
        for stmt in walk_stmts(kernel.body):
            if isinstance(stmt, Assign) and stmt.var in needed:
                new = expr_vars(stmt.value) - needed
                if new:
                    needed |= new
                    changed = True
            elif isinstance(stmt, For) and stmt.var in needed:
                new = (
                    expr_vars(stmt.start) | expr_vars(stmt.end) | expr_vars(stmt.step)
                ) - needed
                if new:
                    needed |= new
                    changed = True
    return needed


def has_data_dependent_addressing(kernel: Kernel) -> bool:
    """True when mapped data feeds addresses or enclosing control flow.

    This is the paper's unhandled case ("indirections or flow control based
    on application data") — the caller falls back to transferring all data,
    making the scheme equivalent to double-buffering for that structure.
    """

    def tainted(expr: Expr) -> bool:
        # mapped loads or opaque device-function calls cannot be sliced
        return bool(expr_loads(expr)) or any(
            isinstance(e, Call) for e in walk_exprs(expr)
        )

    # Loads/calls directly inside address expressions.
    for expr in _index_exprs(kernel):
        if tainted(expr):
            return True

    needed = address_slice_vars(kernel)

    # Guards controlling the slice.
    for guard in _relevant_guard_exprs(kernel, needed):
        if tainted(guard):
            return True

    # Loads/calls flowing into needed variables through assignments.
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, Assign) and stmt.var in needed:
            if tainted(stmt.value):
                return True
    return False


def require_sliceable(kernel: Kernel) -> None:
    """Raise :class:`SlicingError` when the addr-gen slice cannot be built."""
    if has_data_dependent_addressing(kernel):
        raise SlicingError(
            f"kernel {kernel.name!r} computes mapped addresses (or their "
            "control flow) from mapped data; BigKernel falls back to "
            "transferring all data for it"
        )
