"""Dataflow analysis for the address-generation slice.

The slicer must keep exactly (paper Section III): statements contributing to
control flow around mapped accesses, statements contributing to the address
arithmetic of mapped accesses, and the accesses themselves. This module
computes the variable set those statements define (the *address slice*) and
detects the case the paper's transformation cannot handle — addresses or
control flow depending on mapped *data* — where BigKernel falls back to
transferring everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.errors import SlicingError
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    BinOp,
    Break,
    Call,
    Const,
    DataBufLoad,
    EmitAddress,
    Expr,
    For,
    If,
    Kernel,
    Load,
    MappedRef,
    Param,
    ResidentLoad,
    ResidentStore,
    Stmt,
    Store,
    UnOp,
    Var,
    While,
    WriteBufStore,
    stmt_bodies,
    stmt_exprs,
    walk_exprs,
    walk_stmts,
)

#: variables every thread has implicitly (Fig. 3's virtual-thread context)
BUILTIN_VARS = frozenset({"tid", "start", "end", "num_threads"})


def expr_vars(expr: Expr) -> set[str]:
    """Names of all :class:`Var` nodes in ``expr``."""
    return {e.name for e in walk_exprs(expr) if isinstance(e, Var)}


def expr_loads(expr: Expr) -> list[Load]:
    """All mapped loads in ``expr``, in depth-first (evaluation) order."""
    return [e for e in walk_exprs(expr) if isinstance(e, Load)]


def mapped_accesses(kernel: Kernel) -> list[tuple[str, MappedRef]]:
    """Every mapped access in the kernel as ("read"/"write", ref) pairs."""
    out: list[tuple[str, MappedRef]] = []
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, Store):
            for ld in expr_loads(stmt.ref.index) + expr_loads(stmt.value):
                out.append(("read", ld.ref))
            out.append(("write", stmt.ref))
        else:
            for expr in stmt_exprs(stmt):
                for ld in expr_loads(expr):
                    out.append(("read", ld.ref))
    return out


def _contains_mapped_access(stmt: Stmt) -> bool:
    for s in walk_stmts([stmt]):
        if isinstance(s, Store):
            return True
        for expr in stmt_exprs(s):
            if expr_loads(expr):
                return True
            if any(isinstance(e, MappedRef) for e in walk_exprs(expr)):
                return True
    return False


def _index_exprs(kernel: Kernel) -> list[Expr]:
    """Index expressions of every mapped reference."""
    out: list[Expr] = []
    for stmt in walk_stmts(kernel.body):
        for expr in stmt_exprs(stmt):
            for node in walk_exprs(expr):
                if isinstance(node, MappedRef):
                    out.append(node.index)
    return out


def _assigns_needed(stmt: Stmt, needed: set[str]) -> bool:
    """Does the subtree assign any address-relevant variable?"""
    for s in walk_stmts([stmt]):
        if isinstance(s, Assign) and s.var in needed:
            return True
        if isinstance(s, For) and s.var in needed:
            return True
    return False


def _relevant_guard_exprs(kernel: Kernel, needed: set[str]) -> list[Expr]:
    """Guard expressions controlling mapped accesses *or* assignments to
    address-relevant variables (control dependence of the address slice)."""
    relevant: list[Expr] = []

    def visit(body: Iterable[Stmt]) -> None:
        for stmt in body:
            controls = _contains_mapped_access(stmt) or _assigns_needed(stmt, needed)
            if controls:
                if isinstance(stmt, If):
                    relevant.append(stmt.cond)
                elif isinstance(stmt, For):
                    relevant.extend((stmt.start, stmt.end, stmt.step))
                elif isinstance(stmt, While):
                    relevant.append(stmt.cond)
            for b in stmt_bodies(stmt):
                visit(b)

    visit(kernel.body)
    return relevant


def address_slice_vars(kernel: Kernel) -> set[str]:
    """Fixpoint of variables feeding mapped addresses or their control flow.

    Includes control dependence: the guard of any structure containing a
    mapped access — or an assignment to an already-needed variable — is
    itself address-relevant, transitively.
    """
    needed: set[str] = set()
    for expr in _index_exprs(kernel):
        needed |= expr_vars(expr)

    changed = True
    while changed:
        changed = False
        # control dependence
        for guard in _relevant_guard_exprs(kernel, needed):
            new = expr_vars(guard) - needed
            if new:
                needed |= new
                changed = True
        # data dependence over assignments and loop variables
        for stmt in walk_stmts(kernel.body):
            if isinstance(stmt, Assign) and stmt.var in needed:
                new = expr_vars(stmt.value) - needed
                if new:
                    needed |= new
                    changed = True
            elif isinstance(stmt, For) and stmt.var in needed:
                new = (
                    expr_vars(stmt.start) | expr_vars(stmt.end) | expr_vars(stmt.step)
                ) - needed
                if new:
                    needed |= new
                    changed = True
    return needed


def has_data_dependent_addressing(kernel: Kernel) -> bool:
    """True when mapped data feeds addresses or enclosing control flow.

    This is the paper's unhandled case ("indirections or flow control based
    on application data") — the caller falls back to transferring all data,
    making the scheme equivalent to double-buffering for that structure.
    """

    def tainted(expr: Expr) -> bool:
        # mapped loads or opaque device-function calls cannot be sliced
        return bool(expr_loads(expr)) or any(
            isinstance(e, Call) for e in walk_exprs(expr)
        )

    # Loads/calls directly inside address expressions.
    for expr in _index_exprs(kernel):
        if tainted(expr):
            return True

    needed = address_slice_vars(kernel)

    # Guards controlling the slice.
    for guard in _relevant_guard_exprs(kernel, needed):
        if tainted(guard):
            return True

    # Loads/calls flowing into needed variables through assignments.
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, Assign) and stmt.var in needed:
            if tainted(stmt.value):
                return True
    return False


def require_sliceable(kernel: Kernel) -> None:
    """Raise :class:`SlicingError` when the addr-gen slice cannot be built."""
    if has_data_dependent_addressing(kernel):
        raise SlicingError(
            f"kernel {kernel.name!r} computes mapped addresses (or their "
            "control flow) from mapped data; BigKernel falls back to "
            "transferring all data for it"
        )


# ---------------------------------------------------------------------------
# Vectorizability analysis for the compiled (NumPy batch) backend
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class VectorizationReport:
    """Verdict of :func:`analyze_vectorizable`.

    ``ok`` means the kernel can be lowered to the NumPy batch executor
    with semantics (outputs, InterpStats, emitted address streams)
    identical to the tree-walking interpreter; ``reasons`` names every
    obstruction found otherwise, so the fallback is explainable.
    """

    ok: bool
    reasons: tuple = ()
    rec_var: Optional[str] = None
    n_pre: int = 0

    def __bool__(self) -> bool:
        return self.ok


def _stmt_eval_exprs(stmt: Stmt) -> tuple:
    """Every expression the interpreter evaluates for ``stmt`` (including
    the index expressions hidden inside mapped refs, which ``stmt_exprs``
    does not surface for all node kinds)."""
    if isinstance(stmt, Store):
        return (stmt.value, stmt.ref.index)
    if isinstance(stmt, WriteBufStore):
        return (stmt.original.index, stmt.value)
    if isinstance(stmt, EmitAddress):
        return (stmt.ref.index,)
    out = []
    for e in stmt_exprs(stmt):
        if isinstance(e, MappedRef):
            out.append(e.index)
        else:
            out.append(e)
    return tuple(out)


def _expr_reads(expr: Expr) -> set:
    """Variable names read by ``expr`` (including inside mapped refs)."""
    return {e.name for e in walk_exprs(expr) if isinstance(e, Var)}


def _assigned_names(body) -> set:
    """All names written anywhere in ``body`` (assignments + loop vars)."""
    out = set()
    for s in walk_stmts(body):
        if isinstance(s, Assign):
            out.add(s.var)
        elif isinstance(s, For):
            out.add(s.var)
    return out


def _is_uniform_expr(expr: Expr, uniform_vars: set) -> bool:
    """True when ``expr`` is the same for every record in the range."""
    for e in walk_exprs(expr):
        if isinstance(e, Var) and e.name not in uniform_vars:
            return False
        if isinstance(e, (Load, DataBufLoad, Call, ResidentLoad, MappedRef)):
            return False
    return True


def _is_param_uniform(expr: Expr) -> bool:
    """True when ``expr`` reads only Const/Param leaves (uniform across the
    whole launch, so a plain Python ``if`` preserves per-record semantics)."""
    return all(
        isinstance(e, (Const, Param, BinOp)) or type(e).__name__ == "UnOp"
        for e in walk_exprs(expr)
    )


def _scan_definite(body, sure: set, assigned_in_loop: set, reasons: list,
                   where: str) -> set:
    """Definite-assignment scan of one record-loop iteration.

    A read of a name that *some* iteration assigns but that is not
    definitely assigned earlier in the *current* iteration is a
    loop-carried dependence: lane ``k`` would observe lane ``k-1``'s
    value, which an all-lanes-at-once executor cannot reproduce.
    Returns the set of names definitely assigned by ``body``.
    """
    sure = set(sure)
    for stmt in body:
        for expr in _stmt_eval_exprs(stmt):
            carried = (_expr_reads(expr) & assigned_in_loop) - sure
            if carried:
                reasons.append(
                    f"loop-carried read of {sorted(carried)} in {where}"
                )
        if isinstance(stmt, Assign):
            sure.add(stmt.var)
        elif isinstance(stmt, If):
            s_then = _scan_definite(
                stmt.then_body, sure, assigned_in_loop, reasons, where
            )
            s_else = _scan_definite(
                stmt.else_body, sure, assigned_in_loop, reasons, where
            )
            sure = s_then & s_else
        elif isinstance(stmt, For):
            # the inner body re-executes: reads of names it assigns later
            # in the same body would be carried between *inner* iterations
            # only if not definitely assigned first — run the scan with the
            # inner loop var considered sure (it is bound each iteration)
            inner_sure = sure | {stmt.var}
            _scan_definite(
                stmt.body, inner_sure, assigned_in_loop, reasons,
                f"inner loop {stmt.var!r} in {where}",
            )
            # conservatively: nothing an inner loop assigns is definite
            # (it may run zero iterations)
    return sure


def _residue_disjoint(stmts) -> bool:
    """True when every AtomicAdd index is ``E*C + k`` with one shared
    ``(E, C)`` and pairwise-distinct ``k`` in ``[0, C)`` — each slot is
    then touched by exactly one statement, so per-statement batch order
    equals per-record interpreter order bit-for-bit even for floats."""
    keys = set()
    offsets = []
    for s in stmts:
        idx = s.index
        if not (
            isinstance(idx, BinOp) and idx.op == "+"
            and isinstance(idx.lhs, BinOp) and idx.lhs.op == "*"
            and isinstance(idx.lhs.rhs, Const)
            and isinstance(idx.rhs, Const)
        ):
            return False
        scale = idx.lhs.rhs.value
        keys.add((repr(idx.lhs.lhs), scale))
        if not (0 <= idx.rhs.value < scale):
            return False
        offsets.append(idx.rhs.value)
    return len(keys) == 1 and len(offsets) == len(set(offsets))


def analyze_vectorizable(
    kernel: Kernel,
    vector_fns: Iterable[str] = (),
    resident_kinds: Optional[dict] = None,
    databuf_mode: str = "window",
) -> VectorizationReport:
    """Decide whether ``kernel`` can run on the NumPy batch backend.

    ``vector_fns`` names the device functions that carry a ``vectorized``
    batch implementation; ``resident_kinds`` maps resident array names to
    their NumPy dtype kind character (``"i"``/``"u"``/``"f"``; anything
    else, including ``None`` for non-array residents, is opaque) — it
    gates the float-``AtomicAdd`` ordering rules. ``databuf_mode`` selects
    how ``DataBufLoad`` is lowered: ``"queue"`` (positional pops, only
    legal unmasked at the record-body top level) or ``"window"``
    (offset-indexed fallback windows, legal anywhere).
    """
    vector_fns = set(vector_fns)
    resident_kinds = resident_kinds or {}
    reasons: list = []

    # ---- canonical shape: uniform prelude + exactly one record loop
    n_pre = 0
    rec_for = None
    for stmt in kernel.body:
        if rec_for is not None:
            reasons.append("statements after the record loop")
            break
        if isinstance(stmt, For):
            rec_for = stmt
        elif isinstance(stmt, Assign) and _is_uniform_expr(
            stmt.value, BUILTIN_VARS
        ):
            n_pre += 1
        else:
            reasons.append(
                f"non-uniform pre-loop statement {type(stmt).__name__}"
            )
    if rec_for is None:
        reasons.append("no top-level record loop over [start, end)")
        return VectorizationReport(False, tuple(reasons))
    rec_var = rec_for.var
    for e in (rec_for.start, rec_for.end, rec_for.step):
        if not _is_uniform_expr(e, BUILTIN_VARS):
            reasons.append("record-loop bounds are not uniform")

    body = rec_for.body
    all_stmts = list(walk_stmts(body))

    # ---- hard structural rejections
    for s in all_stmts:
        if isinstance(s, (While, Break)):
            reasons.append(f"data-dependent {type(s).__name__} in record body")
        if isinstance(s, Assign) and s.var == rec_var:
            reasons.append("record loop variable reassigned in body")
        if isinstance(s, For):
            if s.var == rec_var:
                reasons.append("record loop variable shadowed by inner loop")
            if any(s.var == a.var for a in walk_stmts(s.body)
                   if isinstance(a, Assign)):
                reasons.append(f"inner loop variable {s.var!r} reassigned")
            uniform = BUILTIN_VARS | set(kernel.params)
            for e in (s.start, s.end, s.step):
                if not _is_uniform_expr(e, uniform):
                    reasons.append(
                        f"inner loop {s.var!r} has non-uniform bounds"
                    )

    # ---- loop-carried dependences
    assigned = _assigned_names(body)
    assigned.discard(rec_var)
    _scan_definite(body, {rec_var}, assigned, reasons, "record body")

    # ---- opaque calls need a batch implementation
    for s in all_stmts:
        for expr in _stmt_eval_exprs(s):
            for e in walk_exprs(expr):
                if isinstance(e, Call) and e.fn not in vector_fns:
                    reasons.append(
                        f"device function {e.fn!r} has no vectorized form"
                    )
                if isinstance(e, Load):
                    fspec = kernel.schema(e.ref.array).field(e.ref.field_name)
                    if fspec.dtype in ("u8",):
                        reasons.append(
                            f"load of {fspec.dtype} field {e.ref.field_name!r}"
                            " exceeds the int64 lane width"
                        )

    # ---- mapped stores: one writer lane per slot, in lane order
    for s in all_stmts:
        ref = (s.ref if isinstance(s, Store)
               else s.original if isinstance(s, WriteBufStore) else None)
        if ref is not None and ref.index != Var(rec_var):
            reasons.append(
                f"mapped store to {ref.array!r} indexed by "
                f"{type(ref.index).__name__}, not the record variable"
            )

    # ---- databuf pops
    if any(isinstance(e, DataBufLoad) for s in all_stmts
           for x in _stmt_eval_exprs(s) for e in walk_exprs(x)):
        if databuf_mode == "queue":
            # positional pops are only order-preserving when every lane
            # executes every pop exactly once: top level of the record body
            for stmt in body:
                for sub in walk_stmts([stmt]):
                    if sub is stmt:
                        continue
                    for expr in _stmt_eval_exprs(sub):
                        if any(isinstance(e, DataBufLoad)
                               for e in walk_exprs(expr)):
                            reasons.append(
                                "queue-mode DataBufLoad under control flow"
                            )

    # ---- resident-array hazards
    _check_resident_hazards(body, resident_kinds, reasons)

    reasons = sorted(set(reasons))
    return VectorizationReport(not reasons, tuple(reasons), rec_var, n_pre)


def _region_exclusive(a: tuple, b: tuple) -> bool:
    """Two uniform-If region paths that diverge at the same node are
    mutually exclusive (only one branch runs for the whole launch)."""
    for (ida, bra), (idb, brb) in zip(a, b):
        if ida != idb:
            return False
        if bra != brb:
            return True
    return False


def _check_resident_hazards(body, resident_kinds: dict, reasons: list) -> None:
    """Batch execution reorders resident accesses from per-record to
    per-statement; flag every interleaving the reorder could change."""
    accesses: list = []  # (array, kind, region, stmt, in_inner_loop)

    def visit(stmts, region: tuple, in_loop: bool) -> None:
        for idx, stmt in enumerate(stmts):
            if isinstance(stmt, (Assign, Store, WriteBufStore, EmitAddress,
                                 ResidentStore, AtomicAdd, If, For)):
                for expr in _stmt_eval_exprs(stmt):
                    for e in walk_exprs(expr):
                        if isinstance(e, ResidentLoad):
                            accesses.append(
                                (e.array, "load", region, stmt, in_loop)
                            )
            if isinstance(stmt, ResidentStore):
                accesses.append((stmt.array, "store", region, stmt, in_loop))
            elif isinstance(stmt, AtomicAdd):
                accesses.append((stmt.array, "atomic", region, stmt, in_loop))
            elif isinstance(stmt, If):
                if _is_param_uniform(stmt.cond):
                    visit(stmt.then_body, region + ((id(stmt), 0),), in_loop)
                    visit(stmt.else_body, region + ((id(stmt), 1),), in_loop)
                else:
                    visit(stmt.then_body, region, in_loop)
                    visit(stmt.else_body, region, in_loop)
            elif isinstance(stmt, For):
                visit(stmt.body, region, True)

    visit(body, (), False)

    by_array: dict = {}
    for array, kind, region, stmt, in_loop in accesses:
        by_array.setdefault(array, []).append((kind, region, stmt, in_loop))

    for array, accs in by_array.items():
        kinds = {k for k, _, _, _ in accs}
        writes = [a for a in accs if a[0] in ("store", "atomic")]
        dtype_kind = resident_kinds.get(array)
        # read-after-write / write-after-read across lanes
        if "load" in kinds and writes:
            pairs_ok = all(
                _region_exclusive(r1, r2)
                for k1, r1, _, _ in accs if k1 == "load"
                for k2, r2, _, _ in writes
            )
            if not pairs_ok:
                reasons.append(
                    f"resident array {array!r} is read and written in the "
                    "same region (cross-lane RAW hazard)"
                )
        # plain stores: ≤ 1 statement per mutually-reachable region
        stores = [a for a in accs if a[0] == "store"]
        for _, _, stmt, in_loop in stores:
            if in_loop:
                reasons.append(
                    f"ResidentStore to {array!r} inside an inner loop"
                )
        for i, (_, r1, s1, _) in enumerate(stores):
            for _, r2, s2, _ in stores[i + 1:]:
                if s1 is not s2 and not _region_exclusive(r1, r2):
                    reasons.append(
                        f"multiple ResidentStore statements to {array!r} "
                        "in one region"
                    )
        if stores and "atomic" in kinds:
            if not all(
                _region_exclusive(r1, r2)
                for k1, r1, _, _ in accs if k1 == "store"
                for k2, r2, _, _ in accs if k2 == "atomic"
            ):
                reasons.append(
                    f"resident array {array!r} mixes ResidentStore and "
                    "AtomicAdd in one region"
                )
        if stores and dtype_kind is None:
            reasons.append(
                f"resident array {array!r} is written but is not a typed "
                "1-D array"
            )
        # float accumulation: batch order must provably match lane order
        atomics = [a for a in accs if a[0] == "atomic"]
        if atomics and dtype_kind is None:
            reasons.append(
                f"AtomicAdd target {array!r} is not a typed 1-D array"
            )
        elif atomics and dtype_kind not in ("i", "u", "b"):
            if any(in_loop for _, _, _, in_loop in atomics):
                reasons.append(
                    f"float AtomicAdd to {array!r} inside an inner loop"
                )
            stmts = [s for _, _, s, _ in atomics]
            if len(set(map(id, stmts))) > 1 and not _residue_disjoint(stmts):
                reasons.append(
                    f"multiple float AtomicAdd statements to {array!r} "
                    "without residue-disjoint slots"
                )


# --------------------------------------------------------------------------
# static intensity census (roofline reporting)


@dataclass(frozen=True)
class KernelIntensity:
    """Static census of one kernel's IR, per record-loop iteration.

    Counts are *static* (program text, not execution counts): the analytic
    predictor gets its dynamic op/byte ratios from the app's
    ``AccessProfile``; this census is the structural view ``repro report``
    prints next to them — how many arithmetic nodes, mapped/resident
    accesses and control constructs the kernel body contains.
    """

    arithmetic_ops: int
    mapped_loads: int
    mapped_stores: int
    resident_loads: int
    resident_stores: int
    atomic_adds: int
    emitted_addresses: int
    branches: int
    loops: int

    @property
    def mapped_accesses(self) -> int:
        return self.mapped_loads + self.mapped_stores

    @property
    def resident_accesses(self) -> int:
        return self.resident_loads + self.resident_stores + self.atomic_adds


def kernel_intensity(kernel: Kernel) -> KernelIntensity:
    """Walk ``kernel``'s IR once and count its structural features."""
    ops = loads = stores = rloads = rstores = atomics = emits = 0
    branches = loops = 0
    for stmt in walk_stmts(kernel.body):
        if isinstance(stmt, If):
            branches += 1
        elif isinstance(stmt, (For, While)):
            loops += 1
        elif isinstance(stmt, Store):
            stores += 1
        elif isinstance(stmt, ResidentStore):
            rstores += 1
        elif isinstance(stmt, AtomicAdd):
            atomics += 1
        elif isinstance(stmt, EmitAddress):
            emits += 1
        for root in stmt_exprs(stmt):
            for e in walk_exprs(root):
                if isinstance(e, (BinOp, UnOp, Call)):
                    ops += 1
                elif isinstance(e, Load):
                    loads += 1
                elif isinstance(e, ResidentLoad):
                    rloads += 1
    return KernelIntensity(
        arithmetic_ops=ops,
        mapped_loads=loads,
        mapped_stores=stores,
        resident_loads=rloads,
        resident_stores=rstores,
        atomic_adds=atomics,
        emitted_addresses=emits,
        branches=branches,
        loops=loops,
    )
