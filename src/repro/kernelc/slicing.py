"""The address-generation transformation (paper Section III, stage 1).

``make_addrgen_kernel`` rebuilds the kernel keeping only control flow and
address arithmetic; every mapped access becomes an :class:`EmitAddress` that
records, instead of performs, the access. Reads and writes are emitted to
separate streams (they feed separate buffer sets in the runtime).

Emission order is defined to match the interpreter's evaluation order
(depth-first, left-to-right within a statement; value before target for
stores), so that the computation kernel — which consumes the prefetch
buffer *in emission order* — sees each value exactly where it expects it.
This correspondence is property-tested in ``tests/test_kernelc_roundtrip``
and, over randomly generated programs, in ``tests/test_kernelc_random``.

Semantic precondition (inherent to the paper's scheme, Section III): the
kernel must not *read* a mapped location it previously *wrote* within the
same launch. Prefetched values are gathered from the pre-launch state and
writes land asynchronously through the write-back stages, so a
read-after-write to mapped data would observe stale bytes. This is the
streaming assumption — each record is operated on independently — and the
paper notes repeated access to the same item is rare in its target class
(it would also mean redundant transfers). The transformation does not try
to detect the hazard; it is part of the programming contract.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import SlicingError
from repro.kernelc.analysis import (
    address_slice_vars,
    expr_loads,
    require_sliceable,
)
from repro.kernelc.ir import (
    Assign,
    AtomicAdd,
    Break,
    EmitAddress,
    Expr,
    ExprStmt,
    For,
    If,
    Kernel,
    ResidentStore,
    Stmt,
    Store,
    While,
)


def _emits_for(expr: Expr) -> list[EmitAddress]:
    """EmitAddress statements for every mapped load in ``expr``, in order."""
    return [EmitAddress(ld.ref, is_write=False) for ld in expr_loads(expr)]


def make_addrgen_kernel(kernel: Kernel) -> Kernel:
    """Derive the address-generation kernel, or raise :class:`SlicingError`.

    The caller is expected to catch the error and fall back to full-data
    transfer, mirroring the paper's compiler default.
    """
    if kernel.form != "original":
        raise SlicingError(f"can only slice an original kernel, got {kernel.form!r}")
    require_sliceable(kernel)
    needed = address_slice_vars(kernel)

    def slice_body(body: tuple[Stmt, ...]) -> tuple[Stmt, ...]:
        out: list[Stmt] = []
        for stmt in body:
            if isinstance(stmt, Assign):
                if stmt.var in needed:
                    # Address arithmetic: kept verbatim. require_sliceable
                    # guarantees no loads hide inside.
                    out.append(stmt)
                else:
                    # Dropped computation; its loads still cost addresses.
                    out.extend(_emits_for(stmt.value))
            elif isinstance(stmt, Store):
                out.extend(_emits_for(stmt.value))
                out.append(EmitAddress(stmt.ref, is_write=True))
            elif isinstance(stmt, (ResidentStore, AtomicAdd)):
                out.extend(_emits_for(stmt.index))
                out.extend(_emits_for(stmt.value))
            elif isinstance(stmt, ExprStmt):
                out.extend(_emits_for(stmt.expr))
            elif isinstance(stmt, If):
                then_s = slice_body(stmt.then_body)
                else_s = slice_body(stmt.else_body)
                if then_s or else_s:
                    out.append(If(stmt.cond, then_s, else_s))
            elif isinstance(stmt, For):
                inner = slice_body(stmt.body)
                if inner:
                    out.append(For(stmt.var, stmt.start, stmt.end, inner, stmt.step))
            elif isinstance(stmt, While):
                inner = slice_body(stmt.body)
                if inner:
                    out.append(While(stmt.cond, inner))
            elif isinstance(stmt, Break):
                out.append(stmt)
            else:  # pragma: no cover - future node kinds
                raise SlicingError(f"unhandled statement kind {type(stmt).__name__}")
        return tuple(out)

    return replace(kernel, body=slice_body(kernel.body), form="addrgen")
